"""Tests for repro.geometry."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import ORIGIN, Vec2, centroid, clamp, heading_difference

finite = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


class TestVec2:
    def test_addition(self):
        assert Vec2(1, 2) + Vec2(3, 4) == Vec2(4, 6)

    def test_subtraction(self):
        assert Vec2(5, 5) - Vec2(2, 3) == Vec2(3, 2)

    def test_scalar_multiplication_both_sides(self):
        assert Vec2(1, 2) * 3 == Vec2(3, 6)
        assert 3 * Vec2(1, 2) == Vec2(3, 6)

    def test_division(self):
        assert Vec2(4, 6) / 2 == Vec2(2, 3)

    def test_division_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            Vec2(1, 1) / 0

    def test_negation(self):
        assert -Vec2(1, -2) == Vec2(-1, 2)

    def test_norm(self):
        assert Vec2(3, 4).norm() == pytest.approx(5.0)

    def test_distance(self):
        assert Vec2(0, 0).distance_to(Vec2(3, 4)) == pytest.approx(5.0)

    def test_dot(self):
        assert Vec2(1, 2).dot(Vec2(3, 4)) == pytest.approx(11.0)

    def test_normalized_unit_length(self):
        assert Vec2(10, 0).normalized() == Vec2(1, 0)

    def test_normalized_zero_vector(self):
        assert Vec2(0, 0).normalized() == Vec2(0, 0)

    def test_heading_east(self):
        assert Vec2(1, 0).heading() == pytest.approx(0.0)

    def test_heading_north(self):
        assert Vec2(0, 1).heading() == pytest.approx(math.pi / 2)

    def test_from_polar_round_trip(self):
        vec = Vec2.from_polar(5.0, math.pi / 3)
        assert vec.norm() == pytest.approx(5.0)
        assert vec.heading() == pytest.approx(math.pi / 3)

    def test_rotated_quarter_turn(self):
        rotated = Vec2(1, 0).rotated(math.pi / 2)
        assert rotated.x == pytest.approx(0.0, abs=1e-12)
        assert rotated.y == pytest.approx(1.0)

    def test_as_tuple(self):
        assert Vec2(1.5, -2.5).as_tuple() == (1.5, -2.5)

    def test_iteration_unpacks(self):
        x, y = Vec2(7, 8)
        assert (x, y) == (7, 8)

    def test_immutability(self):
        vec = Vec2(1, 2)
        with pytest.raises(Exception):
            vec.x = 10  # type: ignore[misc]

    @given(finite, finite)
    def test_norm_non_negative(self, x, y):
        assert Vec2(x, y).norm() >= 0

    @given(finite, finite, finite, finite)
    def test_triangle_inequality(self, x1, y1, x2, y2):
        a, b = Vec2(x1, y1), Vec2(x2, y2)
        assert (a + b).norm() <= a.norm() + b.norm() + 1e-6

    @given(finite, finite)
    def test_distance_symmetry(self, x, y):
        a, b = Vec2(x, y), Vec2(y, x)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))


class TestHeadingDifference:
    def test_identical(self):
        assert heading_difference(1.0, 1.0) == pytest.approx(0.0)

    def test_opposite(self):
        assert heading_difference(0.0, math.pi) == pytest.approx(math.pi)

    def test_wraps_branch_cut(self):
        assert heading_difference(math.pi - 0.1, -math.pi + 0.1) == pytest.approx(0.2)

    @given(st.floats(min_value=-10, max_value=10), st.floats(min_value=-10, max_value=10))
    def test_range(self, a, b):
        diff = heading_difference(a, b)
        assert 0.0 <= diff <= math.pi + 1e-9

    @given(st.floats(min_value=-10, max_value=10), st.floats(min_value=-10, max_value=10))
    def test_symmetry(self, a, b):
        assert heading_difference(a, b) == pytest.approx(heading_difference(b, a))


class TestCentroid:
    def test_single_point(self):
        assert centroid([Vec2(3, 4)]) == Vec2(3, 4)

    def test_square(self):
        points = [Vec2(0, 0), Vec2(2, 0), Vec2(2, 2), Vec2(0, 2)]
        assert centroid(points) == Vec2(1, 1)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            centroid([])

    def test_accepts_generator(self):
        assert centroid(Vec2(i, 0) for i in range(3)) == Vec2(1, 0)


class TestClamp:
    def test_inside(self):
        assert clamp(5, 0, 10) == 5

    def test_below(self):
        assert clamp(-1, 0, 10) == 0

    def test_above(self):
        assert clamp(11, 0, 10) == 10

    def test_invalid_interval_raises(self):
        with pytest.raises(ValueError):
            clamp(5, 10, 0)

    def test_origin_constant(self):
        assert ORIGIN == Vec2(0.0, 0.0)
