"""Tests for membership, replication, aggregation, modes, directory."""

from __future__ import annotations

import pytest

from repro.errors import MembershipError, ResourceError, TaskError
from repro.geometry import Vec2
from repro.core import (
    AggregationJob,
    FileStore,
    MembershipManager,
    ReplicationManager,
    ResourceDirectory,
    ResourceOffer,
    ResourceQuery,
    ResultAggregator,
    StoredFile,
    dissemination_cost,
)
from repro.mobility import SensorKind
from repro.sim import SeededRng


class TestMembership:
    def test_join_and_leave(self):
        manager = MembershipManager("vc-1")
        manager.join("a", now=1.0)
        assert "a" in manager
        assert manager.info("a").joined_at == 1.0
        manager.leave("a")
        assert "a" not in manager
        assert manager.joins == 1 and manager.leaves == 1

    def test_duplicate_join_raises(self):
        manager = MembershipManager("vc-1")
        manager.join("a", 0.0)
        with pytest.raises(MembershipError):
            manager.join("a", 1.0)

    def test_leave_nonmember_raises(self):
        with pytest.raises(MembershipError):
            MembershipManager("vc-1").leave("ghost")

    def test_capacity_enforced(self):
        manager = MembershipManager("vc-1", max_members=2)
        manager.join("a", 0.0)
        manager.join("b", 0.0)
        with pytest.raises(MembershipError):
            manager.join("c", 0.0)

    def test_callbacks_fire(self):
        manager = MembershipManager("vc-1")
        joined, left = [], []
        manager.on_join(joined.append)
        manager.on_leave(left.append)
        manager.join("a", 0.0)
        manager.leave("a")
        assert joined == ["a"] and left == ["a"]

    def test_evict_out_of_range(self):
        manager = MembershipManager("vc-1")
        manager.join("near", 0.0, position=Vec2(10, 0))
        manager.join("far", 0.0, position=Vec2(1000, 0))
        manager.join("unknown", 0.0)  # no position: kept
        evicted = manager.evict_out_of_range(Vec2(0, 0), range_m=100)
        assert evicted == ["far"]
        assert "near" in manager and "unknown" in manager

    def test_tenure(self):
        manager = MembershipManager("vc-1")
        manager.join("a", now=5.0)
        assert manager.info("a").tenure(now=15.0) == 10.0

    def test_merge_absorb(self):
        alpha = MembershipManager("alpha", max_members=10)
        beta = MembershipManager("beta")
        alpha.join("a1", 0.0)
        beta.join("b1", 0.0)
        beta.join("b2", 0.0)
        absorbed = alpha.absorb(beta, now=5.0)
        assert sorted(absorbed) == ["b1", "b2"]
        assert len(alpha) == 3 and len(beta) == 0

    def test_absorb_respects_capacity(self):
        alpha = MembershipManager("alpha", max_members=2)
        beta = MembershipManager("beta")
        alpha.join("a1", 0.0)
        beta.join("b1", 0.0)
        beta.join("b2", 0.0)
        absorbed = alpha.absorb(beta, now=1.0)
        assert len(absorbed) == 1
        assert len(beta) == 1  # the unabsorbed member stays behind

    def test_split(self):
        manager = MembershipManager("vc-1")
        for vid in ("a", "b", "c"):
            manager.join(vid, 0.0)
        spawned = manager.split(["b", "c"], "vc-2", now=5.0)
        assert sorted(spawned.member_ids()) == ["b", "c"]
        assert manager.member_ids() == ["a"]

    def test_split_nonmember_raises(self):
        manager = MembershipManager("vc-1")
        manager.join("a", 0.0)
        with pytest.raises(MembershipError):
            manager.split(["ghost"], "vc-2", 0.0)


class TestFileStore:
    def test_capacity_accounting(self):
        store = FileStore("v1", capacity_bytes=100)
        store.put("f1", 60)
        assert store.used_bytes == 60
        assert store.free_bytes == 40
        assert store.holds("f1")

    def test_over_capacity_raises(self):
        store = FileStore("v1", capacity_bytes=100)
        with pytest.raises(ResourceError):
            store.put("f1", 200)

    def test_duplicate_put_idempotent(self):
        store = FileStore("v1", capacity_bytes=100)
        store.put("f1", 60)
        store.put("f1", 60)
        assert store.used_bytes == 60

    def test_drop(self):
        store = FileStore("v1", capacity_bytes=100)
        store.put("f1", 60)
        store.drop("f1")
        assert store.free_bytes == 100
        store.drop("ghost")  # no-op


class TestReplication:
    def _manager(self, members=5, capacity=1000, repair=True):
        manager = ReplicationManager(SeededRng(1, "repl"), repair=repair)
        for index in range(members):
            manager.add_store(FileStore(f"v{index}", capacity))
        return manager

    def test_places_target_replicas(self):
        manager = self._manager()
        placed = manager.store_file(StoredFile("f1", 100, target_replicas=3))
        assert placed == 3
        assert manager.replica_count("f1") == 3
        assert manager.is_available("f1")

    def test_replicas_on_distinct_members(self):
        manager = self._manager(members=3)
        manager.store_file(StoredFile("f1", 100, target_replicas=3))
        holders = [vid for vid in manager.member_ids() if manager._stores[vid].holds("f1")]
        assert len(holders) == 3

    def test_more_replicas_than_members_capped(self):
        manager = self._manager(members=2)
        placed = manager.store_file(StoredFile("f1", 100, target_replicas=5))
        assert placed == 2

    def test_duplicate_file_raises(self):
        manager = self._manager()
        manager.store_file(StoredFile("f1", 100, 1))
        with pytest.raises(ResourceError):
            manager.store_file(StoredFile("f1", 100, 1))

    def test_departure_with_repair_restores_replicas(self):
        manager = self._manager(members=5)
        manager.store_file(StoredFile("f1", 100, target_replicas=2))
        holder = next(
            vid for vid in manager.member_ids() if manager._stores[vid].holds("f1")
        )
        degraded = manager.remove_store(holder)
        assert "f1" in degraded
        assert manager.replica_count("f1") == 2  # repaired
        assert manager.repair_transfers >= 1

    def test_departure_without_repair_degrades(self):
        manager = self._manager(members=5, repair=False)
        manager.store_file(StoredFile("f1", 100, target_replicas=2))
        holders = [
            vid for vid in manager.member_ids() if manager._stores[vid].holds("f1")
        ]
        manager.remove_store(holders[0])
        assert manager.replica_count("f1") == 1

    def test_losing_all_replicas_makes_unavailable(self):
        manager = self._manager(members=2, repair=False)
        manager.store_file(StoredFile("f1", 100, target_replicas=2))
        for vid in list(manager.member_ids()):
            manager.remove_store(vid)
        assert not manager.is_available("f1")
        assert manager.read("f1") is None
        assert manager.failed_reads == 1

    def test_read_served_by_holder(self):
        manager = self._manager()
        manager.store_file(StoredFile("f1", 100, target_replicas=2))
        holder = manager.read("f1")
        assert holder is not None
        assert manager._stores[holder].holds("f1")

    def test_availability_metric(self):
        manager = self._manager(members=2, repair=False)
        manager.store_file(StoredFile("keep", 100, 2))
        manager.store_file(StoredFile("lose", 100, 1))
        loser = next(
            vid for vid in manager.member_ids() if manager._stores[vid].holds("lose")
        )
        manager.remove_store(loser)
        assert manager.availability() in (0.5, 1.0)

    def test_capacity_limits_placement(self):
        manager = ReplicationManager(SeededRng(2, "repl"))
        manager.add_store(FileStore("tiny", 50))
        placed = manager.store_file(StoredFile("big", 100, target_replicas=1))
        assert placed == 0
        assert not manager.is_available("big")


class TestAggregation:
    def test_quorum_completion(self):
        aggregator = ResultAggregator()
        aggregator.open_job("j1", expected_parts=4, quorum_fraction=0.75, combine=sum)
        assert aggregator.submit_partial("j1", "w0", 0, 10, now=1.0) is None
        assert aggregator.submit_partial("j1", "w1", 1, 20, now=2.0) is None
        result = aggregator.submit_partial("j1", "w2", 2, 30, now=3.0)
        assert result == 60  # 3 of 4 = quorum at 0.75
        assert aggregator.job("j1").is_complete

    def test_full_quorum_default(self):
        aggregator = ResultAggregator()
        aggregator.open_job("j1", expected_parts=2)
        aggregator.submit_partial("j1", "w0", 0, "a", 1.0)
        result = aggregator.submit_partial("j1", "w1", 1, "b", 2.0)
        assert result == ["a", "b"]

    def test_duplicate_partials_ignored(self):
        aggregator = ResultAggregator()
        aggregator.open_job("j1", expected_parts=2, combine=sum)
        aggregator.submit_partial("j1", "w0", 0, 5, 1.0)
        aggregator.submit_partial("j1", "w0", 0, 5, 1.5)
        assert aggregator.duplicates_ignored == 1
        assert aggregator.progress("j1") == 0.5

    def test_late_partials_counted(self):
        aggregator = ResultAggregator()
        aggregator.open_job("j1", expected_parts=1, combine=sum)
        aggregator.submit_partial("j1", "w0", 0, 5, 1.0)
        aggregator.submit_partial("j1", "w1", 0, 9, 2.0)
        assert aggregator.late_partials == 1

    def test_out_of_range_index_raises(self):
        aggregator = ResultAggregator()
        aggregator.open_job("j1", expected_parts=2)
        with pytest.raises(TaskError):
            aggregator.submit_partial("j1", "w", 5, "x", 1.0)

    def test_duplicate_job_raises(self):
        aggregator = ResultAggregator()
        aggregator.open_job("j1", 1)
        with pytest.raises(TaskError):
            aggregator.open_job("j1", 1)

    def test_invalid_quorum(self):
        with pytest.raises(TaskError):
            AggregationJob("j", expected_parts=2, quorum_fraction=0.0)

    def test_dissemination_cost_shape(self):
        small = dissemination_cost(member_count=8, payload_bytes=1000)
        large = dissemination_cost(member_count=40, payload_bytes=1000)
        assert large > small  # second tier needed
        assert dissemination_cost(0, 1000) == 0.0


class TestResourceDirectory:
    def _directory(self):
        directory = ResourceDirectory()
        directory.register(
            ResourceOffer("lidar-big", 4000, 10**9, 1e7, frozenset({SensorKind.LIDAR}))
        )
        directory.register(ResourceOffer("plain-small", 500, 10**6, 1e5))
        return directory

    def test_search_filters_and_ranks(self):
        directory = self._directory()
        matches = directory.search(ResourceQuery(min_compute_mips=1000))
        assert [m.vehicle_id for m in matches] == ["lidar-big"]

    def test_sensor_requirement(self):
        directory = self._directory()
        query = ResourceQuery(required_sensors=frozenset({SensorKind.LIDAR}))
        assert directory.best_match(query).vehicle_id == "lidar-big"

    def test_no_match_returns_none(self):
        assert self._directory().best_match(ResourceQuery(min_compute_mips=1e9)) is None

    def test_register_replaces(self):
        directory = self._directory()
        directory.register(ResourceOffer("plain-small", 9000, 1, 1))
        assert len(directory) == 2
        assert directory.best_match(ResourceQuery()).vehicle_id == "plain-small"

    def test_deregister(self):
        directory = self._directory()
        directory.deregister("lidar-big")
        assert len(directory) == 1

    def test_limit(self):
        directory = self._directory()
        assert len(directory.search(ResourceQuery(limit=1))) == 1

    def test_total_capacity(self):
        total = self._directory().total_capacity()
        assert total.compute_mips == 4500
        assert SensorKind.LIDAR in total.sensors

    def test_invalid_limit(self):
        with pytest.raises(ResourceError):
            ResourceQuery(limit=0)
