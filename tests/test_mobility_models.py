"""Tests for roads and mobility models."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError
from repro.geometry import Vec2
from repro.mobility import (
    Highway,
    HighwayModel,
    ManhattanGrid,
    ManhattanModel,
    ParkingLot,
    ParkingLotModel,
    StationaryModel,
)
from repro.sim import ScenarioConfig, World


class TestHighway:
    def test_lane_geometry(self):
        highway = Highway(lanes_per_direction=2, lane_width_m=4.0)
        assert highway.total_lanes == 4
        assert highway.lane_y(0) == pytest.approx(-2.0)
        assert highway.lane_y(2) == pytest.approx(2.0)

    def test_lane_heading_by_direction(self):
        highway = Highway(lanes_per_direction=1)
        assert highway.lane_heading(0) == 0.0
        assert highway.lane_heading(1) == math.pi

    def test_lane_index_out_of_range(self):
        with pytest.raises(ConfigurationError):
            Highway(lanes_per_direction=1).lane_y(2)

    def test_wrap(self):
        highway = Highway(length_m=1000)
        assert highway.wrap_x(1100) == pytest.approx(100)
        assert highway.wrap_x(-100) == pytest.approx(900)

    def test_contains(self):
        highway = Highway(length_m=1000, lanes_per_direction=1, lane_width_m=4)
        assert highway.contains(Vec2(500, 0))
        assert not highway.contains(Vec2(500, 100))


class TestManhattanGrid:
    def test_dimensions(self):
        grid = ManhattanGrid(blocks_x=3, blocks_y=2, block_size_m=100)
        assert grid.width_m == 300
        assert grid.height_m == 200
        assert len(grid.intersections()) == 4 * 3

    def test_nearest_intersection(self):
        grid = ManhattanGrid(block_size_m=100)
        assert grid.nearest_intersection(Vec2(149, 51)) == Vec2(100, 100)

    def test_nearest_clamped_to_grid(self):
        grid = ManhattanGrid(blocks_x=2, blocks_y=2, block_size_m=100)
        assert grid.nearest_intersection(Vec2(-50, 999)) == Vec2(0, 200)

    def test_allowed_headings_interior(self):
        grid = ManhattanGrid(blocks_x=2, blocks_y=2, block_size_m=100)
        headings = grid.allowed_headings(Vec2(100, 100))
        assert len(headings) == 4

    def test_allowed_headings_corner(self):
        grid = ManhattanGrid(blocks_x=2, blocks_y=2, block_size_m=100)
        headings = grid.allowed_headings(Vec2(0, 0))
        assert len(headings) == 2

    def test_is_intersection(self):
        grid = ManhattanGrid(block_size_m=100)
        assert grid.is_intersection(Vec2(100.5, 99.8))
        assert not grid.is_intersection(Vec2(150, 150))


class TestParkingLot:
    def test_capacity_and_positions(self):
        lot = ParkingLot(rows=2, columns=3, spot_spacing_m=5)
        assert lot.capacity == 6
        assert lot.spot_position(0) == Vec2(0, 0)
        assert lot.spot_position(4) == Vec2(5, 5)

    def test_invalid_spot(self):
        with pytest.raises(ConfigurationError):
            ParkingLot(rows=1, columns=1).spot_position(1)


class TestHighwayModel:
    def test_populate_places_on_lanes(self, world):
        model = HighwayModel(world, Highway(length_m=2000))
        vehicles = model.populate(20)
        assert len(vehicles) == 20
        for vehicle in vehicles:
            assert 0 <= vehicle.position.x <= 2000
            assert vehicle.heading_rad in (0.0, math.pi)

    def test_vehicles_registered_in_world(self, world):
        model = HighwayModel(world)
        vehicles = model.populate(5)
        for vehicle in vehicles:
            assert world.has(vehicle.vehicle_id)

    def test_motion_wraps_highway(self, world):
        highway = Highway(length_m=500)
        model = HighwayModel(world, highway)
        model.populate(10)
        model.start()
        world.run_for(60)
        for vehicle in model.vehicles:
            assert 0 <= vehicle.position.x < 500

    def test_speeds_stay_in_bounds(self, world):
        model = HighwayModel(world)
        model.populate(15)
        model.start()
        world.run_for(30)
        cfg = world.config.mobility
        for vehicle in model.vehicles:
            assert cfg.min_speed_mps <= vehicle.speed_mps <= cfg.max_speed_mps

    def test_deterministic_across_worlds(self):
        def run(seed):
            world = World(ScenarioConfig(seed=seed))
            model = HighwayModel(world)
            model.populate(10)
            model.start()
            world.run_for(20)
            return [(round(v.position.x, 6), round(v.position.y, 6)) for v in model.vehicles]

        assert run(11) == run(11)
        assert run(11) != run(12)

    def test_stop_halts_motion(self, world):
        model = HighwayModel(world)
        model.populate(3)
        model.start()
        world.run_for(5)
        model.stop()
        positions = [v.position for v in model.vehicles]
        world.run_for(10)
        assert [v.position for v in model.vehicles] == positions


class TestManhattanModel:
    def test_vehicles_stay_on_grid_lines(self, world):
        grid = ManhattanGrid(blocks_x=3, blocks_y=3, block_size_m=200)
        model = ManhattanModel(world, grid)
        model.populate(15)
        model.start()
        world.run_for(60)
        for vehicle in model.vehicles:
            on_vertical = abs(vehicle.position.x % 200) < 1e-6
            on_horizontal = abs(vehicle.position.y % 200) < 1e-6
            assert on_vertical or on_horizontal

    def test_vehicles_stay_in_bounds(self, world):
        grid = ManhattanGrid(blocks_x=2, blocks_y=2, block_size_m=100)
        model = ManhattanModel(world, grid)
        model.populate(10)
        model.start()
        world.run_for(120)
        for vehicle in model.vehicles:
            assert -1e-6 <= vehicle.position.x <= grid.width_m + 1e-6
            assert -1e-6 <= vehicle.position.y <= grid.height_m + 1e-6


class TestParkingLotModel:
    def test_vehicles_start_parked(self, world):
        model = ParkingLotModel(world)
        model.populate(10)
        assert all(v.parked for v in model.vehicles)

    def test_departures_happen(self, world):
        model = ParkingLotModel(world, departure_rate_per_hour=3600.0, arrivals_enabled=False)
        model.populate(30)
        departed = []
        model.on_departure(departed.append)
        model.start()
        world.run_for(30)
        assert departed, "with a 1/s rate departures must occur within 30s"
        assert model.occupancy < 1.0

    def test_departed_vehicles_unregistered(self, world):
        model = ParkingLotModel(world, departure_rate_per_hour=3600.0, arrivals_enabled=False)
        model.populate(10)
        model.start()
        world.run_for(60)
        for vehicle in model.departed:
            assert not world.has(vehicle.vehicle_id)

    def test_zero_rate_keeps_everyone(self, world):
        model = ParkingLotModel(world, departure_rate_per_hour=0.0)
        model.populate(10)
        model.start()
        world.run_for(60)
        assert len(model.vehicles) == 10

    def test_overfill_raises(self, world):
        from repro.mobility import ParkingLot

        model = ParkingLotModel(world, lot=ParkingLot(rows=1, columns=2))
        with pytest.raises(ConfigurationError):
            model.populate(3)


class TestStationaryModel:
    def test_explicit_positions(self, world):
        model = StationaryModel(world, positions=[Vec2(1, 2), Vec2(3, 4)])
        vehicles = model.populate(2)
        assert vehicles[0].position == Vec2(1, 2)
        assert vehicles[1].position == Vec2(3, 4)

    def test_vehicles_never_move(self, world):
        model = StationaryModel(world, positions=[Vec2(5, 5)])
        model.populate(1)
        model.start()
        world.run_for(30)
        assert model.vehicles[0].position == Vec2(5, 5)
