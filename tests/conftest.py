"""Shared pytest fixtures."""

from __future__ import annotations

import pytest

from repro.sim import ScenarioConfig, SeededRng, World


@pytest.fixture
def world() -> World:
    """A fresh world with a fixed seed."""
    return World(ScenarioConfig(seed=1234))


@pytest.fixture
def rng() -> SeededRng:
    """A deterministic RNG stream."""
    return SeededRng(99, "test")
