"""Shared pytest fixtures."""

from __future__ import annotations

import pytest

from repro.core.tasks import reset_task_ids
from repro.dag.graph import reset_graph_ids
from repro.mobility.vehicle import reset_vehicle_ids
from repro.sim import ScenarioConfig, SeededRng, World


@pytest.fixture(autouse=True)
def _reset_global_id_counters():
    """Rewind the process-global id counters before every test.

    Task, vehicle and graph ids come from process-global counters, so a
    test asserting on concrete ids (``task-1``, ``veh-3``, ``graph-1``)
    or on seeded byte-identical replays would otherwise depend on which
    tests ran before it.  Centralizing the reset here keeps every test
    hermetic without each one remembering to do it manually.
    """
    reset_task_ids()
    reset_vehicle_ids()
    reset_graph_ids()


@pytest.fixture
def world() -> World:
    """A fresh world with a fixed seed."""
    return World(ScenarioConfig(seed=1234))


@pytest.fixture
def rng() -> SeededRng:
    """A deterministic RNG stream."""
    return SeededRng(99, "test")
