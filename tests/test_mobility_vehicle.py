"""Tests for vehicles, equipment and kinematics."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.geometry import Vec2
from repro.mobility import (
    AutomationLevel,
    OnboardEquipment,
    RadioKind,
    SensorKind,
    Vehicle,
    next_vehicle_id,
)


class TestAutomationLevel:
    def test_six_levels(self):
        assert len(AutomationLevel) == 6

    def test_is_autonomous_threshold(self):
        assert not AutomationLevel.PARTIAL_AUTOMATION.is_autonomous
        assert AutomationLevel.CONDITIONAL_AUTOMATION.is_autonomous
        assert AutomationLevel.FULL_AUTOMATION.is_autonomous

    def test_ordering(self):
        assert AutomationLevel.NO_AUTOMATION < AutomationLevel.FULL_AUTOMATION


class TestOnboardEquipment:
    def test_defaults(self):
        equipment = OnboardEquipment()
        assert equipment.compute_mips > 0
        assert equipment.has_radio(RadioKind.DSRC)

    def test_invalid_compute(self):
        with pytest.raises(ConfigurationError):
            OnboardEquipment(compute_mips=0)

    def test_for_level_scales_compute(self):
        low = OnboardEquipment.for_level(AutomationLevel.DRIVER_ASSISTANCE)
        high = OnboardEquipment.for_level(AutomationLevel.FULL_AUTOMATION)
        assert high.compute_mips > low.compute_mips

    def test_for_level_sensor_richness_monotone(self):
        previous = -1
        for level in AutomationLevel:
            sensors = len(OnboardEquipment.for_level(level).sensors)
            assert sensors >= previous
            previous = sensors

    def test_full_automation_has_lidar(self):
        equipment = OnboardEquipment.for_level(AutomationLevel.FULL_AUTOMATION)
        assert equipment.has_sensor(SensorKind.LIDAR)

    def test_cellular_flag(self):
        equipment = OnboardEquipment.for_level(AutomationLevel.HIGH_AUTOMATION, cellular=True)
        assert equipment.has_radio(RadioKind.CELLULAR)

    def test_frozen(self):
        equipment = OnboardEquipment()
        with pytest.raises(Exception):
            equipment.compute_mips = 1  # type: ignore[misc]


class TestVehicle:
    def test_unique_ids(self):
        assert next_vehicle_id() != next_vehicle_id()

    def test_advance_moves_along_heading(self):
        vehicle = Vehicle(position=Vec2(0, 0), speed_mps=10.0, heading_rad=0.0)
        vehicle.advance(2.0)
        assert vehicle.position.x == pytest.approx(20.0)
        assert vehicle.position.y == pytest.approx(0.0)

    def test_advance_north(self):
        vehicle = Vehicle(position=Vec2(0, 0), speed_mps=5.0, heading_rad=math.pi / 2)
        vehicle.advance(1.0)
        assert vehicle.position.y == pytest.approx(5.0)

    def test_advance_negative_dt_raises(self):
        with pytest.raises(ValueError):
            Vehicle().advance(-1.0)

    def test_parked_vehicle_does_not_move(self):
        vehicle = Vehicle(position=Vec2(1, 1), speed_mps=10.0)
        vehicle.park()
        vehicle.advance(5.0)
        assert vehicle.position == Vec2(1, 1)
        assert vehicle.speed_mps == 0.0

    def test_unpark_restores_motion(self):
        vehicle = Vehicle()
        vehicle.park()
        vehicle.unpark(speed_mps=8.0, heading_rad=0.5)
        assert not vehicle.parked
        assert vehicle.speed_mps == 8.0

    def test_velocity_vector(self):
        vehicle = Vehicle(speed_mps=10.0, heading_rad=0.0)
        assert vehicle.velocity.x == pytest.approx(10.0)

    def test_distance_and_relative_speed(self):
        a = Vehicle(position=Vec2(0, 0), speed_mps=10, heading_rad=0)
        b = Vehicle(position=Vec2(30, 40), speed_mps=10, heading_rad=math.pi)
        assert a.distance_to(b) == pytest.approx(50.0)
        assert a.relative_speed(b) == pytest.approx(20.0)

    def test_heading_alignment_same_direction(self):
        a = Vehicle(heading_rad=0.3)
        b = Vehicle(heading_rad=0.3)
        assert a.heading_alignment(b) == pytest.approx(1.0)

    def test_heading_alignment_opposite(self):
        a = Vehicle(heading_rad=0.0)
        b = Vehicle(heading_rad=math.pi)
        assert a.heading_alignment(b) == pytest.approx(0.0)

    def test_closest_approach_head_on(self):
        a = Vehicle(position=Vec2(0, 0), speed_mps=10, heading_rad=0.0)
        b = Vehicle(position=Vec2(100, 0), speed_mps=10, heading_rad=math.pi)
        # Closing speed 20 m/s over a 100 m gap -> closest at t = 5 s.
        t_star = a.time_to_closest_approach(b)
        assert t_star == pytest.approx(5.0)

    def test_closest_approach_parallel_is_none(self):
        a = Vehicle(position=Vec2(0, 0), speed_mps=10, heading_rad=0.0)
        b = Vehicle(position=Vec2(0, 50), speed_mps=10, heading_rad=0.0)
        assert a.time_to_closest_approach(b) is None

    def test_closest_approach_separating_clamped(self):
        a = Vehicle(position=Vec2(0, 0), speed_mps=10, heading_rad=math.pi)
        b = Vehicle(position=Vec2(100, 0), speed_mps=10, heading_rad=0.0)
        assert a.time_to_closest_approach(b) == 0.0

    @given(
        st.floats(min_value=0, max_value=50),
        st.floats(min_value=-math.pi, max_value=math.pi),
        st.floats(min_value=0, max_value=10),
    )
    def test_advance_distance_matches_speed(self, speed, heading, dt):
        vehicle = Vehicle(position=Vec2(0, 0), speed_mps=speed, heading_rad=heading)
        vehicle.advance(dt)
        assert vehicle.position.norm() == pytest.approx(speed * dt, abs=1e-6)
