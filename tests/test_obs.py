"""Tests for the observability layer: tracing, events, profiling, exporters.

The load-bearing guarantees under test:

* span lifecycle / causal links / fault windows behave as documented;
* trace contexts survive message copies (``forwarded_by``, handover);
* the channel and the v-cloud emit the right spans with the right
  outcomes, and a degraded storage read links back to the fault that
  caused it (the E12 post-mortem question);
* attaching the full observability stack leaves the seeded metrics of a
  run byte-identical — the determinism contract;
* exporters render well-formed Prometheus text, JSON reports and JSONL.
"""

from __future__ import annotations

import itertools
import json

import pytest

from repro.core import (
    QuorumConfig,
    ResourceOffer,
    Task,
    TaskState,
    VehicularCloud,
)
from repro.faults import FaultInjector, FaultPlan
from repro.geometry import Vec2
from repro.mobility import Highway, HighwayModel, StationaryModel
from repro.mobility import vehicle as vehicle_module
from repro.net import (
    BeaconService,
    FixedNode,
    VehicleNode,
    WirelessChannel,
    data_message,
    hello_message,
)
from repro.obs import (
    CHANNEL_FRAME_MODES,
    EventLog,
    Profiler,
    Tracer,
    dag_ledger,
    json_report,
    prometheus_text,
    sanitize_metric_name,
    serving_ledger,
    trace_context_of,
    write_json_report,
)
from repro.sim import ChannelConfig, MetricsRegistry, ScenarioConfig, World


def make_tracer(clock_value: float = 0.0, **kwargs) -> Tracer:
    holder = {"now": clock_value}
    tracer = Tracer(clock=lambda: holder["now"], **kwargs)
    tracer.set_time = lambda t: holder.__setitem__("now", t)  # type: ignore[attr-defined]
    return tracer


class TestTracerLifecycle:
    def test_root_span_starts_new_trace(self):
        tracer = make_tracer()
        span = tracer.start_span("task.lifecycle", subsystem="vcloud")
        assert span.trace_id == "t1" and span.span_id == "s1"
        assert span.parent_id is None and not span.ended
        assert span in tracer.roots()

    def test_child_inherits_trace_from_span_parent(self):
        tracer = make_tracer()
        root = tracer.start_span("root")
        child = tracer.start_span("child", parent=root)
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id
        assert tracer.trace(root.trace_id) == [root, child]

    def test_child_from_context_tuple(self):
        tracer = make_tracer()
        root = tracer.start_span("root")
        child = tracer.start_span("child", parent=root.context)
        assert child.trace_id == root.trace_id
        assert child.parent_id == root.span_id

    def test_end_span_is_first_close_wins(self):
        tracer = make_tracer()
        span = tracer.start_span("op")
        tracer.set_time(2.0)
        tracer.end_span(span, "ok", {"a": 1})
        tracer.set_time(5.0)
        tracer.end_span(span, "error", {"a": 2})
        assert span.end == 2.0 and span.status == "ok" and span.attrs == {"a": 1}
        assert span.duration_s == 2.0 and span.ended

    def test_events_are_timestamped(self):
        tracer = make_tracer()
        span = tracer.start_span("op")
        tracer.set_time(1.5)
        tracer.add_event(span, "lost", attempt=2)
        assert span.events[0].time == 1.5
        assert span.events[0].attrs == {"attempt": 2}

    def test_link_deduplicates(self):
        tracer = make_tracer()
        a = tracer.start_span("a")
        b = tracer.start_span("b")
        tracer.link(a, b, b.span_id)
        tracer.link(a, b)
        assert a.links == (b.span_id,)

    def test_max_spans_drops_explicitly(self):
        tracer = make_tracer(max_spans=2)
        kept = [tracer.start_span(f"k{i}") for i in range(2)]
        extra = tracer.start_span("extra")
        assert len(tracer) == 2
        assert tracer.dropped_spans == 1
        assert tracer.get(extra.span_id) is None
        assert all(tracer.get(s.span_id) is not None for s in kept)

    def test_fault_spans_retained_past_cap(self):
        tracer = make_tracer(max_spans=1)
        tracer.start_span("filler")
        fault = tracer.start_span("fault.crash", subsystem="faults")
        assert tracer.get(fault.span_id) is None
        tracer.activate_fault(fault)
        assert tracer.get(fault.span_id) is fault

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            make_tracer(max_spans=0)
        with pytest.raises(ValueError):
            make_tracer(channel_frames="sometimes")


class TestFaultWindows:
    def test_active_until_expiry(self):
        tracer = make_tracer()
        fault = tracer.start_span("fault.partition", subsystem="faults")
        tracer.activate_fault(fault, until=10.0)
        tracer.set_time(10.0)
        assert tracer.active_fault_spans() == [fault]
        tracer.set_time(10.5)
        assert tracer.active_fault_spans() == []

    def test_open_ended_until_deactivated(self):
        tracer = make_tracer()
        fault = tracer.start_span("fault.crash", subsystem="faults")
        tracer.activate_fault(fault, until=None)
        tracer.set_time(1e9)
        assert tracer.active_fault_spans() == [fault]
        tracer.deactivate_fault(fault)
        tracer.deactivate_fault(fault)  # idempotent
        assert tracer.active_fault_spans() == []

    def test_link_active_faults_returns_count(self):
        tracer = make_tracer()
        f1 = tracer.start_span("fault.crash", subsystem="faults")
        f2 = tracer.start_span("fault.loss_burst", subsystem="faults")
        tracer.activate_fault(f1)
        tracer.activate_fault(f2, until=5.0)
        victim = tracer.start_span("storage.read")
        assert tracer.link_active_faults(victim) == 2
        assert set(victim.links) == {f1.span_id, f2.span_id}
        tracer.set_time(6.0)
        other = tracer.start_span("storage.read")
        assert tracer.link_active_faults(other) == 1


class TestTracerQueries:
    def test_ancestry_and_explain(self):
        tracer = make_tracer()
        root = tracer.start_span("task.lifecycle")
        execute = tracer.start_span("task.execute", parent=root)
        fault = tracer.start_span("fault.crash", subsystem="faults")
        tracer.link(execute, fault)
        assert tracer.ancestry(execute) == [root]
        chain = tracer.explain(execute)
        assert chain == [execute, root, fault]

    def test_ancestry_tolerates_missing_parent(self):
        tracer = make_tracer(max_spans=1)
        root = tracer.start_span("root")
        dropped = tracer.start_span("dropped", parent=root)  # not retained
        grandchild = tracer.start_span("leaf", parent=dropped)
        assert tracer.ancestry(grandchild) == []

    def test_find_by_prefix_and_subsystem(self):
        tracer = make_tracer()
        tracer.start_span("storage.read", subsystem="vcloud")
        tracer.start_span("storage.write", subsystem="vcloud")
        tracer.start_span("msg.unicast", subsystem="net")
        assert len(tracer.find("storage.")) == 2
        assert len(tracer.find(subsystem="net")) == 1
        assert tracer.find("storage.read", subsystem="net") == []

    def test_render_trace_shows_tree_links_and_events(self):
        tracer = make_tracer()
        root = tracer.start_span("task.lifecycle", attrs={"task_id": "task-1"})
        child = tracer.start_span("task.execute", parent=root)
        tracer.add_event(child, "assignment_retry", attempt=1)
        fault = tracer.start_span("fault.crash", subsystem="faults")
        tracer.link(child, fault)
        tracer.set_time(4.0)
        tracer.end_span(child, "handover")
        rendered = tracer.render_trace(root.trace_id)
        assert f"trace {root.trace_id}" in rendered
        assert "task.lifecycle (open) task_id=task-1" in rendered
        assert "task.execute (handover)" in rendered
        assert f"~> {fault.span_id}" in rendered
        assert "@ 0.000 assignment_retry attempt=1" in rendered
        assert tracer.render_trace("t999").startswith("<empty trace")

    def test_trace_summaries(self):
        tracer = make_tracer()
        root = tracer.start_span("job")
        child = tracer.start_span("step", parent=root)
        tracer.link(child, tracer.start_span("fault.stall", subsystem="faults"))
        tracer.set_time(3.0)
        tracer.end_span(child, "degraded")
        summary = next(
            s for s in tracer.trace_summaries() if s["trace_id"] == root.trace_id
        )
        assert summary["root"] == "job" and summary["spans"] == 2
        assert summary["statuses"] == {"open": 1, "degraded": 1}
        assert summary["start"] == 0.0 and summary["end"] == 3.0
        assert summary["linked_faults"] == 1

    def test_export_jsonl(self, tmp_path):
        tracer = make_tracer()
        span = tracer.start_span("op", attrs={"k": "v"})
        tracer.end_span(span, "ok")
        path = tmp_path / "trace.jsonl"
        assert tracer.export_jsonl(str(path)) == 1
        (line,) = path.read_text().splitlines()
        record = json.loads(line)
        assert record["span_id"] == span.span_id
        assert record["status"] == "ok" and record["attrs"] == {"k": "v"}


class TestTraceContextThreading:
    def test_with_trace_and_trace_id(self):
        tracer = make_tracer()
        span = tracer.start_span("journey")
        message = data_message("a", "b", 100, 0.0).with_trace(span.context)
        assert message.trace_ctx == (span.trace_id, span.span_id)
        assert message.trace_id == span.trace_id

    def test_forwarded_copy_preserves_context(self):
        message = data_message("a", "b", 100, 0.0, ttl_hops=3).with_trace(("t1", "s1"))
        hopped = message.forwarded_by("relay-1").forwarded_by("relay-2")
        assert hopped.trace_ctx == ("t1", "s1")
        assert hopped.with_payload(extra=1).trace_ctx == ("t1", "s1")

    def test_untraced_message_defaults(self):
        message = data_message("a", "b", 100, 0.0)
        assert message.trace_ctx is None and message.trace_id is None

    def test_trace_context_of_normalizes(self):
        tracer = make_tracer()
        span = tracer.start_span("x")
        assert trace_context_of(None) is None
        assert trace_context_of(span) == span.context
        assert trace_context_of(("t9", "s9")) == ("t9", "s9")

    def test_wants_frame_modes(self):
        tagged = data_message("a", "b", 100, 0.0).with_trace(("t1", "s1"))
        plain = hello_message("a", (0, 0), 0.0, 0.0, 0.0)
        assert CHANNEL_FRAME_MODES == ("tagged", "all", "off")
        by_mode = {
            mode: make_tracer(channel_frames=mode) for mode in CHANNEL_FRAME_MODES
        }
        assert by_mode["tagged"].wants_frame(tagged)
        assert not by_mode["tagged"].wants_frame(plain)
        assert by_mode["all"].wants_frame(plain)
        assert not by_mode["off"].wants_frame(tagged)


class TestEventLog:
    def make_log(self, **kwargs) -> EventLog:
        return EventLog(clock=lambda: 1.0, **kwargs)

    def test_emit_and_query(self):
        log = self.make_log()
        log.emit("vcloud", "task_submitted", task_id="task-1")
        log.emit("vcloud", "task_failed", severity="error", task_id="task-2")
        log.emit("faults", "crash", severity="warning", target="veh-3")
        assert len(log) == 3
        assert [r.name for r in log.query(subsystem="vcloud")] == [
            "task_submitted",
            "task_failed",
        ]
        assert log.query(severity="error")[0].attrs == {"task_id": "task-2"}
        assert log.query(subsystem="vcloud", name="crash") == []
        assert log.count_by_severity() == {"info": 1, "error": 1, "warning": 1}

    def test_min_severity_suppresses(self):
        log = self.make_log(min_severity="warning")
        assert log.emit("net", "chatter", severity="debug") is None
        assert log.emit("net", "chatter") is None  # info
        assert log.emit("net", "trouble", severity="warning") is not None
        assert log.suppressed == 2 and len(log) == 1

    def test_ring_evicts_oldest(self):
        log = self.make_log(max_events=2)
        for index in range(4):
            log.emit("s", f"e{index}")
        assert [r.name for r in log.records()] == ["e2", "e3"]
        assert log.evicted == 2

    def test_invalid_arguments_rejected(self):
        with pytest.raises(ValueError):
            self.make_log(max_events=0)
        with pytest.raises(ValueError):
            self.make_log(min_severity="loud")
        log = self.make_log()
        with pytest.raises(ValueError):
            log.emit("s", "e", severity="loud")

    def test_export_jsonl(self, tmp_path):
        log = self.make_log()
        log.emit("vcloud", "task_submitted", trace_id="t1", task_id="task-1")
        path = tmp_path / "events.jsonl"
        assert log.export_jsonl(str(path)) == 1
        record = json.loads(path.read_text())
        assert record == {
            "time": 1.0,
            "subsystem": "vcloud",
            "name": "task_submitted",
            "severity": "info",
            "attrs": {"task_id": "task-1"},
            "trace_id": "t1",
        }


class TestProfiler:
    def test_record_aggregates(self):
        profiler = Profiler()
        profiler.record("beacon", 0.002)
        profiler.record("beacon", 0.004)
        profiler.record("frame-delivery", 0.001)
        beacon = profiler.profile("beacon")
        assert beacon.count == 2
        assert beacon.total_s == pytest.approx(0.006)
        assert beacon.mean_s == pytest.approx(0.003)
        assert beacon.max_s == pytest.approx(0.004)
        assert profiler.total_events == 3
        assert profiler.total_wall_s == pytest.approx(0.007)
        assert [p.label for p in profiler.profiles()] == ["beacon", "frame-delivery"]

    def test_measure_context_manager(self):
        profiler = Profiler()
        with profiler.measure("block"):
            pass
        assert profiler.profile("block").count == 1
        assert profiler.profile("block").total_s >= 0.0

    def test_unknown_label_is_zeroed(self):
        assert Profiler().profile("nothing").mean_s == 0.0

    def test_render_is_a_table(self):
        profiler = Profiler()
        profiler.record("beacon", 0.001)
        rendered = profiler.render()
        assert "label" in rendered and "-+-" in rendered and "beacon" in rendered


class TestWorldAndEngineIntegration:
    def test_enable_observability_wires_engine(self):
        world = World(ScenarioConfig(seed=5))
        obs = world.enable_observability(profile=True)
        assert world.tracer is obs.tracer is world.engine.tracer
        assert world.profiler is obs.profiler is world.engine.profiler
        assert world.events is obs.events is not None

    def test_observability_defaults_off(self):
        world = World(ScenarioConfig(seed=5))
        assert world.tracer is None and world.events is None
        assert world.profiler is None

    def test_profiler_records_event_labels(self):
        world = World(ScenarioConfig(seed=5))
        obs = world.enable_observability(profile=True)
        world.engine.schedule(1.0, lambda: None, label="tick")
        world.engine.schedule(2.0, lambda: None)
        world.run_for(5.0)
        assert obs.profiler is not None
        assert obs.profiler.profile("tick").count == 1
        assert obs.profiler.profile("<unlabelled>").count == 1

    def test_recorded_failure_becomes_span_and_event(self):
        world = World(ScenarioConfig(seed=5, error_policy="record"))
        obs = world.enable_observability()

        def boom() -> None:
            raise RuntimeError("kaput")

        world.engine.schedule(1.0, boom, label="fragile")
        world.run_for(2.0)
        assert len(world.engine.failures) == 1
        (span,) = obs.tracer.find("engine.failure")
        assert span.status == "error"
        assert span.attrs["label"] == "fragile"
        (event,) = obs.events.query(subsystem="engine")
        assert event.severity == "error"
        assert event.attrs["error"] == "RuntimeError: kaput"


def lossless_world(seed: int = 7) -> World:
    config = ChannelConfig(base_loss_probability=0.0, loss_per_100m=0.0)
    return World(ScenarioConfig(seed=seed, channel=config))


class TestChannelSpans:
    def fixed_pair(self, world, distance_m: float = 50.0):
        channel = WirelessChannel(world)
        a = FixedNode(world, channel, "a", Vec2(0, 0), 300.0)
        b = FixedNode(world, channel, "b", Vec2(distance_m, 0), 300.0)
        return channel, a, b

    def test_unicast_delivered_span(self):
        world = lossless_world()
        obs = world.enable_observability()
        channel, _a, _b = self.fixed_pair(world)
        root = obs.tracer.start_span("journey")
        message = data_message("a", "b", 100, world.now).with_trace(root.context)
        assert channel.unicast("a", "b", message)
        world.run_for(1.0)
        (span,) = obs.tracer.find("msg.unicast")
        assert span.status == "delivered"
        assert span.trace_id == root.trace_id and span.parent_id == root.span_id
        assert span.attrs["src"] == "a" and span.attrs["dst"] == "b"
        assert span.attrs["latency_s"] > 0.0

    def test_unicast_unreachable_span(self):
        world = lossless_world()
        obs = world.enable_observability()
        channel, _a, _b = self.fixed_pair(world, distance_m=10_000.0)
        message = data_message("a", "b", 100, world.now).with_trace(("t1", "s1"))
        assert not channel.unicast("a", "b", message)
        (span,) = obs.tracer.find("msg.unicast")
        assert span.status == "dropped" and span.attrs["reason"] == "unreachable"

    def test_unicast_lost_span(self):
        world = lossless_world()
        obs = world.enable_observability()
        channel, _a, _b = self.fixed_pair(world)
        # Force the loss branch deterministically: every transmission of
        # this frame fails the link-loss draw.
        channel._loss_probability = lambda distance_m: 1.0
        message = data_message("a", "b", 100, world.now).with_trace(("t1", "s1"))
        channel.unicast("a", "b", message)
        world.run_for(1.0)
        (span,) = obs.tracer.find("msg.unicast")
        assert span.status == "dropped" and span.attrs["reason"] == "loss"
        assert [e.name for e in span.events] == ["lost"]

    def test_broadcast_parent_and_delivery_children(self):
        world = lossless_world()
        obs = world.enable_observability()
        channel, _a, _b = self.fixed_pair(world)
        FixedNode(world, channel, "c", Vec2(0, 50.0), 300.0)
        message = data_message("a", "*", 100, world.now).with_trace(("t1", "s1"))
        assert channel.broadcast("a", message) == 2
        world.run_for(1.0)
        (parent,) = obs.tracer.find("msg.broadcast")
        children = obs.tracer.find("msg.delivery")
        assert parent.status == "ok" and parent.attrs["receivers"] == 2
        assert len(children) == 2
        assert {c.parent_id for c in children} == {parent.span_id}
        assert all(c.status == "delivered" for c in children)

    def test_tagged_mode_skips_plain_frames(self):
        world = lossless_world()
        obs = world.enable_observability()  # channel_frames="tagged"
        channel, _a, _b = self.fixed_pair(world)
        channel.unicast("a", "b", data_message("a", "b", 100, world.now))
        world.run_for(1.0)
        assert obs.tracer.find("msg.") == []
        assert world.metrics.counter("channel/frames_delivered") == 1

    def test_all_mode_traces_everything(self):
        world = lossless_world()
        obs = world.enable_observability(channel_frames="all")
        channel, _a, _b = self.fixed_pair(world)
        channel.unicast("a", "b", data_message("a", "b", 100, world.now))
        world.run_for(1.0)
        (span,) = obs.tracer.find("msg.unicast")
        assert span.status == "delivered"
        assert span.parent_id is None  # untraced message roots its own trace


def make_storage_cloud(world, members: int = 5):
    model = StationaryModel(
        world, positions=[Vec2(index * 30.0, 0) for index in range(members)]
    )
    vehicles = model.populate(members)
    cloud = VehicularCloud(world, "obs-vc")
    for vehicle in vehicles:
        cloud.admit(vehicle, offer=ResourceOffer(vehicle.vehicle_id, 1000.0, 10**9, 1e6))
    return vehicles, cloud


class TestVCloudTaskSpans:
    def test_completed_task_trace(self):
        world = World(ScenarioConfig(seed=11))
        obs = world.enable_observability()
        _vehicles, cloud = make_storage_cloud(world, members=3)
        record = cloud.submit(Task(work_mi=500.0, deadline_s=30.0))
        root = cloud.task_span(record.task.task_id)
        assert root is not None and root.name == "task.lifecycle"
        world.run_for(30.0)
        assert record.state is TaskState.COMPLETED
        assert root.status == "ok" and root.attrs["met_deadline"] is True
        assert root.attrs["latency_s"] == pytest.approx(record.completion_latency_s)
        (execute,) = [
            s for s in obs.tracer.trace(root.trace_id) if s.name == "task.execute"
        ]
        assert execute.parent_id == root.span_id and execute.status == "ok"
        assert cloud.task_span(record.task.task_id) is None  # popped on completion
        names = [e.name for e in obs.events.query(subsystem="vcloud")]
        assert names == ["task_submitted", "task_completed"]

    def test_crash_handover_links_fault(self):
        world = World(ScenarioConfig(seed=21, error_policy="record"))
        obs = world.enable_observability()
        _vehicles, cloud = make_storage_cloud(world, members=4)
        cloud.enable_worker_leases(lease_duration_s=3.0, sweep_interval_s=1.0)
        record = cloud.submit(Task(work_mi=10_000.0))
        trace_id = cloud.task_span(record.task.task_id).trace_id
        # The record's worker_id moves on after requeue; the crash hit
        # the original assignee.
        crashed_worker = record.worker_id
        plan = FaultPlan(seed=9).crash(5.0, target=crashed_worker)
        FaultInjector(world, plan, cloud=cloud).arm()
        world.run_for(60.0)
        assert record.state is TaskState.COMPLETED
        interrupted = next(
            s for s in obs.tracer.trace(trace_id) if s.name == "task.execute" and s.links
        )
        assert interrupted.status == "handover"
        causes = [
            s for s in obs.tracer.explain(interrupted) if s.subsystem == "faults"
        ]
        assert causes and causes[0].name == "fault.crash"
        assert causes[0].status == "injected"
        assert causes[0].attrs["target"] == crashed_worker


class TestStorageSpans:
    def test_put_and_read_spans(self):
        world = World(ScenarioConfig(seed=3))
        obs = world.enable_observability()
        _vehicles, cloud = make_storage_cloud(world)
        cloud.enable_replicated_storage(quorum=QuorumConfig.majority(3))
        cloud.store_put("f1", 1000, target_replicas=3)
        cloud.store_write("f1", writer="head")
        assert cloud.store_read("f1") is not None
        (put,) = obs.tracer.find("storage.put")
        (write,) = obs.tracer.find("storage.write")
        (read,) = obs.tracer.find("storage.read")
        assert put.status == "ok" and put.attrs["replicas"] == 3
        assert write.status == "ok" and write.attrs["version"] >= 1
        assert read.status == "ok"
        assert read.attrs["version"] == write.attrs["version"]
        assert read.attrs["contacted"] >= 2

    def test_degraded_read_links_to_causing_fault(self):
        """Acceptance criterion: walk a degraded read back to its fault."""
        world = World(ScenarioConfig(seed=3, error_policy="record"))
        obs = world.enable_observability()
        _vehicles, cloud = make_storage_cloud(world)
        cloud.enable_replicated_storage(quorum=QuorumConfig.majority(3))
        cloud.store_put("f1", 1000, target_replicas=3)
        holders = cloud.storage.holders_of("f1")
        plan = FaultPlan(seed=5)
        plan.crash(1.0, target=holders[0])
        plan.crash(2.0, target=holders[1])
        FaultInjector(world, plan, cloud=cloud).arm()
        world.run_for(3.0)
        assert cloud.store_read("f1") is None
        read = next(s for s in obs.tracer.find("storage.read"))
        assert read.status == "degraded"
        assert read.attrs["reason"] == "quorum_unreachable"
        causes = [s for s in obs.tracer.explain(read) if s.subsystem == "faults"]
        assert len(causes) == 2
        assert all(c.name == "fault.crash" for c in causes)
        assert {c.attrs["target"] for c in causes} == set(holders[:2])
        (event,) = obs.events.query(subsystem="vcloud", name="storage_degraded")
        assert event.severity == "error" and event.attrs["file_id"] == "f1"


def seeded_scenario_snapshot(observability: bool):
    """Run one seeded beaconing + v-cloud + faults scene; return the snapshot."""
    # Vehicle ids seed per-node RNG forks, so rewind the process-global
    # counter to make back-to-back runs comparable (the E13 pattern).
    vehicle_module._vehicle_counter = itertools.count(1)
    world = World(ScenarioConfig(seed=4242, vehicle_count=15, error_policy="record"))
    if observability:
        world.enable_observability(profile=True, channel_frames="all")
    model = HighwayModel(world, Highway(length_m=2000))
    model.populate(15)
    model.start()
    channel = WirelessChannel(world)
    nodes = [VehicleNode(world, channel, vehicle) for vehicle in model.vehicles]
    for node in nodes:
        BeaconService(world, node).start()
    cloud = VehicularCloud(world, "det-vc")
    for vehicle in model.vehicles[:6]:
        cloud.admit(vehicle, offer=ResourceOffer(vehicle.vehicle_id, 500.0, 10**9, 1e6))
    for index in range(5):
        world.engine.schedule_at(
            index * 3.0,
            lambda: cloud.submit(Task(work_mi=1000.0, deadline_s=30.0)),
            label="submit",
        )
    plan = FaultPlan(seed=77).crash(8.0).loss_burst(
        at=12.0, duration_s=4.0, drop_probability=0.5
    )
    FaultInjector(world, plan, cloud=cloud, channel=channel).arm()
    world.run_for(30.0)
    return world.metrics.snapshot()


class TestDeterminismContract:
    def test_observability_does_not_perturb_seeded_metrics(self):
        baseline = seeded_scenario_snapshot(observability=False)
        observed = seeded_scenario_snapshot(observability=True)
        assert observed == baseline
        # The comparison must not be vacuous: the scene really ran.
        assert baseline["counter/channel/frames_sent"] > 0
        assert baseline["counter/faults/injected"] >= 1


class TestExporters:
    def test_sanitize_metric_name(self):
        assert sanitize_metric_name("channel/frames_sent") == "channel_frames_sent"
        assert sanitize_metric_name("lat", "repro") == "repro_lat"
        assert sanitize_metric_name("9lives")[0] == "_"

    def test_prometheus_text_sections(self):
        metrics = MetricsRegistry()
        metrics.increment("channel/frames_sent", 3)
        metrics.set_gauge("members", 5.0)
        for value in (1.0, 2.0, 3.0):
            metrics.observe("latency_s", value)
        metrics.observe_at("queue", 2.5, 7.0)
        text = prometheus_text(metrics, namespace="repro")
        assert "# TYPE repro_channel_frames_sent counter" in text
        assert "repro_channel_frames_sent 3" in text
        assert "# TYPE repro_members gauge" in text
        assert 'repro_latency_s{quantile="0.5"} 2.0' in text
        assert "repro_latency_s_sum 6.0" in text
        assert "repro_latency_s_count 3" in text
        # Timelines surface as a last-value gauge with a ms timestamp.
        assert "repro_queue_last 7 2500" in text
        assert text.endswith("\n")

    def test_json_report_sections(self):
        metrics = MetricsRegistry(max_samples_per_series=1)
        metrics.increment("a", 2)
        metrics.observe("s", 1.0)
        metrics.observe("s", 2.0)
        tracer = make_tracer()
        tracer.end_span(tracer.start_span("op"))
        events = EventLog(clock=lambda: 0.0)
        events.emit("vcloud", "task_submitted")
        profiler = Profiler()
        profiler.record("tick", 0.001)
        report = json_report(
            metrics=metrics,
            tracer=tracer,
            events=events,
            profiler=profiler,
            meta={"seed": 7},
        )
        assert report["meta"] == {"seed": 7}
        assert report["metrics"]["counters"] == {"a": 2.0}
        assert report["metrics"]["truncations"] == {"s": 1}
        assert report["traces"]["spans"] == 1
        assert report["traces"]["summaries"][0]["root"] == "op"
        assert report["events"]["records"] == 1
        assert report["profile"]["total_events"] == 1

    def test_json_report_omits_absent_parts(self):
        report = json_report()
        assert set(report) == {"meta"}

    def test_write_json_report_roundtrips(self, tmp_path):
        metrics = MetricsRegistry()
        metrics.increment("a")
        path = tmp_path / "report.json"
        written = write_json_report(str(path), metrics=metrics, meta={"run": "x"})
        assert json.loads(path.read_text()) == written

    def test_traced_run_exports_well_formed_jsonl(self, tmp_path):
        """The CI smoke contract: every exported line is a full span record."""
        world = World(ScenarioConfig(seed=11))
        obs = world.enable_observability()
        _vehicles, cloud = make_storage_cloud(world, members=3)
        cloud.submit(Task(work_mi=500.0, deadline_s=30.0))
        world.run_for(30.0)
        path = tmp_path / "trace.jsonl"
        exported = obs.tracer.export_jsonl(str(path))
        lines = path.read_text().splitlines()
        assert exported == len(lines) > 0
        required = {
            "span_id",
            "trace_id",
            "parent_id",
            "name",
            "subsystem",
            "start",
            "end",
            "status",
            "attrs",
            "events",
            "links",
        }
        for line in lines:
            record = json.loads(line)
            assert required <= set(record)


class TestExporterEdgeCases:
    def test_empty_registry_prometheus_text(self):
        text = prometheus_text(MetricsRegistry())
        assert text == "\n"

    def test_empty_registry_json_report(self):
        report = json_report(metrics=MetricsRegistry())
        assert report["metrics"] == {
            "counters": {},
            "gauges": {},
            "series": {},
            "timelines": {},
            "truncations": {},
        }

    def test_sanitization_collisions_keep_both_rows(self):
        # "a/b" and "a_b" flatten to the same Prometheus name; both rows
        # must still be rendered (the registry, not the exporter, owns
        # name uniqueness).
        metrics = MetricsRegistry()
        metrics.increment("a/b", 1)
        metrics.increment("a_b", 2)
        text = prometheus_text(metrics, namespace="repro")
        assert text.count("# TYPE repro_a_b counter") == 2
        assert "repro_a_b 1" in text
        assert "repro_a_b 2" in text

    def test_truncated_series_dropped_spans_and_suppressed(self):
        metrics = MetricsRegistry(max_samples_per_series=2)
        for value in (1.0, 2.0, 3.0, 4.0):
            metrics.observe("lat", value)
        tracer = make_tracer(max_spans=1)
        tracer.end_span(tracer.start_span("kept"))
        tracer.end_span(tracer.start_span("dropped"))
        events = EventLog(clock=lambda: 0.0, min_severity="warning")
        events.emit("vcloud", "quiet", severity="debug")
        events.emit("vcloud", "loud", severity="error")
        report = json_report(metrics=metrics, tracer=tracer, events=events)
        assert report["metrics"]["truncations"] == {"lat": 2}
        # The summary covers the retained window; truncations carry the rest.
        assert report["metrics"]["series"]["lat"]["count"] == 2
        assert report["traces"]["spans"] == 1
        assert report["traces"]["dropped_spans"] == 1
        assert report["events"]["records"] == 1
        assert report["events"]["suppressed"] == 1


class TestLedgers:
    def _serving_world(self):
        from repro.serve import ServiceGateway

        world = World(ScenarioConfig(seed=23))
        _vehicles, cloud = make_storage_cloud(world, members=3)
        gateway = ServiceGateway(world, cloud, name="ledger", queue_capacity=8)
        return world, gateway

    def test_serving_ledger_shape_and_conservation(self):
        from repro.serve import ServiceRequest

        world, gateway = self._serving_world()
        for _index in range(4):
            gateway.submit(ServiceRequest(task=Task(work_mi=100.0, deadline_s=10.0)))
        world.run_for(20.0)
        ledger = serving_ledger(gateway)
        assert ledger["name"] == "ledger"
        accounting = ledger["accounting"]
        assert accounting["offered"] == accounting["admitted"] + accounting["rejected"]
        assert accounting["admitted"] == (
            accounting["completed"]
            + accounting["failed"]
            + accounting["shed"]
            + accounting["queued"]
            + accounting["inflight"]
        )
        assert ledger["slo"]["hits"] + ledger["slo"]["misses"] == accounting["completed"]
        assert ledger["latency_s"]["count"] == accounting["completed"]

    def test_dag_ledger_shape_and_conservation(self):
        from repro.dag import DagScheduler, pipeline_template

        world = World(ScenarioConfig(seed=29))
        _vehicles, cloud = make_storage_cloud(world, members=3)
        scheduler = DagScheduler(world, cloud, name="ledger-dag")
        template = pipeline_template([(100.0, 200.0)] * 2, deadline_s=30.0)
        scheduler.submit(template.instantiate(world.rng.fork("dag")))
        world.run_for(30.0)
        ledger = dag_ledger(scheduler)
        assert ledger["name"] == "ledger-dag"
        accounting = ledger["accounting"]
        assert accounting["graphs_submitted"] == 1
        assert accounting["replicas_live"] == 0
        assert ledger["deadline_hits"] + ledger["deadline_misses"] == (
            accounting["graphs_completed"] + accounting["graphs_failed"]
        )
        assert sum(ledger["failure_reasons"].values()) == accounting["graphs_failed"]

    def test_json_report_embeds_ledger_lists(self):
        world, gateway = self._serving_world()
        world.run_for(1.0)
        report = json_report(serving=gateway, dag=())
        assert [entry["name"] for entry in report["serving"]] == ["ledger"]
        assert "dag" not in report
