"""Tests for batch verification, SCRA-style signing, and incentives."""

from __future__ import annotations

import pytest

from repro.errors import CryptoError, ResourceError
from repro.geometry import Vec2
from repro.mobility import StationaryModel
from repro.core import ResourceOffer, Task, TaskState, VehicularCloud
from repro.core.incentives import CreditLedger, IncentivizedSubmission
from repro.security.batch import BatchItem, BatchVerifier, PrecomputedSigner
from repro.security.crypto import KeyPair, Signature, SignatureScheme


def make_batch(count: int, tamper_indices=()):
    scheme = SignatureScheme()
    items = []
    for index in range(count):
        keypair = KeyPair.generate(f"s{index}")
        data = f"message-{index}".encode()
        signature = scheme.sign(keypair, data).value
        if index in tamper_indices:
            signature = Signature(
                signer_public_id=keypair.public_id, binding="f" * 64
            )
        items.append(BatchItem(keypair.public_id, data, signature))
    return scheme, items


class TestBatchVerifier:
    def test_clean_batch_verifies(self):
        scheme, items = make_batch(10)
        verifier = BatchVerifier(scheme)
        result = verifier.verify_batch(items)
        assert result.value

    def test_poisoned_batch_fails(self):
        scheme, items = make_batch(10, tamper_indices={3})
        verifier = BatchVerifier(scheme)
        assert not verifier.verify_batch(items).value

    def test_batch_cheaper_than_sequential(self):
        scheme, items = make_batch(30)
        verifier = BatchVerifier(scheme)
        batch_cost = verifier.verify_batch(items).cost_s
        assert batch_cost < verifier.sequential_cost(30) / 2

    def test_isolation_finds_all_bad_indices(self):
        scheme, items = make_batch(16, tamper_indices={2, 9, 15})
        verifier = BatchVerifier(scheme)
        bad, _cost = verifier.verify_and_isolate(items)
        assert bad == [2, 9, 15]

    def test_isolation_clean_batch_single_check(self):
        scheme, items = make_batch(8)
        verifier = BatchVerifier(scheme)
        bad, cost = verifier.verify_and_isolate(items)
        assert bad == []
        assert cost == pytest.approx(verifier.verify_batch(items).cost_s)

    def test_isolation_costs_more_when_poisoned(self):
        scheme, clean = make_batch(16)
        scheme2, dirty = make_batch(16, tamper_indices={5})
        _, clean_cost = BatchVerifier(scheme).verify_and_isolate(clean)
        _, dirty_cost = BatchVerifier(scheme2).verify_and_isolate(dirty)
        assert dirty_cost > clean_cost

    def test_empty_batch_rejected(self):
        verifier = BatchVerifier()
        with pytest.raises(CryptoError):
            verifier.verify_batch([])

    def test_invalid_fraction(self):
        with pytest.raises(CryptoError):
            BatchVerifier(per_item_fraction=0.0)


class TestPrecomputedSigner:
    def test_online_signing_is_cheap_and_valid(self):
        keypair = KeyPair.generate("scra")
        scheme = SignatureScheme()
        signer = PrecomputedSigner(keypair, scheme)
        signer.precompute(5)
        op = signer.sign(b"urgent safety beacon")
        assert op.cost_s < scheme.costs.ecdsa_sign_s / 10
        assert scheme.verify(keypair.public_id, b"urgent safety beacon", op.value).value

    def test_precompute_pays_full_cost(self):
        signer = PrecomputedSigner(KeyPair.generate())
        op = signer.precompute(20)
        assert op.value == 20
        assert op.cost_s == pytest.approx(20 * signer.costs.ecdsa_sign_s)
        assert signer.tokens_remaining == 20

    def test_pool_exhaustion_raises(self):
        signer = PrecomputedSigner(KeyPair.generate())
        signer.precompute(1)
        signer.sign(b"a")
        with pytest.raises(CryptoError):
            signer.sign(b"b")

    def test_total_work_conserved(self):
        """SCRA moves cost, it doesn't destroy it: precompute+online ~ sign."""
        signer = PrecomputedSigner(KeyPair.generate())
        signer.precompute(10)
        online_total = sum(signer.sign(f"m{i}".encode()).cost_s for i in range(10))
        per_message = (signer.precompute_cost_s + online_total) / 10
        assert per_message >= signer.costs.ecdsa_sign_s  # no free lunch

    def test_invalid_precompute_count(self):
        with pytest.raises(CryptoError):
            PrecomputedSigner(KeyPair.generate()).precompute(0)


class TestCreditLedger:
    def test_signup_grant(self):
        ledger = CreditLedger(initial_grant=10.0)
        assert ledger.open_wallet("w1") == 10.0
        assert ledger.open_wallet("w1") == 10.0  # idempotent
        assert ledger.balance("w1") == 10.0

    def test_submission_charges(self):
        ledger = CreditLedger(initial_grant=10.0, credit_per_mi=0.01)
        ledger.open_wallet("w1")
        price = ledger.charge_submission("w1", work_mi=500, now=1.0)
        assert price == pytest.approx(5.0)
        assert ledger.balance("w1") == pytest.approx(5.0)

    def test_free_rider_blocked(self):
        ledger = CreditLedger(initial_grant=1.0, credit_per_mi=0.01)
        ledger.open_wallet("broke")
        with pytest.raises(ResourceError):
            ledger.charge_submission("broke", work_mi=1000, now=1.0)
        assert "broke" not in ledger.free_riders()  # can still afford 1 MI
        ledger.fine("broke", 1.0, now=2.0)
        assert "broke" in ledger.free_riders()

    def test_work_rewarded(self):
        ledger = CreditLedger(initial_grant=0.0, credit_per_mi=0.01)
        ledger.reward_work("worker", work_mi=2000, now=3.0)
        assert ledger.balance("worker") == pytest.approx(20.0)
        assert ledger.top_earners() == [("worker", pytest.approx(20.0))]

    def test_credits_conserved_between_peers(self):
        """What submitters spend equals what workers earn (same rate)."""
        ledger = CreditLedger(initial_grant=10.0, credit_per_mi=0.01)
        ledger.open_wallet("submitter")
        ledger.open_wallet("worker")
        before = ledger.total_supply()
        ledger.charge_submission("submitter", 500, now=1.0)
        ledger.reward_work("worker", 500, now=2.0)
        assert ledger.total_supply() == pytest.approx(before)

    def test_ledger_entries_recorded(self):
        ledger = CreditLedger()
        ledger.open_wallet("w")
        ledger.charge_submission("w", 100, now=1.0)
        reasons = [entry.reason for entry in ledger.entries]
        assert reasons == ["signup-grant", "task-submission"]

    def test_invalid_config(self):
        with pytest.raises(ResourceError):
            CreditLedger(credit_per_mi=0.0)


class TestIncentivizedSubmission:
    def _cloud(self, world):
        model = StationaryModel(world, positions=[Vec2(i * 50.0, 0) for i in range(3)])
        vehicles = model.populate(3)
        cloud = VehicularCloud(world, "pay-vc")
        for vehicle in vehicles:
            cloud.admit(vehicle, offer=ResourceOffer(vehicle.vehicle_id, 1000, 10**9, 1e6))
        return cloud

    def test_completed_task_pays_worker(self, world):
        cloud = self._cloud(world)
        ledger = CreditLedger(initial_grant=10.0, credit_per_mi=0.001)
        ledger.open_wallet("submitter")
        gateway = IncentivizedSubmission(ledger, cloud)
        record = gateway.submit("submitter", Task(work_mi=1000, deadline_s=30))
        assert record is not None
        world.run_for(40.0)
        assert record.state is TaskState.COMPLETED
        worker_wallet = record.workers_history[-1]
        assert ledger.balance(worker_wallet) > 0
        assert gateway.rewards_paid == 1

    def test_broke_submitter_blocked(self, world):
        cloud = self._cloud(world)
        ledger = CreditLedger(initial_grant=0.0, credit_per_mi=1.0)
        ledger.open_wallet("broke")
        gateway = IncentivizedSubmission(ledger, cloud)
        record = gateway.submit("broke", Task(work_mi=1000))
        assert record is None
        assert gateway.submissions_blocked == 1
        assert cloud.stats.submitted == 0

    def test_earned_credits_enable_future_submissions(self, world):
        """The participation cycle: work -> earn -> spend."""
        cloud = self._cloud(world)
        ledger = CreditLedger(initial_grant=0.0, credit_per_mi=0.001)
        gateway = IncentivizedSubmission(ledger, cloud)
        # Bootstrap: someone else funds the first task.
        ledger.open_wallet("sponsor")
        ledger.reward_work("sponsor", 5000, now=0.0)
        record = gateway.submit("sponsor", Task(work_mi=2000, deadline_s=30))
        world.run_for(40.0)
        worker_wallet = record.workers_history[-1]
        # The worker can now submit on its own earnings.
        assert ledger.can_submit(worker_wallet, work_mi=1000)
        follow_up = gateway.submit(worker_wallet, Task(work_mi=1000, deadline_s=30))
        assert follow_up is not None


class TestTrustIncentiveIntegration:
    def test_liars_caught_by_validator_get_fined(self, world):
        """Close the loop the paper implies: trust verdicts feed the
        incentive layer, so lying eventually prices itself out."""
        from repro.geometry import Vec2
        from repro.trust import (
            EventKind,
            GroundTruthEvent,
            MessageClassifier,
            ReputationStore,
            TrustPipeline,
            WeightedVoting,
            honest_report,
        )
        from repro.attacks import CollusionRing

        ledger = CreditLedger(initial_grant=5.0, credit_per_mi=0.01)
        pipeline = TrustPipeline(
            classifier=MessageClassifier(),
            validator=WeightedVoting(),
            reputation=ReputationStore(),
        )
        ring = CollusionRing(["liar-1", "liar-2"])
        for identity in ("liar-1", "liar-2", "honest-1", "honest-2", "honest-3"):
            ledger.open_wallet(identity)

        event = GroundTruthEvent(
            "evt", EventKind.ICY_ROAD, Vec2(0, 0), 0.0, exists=True
        )
        reports = [honest_report(f"honest-{i}", event, 1.0) for i in (1, 2, 3)]
        reports += ring.smear(event, 1.0)  # liars deny the real event
        decision = pipeline.process(reports)[0]
        assert decision.decision.believe  # honest majority prevails

        # Ground truth confirms; every reporter whose claim contradicted
        # it gets fined (the trust->incentive hook).
        for report in decision.cluster.reports:
            if report.claim != True:
                ledger.fine(report.reporter, 2.0, now=5.0, reason="false-report")
        assert ledger.balance("liar-1") == pytest.approx(3.0)
        assert ledger.balance("honest-1") == pytest.approx(5.0)

        # Repeat offenses push liars below the submission floor.
        for _round in range(3):
            ledger.fine("liar-1", 2.0, now=6.0, reason="false-report")
        assert "liar-1" in ledger.free_riders()
