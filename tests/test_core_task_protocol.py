"""Tests for the message-driven task offload protocol."""

from __future__ import annotations

import pytest

from repro.core import GeometryCoordination, Task
from repro.core.task_protocol import NetworkedTaskExchange
from repro.errors import TaskError
from repro.geometry import Vec2
from repro.mobility import Vehicle
from repro.net import VehicleNode, WirelessChannel
from repro.sim import ChannelConfig, ScenarioConfig, World


def build(loss: float = 0.0, distance: float = 100.0, worker_mips: float = 1000.0):
    world = World(
        ScenarioConfig(
            seed=55, channel=ChannelConfig(base_loss_probability=loss, loss_per_100m=0.0)
        )
    )
    channel = WirelessChannel(world)
    head = VehicleNode(world, channel, Vehicle(position=Vec2(0, 0)))
    worker = VehicleNode(world, channel, Vehicle(position=Vec2(distance, 0)))
    exchange = NetworkedTaskExchange(world, head)
    exchange.register_worker(worker, mips=worker_mips)
    return world, channel, head, worker, exchange


class TestOffloadExchange:
    def test_round_trip_completes(self):
        world, _c, _h, worker, exchange = build()
        record = exchange.offload(worker.node_id, Task(work_mi=1000, input_bytes=20_000))
        world.run_for(10.0)
        assert record.done
        assert record.latency_s is not None
        # Latency covers transfer + 1 s compute + return.
        assert record.latency_s > 1.0
        assert record.assign_transmissions == 1

    def test_unregistered_worker_rejected(self):
        _w, _c, _h, _worker, exchange = build()
        with pytest.raises(TaskError):
            exchange.offload("ghost", Task(work_mi=10))

    def test_lossy_channel_retries(self):
        world, _c, _h, worker, exchange = build(loss=0.3)
        records = [
            exchange.offload(worker.node_id, Task(work_mi=100, input_bytes=5_000))
            for _ in range(10)
        ]
        world.run_for(60.0)
        completed = [r for r in records if r.done]
        assert len(completed) >= 8  # retries recover most losses
        assert sum(r.assign_transmissions for r in records) > 10  # some retried

    def test_retry_budget_bounds_failure(self):
        world, channel, _h, worker, exchange = build()
        # Worker drives out of range before the offload: all sends fail.
        worker.vehicle.position = Vec2(50_000, 0)
        record = exchange.offload(worker.node_id, Task(work_mi=100))
        world.run_for(60.0)
        assert record.failed
        assert not record.done
        assert record.assign_transmissions == exchange.max_retries + 1

    def test_duplicate_assignments_execute_once(self):
        """Retransmits must not double-execute or double-complete."""
        world, _c, _h, worker, exchange = build(loss=0.3, worker_mips=100.0)
        record = exchange.offload(worker.node_id, Task(work_mi=500))  # 5 s compute
        world.run_for(60.0)
        if record.done:
            # However many retries happened, one completion, one result time.
            assert record.latency_s >= 5.0

    def test_measured_latency_matches_geometry_adapter(self):
        """The analytic GeometryCoordination estimate must track the real
        message exchange within a small factor (validation of E2's
        analytic pricing)."""
        world, channel, head, worker, exchange = build(distance=200.0)
        task = Task(work_mi=1000, input_bytes=50_000, output_bytes=10_000)
        record = exchange.offload(worker.node_id, task)
        world.run_for(20.0)
        adapter = GeometryCoordination(channel)
        analytic = (
            adapter.latency_for(head.node_id, worker.node_id, task.input_bytes)
            + task.work_mi / 1000.0
            + adapter.latency_for(head.node_id, worker.node_id, task.output_bytes)
        )
        assert record.latency_s == pytest.approx(analytic, rel=0.25)

    def test_invalid_config(self):
        world, _c, head, _w, _e = build()[0:1] + (None, None, None, None)
        world2, _c2, head2, _w2, _e2 = build()
        with pytest.raises(TaskError):
            NetworkedTaskExchange(world2, head2, retry_interval_s=0.0)

    def test_worker_mips_validated(self):
        world, _c, head, worker, exchange = build()
        with pytest.raises(TaskError):
            exchange.register_worker(worker, mips=0.0)


class TestRetransmitTimer:
    def test_slow_worker_gets_no_spurious_retransmits(self):
        """The retransmit timer must span the *registered* worker's
        compute time.  A 50-MIPS worker takes 10 s over 500 MI; the old
        fixed ``work_mi / 500`` divisor fired the timer at ~1.5 s and
        retransmitted while the compute was legitimately running."""
        world, _c, _h, worker, exchange = build(worker_mips=50.0)
        record = exchange.offload(worker.node_id, Task(work_mi=500))
        world.run_for(30.0)
        assert record.done
        assert record.assign_transmissions == 1

    def test_fast_worker_timer_scales_down(self):
        """A fast worker's lost frame is re-sent on *its* compute scale,
        not a fixed divisor: recovery happens within a couple of backoff
        periods instead of waiting out a slow-worker estimate."""
        world, _c, _h, worker, exchange = build(worker_mips=10_000.0)
        worker.vehicle.position = Vec2(50_000, 0)  # every send fails
        record = exchange.offload(worker.node_id, Task(work_mi=500))
        # Attempts are spaced by the compute estimate (0.05 s) + 0.5 s
        # backoff, so the whole budget of max_retries + 1 transmissions
        # burns in ~3.3 s; the old ``work_mi / 500`` divisor spaced them
        # 1.5 s apart and would still be mid-budget at 5 s.
        world.run_for(5.0)
        assert record.failed
        assert record.assign_transmissions == exchange.max_retries + 1

    def test_exhaustion_carries_typed_reason(self):
        world, _c, _h, worker, exchange = build()
        worker.vehicle.position = Vec2(50_000, 0)
        record = exchange.offload(worker.node_id, Task(work_mi=100))
        world.run_for(60.0)
        assert record.failed
        assert record.failure_reason == "retries_exhausted"
        assert world.metrics.counter("offload/retries_exhausted") == 1.0

    def test_live_and_completed_exchanges_have_no_reason(self):
        world, _c, _h, worker, exchange = build()
        record = exchange.offload(worker.node_id, Task(work_mi=100))
        assert record.failure_reason is None
        world.run_for(10.0)
        assert record.done and record.failure_reason is None

    def test_exhaustion_emits_structured_event(self):
        world, _c, _h, worker, exchange = build()
        worker.vehicle.position = Vec2(50_000, 0)
        world.enable_observability(trace=False, events=True)
        record = exchange.offload(worker.node_id, Task(work_mi=100))
        world.run_for(60.0)
        assert record.failed
        assert world.events is not None
        failures = [
            e for e in world.events.records()
            if e.name == "offload_failed" and e.subsystem == "task_protocol"
        ]
        assert len(failures) == 1
        assert failures[0].attrs["reason"] == "retries_exhausted"
