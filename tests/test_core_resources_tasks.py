"""Tests for resource pooling, tasks, schedulers, handover, election."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import MembershipError, ResourceError, TaskError
from repro.geometry import Vec2
from repro.mobility import OnboardEquipment, SensorKind
from repro.core import (
    BrokerCandidate,
    BrokerElection,
    CheckpointHandoverPolicy,
    DropPolicy,
    DwellAwareAllocator,
    GreedyResourceAllocator,
    RandomAllocator,
    ResourceOffer,
    ResourcePool,
    Task,
    TaskRecord,
    TaskState,
    WorkerCandidate,
)


def offer(vehicle_id="v1", mips=1000.0, storage=10_000, sensors=frozenset()):
    return ResourceOffer(
        vehicle_id=vehicle_id,
        compute_mips=mips,
        storage_bytes=storage,
        bandwidth_bps=1e6,
        sensors=sensors,
    )


class TestResourcePool:
    def test_add_and_totals(self):
        pool = ResourcePool()
        pool.add_offer(offer("a", 1000))
        pool.add_offer(offer("b", 2000))
        assert pool.total_mips() == 3000
        assert len(pool) == 2
        assert "a" in pool

    def test_offer_from_equipment_scales(self):
        equipment = OnboardEquipment(compute_mips=1000)
        derived = ResourceOffer.from_equipment("v", equipment, lend_fraction=0.5)
        assert derived.compute_mips == 500

    def test_invalid_lend_fraction(self):
        with pytest.raises(ResourceError):
            ResourceOffer.from_equipment("v", OnboardEquipment(), lend_fraction=0.0)

    def test_reserve_and_release(self):
        pool = ResourcePool()
        pool.add_offer(offer("a", 1000))
        reservation = pool.reserve("a", 600)
        assert pool.free_mips("a") == 400
        pool.release(reservation)
        assert pool.free_mips("a") == 1000

    def test_over_reserve_raises(self):
        pool = ResourcePool()
        pool.add_offer(offer("a", 1000))
        pool.reserve("a", 800)
        with pytest.raises(ResourceError):
            pool.reserve("a", 300)

    def test_reserve_unknown_member(self):
        with pytest.raises(ResourceError):
            ResourcePool().reserve("ghost", 1)

    def test_release_after_departure_is_noop(self):
        pool = ResourcePool()
        pool.add_offer(offer("a", 1000))
        reservation = pool.reserve("a", 500)
        pool.remove_member("a")
        pool.release(reservation)  # must not raise
        assert "a" not in pool

    def test_storage_reservation(self):
        pool = ResourcePool()
        pool.add_offer(offer("a", 1000, storage=100))
        with pytest.raises(ResourceError):
            pool.reserve("a", 0, storage_bytes=200)

    def test_members_with_sensor(self):
        pool = ResourcePool()
        pool.add_offer(offer("lidar-car", sensors=frozenset({SensorKind.LIDAR})))
        pool.add_offer(offer("plain-car"))
        assert pool.members_with_sensor(SensorKind.LIDAR) == ["lidar-car"]

    def test_utilization(self):
        pool = ResourcePool()
        pool.add_offer(offer("a", 1000))
        assert pool.utilization() == 0.0
        pool.reserve("a", 500)
        assert pool.utilization() == pytest.approx(0.5)


class TestTask:
    def test_runtime(self):
        assert Task(work_mi=1000).runtime_on(500) == pytest.approx(2.0)

    def test_invalid_work(self):
        with pytest.raises(TaskError):
            Task(work_mi=0)

    def test_invalid_deadline(self):
        with pytest.raises(TaskError):
            Task(work_mi=1, deadline_s=0)

    def test_lifecycle_happy_path(self):
        record = TaskRecord(task=Task(work_mi=100), submitted_at=0.0)
        record.assign("worker", now=1.0)
        record.start()
        record.complete(now=5.0)
        assert record.state is TaskState.COMPLETED
        assert record.completion_latency_s == 5.0
        assert record.progress == 1.0

    def test_deadline_check(self):
        record = TaskRecord(task=Task(work_mi=100, deadline_s=3.0), submitted_at=0.0)
        record.assign("w", 0.0)
        record.start()
        record.complete(now=5.0)
        assert record.met_deadline() is False

    def test_no_deadline_returns_none(self):
        record = TaskRecord(task=Task(work_mi=100), submitted_at=0.0)
        assert record.met_deadline() is None

    def test_checkpoint_monotone(self):
        record = TaskRecord(task=Task(work_mi=100), submitted_at=0.0)
        record.checkpoint(0.5)
        with pytest.raises(TaskError):
            record.checkpoint(0.3)

    def test_handover_preserves_progress(self):
        record = TaskRecord(task=Task(work_mi=100), submitted_at=0.0)
        record.assign("w1", 0.0)
        record.start()
        record.checkpoint(0.6)
        record.hand_over()
        assert record.state is TaskState.HANDED_OVER
        assert record.remaining_work_mi == pytest.approx(40.0)
        record.assign("w2", 5.0)
        assert record.reassignments == 1
        assert record.workers_history == ["w1", "w2"]

    def test_checkpoint_survives_repeated_handover(self):
        """Progress checkpointed before each handover carries across workers."""
        record = TaskRecord(task=Task(work_mi=100), submitted_at=0.0)
        record.assign("w1", 0.0)
        record.start()
        record.checkpoint(0.3)
        record.hand_over()
        assert record.progress == pytest.approx(0.3)
        record.assign("w2", 2.0)
        record.start()
        record.checkpoint(0.8)
        record.hand_over()
        assert record.progress == pytest.approx(0.8)
        assert record.remaining_work_mi == pytest.approx(20.0)
        # A later checkpoint may only move forward from the preserved point.
        record.assign("w3", 4.0)
        record.start()
        with pytest.raises(TaskError):
            record.checkpoint(0.5)
        record.checkpoint(1.0)
        assert record.remaining_work_mi == 0.0

    def test_checkpoint_after_handover_cannot_regress(self):
        record = TaskRecord(task=Task(work_mi=100), submitted_at=0.0)
        record.assign("w1", 0.0)
        record.start()
        record.checkpoint(0.6)
        record.hand_over()
        with pytest.raises(TaskError):
            record.checkpoint(0.2)
        assert record.progress == pytest.approx(0.6)

    def test_remaining_work_never_negative(self):
        """Float drift past full progress must clamp, not go negative."""
        record = TaskRecord(task=Task(work_mi=100), submitted_at=0.0)
        record.checkpoint(1.0)
        assert record.remaining_work_mi == 0.0
        # Simulate accumulated float error pushing progress past 1.0 (the
        # recovery path computes p + (1-p)*fraction incrementally).
        record.progress = 1.0 + 1e-15
        assert record.remaining_work_mi == 0.0

    def test_drop_discards_progress(self):
        record = TaskRecord(task=Task(work_mi=100), submitted_at=0.0)
        record.assign("w1", 0.0)
        record.start()
        record.checkpoint(0.6)
        record.drop()
        assert record.progress == 0.0
        assert record.wasted_work_mi == pytest.approx(60.0)

    def test_invalid_transitions(self):
        record = TaskRecord(task=Task(work_mi=100), submitted_at=0.0)
        with pytest.raises(TaskError):
            record.start()
        with pytest.raises(TaskError):
            record.complete(1.0)
        with pytest.raises(TaskError):
            record.hand_over()


class TestAllocators:
    def _candidates(self):
        return [
            WorkerCandidate("slow-stayer", free_mips=100, estimated_dwell_s=1000),
            WorkerCandidate("fast-leaver", free_mips=1000, estimated_dwell_s=2),
            WorkerCandidate("balanced", free_mips=500, estimated_dwell_s=100),
        ]

    def test_greedy_picks_fastest(self):
        choice = GreedyResourceAllocator().choose(Task(work_mi=100), self._candidates())
        assert choice.vehicle_id == "fast-leaver"

    def test_dwell_aware_avoids_leavers(self):
        allocator = DwellAwareAllocator(safety_factor=1.5)
        choice = allocator.choose(Task(work_mi=1000), self._candidates())
        # fast-leaver needs 1s but only stays 2s (< 1.5 safety on 1s? 1*1.5=1.5 <= 2 ok)
        # With work 1000: fast-leaver runtime 1s, dwell 2s -> safe actually.
        assert choice is not None

    def test_dwell_aware_gates_unsafe_workers(self):
        allocator = DwellAwareAllocator(safety_factor=1.5, fallback_to_fastest=False)
        candidates = [WorkerCandidate("leaver", free_mips=100, estimated_dwell_s=1)]
        assert allocator.choose(Task(work_mi=1000), candidates) is None

    def test_dwell_aware_fallback(self):
        allocator = DwellAwareAllocator(safety_factor=1.5, fallback_to_fastest=True)
        candidates = [WorkerCandidate("leaver", free_mips=100, estimated_dwell_s=1)]
        choice = allocator.choose(Task(work_mi=1000), candidates)
        assert choice.vehicle_id == "leaver"

    def test_dwell_aware_fallback_picks_fastest_of_many(self):
        """When no candidate passes the dwell gate, the optimistic
        fallback degrades to the greedy pick — most free compute wins,
        ties broken by id — rather than an arbitrary unsafe worker."""
        allocator = DwellAwareAllocator(safety_factor=1.5, fallback_to_fastest=True)
        candidates = [
            WorkerCandidate("slow-leaver", free_mips=100, estimated_dwell_s=2),
            WorkerCandidate("fast-leaver", free_mips=800, estimated_dwell_s=1),
            WorkerCandidate("mid-leaver", free_mips=400, estimated_dwell_s=3),
        ]
        choice = allocator.choose(Task(work_mi=10_000), candidates)
        assert choice.vehicle_id == "fast-leaver"
        assert choice.expected_runtime_s == pytest.approx(10_000 / 800)
        # Same roster, tie on free compute: lexicographically larger id wins
        # (the deterministic max key), proving the tiebreak is not positional.
        tied = [
            WorkerCandidate("worker-a", free_mips=800, estimated_dwell_s=1),
            WorkerCandidate("worker-b", free_mips=800, estimated_dwell_s=1),
        ]
        assert allocator.choose(Task(work_mi=10_000), tied).vehicle_id == "worker-b"

    def test_dwell_aware_prefers_safe_over_fast(self):
        allocator = DwellAwareAllocator(safety_factor=2.0)
        candidates = [
            WorkerCandidate("fast-leaver", free_mips=1000, estimated_dwell_s=1),
            WorkerCandidate("slow-stayer", free_mips=100, estimated_dwell_s=10_000),
        ]
        choice = allocator.choose(Task(work_mi=1000), candidates)
        assert choice.vehicle_id == "slow-stayer"

    def test_random_allocator_deterministic_with_seed(self, rng):
        allocator = RandomAllocator(rng)
        task = Task(work_mi=10)
        picks = {allocator.choose(task, self._candidates()).vehicle_id for _ in range(30)}
        assert picks <= {"slow-stayer", "fast-leaver", "balanced"}
        assert len(picks) > 1

    def test_no_candidates_returns_none(self, rng):
        for allocator in (
            GreedyResourceAllocator(),
            DwellAwareAllocator(),
            RandomAllocator(rng),
        ):
            assert allocator.choose(Task(work_mi=10), []) is None

    def test_sensor_requirement_filters(self):
        task = Task(work_mi=10, required_sensors=frozenset({SensorKind.LIDAR}))
        candidates = [
            WorkerCandidate("no-lidar", 1000, 1000, has_required_sensors=False),
        ]
        assert GreedyResourceAllocator().choose(task, candidates) is None

    def test_allocation_choice_margin(self):
        choice = GreedyResourceAllocator().choose(
            Task(work_mi=100), [WorkerCandidate("w", 100, 10)]
        )
        assert choice.dwell_margin_s == pytest.approx(10 - 1.0)


class TestHandoverPolicies:
    def _running_record(self, progress=0.5):
        record = TaskRecord(task=Task(work_mi=1000), submitted_at=0.0)
        record.assign("w1", 0.0)
        record.start()
        record.checkpoint(progress)
        return record

    def test_drop_policy_discards(self):
        record = self._running_record()
        outcome = DropPolicy().on_worker_departed(record, now=5.0)
        assert outcome.requeue
        assert outcome.preserved_progress == 0.0
        assert record.state is TaskState.DROPPED
        assert record.wasted_work_mi == pytest.approx(500.0)

    def test_checkpoint_policy_preserves(self):
        record = self._running_record()
        policy = CheckpointHandoverPolicy()
        outcome = policy.on_worker_departed(record, now=5.0)
        assert outcome.requeue
        assert outcome.preserved_progress == pytest.approx(0.5)
        assert outcome.overhead_s > 0
        assert record.state is TaskState.HANDED_OVER
        assert record.remaining_work_mi == pytest.approx(500.0)

    def test_checkpoint_overhead_scales_with_progress(self):
        policy = CheckpointHandoverPolicy()
        little = policy.on_worker_departed(self._running_record(0.1), 5.0)
        lots = policy.on_worker_departed(self._running_record(0.9), 5.0)
        assert lots.overhead_bytes > little.overhead_bytes

    def test_negligible_progress_drops_instead(self):
        policy = CheckpointHandoverPolicy(min_progress_to_handover=0.05)
        record = self._running_record(progress=0.01)
        outcome = policy.on_worker_departed(record, 5.0)
        assert record.state is TaskState.DROPPED
        assert outcome.overhead_s == 0.0

    def test_reauth_latency_added(self):
        with_auth = CheckpointHandoverPolicy(reauth_latency_s=0.5)
        without = CheckpointHandoverPolicy(reauth_latency_s=0.0)
        a = with_auth.on_worker_departed(self._running_record(), 5.0)
        b = without.on_worker_departed(self._running_record(), 5.0)
        assert a.overhead_s == pytest.approx(b.overhead_s + 0.5)


class TestBrokerElection:
    def _candidate(self, vid, mips=1000, dwell=100, x=0.0):
        return BrokerCandidate(
            vehicle_id=vid, compute_mips=mips, estimated_dwell_s=dwell, position=Vec2(x, 0)
        )

    def test_empty_electorate_raises(self):
        with pytest.raises(MembershipError):
            BrokerElection().elect([])

    def test_single_candidate_wins(self):
        result = BrokerElection().elect([self._candidate("only")])
        assert result.winner_id == "only"

    def test_resource_rich_central_stable_candidate_wins(self):
        election = BrokerElection()
        candidates = [
            self._candidate("weak-edge", mips=100, dwell=10, x=1000),
            self._candidate("strong-center", mips=2000, dwell=500, x=0),
            self._candidate("medium", mips=1000, dwell=100, x=500),
        ]
        assert election.elect(candidates).winner_id == "strong-center"

    def test_deterministic_tie_break(self):
        election = BrokerElection()
        twins = [self._candidate("aaa"), self._candidate("bbb")]
        assert election.elect(twins).winner_id == election.elect(twins).winner_id

    def test_hysteresis_keeps_incumbent(self):
        election = BrokerElection()
        candidates = [
            self._candidate("incumbent", mips=990),
            self._candidate("challenger", mips=1000),
        ]
        assert not election.should_reelect("incumbent", candidates)

    def test_departed_incumbent_forces_election(self):
        election = BrokerElection()
        assert election.should_reelect("gone", [self._candidate("x")])

    def test_clearly_better_challenger_wins(self):
        election = BrokerElection()
        candidates = [
            self._candidate("incumbent", mips=100, dwell=5),
            self._candidate("challenger", mips=5000, dwell=1000),
        ]
        assert election.should_reelect("incumbent", candidates)

    @given(st.integers(min_value=1, max_value=12))
    def test_winner_always_in_electorate(self, count):
        election = BrokerElection()
        candidates = [
            self._candidate(f"v{i}", mips=100 + i * 50, dwell=10 + i, x=i * 100.0)
            for i in range(count)
        ]
        result = election.elect(candidates)
        assert result.winner_id in {c.vehicle_id for c in candidates}
        assert result.electorate_size == count
