"""Tests for scenario configs and the World container."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.sim import (
    ChannelConfig,
    CloudConfig,
    MobilityConfig,
    ScenarioConfig,
    SecurityConfig,
    World,
)


class TestConfigs:
    def test_defaults_valid(self):
        config = ScenarioConfig()
        assert config.vehicle_count > 0
        assert config.channel.v2v_range_m > 0

    def test_bad_duration(self):
        with pytest.raises(ConfigurationError):
            ScenarioConfig(duration_s=0)

    def test_bad_vehicle_count(self):
        with pytest.raises(ConfigurationError):
            ScenarioConfig(vehicle_count=0)

    def test_bad_area(self):
        with pytest.raises(ConfigurationError):
            ScenarioConfig(area_m=(0.0, 100.0))

    def test_channel_loss_probability_bounds(self):
        with pytest.raises(ConfigurationError):
            ChannelConfig(base_loss_probability=1.0)

    def test_channel_negative_range(self):
        with pytest.raises(ConfigurationError):
            ChannelConfig(v2v_range_m=-1)

    @pytest.mark.parametrize(
        "field",
        [
            "propagation_delay_s_per_km",
            "base_transmit_delay_s",
            "contention_delay_per_neighbor_s",
            "wired_backhaul_delay_s",
            "wan_delay_s",
        ],
    )
    def test_channel_negative_delays_rejected(self, field):
        with pytest.raises(ConfigurationError):
            ChannelConfig(**{field: -0.001})

    def test_mobility_speed_bounds(self):
        with pytest.raises(ConfigurationError):
            MobilityConfig(min_speed_mps=30, max_speed_mps=20)

    def test_mobility_turn_probability(self):
        with pytest.raises(ConfigurationError):
            MobilityConfig(turn_probability=1.5)

    def test_security_pool_size(self):
        with pytest.raises(ConfigurationError):
            SecurityConfig(pseudonym_pool_size=0)

    def test_cloud_neighbor_timeout_vs_beacon(self):
        with pytest.raises(ConfigurationError):
            CloudConfig(beacon_interval_s=2.0, neighbor_timeout_s=1.0)

    def test_with_overrides_returns_copy(self):
        config = ScenarioConfig(seed=1)
        other = config.with_overrides(seed=2)
        assert config.seed == 1
        assert other.seed == 2

    def test_configs_frozen(self):
        config = ScenarioConfig()
        with pytest.raises(Exception):
            config.seed = 9  # type: ignore[misc]


class TestWorld:
    def test_default_config(self):
        world = World()
        assert world.config.seed == 42

    def test_register_and_get(self, world):
        world.register("thing", {"a": 1})
        assert world.get("thing") == {"a": 1}
        assert world.has("thing")

    def test_duplicate_registration_raises(self, world):
        world.register("x", 1)
        with pytest.raises(SimulationError):
            world.register("x", 2)

    def test_get_unknown_raises(self, world):
        with pytest.raises(SimulationError):
            world.get("ghost")

    def test_maybe_get_returns_none(self, world):
        assert world.maybe_get("ghost") is None

    def test_unregister(self, world):
        world.register("x", 1)
        world.unregister("x")
        assert not world.has("x")
        with pytest.raises(SimulationError):
            world.unregister("x")

    def test_entities_of_type(self, world):
        world.register("a", "text")
        world.register("b", 42)
        assert world.entities_of_type(str) == ["text"]

    def test_len_and_ids(self, world):
        world.register("a", 1)
        world.register("b", 2)
        assert len(world) == 2
        assert sorted(world.entity_ids()) == ["a", "b"]

    def test_run_for_advances_clock(self, world):
        world.run_for(3.0)
        assert world.now == 3.0

    def test_rng_derived_from_seed(self):
        a = World(ScenarioConfig(seed=5))
        b = World(ScenarioConfig(seed=5))
        assert a.rng.random() == b.rng.random()


class TestWorldErrorPolicy:
    def test_config_validates_policy(self):
        with pytest.raises(ConfigurationError):
            ScenarioConfig(error_policy="ignore")

    def test_world_passes_policy_to_engine(self):
        world = World(ScenarioConfig(seed=1, error_policy="record"))
        assert world.engine.error_policy == "record"

    def test_record_policy_run_completes_with_failure_in_metrics(self):
        """Regression: an injected callback exception under "record" must
        not abort the run, and the failure must be visible in the metrics
        ledger."""
        world = World(ScenarioConfig(seed=1, error_policy="record"))

        def boom():
            raise RuntimeError("injected")

        finished = []
        world.engine.schedule(1.0, boom, label="experiment-step")
        world.engine.schedule(2.0, lambda: finished.append(world.now))
        world.run_for(5.0)
        assert finished == [2.0]
        assert world.metrics.counter("engine/callback_failures") == 1
        assert world.metrics.counter("engine/callback_failures/experiment-step") == 1
        assert len(world.engine.failures) == 1
        assert "RuntimeError: injected" in world.engine.failures[0].error

    def test_default_policy_still_raises(self):
        world = World(ScenarioConfig(seed=1))

        def boom():
            raise RuntimeError("injected")

        world.engine.schedule(1.0, boom)
        with pytest.raises(RuntimeError):
            world.run_for(5.0)
