"""Tests for the trusted authority, identities, revocation and tokens."""

from __future__ import annotations

import pytest

from repro.errors import SecurityError
from repro.security import (
    BloomRevocationFilter,
    PseudonymPool,
    RealIdentity,
    RevocationList,
    RotatingIdentity,
    StaticIdentity,
    TokenService,
    TrustedAuthority,
)


class TestRegistration:
    def test_register_issues_long_term_credential(self):
        ta = TrustedAuthority()
        enrollment = ta.register_vehicle(RealIdentity("car-1"), now=0.0)
        assert enrollment.long_term_certificate.subject_id == "car-1"
        assert ta.is_registered("car-1")

    def test_double_registration_raises(self):
        ta = TrustedAuthority()
        ta.register_vehicle(RealIdentity("car-1"))
        with pytest.raises(SecurityError):
            ta.register_vehicle(RealIdentity("car-1"))

    def test_unknown_vehicle_lookup_raises(self):
        with pytest.raises(SecurityError):
            TrustedAuthority().enrollment_of("ghost")


class TestPseudonyms:
    def _enrolled(self):
        ta = TrustedAuthority()
        ta.register_vehicle(RealIdentity("car-1"))
        return ta

    def test_pool_issue(self):
        ta = self._enrolled()
        pool = ta.issue_pseudonyms("car-1", 5)
        assert pool.remaining == 5
        assert len({p.pseudonym_id for p in pool.pseudonyms}) == 5

    def test_escrow_reveals_real_identity(self):
        ta = self._enrolled()
        pool = ta.issue_pseudonyms("car-1", 3)
        for pseudonym in pool.pseudonyms:
            assert ta.reveal(pseudonym.pseudonym_id) == "car-1"
        assert ta.reveal("pn-nonexistent") is None

    def test_certificates_verify(self):
        ta = self._enrolled()
        pool = ta.issue_pseudonyms("car-1", 1, now=0.0)
        assert ta.verify_certificate(pool.pseudonyms[0].certificate, now=1.0).value

    def test_expired_certificate_rejected(self):
        ta = self._enrolled()
        pool = ta.issue_pseudonyms("car-1", 1, now=0.0)
        far_future = TrustedAuthority.DEFAULT_VALIDITY_S + 1
        assert not ta.verify_certificate(pool.pseudonyms[0].certificate, now=far_future).value

    def test_foreign_certificate_rejected(self):
        ta = self._enrolled()
        other_ta = TrustedAuthority(authority_id="ta-evil")
        other_ta.register_vehicle(RealIdentity("car-1"))
        foreign = other_ta.issue_pseudonyms("car-1", 1).pseudonyms[0]
        assert not ta.verify_certificate(foreign.certificate, now=0.0).value

    def test_rotation_consumes_pool(self):
        ta = self._enrolled()
        pool = ta.issue_pseudonyms("car-1", 3)
        first = pool.current().pseudonym_id
        second = pool.rotate().pseudonym_id
        assert first != second
        assert pool.remaining == 2

    def test_exhausted_pool_raises(self):
        pool = PseudonymPool(pseudonyms=[])
        with pytest.raises(SecurityError):
            pool.current()

    def test_refill(self):
        ta = self._enrolled()
        pool = ta.issue_pseudonyms("car-1", 2)
        pool.rotate()
        with pytest.raises(SecurityError):
            pool.rotate()
        ta.refill_pseudonyms("car-1", pool, 2)
        assert pool.rotate() is not None


class TestRotatingIdentity:
    def _pool(self, size=5):
        ta = TrustedAuthority()
        ta.register_vehicle(RealIdentity("car-1"))
        return ta.issue_pseudonyms("car-1", size)

    def test_identity_stable_within_interval(self):
        rotator = RotatingIdentity(self._pool(), change_interval_s=60.0)
        first = rotator.current_identity(1.0)
        assert rotator.current_identity(30.0) == first

    def test_identity_changes_after_interval(self):
        rotator = RotatingIdentity(self._pool(), change_interval_s=60.0)
        first = rotator.current_identity(1.0)
        later = rotator.current_identity(100.0)
        assert later != first
        assert rotator.rotations >= 1

    def test_exhaustion_flag(self):
        rotator = RotatingIdentity(self._pool(size=2), change_interval_s=10.0)
        rotator.current_identity(0.0)
        rotator.current_identity(20.0)
        rotator.current_identity(40.0)
        assert rotator.exhausted

    def test_static_identity_never_changes(self):
        static = StaticIdentity("veh-42")
        assert static.current_identity(0.0) == static.current_identity(9999.0)


class TestRevocation:
    def test_revoke_vehicle_revokes_all_credentials(self):
        ta = TrustedAuthority()
        ta.register_vehicle(RealIdentity("car-1"))
        pool = ta.issue_pseudonyms("car-1", 4)
        revoked = ta.revoke_vehicle("car-1")
        assert revoked == 5  # long-term + 4 pseudonyms
        for pseudonym in pool.pseudonyms:
            assert ta.crl.is_revoked(pseudonym.pseudonym_id)

    def test_crl_check_cost_scales_with_size(self):
        crl = RevocationList(check_cost_per_entry_s=1e-6)
        small_cost = crl.check("x").cost_s
        for index in range(1000):
            crl.revoke(f"cred-{index}")
        large_cost = crl.check("x").cost_s
        assert large_cost > small_cost * 100

    def test_reinstate(self):
        crl = RevocationList()
        crl.revoke("a")
        crl.reinstate("a")
        assert not crl.check("a").value

    def test_bloom_filter_no_false_negatives(self):
        bloom = BloomRevocationFilter()
        revoked = [f"cred-{i}" for i in range(50)]
        for credential in revoked:
            bloom.add(credential)
        assert all(bloom.might_be_revoked(c).value for c in revoked)

    def test_bloom_filter_mostly_clean_on_unseen(self):
        bloom = BloomRevocationFilter(bits=8192)
        for index in range(50):
            bloom.add(f"cred-{index}")
        false_positives = sum(
            1 for i in range(1000) if bloom.might_be_revoked(f"other-{i}").value
        )
        assert false_positives < 100

    def test_bloom_constant_cost(self):
        bloom = BloomRevocationFilter()
        cost_before = bloom.might_be_revoked("x").cost_s
        for index in range(500):
            bloom.add(f"c{index}")
        assert bloom.might_be_revoked("x").cost_s == cost_before

    def test_bloom_rebuild_from_crl(self):
        crl = RevocationList()
        crl.revoke("bad-1")
        bloom = BloomRevocationFilter()
        bloom.rebuild(crl)
        assert bloom.might_be_revoked("bad-1").value


class TestGroups:
    def test_join_and_open(self):
        ta = TrustedAuthority()
        ta.register_vehicle(RealIdentity("car-1"))
        key = ta.join_group("car-1", "region-east")
        signature = ta.group_signatures.sign("region-east", "car-1", key, b"m").value
        assert ta.open_group_signature(signature) == "car-1"

    def test_revoked_vehicle_removed_from_groups(self):
        ta = TrustedAuthority()
        ta.register_vehicle(RealIdentity("car-1"))
        key = ta.join_group("car-1", "g")
        ta.revoke_vehicle("car-1")
        from repro.errors import CryptoError

        with pytest.raises(CryptoError):
            ta.group_signatures.sign("g", "car-1", key, b"m")


class TestTokens:
    def _setup(self):
        ta = TrustedAuthority()
        ta.register_vehicle(RealIdentity("car-1"))
        pool = ta.issue_pseudonyms("car-1", 1)
        return ta, TokenService(ta), pool.pseudonyms[0]

    def test_issue_and_verify(self):
        ta, service, pseudonym = self._setup()
        token = service.issue(pseudonym.pseudonym_id, "storage", now=0.0)
        assert service.verify(token, "storage", now=10.0).value

    def test_unknown_pseudonym_rejected(self):
        ta, service, _ = self._setup()
        with pytest.raises(SecurityError):
            service.issue("pn-forged", "storage", now=0.0)

    def test_wrong_service_rejected(self):
        ta, service, pseudonym = self._setup()
        token = service.issue(pseudonym.pseudonym_id, "storage", now=0.0)
        assert not service.verify(token, "compute", now=1.0).value

    def test_expired_token_rejected(self):
        ta, service, pseudonym = self._setup()
        token = service.issue(pseudonym.pseudonym_id, "storage", now=0.0, lifetime_s=10.0)
        assert not service.verify(token, "storage", now=11.0).value

    def test_revoked_pseudonym_token_rejected(self):
        ta, service, pseudonym = self._setup()
        token = service.issue(pseudonym.pseudonym_id, "storage", now=0.0)
        ta.crl.revoke(pseudonym.pseudonym_id)
        assert not service.verify(token, "storage", now=1.0).value

    def test_token_does_not_leak_real_identity(self):
        ta, service, pseudonym = self._setup()
        token = service.issue(pseudonym.pseudonym_id, "storage", now=0.0)
        assert "car-1" not in repr(token)
