"""Tests for the fault-injection subsystem (`repro.faults`)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.faults import (
    FaultInjector,
    FaultPlan,
    FrameDuplicator,
    JitterSpike,
    LossBurst,
    Partition,
)
from repro.faults.plan import FaultSpec
from repro.core import (
    CheckpointHandoverPolicy,
    DropPolicy,
    ResourceOffer,
    Task,
    TaskState,
    VehicularCloud,
)
from repro.geometry import Vec2
from repro.infra import Rsu
from repro.mobility import StationaryModel, Vehicle
from repro.net import Message, MessageKind, VehicleNode, WirelessChannel
from repro.sim import ChannelConfig, ScenarioConfig, World


def lossless_world(seed: int = 7) -> World:
    channel_config = ChannelConfig(base_loss_probability=0.0, loss_per_100m=0.0)
    return World(ScenarioConfig(seed=seed, channel=channel_config))


def make_cloud(world, members=4, mips=1000.0, handover_policy=None):
    model = StationaryModel(world, positions=[Vec2(i * 40.0, 0) for i in range(members)])
    vehicles = model.populate(members)
    cloud = VehicularCloud(world, "fault-vc", handover_policy=handover_policy)
    for vehicle in vehicles:
        cloud.admit(vehicle, offer=ResourceOffer(vehicle.vehicle_id, mips, 10**9, 1e6))
    return vehicles, cloud


def make_pair(world, channel):
    a = VehicleNode(world, channel, Vehicle(position=Vec2(0, 0)), radio_range_m=300.0)
    b = VehicleNode(world, channel, Vehicle(position=Vec2(50, 0)), radio_range_m=300.0)
    return a, b


def data(src, dst, when, size=100):
    return Message(
        kind=MessageKind.DATA,
        src=src,
        dst=dst,
        payload={},
        size_bytes=size,
        created_at=when,
    )


class TestFaultPlan:
    def test_builders_chain_and_sort(self):
        plan = (
            FaultPlan(seed=1)
            .crash(30.0, target="veh-3")
            .stall(10.0, duration_s=5.0)
            .loss_burst(20.0, duration_s=4.0, drop_probability=0.5)
        )
        kinds = [spec.kind for spec in plan.schedule()]
        assert kinds == ["stall", "loss_burst", "crash"]
        assert len(plan) == 3

    def test_same_seed_byte_identical_schedule(self):
        def build(seed):
            return (
                FaultPlan(seed)
                .random_crashes(5, window=(10.0, 120.0))
                .partition(40.0, duration_s=8.0, fraction=0.5)
                .disaster(60.0, fraction=0.4, repair_start_s=30.0, repair_interval_s=5.0)
                .describe()
            )

        assert build(42) == build(42)
        assert build(42) != build(43)

    def test_random_crashes_draw_targets_up_front(self):
        targets = [f"veh-{i}" for i in range(6)]
        plan = FaultPlan(5).random_crashes(3, window=(0.0, 50.0), targets=targets)
        victims = [spec.param("target") for spec in plan.schedule()]
        assert len(set(victims)) == 3
        assert all(victim in targets for victim in victims)

    def test_families(self):
        plan = (
            FaultPlan(1)
            .crash(1.0)
            .jitter_spike(2.0, duration_s=1.0, max_extra_delay_s=0.5)
            .rsu_flap(3.0, cycles=2, down_s=1.0, up_s=1.0)
        )
        families = [spec.family for spec in plan.schedule()]
        assert families == ["process", "network", "infrastructure"]

    def test_validation(self):
        plan = FaultPlan(1)
        with pytest.raises(ConfigurationError):
            plan.stall(1.0, duration_s=0.0)
        with pytest.raises(ConfigurationError):
            plan.loss_burst(1.0, duration_s=1.0, drop_probability=1.5)
        with pytest.raises(ConfigurationError):
            plan.duplication(1.0, duration_s=1.0, probability=0.5, copies=0)
        with pytest.raises(ConfigurationError):
            plan.random_crashes(3, window=(5.0, 1.0))
        with pytest.raises(ConfigurationError):
            plan.random_crashes(3, window=(0.0, 10.0), targets=["only-one"])
        with pytest.raises(ConfigurationError):
            FaultSpec(kind="meteor", at=1.0)
        with pytest.raises(ConfigurationError):
            FaultSpec(kind="crash", at=-1.0)


class TestNetworkFaults:
    def test_loss_burst_drops_inside_window_only(self):
        world = lossless_world()
        channel = WirelessChannel(world)
        a, b = make_pair(world, channel)
        burst = LossBurst(world, start=5.0, duration_s=5.0, drop_probability=1.0)
        channel.add_interceptor(burst)
        received = []
        b.on(MessageKind.DATA, lambda msg, frm: received.append(world.now))

        a.send(b.node_id, data(a.node_id, b.node_id, world.now))  # before window
        world.engine.schedule_at(
            6.0, lambda: a.send(b.node_id, data(a.node_id, b.node_id, 6.0))
        )
        world.engine.schedule_at(
            12.0, lambda: a.send(b.node_id, data(a.node_id, b.node_id, 12.0))
        )
        world.run_for(15.0)
        assert len(received) == 2
        assert burst.triggered == 1
        assert world.metrics.counter("faults/frames_dropped") == 1

    def test_loss_burst_scoped_to_node_ids(self):
        world = lossless_world()
        channel = WirelessChannel(world)
        a, b = make_pair(world, channel)
        c = VehicleNode(world, channel, Vehicle(position=Vec2(100, 0)), radio_range_m=300.0)
        burst = LossBurst(
            world, start=0.0, duration_s=10.0, drop_probability=1.0, node_ids=[c.node_id]
        )
        channel.add_interceptor(burst)
        received = []
        b.on(MessageKind.DATA, lambda msg, frm: received.append(frm))
        c.on(MessageKind.DATA, lambda msg, frm: received.append(frm))
        a.send(b.node_id, data(a.node_id, b.node_id, 0.0))  # unaffected pair
        a.send(c.node_id, data(a.node_id, c.node_id, 0.0))  # involved node
        world.run_for(5.0)
        assert received == [a.node_id]

    def test_partition_cuts_both_directions(self):
        world = lossless_world()
        channel = WirelessChannel(world)
        a, b = make_pair(world, channel)
        cut = Partition(world, 0.0, 10.0, group_a=[a.node_id], group_b=[b.node_id])
        channel.add_interceptor(cut)
        received = []
        a.on(MessageKind.DATA, lambda msg, frm: received.append("a"))
        b.on(MessageKind.DATA, lambda msg, frm: received.append("b"))
        a.send(b.node_id, data(a.node_id, b.node_id, 0.0))
        b.send(a.node_id, data(b.node_id, a.node_id, 0.0))
        world.run_for(5.0)
        assert received == []
        assert cut.triggered == 2

    def test_partition_heals_after_window(self):
        world = lossless_world()
        channel = WirelessChannel(world)
        a, b = make_pair(world, channel)
        cut = Partition(world, 0.0, 2.0, group_a=[a.node_id], group_b=[b.node_id])
        channel.add_interceptor(cut)
        received = []
        b.on(MessageKind.DATA, lambda msg, frm: received.append(world.now))
        world.engine.schedule_at(
            3.0, lambda: a.send(b.node_id, data(a.node_id, b.node_id, 3.0))
        )
        world.run_for(5.0)
        assert len(received) == 1

    def test_jitter_spike_delays_delivery(self):
        world = lossless_world()
        channel = WirelessChannel(world)
        a, b = make_pair(world, channel)
        arrivals = []
        b.on(MessageKind.DATA, lambda msg, frm: arrivals.append(world.now))
        a.send(b.node_id, data(a.node_id, b.node_id, 0.0))
        world.run_for(5.0)
        baseline = arrivals.pop()

        spike = JitterSpike(world, world.now, 10.0, max_extra_delay_s=2.0)
        channel.add_interceptor(spike)
        start = world.now
        a.send(b.node_id, data(a.node_id, b.node_id, start))
        world.run_for(10.0)
        assert spike.triggered == 1
        assert arrivals[0] - start > baseline

    def test_duplicator_delivers_copies(self):
        world = lossless_world()
        channel = WirelessChannel(world)
        a, b = make_pair(world, channel)
        dup = FrameDuplicator(world, 0.0, 10.0, probability=1.0, copies=2)
        channel.add_interceptor(dup)
        received = []
        b.on(MessageKind.DATA, lambda msg, frm: received.append(msg))
        a.send(b.node_id, data(a.node_id, b.node_id, 0.0))
        world.run_for(5.0)
        assert len(received) == 3
        assert world.metrics.counter("channel/frames_duplicated") == 2


class TestProcessFaults:
    def test_crash_without_leases_hangs_task(self):
        world = lossless_world()
        vehicles, cloud = make_cloud(world)
        record = cloud.submit(Task(work_mi=5000))
        world.run_for(1.0)
        assert record.state in (TaskState.ASSIGNED, TaskState.RUNNING)
        frozen = cloud.mark_worker_crashed(record.worker_id)
        assert frozen == 1
        world.run_for(60.0)
        # Nobody noticed the silent crash: the task never completes.
        assert record.state is not TaskState.COMPLETED
        assert cloud.stats.worker_crashes == 1

    def test_crash_with_leases_flows_into_handover(self):
        world = lossless_world()
        vehicles, cloud = make_cloud(world, handover_policy=CheckpointHandoverPolicy())
        cloud.enable_worker_leases(lease_duration_s=3.0, sweep_interval_s=1.0)
        record = cloud.submit(Task(work_mi=8000))
        world.run_for(1.5)
        victim = record.worker_id
        cloud.mark_worker_crashed(victim)
        world.run_for(60.0)
        assert record.state is TaskState.COMPLETED
        assert victim not in cloud.membership
        assert cloud.stats.lease_evictions == 1
        assert cloud.stats.handovers == 1
        assert record.worker_id != victim

    def test_stall_postpones_completion(self):
        world = lossless_world()
        _vehicles, cloud = make_cloud(world)
        fast = cloud.submit(Task(work_mi=1000))
        world.run_for(0.1)
        cloud.stall_worker(fast.worker_id, duration_s=5.0)
        world.run_for(3.0)
        assert fast.state is not TaskState.COMPLETED
        world.run_for(10.0)
        assert fast.state is TaskState.COMPLETED
        assert cloud.stats.worker_stalls == 1

    def test_reboot_loses_state_and_requeues(self):
        world = lossless_world()
        _vehicles, cloud = make_cloud(world)
        record = cloud.submit(Task(work_mi=4000))
        world.run_for(1.0)
        victim = record.worker_id
        lost = cloud.reboot_worker(victim, downtime_s=2.0)
        assert lost == 1
        assert record.progress == 0.0
        world.run_for(60.0)
        assert record.state is TaskState.COMPLETED
        # A reboot is not a departure: the worker is still a member.
        assert victim in cloud.membership
        assert cloud.stats.worker_reboots == 1
        assert cloud.stats.drops == 1


class TestHandoverChurn:
    """Handover policies under repeated worker churn."""

    def _churn(self, world, cloud, record, rounds):
        for _ in range(rounds):
            world.run_for(0.6)
            worker = record.worker_id
            if worker is None or record.state in (
                TaskState.COMPLETED,
                TaskState.FAILED,
            ):
                break
            cloud.member_leave(worker)

    def test_checkpoint_policy_survives_repeated_churn(self):
        world = lossless_world()
        vehicles, cloud = make_cloud(
            world, members=6, handover_policy=CheckpointHandoverPolicy()
        )
        record = cloud.submit(Task(work_mi=3000))
        progress_seen = []
        self._churn(world, cloud, record, rounds=3)
        progress_seen.append(record.progress)
        world.run_for(120.0)
        assert record.state is TaskState.COMPLETED
        assert cloud.stats.handovers >= 1
        assert len(set(record.workers_history)) >= 2

    def test_drop_policy_restarts_from_zero(self):
        world = lossless_world()
        vehicles, cloud = make_cloud(world, members=6, handover_policy=DropPolicy())
        record = cloud.submit(Task(work_mi=3000))
        world.run_for(1.5)
        assert record.progress == 0.0 or record.state is TaskState.RUNNING
        cloud.member_leave(record.worker_id)
        # Requeue-into-allocator: after the drop the task re-enters the
        # pool from zero progress and completes on another member.
        assert record.state in (TaskState.DROPPED, TaskState.PENDING, TaskState.ASSIGNED)
        world.run_for(120.0)
        assert record.state is TaskState.COMPLETED
        assert cloud.stats.drops >= 1
        assert cloud.stats.wasted_work_mi > 0.0

    def test_wasted_work_higher_under_drop(self):
        def run(policy):
            world = lossless_world(seed=11)
            _vehicles, cloud = make_cloud(world, members=6, handover_policy=policy)
            records = [cloud.submit(Task(work_mi=4000)) for _ in range(3)]
            for _ in range(4):
                world.run_for(1.0)
                for record in records:
                    if record.worker_id is not None and record.state in (
                        TaskState.ASSIGNED,
                        TaskState.RUNNING,
                    ):
                        cloud.member_leave(record.worker_id)
                        break
            world.run_for(200.0)
            return cloud.stats

        drop = run(DropPolicy())
        checkpoint = run(CheckpointHandoverPolicy())
        assert drop.wasted_work_mi >= checkpoint.wasted_work_mi


class TestFaultInjector:
    def test_arm_requires_matching_targets(self):
        world = lossless_world()
        plan = FaultPlan(1).crash(1.0)
        injector = FaultInjector(world, plan)
        with pytest.raises(ConfigurationError):
            injector.arm()

        network_plan = FaultPlan(1).loss_burst(1.0, duration_s=1.0, drop_probability=0.5)
        with pytest.raises(ConfigurationError):
            FaultInjector(world, network_plan).arm()

        infra_plan = FaultPlan(1).disaster(1.0, fraction=0.5)
        with pytest.raises(ConfigurationError):
            FaultInjector(world, infra_plan).arm()

    def test_arm_twice_rejected(self):
        world = lossless_world()
        _vehicles, cloud = make_cloud(world)
        injector = FaultInjector(world, FaultPlan(1).crash(1.0), cloud=cloud)
        injector.arm()
        with pytest.raises(ConfigurationError):
            injector.arm()

    def test_process_faults_fire_against_cloud(self):
        world = lossless_world()
        _vehicles, cloud = make_cloud(world, members=5)
        cloud.enable_worker_leases(lease_duration_s=3.0, sweep_interval_s=1.0)
        plan = FaultPlan(3).crash(2.0).stall(4.0, duration_s=1.0).reboot(6.0, downtime_s=1.0)
        injector = FaultInjector(world, plan, cloud=cloud)
        assert injector.arm() == 3
        for _ in range(6):
            cloud.submit(Task(work_mi=2000))
        world.run_for(60.0)
        assert cloud.stats.worker_crashes == 1
        assert cloud.stats.worker_stalls == 1
        assert cloud.stats.worker_reboots == 1
        assert len(injector.ledger) == 3
        assert world.metrics.counter("faults/injected") == 3

    def test_ledger_deterministic_across_runs(self):
        from repro.mobility.vehicle import reset_vehicle_ids

        def run():
            # Rewind the process-global vehicle id counter so both runs
            # mint identical ids and the ledgers compare byte-identical.
            reset_vehicle_ids()
            world = lossless_world(seed=21)
            vehicles, cloud = make_cloud(world, members=6)
            plan = FaultPlan(9).random_crashes(3, window=(1.0, 20.0))
            injector = FaultInjector(world, plan, cloud=cloud)
            injector.arm()
            world.run_for(30.0)
            return list(injector.ledger)

        assert run() == run()

    def test_network_faults_attach_and_detach(self):
        world = lossless_world()
        channel = WirelessChannel(world)
        a, b = make_pair(world, channel)
        plan = FaultPlan(2).loss_burst(1.0, duration_s=2.0, drop_probability=1.0)
        injector = FaultInjector(world, plan, channel=channel)
        injector.arm()
        received = []
        b.on(MessageKind.DATA, lambda msg, frm: received.append(world.now))
        world.engine.schedule_at(
            2.0, lambda: a.send(b.node_id, data(a.node_id, b.node_id, 2.0))
        )
        world.run_for(10.0)
        assert received == []
        # Interceptor removed once the window closed.
        assert channel._interceptors == []

    def test_seeded_partition_splits_attached_nodes(self):
        world = lossless_world()
        channel = WirelessChannel(world)
        nodes = [
            VehicleNode(world, channel, Vehicle(position=Vec2(i * 30.0, 0)), radio_range_m=500.0)
            for i in range(6)
        ]
        plan = FaultPlan(4).partition(1.0, duration_s=5.0, fraction=0.5)
        injector = FaultInjector(world, plan, channel=channel)
        injector.arm()
        world.run_for(2.0)
        cut = channel._interceptors[0]
        assert len(cut.group_a) == 3
        assert len(cut.group_b) == 3
        assert cut.group_a | cut.group_b == {node.node_id for node in nodes}

    def test_infrastructure_faults(self):
        world = lossless_world()
        channel = WirelessChannel(world)
        rsus = [Rsu(world, channel, Vec2(i * 500.0, 0)) for i in range(4)]
        plan = FaultPlan(6).rsu_flap(
            1.0, cycles=2, down_s=1.0, up_s=1.0, target=rsus[0].node_id
        ).disaster(10.0, fraction=1.0, repair_start_s=5.0, repair_interval_s=2.0)
        injector = FaultInjector(world, plan, infrastructure=rsus)
        injector.arm()
        world.run_for(1.5)
        assert rsus[0].damaged  # first flap cycle down
        world.run_for(1.0)
        assert not rsus[0].damaged  # back up
        world.run_for(8.0)  # disaster struck at t=10
        assert all(rsu.damaged for rsu in rsus)
        world.run_for(30.0)  # staggered repair finished
        assert all(not rsu.damaged for rsu in rsus)
        assert world.metrics.counter("disaster/nodes_repaired") == 4


class TestPlanOrderingContract:
    """Satellite: identical-timestamp specs apply in insertion order."""

    def test_same_timestamp_schedule_preserves_insertion_order(self):
        plan = (
            FaultPlan(1)
            .stall(5.0, duration_s=1.0)
            .crash(5.0)
            .reboot(5.0, downtime_s=1.0)
            .crash(2.0)
        )
        kinds = [spec.kind for spec in plan.schedule()]
        assert kinds == ["crash", "stall", "crash", "reboot"]

    def test_same_timestamp_faults_fire_in_insertion_order(self):
        world = lossless_world()
        _vehicles, cloud = make_cloud(world, members=6)
        plan = (
            FaultPlan(2)
            .stall(3.0, duration_s=1.0, target="veh-1")
            .crash(3.0, target="veh-2")
            .reboot(3.0, downtime_s=1.0, target="veh-3")
        )
        injector = FaultInjector(world, plan, cloud=cloud)
        injector.arm()
        world.run_for(5.0)
        assert [kind for _t, kind, _v in injector.ledger] == ["stall", "crash", "reboot"]

    def test_from_specs_preserves_order_and_validates(self):
        source = FaultPlan(3).crash(4.0).stall(4.0, duration_s=2.0).crash(1.0)
        rebuilt = FaultPlan.from_specs(9, source.schedule())
        assert [s.kind for s in rebuilt.schedule()] == [
            s.kind for s in source.schedule()
        ]
        assert rebuilt.seed == 9
        with pytest.raises(ConfigurationError):
            FaultPlan.from_specs(1, ["not-a-spec"])


class TestRandomCrashesHardening:
    """Satellite: degenerate generator inputs are typed errors or explicit no-ops."""

    def test_zero_count_is_noop_and_preserves_rng_stream(self):
        with_noop = (
            FaultPlan(11)
            .random_crashes(0, window=(5.0, 5.0))
            .random_crashes(2, window=(1.0, 20.0))
        )
        without = FaultPlan(11).random_crashes(2, window=(1.0, 20.0))
        assert with_noop.describe() == without.describe()
        assert len(FaultPlan(1).random_crashes(0, window=(0.0, 10.0))) == 0

    def test_empty_window_with_positive_count_raises(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(1).random_crashes(2, window=(5.0, 5.0))

    def test_empty_target_pool_raises(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(1).random_crashes(1, window=(0.0, 10.0), targets=[])

    def test_negative_count_raises(self):
        with pytest.raises(ConfigurationError):
            FaultPlan(1).random_crashes(-1, window=(0.0, 10.0))


class TestArmSubsetting:
    """`arm(only_indices=...)` keeps RNG fork keys by schedule position."""

    def _victims(self, only=None, targets=False):
        # Vehicle ids come from a process-global counter and feed the
        # fire-time victim sort; rewind for cross-run comparability.
        from repro.mobility.vehicle import reset_vehicle_ids

        reset_vehicle_ids()
        world = lossless_world(seed=33)
        vehicles, cloud = make_cloud(world, members=8)
        pool = [v.vehicle_id for v in vehicles] if targets else None
        plan = FaultPlan(17).random_crashes(4, window=(1.0, 20.0), targets=pool)
        injector = FaultInjector(world, plan, cloud=cloud)
        injector.arm(only)
        world.run_for(30.0)
        index = {v.vehicle_id: i for i, v in enumerate(vehicles)}
        return [(t, index[victim]) for t, _kind, victim in injector.ledger]

    def test_subset_run_is_deterministic(self):
        assert self._victims(only=[1, 3]) == self._victims(only=[1, 3])

    def test_subset_keeps_full_plan_fire_times(self):
        full = self._victims()
        subset = self._victims(only=[1, 3])
        assert [t for t, _ in subset] == [full[1][0], full[3][0]]

    def test_subset_of_pretargeted_specs_matches_full_plan(self):
        # With targets drawn up front the victim is baked into the spec,
        # so a subset must hit exactly the full plan's victims.
        full = self._victims(targets=True)
        subset = self._victims(only=[1, 3], targets=True)
        assert subset == [full[1], full[3]]

    def test_out_of_range_index_rejected(self):
        world = lossless_world()
        _vehicles, cloud = make_cloud(world)
        injector = FaultInjector(world, FaultPlan(1).crash(1.0), cloud=cloud)
        with pytest.raises(ConfigurationError):
            injector.arm(only_indices=[5])

    def test_empty_subset_arms_nothing(self):
        world = lossless_world()
        _vehicles, cloud = make_cloud(world)
        injector = FaultInjector(world, FaultPlan(1).crash(1.0), cloud=cloud)
        assert injector.arm(only_indices=[]) == 0
        world.run_for(5.0)
        assert injector.ledger == []


class TestPartitionReachesStorage:
    """A network partition must also split the cloud's replicated store."""

    def _storage_cloud(self):
        world = lossless_world(seed=51)
        vehicles, cloud = make_cloud(world, members=6)
        from repro.core import QuorumConfig

        cloud.enable_replicated_storage(quorum=QuorumConfig.majority(3))
        cloud.store_put("part-file", size_bytes=1000, target_replicas=3)
        channel = WirelessChannel(world)
        nodes = [VehicleNode(world, channel, v) for v in vehicles]
        return world, cloud, channel, nodes

    def test_partition_window_mirrors_into_replication_manager(self):
        world, cloud, channel, _nodes = self._storage_cloud()
        plan = FaultPlan(5).partition(2.0, duration_s=4.0, fraction=0.5)
        FaultInjector(world, plan, cloud=cloud, channel=channel).arm()
        world.run_for(3.0)
        assert cloud.storage._partition is not None
        world.run_for(5.0)
        assert cloud.storage._partition is None

    def test_no_storage_no_mirroring(self):
        world = lossless_world()
        channel = WirelessChannel(world)
        _a, _b = make_pair(world, channel)
        _vehicles, cloud = make_cloud(world)
        plan = FaultPlan(5).partition(1.0, duration_s=2.0, fraction=0.5)
        FaultInjector(world, plan, cloud=cloud, channel=channel).arm()
        world.run_for(5.0)  # must not raise despite storage being disabled
        assert cloud.storage is None
