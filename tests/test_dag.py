"""Tests for dependable DAG execution (`repro.dag`)."""

from __future__ import annotations

import itertools

import pytest

from repro.chaos import DagConservation, InvariantSuite, TaskConservation
from repro.core import (
    BackoffPolicy,
    CheckpointHandoverPolicy,
    ResourceOffer,
    Task,
    VehicularCloud,
)
from repro.dag import (
    DagScheduler,
    GraphState,
    GraphTemplate,
    RedundancyPlanner,
    ReliabilityEstimator,
    StageSpec,
    StageStatus,
    StageTemplate,
    TaskGraph,
    chain,
    map_reduce_template,
    pipeline_template,
    success_probability,
)
from repro.errors import ConfigurationError
from repro.faults import FaultInjector, FaultPlan
from repro.geometry import Vec2
from repro.mobility import StationaryModel

from repro.sim import ScenarioConfig, SeededRng, World


def diamond(deadline_s=None) -> TaskGraph:
    """source -> (left, right) -> sink."""
    return TaskGraph(
        stages=(
            StageSpec(name="source", work_mi=200.0),
            StageSpec(name="left", work_mi=300.0, deps=("source",)),
            StageSpec(name="right", work_mi=400.0, deps=("source",)),
            StageSpec(name="sink", work_mi=200.0, deps=("left", "right")),
        ),
        deadline_s=deadline_s,
    )


def build_cloud(world, members=5, mips=100.0, heterogeneous=False,
                leases=True, storage=True):
    model = StationaryModel(
        world, positions=[Vec2(i * 40.0, 0) for i in range(members)]
    )
    vehicles = model.populate(members)
    cloud = VehicularCloud(
        world,
        "dag-test-vc",
        handover_policy=CheckpointHandoverPolicy(),
        retry_backoff=BackoffPolicy(
            base_delay_s=0.5, multiplier=2.0, max_delay_s=8.0, jitter_fraction=0.1
        ),
    )
    for index, vehicle in enumerate(vehicles):
        rate = mips + (10.0 * index if heterogeneous else 0.0)
        cloud.admit(
            vehicle, offer=ResourceOffer(vehicle.vehicle_id, rate, 10**9, 1e6)
        )
    if leases:
        cloud.enable_worker_leases(lease_duration_s=4.0, sweep_interval_s=1.0)
    if storage:
        cloud.enable_replicated_storage(capacity_bytes=10**8)
    return vehicles, cloud


def dependable_scheduler(world, cloud, **kwargs):
    kwargs.setdefault("reliability", ReliabilityEstimator(cloud))
    kwargs.setdefault("redundancy", RedundancyPlanner(target_success=0.95))
    kwargs.setdefault("checkpointing", True)
    return DagScheduler(world, cloud, **kwargs)


class TestTaskGraph:
    def test_validation_rejects_duplicate_names(self):
        with pytest.raises(ConfigurationError):
            TaskGraph(stages=(
                StageSpec(name="a", work_mi=1.0),
                StageSpec(name="a", work_mi=2.0),
            ))

    def test_validation_rejects_unknown_dep(self):
        with pytest.raises(ConfigurationError):
            TaskGraph(stages=(StageSpec(name="a", work_mi=1.0, deps=("ghost",)),))

    def test_validation_rejects_self_dep(self):
        with pytest.raises(ConfigurationError):
            TaskGraph(stages=(StageSpec(name="a", work_mi=1.0, deps=("a",)),))

    def test_validation_rejects_cycle(self):
        with pytest.raises(ConfigurationError, match="cycle"):
            TaskGraph(stages=(
                StageSpec(name="a", work_mi=1.0, deps=("b",)),
                StageSpec(name="b", work_mi=1.0, deps=("a",)),
            ))

    def test_validation_rejects_empty_and_bad_deadline(self):
        with pytest.raises(ConfigurationError):
            TaskGraph(stages=())
        with pytest.raises(ConfigurationError):
            chain([100.0], deadline_s=0.0)

    def test_topological_order_respects_deps(self):
        graph = diamond()
        order = graph.topological_order()
        assert order[0] == "source"
        assert order[-1] == "sink"
        assert set(order[1:3]) == {"left", "right"}

    def test_structure_queries(self):
        graph = diamond()
        assert graph.roots() == ["source"]
        assert graph.terminals() == ["sink"]
        assert graph.successors("source") == ["left", "right"]
        assert graph.predecessors("sink") == ("left", "right")
        assert graph.total_work_mi == pytest.approx(1100.0)
        # Critical path: source -> right -> sink.
        assert graph.critical_path_mi() == pytest.approx(800.0)

    def test_chain_helper(self):
        graph = chain([100.0, 200.0, 300.0], deadline_s=60.0)
        assert graph.stage_names() == ["s0", "s1", "s2"]
        assert graph.predecessors("s2") == ("s1",)
        assert graph.deadline_s == 60.0

    def test_graph_ids_reset_between_tests(self):
        # The autouse conftest fixture rewinds the counter, so the first
        # graph of any test is graph-1.
        assert chain([1.0]).graph_id == "graph-1"


class TestRedundancyPlanner:
    def test_success_probability_matches_brute_force(self):
        ps = [0.9, 0.6, 0.3]
        for k in (1, 2, 3):
            exact = 0.0
            for outcome in itertools.product([0, 1], repeat=len(ps)):
                weight = 1.0
                for bit, p in zip(outcome, ps):
                    weight *= p if bit else (1.0 - p)
                if sum(outcome) >= k:
                    exact += weight
            assert success_probability(ps, k) == pytest.approx(exact)

    def test_success_probability_edges(self):
        assert success_probability([0.5], 0) == 1.0
        assert success_probability([0.5], 2) == 0.0
        with pytest.raises(ConfigurationError):
            success_probability([1.5], 1)

    def test_planner_grows_until_target(self):
        planner = RedundancyPlanner(target_success=0.95, max_replicas=4)
        plan = planner.plan([0.7, 0.7, 0.7, 0.7])
        # 1 - 0.3^n >= 0.95 needs n = 3.
        assert plan.replicas == 3
        assert plan.predicted_success >= 0.95
        assert plan.redundant

    def test_planner_single_replica_when_reliable(self):
        plan = RedundancyPlanner(target_success=0.95).plan([0.99, 0.98])
        assert plan.replicas == 1
        assert not plan.redundant

    def test_planner_caps_and_best_effort(self):
        plan = RedundancyPlanner(target_success=0.999, max_replicas=2).plan(
            [0.5, 0.5, 0.5]
        )
        assert plan.replicas == 2  # capped, returned anyway
        assert plan.predicted_success < 0.999

    def test_planner_prefers_strongest_candidates(self):
        plan = RedundancyPlanner(target_success=0.9).plan([0.2, 0.95, 0.5])
        assert plan.survival_ps[0] == pytest.approx(0.95)

    def test_planner_empty_candidates(self):
        plan = RedundancyPlanner().plan([])
        assert plan.replicas == 0
        assert plan.predicted_success == 0.0

    def test_planner_validation(self):
        with pytest.raises(ConfigurationError):
            RedundancyPlanner(target_success=1.0)
        with pytest.raises(ConfigurationError):
            RedundancyPlanner(k=0)
        with pytest.raises(ConfigurationError):
            RedundancyPlanner(k=3, max_replicas=2)


class TestReliabilityEstimator:
    def test_prior_hazard_before_any_churn(self, world):
        _v, cloud = build_cloud(world, members=4, leases=False, storage=False)
        estimator = ReliabilityEstimator(cloud, prior_events=1.0, prior_exposure_s=500.0)
        assert estimator.observed_losses() == 0
        assert estimator.churn_hazard_per_s(0.0) == pytest.approx(1.0 / 500.0)

    def test_churn_raises_hazard_and_lowers_survival(self, world):
        vehicles, cloud = build_cloud(world, members=6, leases=False, storage=False)
        estimator = ReliabilityEstimator(cloud)
        before = estimator.survival_probability("w", runtime_s=10.0, now=100.0)
        for vehicle in vehicles[:3]:
            cloud.member_leave(vehicle.vehicle_id)
        after = estimator.survival_probability("w", runtime_s=10.0, now=100.0)
        assert after < before

    def test_longer_runtime_lowers_survival(self, world):
        _v, cloud = build_cloud(world, members=4, leases=False, storage=False)
        estimator = ReliabilityEstimator(cloud)
        short = estimator.survival_probability("w", runtime_s=1.0, now=10.0)
        long = estimator.survival_probability("w", runtime_s=100.0, now=10.0)
        assert long < short

    def test_dwell_shortfall_discounts(self, world):
        _v, cloud = build_cloud(world, members=4, leases=False, storage=False)
        estimator = ReliabilityEstimator(cloud, dwell_safety=1.0)
        ample = estimator.survival_probability(
            "w", runtime_s=10.0, now=0.0, dwell_s=100.0
        )
        tight = estimator.survival_probability(
            "w", runtime_s=10.0, now=0.0, dwell_s=5.0
        )
        assert tight == pytest.approx(ample * 0.5)
        gone = estimator.survival_probability(
            "w", runtime_s=10.0, now=0.0, dwell_s=0.0
        )
        assert gone == 0.0

    def test_validation(self, world):
        _v, cloud = build_cloud(world, members=2, leases=False, storage=False)
        with pytest.raises(ConfigurationError):
            ReliabilityEstimator(cloud, dwell_safety=0.0)
        with pytest.raises(ConfigurationError):
            ReliabilityEstimator(cloud).survival_probability("w", -1.0, 0.0)


class TestTemplates:
    def test_pipeline_topology(self):
        template = pipeline_template([(100.0, 200.0)] * 3, deadline_s=30.0)
        graph = template.instantiate(SeededRng(7, "t"))
        assert graph.stage_names() == ["s0", "s1", "s2"]
        assert graph.deadline_s == 30.0
        for spec in graph.stages:
            assert 100.0 <= spec.work_mi <= 200.0

    def test_map_reduce_topology(self):
        template = map_reduce_template(3, (50.0, 60.0), (100.0, 100.0))
        graph = template.instantiate(SeededRng(7, "t"))
        assert graph.roots() == ["map0", "map1", "map2"]
        assert graph.terminals() == ["reduce"]
        assert graph.stage("reduce").work_mi == 100.0

    def test_instantiate_is_seed_deterministic(self):
        template = pipeline_template([(100.0, 500.0)] * 4)
        a = template.instantiate(SeededRng(11, "x"))
        b = template.instantiate(SeededRng(11, "x"))
        assert [s.work_mi for s in a.stages] == [s.work_mi for s in b.stages]

    def test_template_validation(self):
        with pytest.raises(ConfigurationError):
            StageTemplate(name="a", work_mi_range=(0.0, 1.0))
        with pytest.raises(ConfigurationError):
            GraphTemplate(stages=())
        with pytest.raises(ConfigurationError):
            GraphTemplate(stages=(
                StageTemplate(name="a", work_mi_range=(1.0, 1.0), deps=("ghost",)),
            ))
        with pytest.raises(ConfigurationError):
            map_reduce_template(0, (1.0, 1.0), (1.0, 1.0))


class TestDagSchedulerHappyPath:
    def test_chain_completes_in_order(self, world):
        _v, cloud = build_cloud(world)
        scheduler = dependable_scheduler(world, cloud)
        record = scheduler.submit(chain([500.0, 500.0, 500.0], deadline_s=120.0))
        world.run_for(120.0)
        assert record.state is GraphState.COMPLETED
        assert record.met_deadline() is True
        assert all(
            run.status is StageStatus.COMPLETED for run in record.stages.values()
        )
        # Dependencies were honoured: completion times are ordered.
        times = [record.stages[n].completed_at for n in ("s0", "s1", "s2")]
        assert times[0] < times[1] < times[2]
        assert scheduler.stats.graphs_completed == 1
        assert scheduler.stats.deadline_hits == 1
        assert scheduler.stats.checkpoint_writes == 3

    def test_diamond_runs_branches_concurrently(self, world):
        _v, cloud = build_cloud(world)
        scheduler = dependable_scheduler(world, cloud)
        record = scheduler.submit(diamond(deadline_s=120.0))
        world.run_for(120.0)
        assert record.state is GraphState.COMPLETED
        left = record.stages["left"]
        right = record.stages["right"]
        # Both branches started after source and before the sink, and the
        # sink waited for the slower branch.
        sink_done = record.stages["sink"].completed_at
        assert left.completed_at < sink_done and right.completed_at < sink_done

    def test_checkpointing_requires_storage(self, world):
        _v, cloud = build_cloud(world, storage=False)
        scheduler = DagScheduler(world, cloud, checkpointing=True)
        with pytest.raises(ConfigurationError):
            scheduler.submit(chain([100.0]))

    def test_accounting_balances_at_rest(self, world):
        _v, cloud = build_cloud(world)
        scheduler = dependable_scheduler(world, cloud)
        scheduler.submit(chain([300.0, 300.0], deadline_s=60.0))
        scheduler.submit(diamond(deadline_s=60.0))
        world.run_for(60.0)
        acc = scheduler.accounting()
        assert acc["graphs_submitted"] == 2
        assert acc["records_running"] == 0
        assert acc["replicas_live"] == 0
        assert acc["replicas_submitted"] == (
            acc["replicas_completed"] + acc["replicas_failed"]
        )

    def test_on_graph_finished_listener(self, world):
        _v, cloud = build_cloud(world)
        scheduler = dependable_scheduler(world, cloud)
        outcomes = []
        scheduler.on_graph_finished(lambda r, reason: outcomes.append(reason))
        scheduler.submit(chain([200.0], deadline_s=60.0))
        world.run_for(60.0)
        assert outcomes == ["completed"]


class TestRedundantExecution:
    def test_low_target_dispatches_replicas_and_cancels_losers(self, world):
        _v, cloud = build_cloud(world, members=6, heterogeneous=True)
        scheduler = DagScheduler(
            world,
            cloud,
            reliability=ReliabilityEstimator(
                cloud, prior_events=50.0, prior_exposure_s=100.0
            ),  # pessimistic prior forces replication
            redundancy=RedundancyPlanner(target_success=0.99, max_replicas=3),
            checkpointing=True,
        )
        record = scheduler.submit(chain([1000.0], deadline_s=120.0))
        world.run_for(120.0)
        assert record.state is GraphState.COMPLETED
        stats = scheduler.stats
        assert stats.redundant_dispatches >= 1
        assert stats.replicas_submitted > stats.stages_completed
        assert stats.replicas_cancelled >= 1
        assert cloud.stats.failure_reasons.get("replica_cancelled", 0) >= 1

    def test_replicas_land_on_distinct_workers(self, world):
        _v, cloud = build_cloud(world, members=6, heterogeneous=True)
        scheduler = DagScheduler(
            world,
            cloud,
            reliability=ReliabilityEstimator(
                cloud, prior_events=50.0, prior_exposure_s=100.0
            ),
            redundancy=RedundancyPlanner(target_success=0.99, max_replicas=3),
            checkpointing=True,
        )
        record = scheduler.submit(chain([1000.0], deadline_s=120.0))
        world.run_for(2.0)
        stage = record.stages["s0"]
        workers = [r.worker_id for r in stage.replicas.values() if r.worker_id]
        assert len(workers) >= 2
        assert len(set(workers)) == len(workers)


class TestChurnRecovery:
    def test_crash_during_stage_recovers(self, world):
        _v, cloud = build_cloud(world, members=5)
        scheduler = dependable_scheduler(world, cloud)
        record = scheduler.submit(chain([2000.0, 2000.0], deadline_s=200.0))
        world.run_for(5.0)
        stage = record.stages["s0"]
        (worker,) = {r.worker_id for r in stage.replicas.values() if r.worker_id}
        plan = FaultPlan(3).crash(6.0, target=worker)
        FaultInjector(world, plan, cloud=cloud).arm()
        world.run_for(200.0)
        assert record.state is GraphState.COMPLETED
        # Recovery came through the cloud's handover path, not a graph
        # restart — checkpointed DAGs never start over.
        assert record.restarts == 0

    def test_lost_uncheckpointed_output_reexecutes_frontier(self, world):
        _v, cloud = build_cloud(world, members=5)
        scheduler = DagScheduler(world, cloud, checkpointing=False)
        record = scheduler.submit(chain([500.0, 4000.0], deadline_s=400.0))
        world.run_for(20.0)
        s0 = record.stages["s0"]
        assert s0.status is StageStatus.COMPLETED
        assert s0.output_home is not None
        assert not s0.output_checkpointed
        # The worker holding s0's un-checkpointed output departs while s1
        # still needs it: s0 must re-execute (the lost frontier).  The
        # re-dispatch is synchronous, so the stage is RUNNING again.
        cloud.member_leave(s0.output_home)
        assert s0.status is StageStatus.RUNNING
        assert s0.completed_at is None
        assert scheduler.stats.outputs_lost == 1
        world.run_for(400.0)
        assert record.state is GraphState.COMPLETED
        assert record.stages_reexecuted >= 1

    def test_checkpointed_output_survives_departure(self, world):
        _v, cloud = build_cloud(world, members=5)
        scheduler = dependable_scheduler(world, cloud)
        record = scheduler.submit(chain([500.0, 4000.0], deadline_s=400.0))
        world.run_for(20.0)
        s0 = record.stages["s0"]
        assert s0.status is StageStatus.COMPLETED
        assert s0.output_checkpointed
        survivors = [
            r for r in scheduler.records[0].stages["s1"].replicas.values()
        ]
        # Departing *any* member never resets a checkpointed stage.
        for member in list(cloud.membership.member_ids()):
            if all(r.worker_id != member for r in survivors):
                cloud.member_leave(member)
                break
        assert s0.status is StageStatus.COMPLETED
        assert scheduler.stats.outputs_lost == 0
        world.run_for(400.0)
        assert record.state is GraphState.COMPLETED


class TestGraphFailure:
    def test_impossible_deadline_fails_typed(self, world):
        _v, cloud = build_cloud(world)
        scheduler = dependable_scheduler(world, cloud)
        record = scheduler.submit(chain([50_000.0], deadline_s=5.0))
        world.run_for(30.0)
        assert record.state is GraphState.FAILED
        assert record.failure_reason == "deadline"
        assert scheduler.stats.failure_reasons == {"deadline": 1}
        assert scheduler.stats.deadline_misses == 1
        assert scheduler.accounting()["replicas_live"] == 0
        assert world.metrics.counter("dag/dag/graph_failures/deadline") == 1

    def test_cancel_running_graph(self, world):
        _v, cloud = build_cloud(world)
        scheduler = dependable_scheduler(world, cloud)
        record = scheduler.submit(chain([5000.0, 5000.0]))
        world.run_for(2.0)
        assert scheduler.cancel(record, "tenant_gone") is True
        assert record.state is GraphState.FAILED
        assert record.failure_reason == "tenant_gone"
        assert scheduler.cancel(record) is False  # already terminal
        assert scheduler.accounting()["replicas_live"] == 0
        assert cloud.stats.failure_reasons.get("replica_cancelled", 0) >= 1

    def test_naive_sequential_restarts_whole_graph(self, world):
        _v, cloud = build_cloud(world, members=5, storage=False)
        scheduler = DagScheduler(
            world, cloud, checkpointing=False, sequential=True
        )
        record = scheduler.submit(chain([500.0, 4000.0], deadline_s=500.0))
        world.run_for(20.0)
        s0 = record.stages["s0"]
        assert s0.status is StageStatus.COMPLETED
        # Sequential mode: only one stage in flight at a time.
        running = [
            n for n, run in record.stages.items()
            if run.status is StageStatus.RUNNING
        ]
        assert running == ["s1"]
        cloud.member_leave(s0.output_home)
        assert scheduler.stats.outputs_lost == 1
        world.run_for(500.0)
        assert record.state is GraphState.COMPLETED


class TestDagConservationInvariant:
    def test_holds_through_churn_run(self, world):
        _v, cloud = build_cloud(world, members=8, heterogeneous=True)
        scheduler = dependable_scheduler(world, cloud)
        suite = InvariantSuite(
            [TaskConservation(cloud), DagConservation(scheduler)],
            metrics=world.metrics,
        )
        suite.attach(world, check_interval_s=0.5)
        for index in range(4):
            world.engine.schedule_at(
                index * 3.0,
                lambda: scheduler.submit(diamond(deadline_s=150.0)),
                label="graph",
            )
        targets = [m for m in cloud.membership.member_ids() if m != cloud.head_id]
        plan = FaultPlan(5).random_crashes(2, (5.0, 30.0), targets=targets)
        FaultInjector(world, plan, cloud=cloud).arm()
        world.run_for(200.0)
        assert suite.checks_run > 0
        assert suite.violations == []
        assert scheduler.accounting()["records_running"] == 0

    def test_detects_tampered_counters(self, world):
        _v, cloud = build_cloud(world)
        scheduler = dependable_scheduler(world, cloud)
        scheduler.submit(chain([200.0], deadline_s=60.0))
        world.run_for(60.0)
        invariant = DagConservation(scheduler)
        assert invariant.check(world.now) == []
        scheduler.stats.graphs_completed += 1  # simulate a double count
        violations = invariant.check(world.now)
        assert violations
        assert any("completed" in v.message for v in violations)


class TestServeIntegration:
    def _gateway(self, world, cloud, scheduler):
        from repro.serve import ServiceGateway

        return ServiceGateway(world, cloud, name="dag-gw", dag=scheduler)

    def test_gateway_submits_graphs(self, world):
        from repro.serve import PoissonArrivals, TenantSpec, WorkloadGenerator

        _v, cloud = build_cloud(world)
        scheduler = dependable_scheduler(world, cloud)
        gateway = self._gateway(world, cloud, scheduler)
        template = pipeline_template([(200.0, 400.0)] * 2, deadline_s=90.0)
        tenants = [
            TenantSpec(
                name="analytics",
                arrivals=PoissonArrivals(0.2),
                graph=template,
            )
        ]
        WorkloadGenerator(world, gateway, tenants, horizon_s=30.0).start()
        world.run_for(150.0)
        stats = gateway.stats
        assert stats.graphs_offered > 0
        assert stats.graphs_offered == scheduler.stats.graphs_submitted
        assert stats.graphs_completed + stats.graphs_failed == stats.graphs_offered
        assert stats.graphs_completed > 0

    def test_gateway_without_dag_rejects_graphs(self, world):
        from repro.serve import ServiceGateway

        _v, cloud = build_cloud(world)
        gateway = ServiceGateway(world, cloud)
        with pytest.raises(ConfigurationError):
            gateway.submit_graph(chain([100.0]))

    def test_gateway_rejects_mismatched_cloud(self, world):
        from repro.serve import ServiceGateway

        _v, cloud_a = build_cloud(world)
        other_world_vehicles, cloud_b = build_cloud(world, members=3)
        scheduler = dependable_scheduler(world, cloud_b)
        with pytest.raises(ConfigurationError):
            ServiceGateway(world, cloud_a, dag=scheduler)

    def test_mixed_tenants_scalar_and_graph(self, world):
        from repro.serve import PoissonArrivals, TenantSpec, WorkloadGenerator

        _v, cloud = build_cloud(world, members=6)
        scheduler = dependable_scheduler(world, cloud)
        gateway = self._gateway(world, cloud, scheduler)
        tenants = [
            TenantSpec(
                name="scalar", arrivals=PoissonArrivals(0.5),
                work_mi_range=(100.0, 200.0), deadline_s=30.0,
            ),
            TenantSpec(
                name="dag", arrivals=PoissonArrivals(0.2),
                graph=pipeline_template([(200.0, 300.0)] * 2, deadline_s=90.0),
            ),
        ]
        generator = WorkloadGenerator(world, gateway, tenants, horizon_s=30.0)
        generator.start()
        world.run_for(150.0)
        assert gateway.stats.completed > 0  # scalar stream served
        assert gateway.stats.graphs_offered > 0  # DAG stream served
        assert generator.loads["dag"].offered == gateway.stats.graphs_offered


class TestTracing:
    def test_dag_lifecycle_spans(self):
        world = World(ScenarioConfig(seed=42))
        world.enable_observability()
        _v, cloud = build_cloud(world)
        scheduler = dependable_scheduler(world, cloud)
        record = scheduler.submit(chain([300.0, 300.0], deadline_s=90.0))
        world.run_for(90.0)
        assert record.state is GraphState.COMPLETED
        spans = world.tracer.spans()
        roots = [s for s in spans if s.name == "dag.lifecycle"]
        assert len(roots) == 1
        root = roots[0]
        assert root.status == "ok"
        assert root.attrs["graph_id"] == record.graph.graph_id
        stages = [s for s in spans if s.name == "dag.stage"]
        assert len(stages) == 2
        assert all(s.parent_id == root.span_id for s in stages)
        assert all(s.status == "ok" for s in stages)
        # Replica task lifecycles nest under their stage span.
        stage_ids = {s.span_id for s in stages}
        tasks = [s for s in spans if s.name == "task.lifecycle"]
        assert tasks
        assert all(s.parent_id in stage_ids for s in tasks)

    def test_failed_graph_span_carries_reason(self):
        world = World(ScenarioConfig(seed=42))
        world.enable_observability()
        _v, cloud = build_cloud(world)
        scheduler = dependable_scheduler(world, cloud)
        scheduler.submit(chain([50_000.0], deadline_s=5.0))
        world.run_for(30.0)
        root = next(s for s in world.tracer.spans() if s.name == "dag.lifecycle")
        assert root.status == "failed"
        assert root.attrs["reason"] == "deadline"


class TestDeterminism:
    def _run_once(self, seed: int):
        from repro.core.tasks import reset_task_ids
        from repro.dag.graph import reset_graph_ids
        from repro.mobility.vehicle import reset_vehicle_ids

        reset_task_ids()
        reset_vehicle_ids()
        reset_graph_ids()
        world = World(ScenarioConfig(seed=seed))
        _v, cloud = build_cloud(world, members=6, heterogeneous=True)
        scheduler = DagScheduler(
            world,
            cloud,
            reliability=ReliabilityEstimator(cloud),
            redundancy=RedundancyPlanner(target_success=0.99, max_replicas=3),
            checkpointing=True,
        )
        rng = world.rng.fork("dag/test")
        template = pipeline_template([(400.0, 900.0)] * 3, deadline_s=120.0)
        for index in range(3):
            world.engine.schedule_at(
                index * 4.0,
                lambda: scheduler.submit(template.instantiate(rng)),
                label="graph",
            )
        targets = [m for m in cloud.membership.member_ids() if m != cloud.head_id]
        plan = FaultPlan(9).random_crashes(2, (5.0, 30.0), targets=targets)
        FaultInjector(world, plan, cloud=cloud).arm()
        world.run_for(200.0)
        return (
            scheduler.accounting(),
            dict(scheduler.stats.failure_reasons),
            scheduler.stats.graph_latencies_s,
            sorted(world.metrics.counters.items()),
        )

    def test_seeded_replay_is_byte_identical(self):
        assert self._run_once(31) == self._run_once(31)

    def test_different_seed_differs(self):
        # Sanity: the comparison above is not vacuously true.
        a = self._run_once(31)
        b = self._run_once(32)
        assert a != b
