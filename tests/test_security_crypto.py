"""Tests for the cost-modelled crypto layer."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import CryptoError
from repro.security import (
    CryptoCostModel,
    GroupSignatureScheme,
    HmacScheme,
    KeyPair,
    SignatureScheme,
    serialize_for_signing,
    sha256_hex,
)


class TestSignatureScheme:
    def test_sign_verify_round_trip(self):
        scheme = SignatureScheme()
        keypair = KeyPair.generate("car")
        op = scheme.sign(keypair, b"hello")
        assert scheme.verify(keypair.public_id, b"hello", op.value).value

    def test_wrong_data_rejected(self):
        scheme = SignatureScheme()
        keypair = KeyPair.generate()
        signature = scheme.sign(keypair, b"hello").value
        assert not scheme.verify(keypair.public_id, b"tampered", signature).value

    def test_wrong_key_rejected(self):
        scheme = SignatureScheme()
        alice = KeyPair.generate()
        bob = KeyPair.generate()
        signature = scheme.sign(alice, b"hello").value
        assert not scheme.verify(bob.public_id, b"hello", signature).value

    def test_forgery_without_private_key_fails(self):
        """An attacker knowing only the public id cannot mint signatures."""
        from repro.security.crypto import Signature

        scheme = SignatureScheme()
        victim = KeyPair.generate()
        forged = Signature(
            signer_public_id=victim.public_id,
            binding=sha256_hex(b"attacker guess"),
        )
        assert not scheme.verify(victim.public_id, b"hello", forged).value

    def test_costs_attached(self):
        costs = CryptoCostModel()
        scheme = SignatureScheme(costs)
        keypair = KeyPair.generate()
        sign_op = scheme.sign(keypair, b"x")
        verify_op = scheme.verify(keypair.public_id, b"x", sign_op.value)
        assert sign_op.cost_s == costs.ecdsa_sign_s
        assert verify_op.cost_s == costs.ecdsa_verify_s
        assert sign_op.size_bytes == costs.signature_bytes

    def test_verify_cheaper_than_group_verify(self):
        costs = CryptoCostModel()
        assert costs.ecdsa_verify_s < costs.group_verify_s

    @given(st.binary(min_size=0, max_size=200))
    def test_round_trip_any_payload(self, payload):
        scheme = SignatureScheme()
        keypair = KeyPair.generate()
        signature = scheme.sign(keypair, payload).value
        assert scheme.verify(keypair.public_id, payload, signature).value


class TestHmac:
    def test_round_trip(self):
        scheme = HmacScheme()
        tag = scheme.tag(b"key", b"data").value
        assert scheme.verify(b"key", b"data", tag).value

    def test_wrong_key_rejected(self):
        scheme = HmacScheme()
        tag = scheme.tag(b"key", b"data").value
        assert not scheme.verify(b"other", b"data", tag).value

    def test_wrong_data_rejected(self):
        scheme = HmacScheme()
        tag = scheme.tag(b"key", b"data").value
        assert not scheme.verify(b"key", b"other", tag).value

    def test_hmac_cheaper_than_signature(self):
        costs = CryptoCostModel()
        assert costs.hmac_s < costs.ecdsa_sign_s


class TestGroupSignatures:
    def _group(self):
        scheme = GroupSignatureScheme()
        scheme.create_group("g1")
        key = scheme.enroll_member("g1", "alice")
        return scheme, key

    def test_member_can_sign_and_anyone_verify(self):
        scheme, key = self._group()
        signature = scheme.sign("g1", "alice", key, b"msg").value
        assert scheme.verify(b"msg", signature).value

    def test_signature_anonymous_but_openable(self):
        scheme, key = self._group()
        scheme.enroll_member("g1", "bob")
        signature = scheme.sign("g1", "alice", key, b"msg").value
        # Verifiers learn only the group id...
        assert signature.group_id == "g1"
        assert "alice" not in repr(signature.binding)
        # ...but the manager can open it.
        assert scheme.open(signature).value == "alice"

    def test_non_member_cannot_sign(self):
        scheme, _key = self._group()
        with pytest.raises(CryptoError):
            scheme.sign("g1", "mallory", "stolen-looking-key", b"msg")

    def test_removed_member_cannot_sign(self):
        scheme, key = self._group()
        scheme.remove_member("g1", "alice")
        with pytest.raises(CryptoError):
            scheme.sign("g1", "alice", key, b"msg")

    def test_tampered_message_rejected(self):
        scheme, key = self._group()
        signature = scheme.sign("g1", "alice", key, b"msg").value
        assert not scheme.verify(b"other", signature).value

    def test_unknown_group_verify_fails(self):
        scheme, key = self._group()
        signature = scheme.sign("g1", "alice", key, b"msg").value
        other = GroupSignatureScheme()
        assert not other.verify(b"msg", signature).value

    def test_duplicate_group_raises(self):
        scheme = GroupSignatureScheme()
        scheme.create_group("g")
        with pytest.raises(CryptoError):
            scheme.create_group("g")

    def test_member_count(self):
        scheme, _key = self._group()
        scheme.enroll_member("g1", "bob")
        assert scheme.member_count("g1") == 2

    def test_group_ops_cost_more_than_ecdsa(self):
        costs = CryptoCostModel()
        scheme, key = self._group()
        op = scheme.sign("g1", "alice", key, b"m")
        assert op.cost_s == costs.group_sign_s
        assert op.cost_s > costs.ecdsa_sign_s


class TestSerialization:
    def test_deterministic(self):
        assert serialize_for_signing("a", 1, 2.5) == serialize_for_signing("a", 1, 2.5)

    def test_unambiguous_boundaries(self):
        # ("ab", "c") must not collide with ("a", "bc").
        assert serialize_for_signing("ab", "c") != serialize_for_signing("a", "bc")

    def test_type_sensitive(self):
        assert serialize_for_signing(1) != serialize_for_signing("1")
