"""Tests for the analysis helpers (stats + table rendering)."""

from __future__ import annotations

import math

import pytest

from repro.analysis import (
    confidence_interval_95,
    format_cell,
    mean,
    ratio_or_inf,
    render_comparison,
    render_table,
    running_mean,
    speedup,
    std,
)


class TestStats:
    def test_mean(self):
        assert mean([1, 2, 3]) == 2.0

    def test_mean_empty_raises(self):
        with pytest.raises(ValueError):
            mean([])

    def test_std_constant_series(self):
        assert std([5, 5, 5]) == 0.0

    def test_std_known_value(self):
        assert std([2, 4]) == pytest.approx(1.0)

    def test_confidence_interval_contains_mean(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        low, high = confidence_interval_95(values)
        assert low <= mean(values) <= high

    def test_confidence_interval_single_value(self):
        assert confidence_interval_95([7.0]) == (7.0, 7.0)

    def test_confidence_interval_empty(self):
        assert confidence_interval_95([]) == (0.0, 0.0)

    def test_ratio_or_inf(self):
        assert ratio_or_inf(6, 3) == 2.0
        assert math.isinf(ratio_or_inf(1, 0))

    def test_speedup(self):
        assert speedup(10.0, 2.0) == 5.0
        assert math.isinf(speedup(10.0, 0.0))

    def test_running_mean(self):
        assert running_mean([1, 2, 3, 4], window=2) == [1.0, 1.5, 2.5, 3.5]

    def test_running_mean_window_one(self):
        assert running_mean([1, 2, 3], window=1) == [1.0, 2.0, 3.0]

    def test_running_mean_invalid_window(self):
        with pytest.raises(ValueError):
            running_mean([1], window=0)


class TestFormatCell:
    def test_booleans(self):
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"

    def test_large_floats_have_thousands_separator(self):
        assert format_cell(1234567.0) == "1,234,567"

    def test_small_floats_use_sig_figs(self):
        assert format_cell(0.123456) == "0.123"

    def test_nan_and_inf(self):
        assert format_cell(float("nan")) == "nan"
        assert format_cell(float("inf")) == "inf"
        assert format_cell(float("-inf")) == "-inf"

    def test_strings_pass_through(self):
        assert format_cell("hello") == "hello"

    def test_integers(self):
        assert format_cell(42) == "42"


class TestRenderTable:
    def test_basic_alignment(self):
        table = render_table(["name", "value"], [["a", 1], ["long-name", 2]])
        lines = table.splitlines()
        assert len(lines) == 4  # header, rule, 2 rows
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_title_prepended(self):
        table = render_table(["x"], [[1]], title="My Table")
        assert table.splitlines()[0] == "My Table"

    def test_row_width_mismatch_raises(self):
        with pytest.raises(ValueError):
            render_table(["a", "b"], [[1]])

    def test_empty_rows_ok(self):
        table = render_table(["a"], [])
        assert "a" in table

    def test_render_comparison(self):
        table = render_comparison(
            "system", ["alpha", "beta"], ["speed"], [[1.0], [2.0]]
        )
        assert "alpha" in table and "beta" in table
        assert "system" in table and "speed" in table
