"""Full-stack integration: every layer in one scenario.

One simulated highway scene exercising mobility, radio, beacons, secure
bootstrap into a dynamic v-cloud, task offloading under churn, networked
event reporting with a collusion attack, a tracking adversary, and a
forensic investigation that de-anonymizes the attackers — the complete
pipeline the paper's Fig. 3 sketches.
"""

from __future__ import annotations

import pytest

from repro.core import (
    DynamicVCloud,
    ForensicService,
    SecureBootstrap,
    Task,
    TaskState,
    TopologyRecorder,
)
from repro.geometry import Vec2
from repro.mobility import Highway, HighwayModel
from repro.net import BeaconService, VehicleNode, WirelessChannel
from repro.security import TrustedAuthority
from repro.security.access import AuditLog, AuditRecord
from repro.security.protocols import PseudonymAuthProtocol
from repro.sim import ChannelConfig, ScenarioConfig, World
from repro.trust import (
    EventKind,
    EventReportCollector,
    MessageClassifier,
    ReputationStore,
    TrustPipeline,
    WeightedVoting,
    WitnessReporter,
)


@pytest.fixture(scope="module")
def scenario():
    """Build and run the full scene once; tests assert on the outcome."""
    world = World(
        ScenarioConfig(
            seed=2026,
            vehicle_count=24,
            channel=ChannelConfig(base_loss_probability=0.01, loss_per_100m=0.005),
        )
    )
    highway = Highway(length_m=2500)
    model = HighwayModel(world, highway)
    vehicles = model.populate(24)
    model.start()

    channel = WirelessChannel(world)
    nodes = {v.vehicle_id: VehicleNode(world, channel, v) for v in vehicles}

    # Security plane.
    authority = TrustedAuthority()
    protocol = PseudonymAuthProtocol(authority, pool_size=30, change_interval_s=30.0)

    # Cloud formation with secure bootstrap.
    arch = DynamicVCloud(world, model)
    protocol.enroll(vehicles[0].vehicle_id)
    arch.cloud.admit(vehicles[0])
    arch.cloud.head_id = vehicles[0].vehicle_id
    bootstrap = SecureBootstrap(world, arch.cloud, protocol)
    boot_results = [bootstrap.initialize(v) for v in vehicles[1:12]]

    # Beacons with rotating pseudonyms.
    services = []
    for vehicle in vehicles:
        if not protocol.is_enrolled(vehicle.vehicle_id):
            protocol.enroll(vehicle.vehicle_id)
        provider = protocol.identity_provider(vehicle.vehicle_id)
        service = BeaconService(world, nodes[vehicle.vehicle_id], identity_provider=provider)
        service.start()
        services.append(service)

    # Management plane: topology recording for later forensics.
    recorder = TopologyRecorder(
        world,
        lambda v: protocol.on_air_identity(v.vehicle_id, world.now),
        vehicles,
        interval_s=5.0,
    )
    recorder.start()

    # Trust plane at the captain.
    pipeline = TrustPipeline(
        classifier=MessageClassifier(),
        validator=WeightedVoting(),
        reputation=ReputationStore(),
        per_message_auth_cost_s=protocol.message_auth_cost().verify_cost_s,
    )
    collector_node = nodes[vehicles[0].vehicle_id]
    collector = EventReportCollector(world, collector_node, pipeline)
    collector.start()

    # Workload.
    task_records = []
    for index in range(10):
        world.engine.schedule_at(
            index * 3.0,
            lambda: task_records.append(
                arch.cloud.submit(Task(work_mi=1200, deadline_s=40))
            ),
            label="task",
        )
    arch.start()
    world.run_for(20.0)

    # Attack: three colluders at the scene fabricate an icy-road event;
    # five honest witnesses, also at the scene, deny it.  Witnesses are
    # by definition where the event is, so place them near the captain
    # (who collects reports) before they transmit.
    captain_pos = vehicles[0].position
    evil_ids = []
    for index in range(3):
        evil_vehicle = vehicles[12 + index]
        evil_vehicle.position = captain_pos + Vec2(20.0 * (index + 1), 3.0)
        evil_pn = protocol.on_air_identity(evil_vehicle.vehicle_id, world.now)
        evil_ids.append((evil_vehicle.vehicle_id, evil_pn))
        WitnessReporter(world, nodes[evil_vehicle.vehicle_id]).report(
            EventKind.ICY_ROAD, captain_pos, claim=True, identity=evil_pn
        )
    for index in range(5):
        honest_vehicle = vehicles[15 + index]
        honest_vehicle.position = captain_pos + Vec2(-20.0 * (index + 1), 3.0)
        honest_pn = protocol.on_air_identity(honest_vehicle.vehicle_id, world.now)
        WitnessReporter(world, nodes[honest_vehicle.vehicle_id]).report(
            EventKind.ICY_ROAD, captain_pos, claim=False, identity=honest_pn
        )
    attack_time = world.now
    # The topology record must capture the scene as staged.
    recorder.sample()

    # Audit trail of the attackers probing protected data.
    audit = AuditLog()
    for _vehicle_id, evil_pn in evil_ids:
        for probe in range(3):
            audit.append(
                AuditRecord(
                    time=world.now,
                    package_id="pkg-roadmap",
                    requester=evil_pn,
                    action="read",
                    resource="secret",
                    permitted=False,
                )
            )

    world.run_for(40.0)

    forensics = ForensicService(authority, recorder)
    report = forensics.investigate(
        audit,
        captain_pos,
        area_radius_m=1500.0,
        window=(attack_time - 6.0, attack_time + 6.0),
        min_denials=3,
    )

    return {
        "world": world,
        "arch": arch,
        "boot_results": boot_results,
        "bootstrap": bootstrap,
        "task_records": task_records,
        "collector": collector,
        "evil_ids": evil_ids,
        "forensic_report": report,
        "recorder": recorder,
    }


def test_bootstrap_admits_fleet(scenario):
    results = scenario["boot_results"]
    assert all(result.admitted for result in results)
    assert scenario["bootstrap"].stats.admission_rate == 1.0


def test_cloud_serves_workload_under_real_mobility(scenario):
    records = scenario["task_records"]
    completed = [r for r in records if r.state is TaskState.COMPLETED]
    assert len(completed) >= 8
    assert scenario["arch"].cloud.stats.infra_messages == 0


def test_fabricated_event_rejected_over_the_air(scenario):
    collector = scenario["collector"]
    assert collector.reports_received >= 5
    icy_decisions = [
        d
        for d in collector.decisions
        if d.cluster.kind is EventKind.ICY_ROAD and d.cluster.size >= 4
    ]
    assert icy_decisions, "the attacked event must have been classified"
    assert not icy_decisions[0].decision.believe

    # Stringent time constraint: the whole evaluation stays sub-second.
    assert icy_decisions[0].total_latency_s < 1.0


def test_forensics_names_attackers_from_pseudonyms(scenario):
    report = scenario["forensic_report"]
    evil_real_ids = {vehicle_id for vehicle_id, _pn in scenario["evil_ids"]}
    assert set(report.suspects) == evil_real_ids
    # Accountability had a privacy price: innocents were de-anonymized.
    assert report.innocents_exposed > 0


def test_topology_recorder_captured_the_scene(scenario):
    recorder = scenario["recorder"]
    assert len(recorder.snapshots) >= 5
    assert recorder.storage_records > 0
