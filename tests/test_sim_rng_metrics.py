"""Tests for the seeded RNG and the metrics registry."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim import MetricsRegistry, SeededRng, derive_seed, percentile, summarize


class TestSeededRng:
    def test_same_seed_same_stream(self):
        a = SeededRng(1, "x")
        b = SeededRng(1, "x")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_seeds_differ(self):
        a = SeededRng(1)
        b = SeededRng(2)
        assert [a.random() for _ in range(10)] != [b.random() for _ in range(10)]

    def test_fork_independent_of_sibling(self):
        root = SeededRng(1)
        fork_a_before = [root.fork("a").random() for _ in range(5)]
        # Drawing from fork 'b' must not perturb fork 'a'.
        _ = [SeededRng(1).fork("b").random() for _ in range(100)]
        fork_a_after = [SeededRng(1).fork("a").random() for _ in range(5)]
        assert fork_a_before == fork_a_after

    def test_fork_names_hierarchical(self):
        child = SeededRng(1, "root").fork("sub")
        assert child.name == "root/sub"

    def test_uniform_bounds(self):
        rng = SeededRng(3)
        for _ in range(100):
            assert 2.0 <= rng.uniform(2.0, 4.0) <= 4.0

    def test_exponential_positive(self):
        rng = SeededRng(4)
        assert all(rng.exponential(2.0) >= 0 for _ in range(100))

    def test_exponential_invalid_rate(self):
        with pytest.raises(ValueError):
            SeededRng(1).exponential(0.0)

    def test_poisson_mean_roughly_correct(self):
        rng = SeededRng(5)
        draws = [rng.poisson(3.0) for _ in range(2000)]
        assert 2.7 < sum(draws) / len(draws) < 3.3

    def test_poisson_zero_mean(self):
        assert SeededRng(1).poisson(0.0) == 0

    def test_poisson_negative_raises(self):
        with pytest.raises(ValueError):
            SeededRng(1).poisson(-1.0)

    def test_choice_empty_raises(self):
        with pytest.raises(ValueError):
            SeededRng(1).choice([])

    def test_weighted_choice_respects_zero_weight(self):
        rng = SeededRng(6)
        picks = {rng.weighted_choice(["a", "b"], [1.0, 0.0]) for _ in range(50)}
        assert picks == {"a"}

    def test_weighted_choice_length_mismatch(self):
        with pytest.raises(ValueError):
            SeededRng(1).weighted_choice(["a"], [1.0, 2.0])

    def test_chance_bounds(self):
        rng = SeededRng(7)
        assert not any(rng.chance(0.0) for _ in range(100))
        assert all(rng.chance(1.0) for _ in range(100))

    def test_chance_invalid_probability(self):
        with pytest.raises(ValueError):
            SeededRng(1).chance(1.5)

    def test_token_is_hex_and_deterministic(self):
        token = SeededRng(8).token(4)
        assert len(token) == 8
        int(token, 16)
        assert SeededRng(8).token(4) == token

    def test_shuffle_preserves_elements(self):
        rng = SeededRng(9)
        items = list(range(20))
        rng.shuffle(items)
        assert sorted(items) == list(range(20))

    def test_derive_seed_stable(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)
        assert derive_seed(1, "a") != derive_seed(1, "b")


class TestPercentile:
    def test_median_odd(self):
        assert percentile([1, 2, 3], 0.5) == 2

    def test_interpolation(self):
        assert percentile([0, 10], 0.25) == pytest.approx(2.5)

    def test_extremes(self):
        values = [5, 1, 9]
        ordered = sorted(values)
        assert percentile(ordered, 0.0) == 1
        assert percentile(ordered, 1.0) == 9

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)

    def test_invalid_fraction_raises(self):
        with pytest.raises(ValueError):
            percentile([1], 1.5)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50))
    def test_within_bounds(self, values):
        ordered = sorted(values)
        result = percentile(ordered, 0.9)
        assert ordered[0] <= result <= ordered[-1]


class TestSummarize:
    def test_basic_stats(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == pytest.approx(2.5)
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_as_dict_keys(self):
        keys = set(summarize([1.0]).as_dict())
        assert {"count", "mean", "std", "min", "max", "p50", "p95"} <= keys


class TestMetricsRegistry:
    def test_counters(self):
        metrics = MetricsRegistry()
        metrics.increment("x")
        metrics.increment("x", 2.5)
        assert metrics.counter("x") == 3.5
        assert metrics.counter("missing") == 0.0

    def test_gauges(self):
        metrics = MetricsRegistry()
        metrics.set_gauge("depth", 7.0)
        assert metrics.gauge("depth") == 7.0
        assert metrics.gauge("missing", -1.0) == -1.0

    def test_series_and_summary(self):
        metrics = MetricsRegistry()
        for value in [1.0, 2.0, 3.0]:
            metrics.observe("lat", value)
        summary = metrics.summary("lat")
        assert summary is not None and summary.mean == pytest.approx(2.0)
        assert metrics.summary("missing") is None

    def test_ratio(self):
        metrics = MetricsRegistry()
        metrics.increment("hits", 3)
        metrics.increment("total", 4)
        assert metrics.ratio("hits", "total") == pytest.approx(0.75)
        assert metrics.ratio("hits", "missing") == 0.0

    def test_timelines(self):
        metrics = MetricsRegistry()
        metrics.observe_at("queue", 1.0, 5.0)
        metrics.observe_at("queue", 2.0, 7.0)
        assert metrics.timelines["queue"] == [(1.0, 5.0), (2.0, 7.0)]

    def test_merged_combines_everything(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.increment("n", 1)
        b.increment("n", 2)
        a.observe("s", 1.0)
        b.observe("s", 3.0)
        merged = a.merged(b)
        assert merged.counter("n") == 3
        assert merged.samples("s") == [1.0, 3.0]

    def test_snapshot_is_flat(self):
        metrics = MetricsRegistry()
        metrics.increment("a")
        metrics.set_gauge("g", 1.0)
        metrics.observe("s", 2.0)
        snapshot = metrics.snapshot()
        assert snapshot["counter/a"] == 1.0
        assert snapshot["gauge/g"] == 1.0
        assert isinstance(snapshot["series/s"], dict)
