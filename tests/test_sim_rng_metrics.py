"""Tests for the seeded RNG and the metrics registry."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim import (
    MetricsRegistry,
    SeededRng,
    ToleranceBand,
    derive_seed,
    diff_metrics,
    percentile,
    summarize,
)


class TestSeededRng:
    def test_same_seed_same_stream(self):
        a = SeededRng(1, "x")
        b = SeededRng(1, "x")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_seeds_differ(self):
        a = SeededRng(1)
        b = SeededRng(2)
        assert [a.random() for _ in range(10)] != [b.random() for _ in range(10)]

    def test_fork_independent_of_sibling(self):
        root = SeededRng(1)
        fork_a_before = [root.fork("a").random() for _ in range(5)]
        # Drawing from fork 'b' must not perturb fork 'a'.
        _ = [SeededRng(1).fork("b").random() for _ in range(100)]
        fork_a_after = [SeededRng(1).fork("a").random() for _ in range(5)]
        assert fork_a_before == fork_a_after

    def test_fork_names_hierarchical(self):
        child = SeededRng(1, "root").fork("sub")
        assert child.name == "root/sub"

    def test_uniform_bounds(self):
        rng = SeededRng(3)
        for _ in range(100):
            assert 2.0 <= rng.uniform(2.0, 4.0) <= 4.0

    def test_exponential_positive(self):
        rng = SeededRng(4)
        assert all(rng.exponential(2.0) >= 0 for _ in range(100))

    def test_exponential_invalid_rate(self):
        with pytest.raises(ValueError):
            SeededRng(1).exponential(0.0)

    def test_poisson_mean_roughly_correct(self):
        rng = SeededRng(5)
        draws = [rng.poisson(3.0) for _ in range(2000)]
        assert 2.7 < sum(draws) / len(draws) < 3.3

    def test_poisson_zero_mean(self):
        assert SeededRng(1).poisson(0.0) == 0

    def test_poisson_negative_raises(self):
        with pytest.raises(ValueError):
            SeededRng(1).poisson(-1.0)

    def test_choice_empty_raises(self):
        with pytest.raises(ValueError):
            SeededRng(1).choice([])

    def test_weighted_choice_respects_zero_weight(self):
        rng = SeededRng(6)
        picks = {rng.weighted_choice(["a", "b"], [1.0, 0.0]) for _ in range(50)}
        assert picks == {"a"}

    def test_weighted_choice_length_mismatch(self):
        with pytest.raises(ValueError):
            SeededRng(1).weighted_choice(["a"], [1.0, 2.0])

    def test_chance_bounds(self):
        rng = SeededRng(7)
        assert not any(rng.chance(0.0) for _ in range(100))
        assert all(rng.chance(1.0) for _ in range(100))

    def test_chance_invalid_probability(self):
        with pytest.raises(ValueError):
            SeededRng(1).chance(1.5)

    def test_token_is_hex_and_deterministic(self):
        token = SeededRng(8).token(4)
        assert len(token) == 8
        int(token, 16)
        assert SeededRng(8).token(4) == token

    def test_shuffle_preserves_elements(self):
        rng = SeededRng(9)
        items = list(range(20))
        rng.shuffle(items)
        assert sorted(items) == list(range(20))

    def test_derive_seed_stable(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)
        assert derive_seed(1, "a") != derive_seed(1, "b")


class TestPercentile:
    def test_median_odd(self):
        assert percentile([1, 2, 3], 0.5) == 2

    def test_interpolation(self):
        assert percentile([0, 10], 0.25) == pytest.approx(2.5)

    def test_extremes(self):
        values = [5, 1, 9]
        ordered = sorted(values)
        assert percentile(ordered, 0.0) == 1
        assert percentile(ordered, 1.0) == 9

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)

    def test_invalid_fraction_raises(self):
        with pytest.raises(ValueError):
            percentile([1], 1.5)
        with pytest.raises(ValueError):
            percentile([1], -0.1)

    def test_single_sample_any_fraction(self):
        for fraction in (0.0, 0.25, 0.5, 0.99, 1.0):
            assert percentile([7.5], fraction) == 7.5

    def test_result_clamped_into_data(self):
        # Values chosen so naive interpolation accumulates float error;
        # the clamp guarantees the result never escapes [min, max].
        ordered = sorted([0.1 + 1e-17, 0.1, 0.1])
        result = percentile(ordered, 0.9999999)
        assert ordered[0] <= result <= ordered[-1]

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50))
    def test_within_bounds(self, values):
        ordered = sorted(values)
        result = percentile(ordered, 0.9)
        assert ordered[0] <= result <= ordered[-1]


class TestSummarize:
    def test_basic_stats(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.count == 4
        assert summary.mean == pytest.approx(2.5)
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_as_dict_keys(self):
        keys = set(summarize([1.0]).as_dict())
        assert {"count", "mean", "std", "min", "max", "p50", "p95"} <= keys

    def test_single_sample_collapses_every_stat(self):
        summary = summarize([4.25])
        assert summary.count == 1
        assert summary.std == 0.0
        assert (
            summary.mean
            == summary.minimum
            == summary.maximum
            == summary.p50
            == summary.p90
            == summary.p95
            == summary.p99
            == 4.25
        )

    def test_quantiles_never_escape_the_data(self):
        summary = summarize([1.0, 1.0, 1.0 + 1e-15])
        for value in (summary.p50, summary.p90, summary.p95, summary.p99):
            assert summary.minimum <= value <= summary.maximum


class TestMetricsRegistry:
    def test_counters(self):
        metrics = MetricsRegistry()
        metrics.increment("x")
        metrics.increment("x", 2.5)
        assert metrics.counter("x") == 3.5
        assert metrics.counter("missing") == 0.0

    def test_gauges(self):
        metrics = MetricsRegistry()
        metrics.set_gauge("depth", 7.0)
        assert metrics.gauge("depth") == 7.0
        assert metrics.gauge("missing", -1.0) == -1.0

    def test_series_and_summary(self):
        metrics = MetricsRegistry()
        for value in [1.0, 2.0, 3.0]:
            metrics.observe("lat", value)
        summary = metrics.summary("lat")
        assert summary is not None and summary.mean == pytest.approx(2.0)
        assert metrics.summary("missing") is None

    def test_ratio(self):
        metrics = MetricsRegistry()
        metrics.increment("hits", 3)
        metrics.increment("total", 4)
        assert metrics.ratio("hits", "total") == pytest.approx(0.75)
        assert metrics.ratio("hits", "missing") == 0.0

    def test_timelines(self):
        metrics = MetricsRegistry()
        metrics.observe_at("queue", 1.0, 5.0)
        metrics.observe_at("queue", 2.0, 7.0)
        assert metrics.timelines["queue"] == [(1.0, 5.0), (2.0, 7.0)]

    def test_merged_combines_everything(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.increment("n", 1)
        b.increment("n", 2)
        a.observe("s", 1.0)
        b.observe("s", 3.0)
        merged = a.merged(b)
        assert merged.counter("n") == 3
        assert merged.samples("s") == [1.0, 3.0]

    def test_counters_under_prefix(self):
        metrics = MetricsRegistry()
        metrics.increment("storage/stale_reads", 2)
        metrics.increment("storage/repairs", 1)
        metrics.increment("storageother", 9)  # shares the prefix string only
        assert metrics.counters_under("storage") == {"stale_reads": 2.0, "repairs": 1.0}

    def test_counters_under_trailing_slash_equivalent(self):
        metrics = MetricsRegistry()
        metrics.increment("faults/injected", 3)
        assert metrics.counters_under("faults/") == metrics.counters_under("faults")

    def test_counters_under_nested_prefix(self):
        metrics = MetricsRegistry()
        metrics.increment("cloud/storage/reads", 4)
        metrics.increment("cloud/tasks/completed", 2)
        assert metrics.counters_under("cloud") == {
            "storage/reads": 4.0,
            "tasks/completed": 2.0,
        }
        assert metrics.counters_under("cloud/storage") == {"reads": 4.0}

    def test_merged_preserves_timelines(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.observe_at("queue", 1.0, 5.0)
        b.observe_at("queue", 2.0, 7.0)
        b.observe_at("faults", 0.5, 1.0)
        merged = a.merged(b)
        assert merged.timeline("queue") == [(1.0, 5.0), (2.0, 7.0)]
        assert merged.timeline("faults") == [(0.5, 1.0)]
        # The sources are untouched.
        assert a.timeline("queue") == [(1.0, 5.0)]
        assert b.timeline("queue") == [(2.0, 7.0)]

    def test_merged_sums_truncation_counts(self):
        a = MetricsRegistry(max_samples_per_series=1)
        b = MetricsRegistry(max_samples_per_series=1)
        for registry in (a, b):
            registry.observe("s", 1.0)
            registry.observe("s", 2.0)
        merged = a.merged(b)
        assert merged.truncated("s") == 2

    def test_timeline_accessor_defaults_empty(self):
        metrics = MetricsRegistry()
        assert metrics.timeline("missing") == []

    def test_snapshot_is_flat(self):
        metrics = MetricsRegistry()
        metrics.increment("a")
        metrics.set_gauge("g", 1.0)
        metrics.observe("s", 2.0)
        snapshot = metrics.snapshot()
        assert snapshot["counter/a"] == 1.0
        assert snapshot["gauge/g"] == 1.0
        assert isinstance(snapshot["series/s"], dict)

    def test_snapshot_includes_timelines(self):
        metrics = MetricsRegistry()
        metrics.observe_at("queue", 1.0, 5.0)
        snapshot = metrics.snapshot()
        assert snapshot["timeline/queue"] == [(1.0, 5.0)]


class TestMetricsSampleCap:
    def test_series_cap_drops_newest_and_counts(self):
        metrics = MetricsRegistry(max_samples_per_series=2)
        for value in (1.0, 2.0, 3.0, 4.0):
            metrics.observe("lat", value)
        assert metrics.samples("lat") == [1.0, 2.0]
        assert metrics.truncated("lat") == 2

    def test_timeline_cap_counts_separately(self):
        metrics = MetricsRegistry(max_samples_per_series=1)
        metrics.observe_at("queue", 0.0, 1.0)
        metrics.observe_at("queue", 1.0, 2.0)
        metrics.observe("queue", 9.0)  # series shares the name, not the cap slot
        assert metrics.timeline("queue") == [(0.0, 1.0)]
        assert metrics.samples("queue") == [9.0]
        assert metrics.truncated("queue") == 1

    def test_unbounded_by_default(self):
        metrics = MetricsRegistry()
        for value in range(1000):
            metrics.observe("s", float(value))
        assert len(metrics.samples("s")) == 1000
        assert metrics.truncations == {}

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError):
            MetricsRegistry(max_samples_per_series=0)

    def test_truncations_surface_in_snapshot(self):
        metrics = MetricsRegistry(max_samples_per_series=1)
        metrics.observe("s", 1.0)
        metrics.observe("s", 2.0)
        assert metrics.snapshot()["truncated/s"] == 1


class TestToleranceBand:
    def test_admits_mirrors_isclose_semantics(self):
        band = ToleranceBand(rel_tol=0.1, abs_tol=0.5)
        assert band.admits(100.0, 10.0)  # rel term: 10% of 100
        assert not band.admits(100.0, 10.001)
        assert band.admits(1.0, 0.5)  # abs floor dominates small baselines
        assert not band.admits(1.0, 0.51)
        assert band.admits(-100.0, -10.0)  # magnitudes, not signs

    def test_zero_baseline_only_admits_via_abs_tol(self):
        assert not ToleranceBand(rel_tol=0.5).admits(0.0, 0.001)
        assert ToleranceBand(abs_tol=0.01).admits(0.0, 0.001)

    def test_negative_tolerances_rejected(self):
        with pytest.raises(ValueError):
            ToleranceBand(rel_tol=-0.1)
        with pytest.raises(ValueError):
            ToleranceBand(abs_tol=-1.0)


class TestDiffMetrics:
    def test_within_and_outside(self):
        deltas = diff_metrics(
            {"a": 104.0, "b": 120.0},
            {"a": 100.0, "b": 100.0},
            default=ToleranceBand(rel_tol=0.05),
        )
        assert deltas["a"].within and deltas["a"].classification == "within"
        assert deltas["b"].classification == "outside"
        assert deltas["b"].delta == 20.0
        assert deltas["b"].relative == pytest.approx(0.2)

    def test_plain_float_tolerance_means_rel_tol(self):
        deltas = diff_metrics({"a": 104.0}, {"a": 100.0}, tolerances={"a": 0.05})
        assert deltas["a"].within

    def test_missing_keys_are_loud_on_both_sides(self):
        deltas = diff_metrics({"new": 1.0}, {"gone": 2.0})
        assert deltas["new"].classification == "missing_baseline"
        assert deltas["new"].baseline is None and deltas["new"].current == 1.0
        assert deltas["gone"].classification == "missing_current"
        assert deltas["gone"].current is None and deltas["gone"].baseline == 2.0
        assert not deltas["new"].within and not deltas["gone"].within
        assert "no baseline" in deltas["new"].describe()
        assert "missing" in deltas["gone"].describe()

    def test_nan_never_passes(self):
        nan = float("nan")
        deltas = diff_metrics(
            {"a": nan, "b": 1.0, "c": nan},
            {"a": 1.0, "b": nan, "c": nan},
            default=ToleranceBand(rel_tol=1e9),  # a huge band must not save NaN
        )
        for name in ("a", "b", "c"):
            assert deltas[name].classification == "nan"
            assert not deltas[name].within
            assert deltas[name].delta is None

    def test_zero_baseline_relative_is_none(self):
        deltas = diff_metrics(
            {"rate": 0.001, "flat": 0.0},
            {"rate": 0.0, "flat": 0.0},
            default=ToleranceBand(rel_tol=0.99),
        )
        # rel_tol alone cannot admit drift off a zero baseline ...
        assert deltas["rate"].classification == "outside"
        assert deltas["rate"].relative is None
        # ... but an exactly-unchanged zero metric is within (|0| <= 0).
        assert deltas["flat"].within

    def test_zero_baseline_abs_tol_admits(self):
        deltas = diff_metrics(
            {"rate": 0.001},
            {"rate": 0.0},
            tolerances={"rate": ToleranceBand(abs_tol=0.01)},
        )
        assert deltas["rate"].within


class TestRegistryDiff:
    def _registry(self, count: float) -> MetricsRegistry:
        metrics = MetricsRegistry()
        metrics.increment("tasks", count)
        metrics.set_gauge("members", 5.0)
        metrics.observe("lat", 1.0)
        metrics.observe("lat", 3.0)
        return metrics

    def test_scalars_flatten_all_sections(self):
        flat = self._registry(3.0).scalars()
        assert flat["counter/tasks"] == 3.0
        assert flat["gauge/members"] == 5.0
        assert flat["series/lat/count"] == 2
        assert flat["series/lat/mean"] == pytest.approx(2.0)

    def test_scalars_include_truncations(self):
        metrics = MetricsRegistry(max_samples_per_series=1)
        metrics.observe("s", 1.0)
        metrics.observe("s", 2.0)
        assert metrics.scalars()["truncated/s"] == 1.0

    def test_diff_current_vs_baseline_orientation(self):
        current, baseline = self._registry(6.0), self._registry(3.0)
        deltas = current.diff(baseline, default=ToleranceBand(rel_tol=0.5))
        assert deltas["counter/tasks"].delta == 3.0  # current - baseline
        assert deltas["counter/tasks"].classification == "outside"
        assert deltas["gauge/members"].within

    def test_diff_flags_missing_series(self):
        current = MetricsRegistry()
        current.increment("tasks")
        deltas = current.diff(self._registry(1.0))
        assert deltas["series/lat/count"].classification == "missing_current"
        assert deltas["counter/tasks"].within
