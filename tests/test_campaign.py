"""Tests for the campaign layer: specs, orchestration, baselines, reports.

The load-bearing guarantees under test:

* matrix expansion is exhaustive over compatible cells, loud about
  incompatible ones, and per-cell overrides patch exactly their match;
* a ``RunSpec``'s digest is a stable content address — equal specs hash
  equal, any field change rehashes — and the derived world seed gives
  each cell an independent substream;
* executing a run emits the full artifact bundle and replays
  byte-identically (the 1-vs-N-workers determinism contract);
* the baseline store round-trips campaign vectors and ingests E-series
  result files;
* the reporter folds tolerance verdicts and metric directions into the
  right statuses, and regressions/violations fail the report.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.campaign import (
    BaselineStore,
    CampaignOrchestrator,
    CampaignSpec,
    CellOverride,
    Reporter,
    RunSpec,
    ScenarioMatrix,
    classify,
    direction_for,
    execute_run,
    load_manifest,
    strip_volatile,
)
from repro.errors import CampaignError
from repro.sim.metrics import MetricDelta, ToleranceBand


def make_spec(**kwargs) -> CampaignSpec:
    defaults = dict(
        name="t",
        matrix=ScenarioMatrix(
            architectures=("stationary", "dynamic"),
            workloads=("tasks",),
            fault_profiles=("none",),
            mobility_models=("stationary", "highway"),
            seeds=(1, 2),
        ),
        defaults={"run_length_s": 10.0, "drain_s": 4.0},
    )
    defaults.update(kwargs)
    return CampaignSpec(**defaults)


class TestRunSpec:
    def kwargs(self, **overrides):
        base = dict(
            campaign="c",
            architecture="stationary",
            workload="tasks",
            fault_profile="none",
            mobility="stationary",
            seed=1,
        )
        base.update(overrides)
        return base

    def test_axis_validation(self):
        with pytest.raises(CampaignError):
            RunSpec(**self.kwargs(architecture="flying"))
        with pytest.raises(CampaignError):
            RunSpec(**self.kwargs(workload="mining"))
        with pytest.raises(CampaignError):
            RunSpec(**self.kwargs(fault_profile="apocalyptic"))

    def test_incompatible_mobility_rejected(self):
        with pytest.raises(CampaignError):
            RunSpec(**self.kwargs(architecture="stationary", mobility="highway"))
        with pytest.raises(CampaignError):
            RunSpec(**self.kwargs(architecture="infrastructure", mobility="grid"))

    def test_digest_is_stable_content_address(self):
        a = RunSpec(**self.kwargs())
        b = RunSpec(**self.kwargs())
        assert a.digest() == b.digest()
        assert a.digest() != RunSpec(**self.kwargs(seed=2)).digest()
        assert a.digest() != RunSpec(**self.kwargs(run_length_s=41.0)).digest()

    def test_world_seed_is_per_cell_substream(self):
        a = RunSpec(**self.kwargs())
        b = RunSpec(**self.kwargs(workload="serving"))
        assert a.seed == b.seed
        assert a.world_seed != b.world_seed  # same seed entry, distinct cells

    def test_roundtrips_through_dict(self):
        spec = RunSpec(**self.kwargs(seed=7, members=4))
        assert RunSpec.from_dict(spec.as_dict()) == spec
        with pytest.raises(CampaignError):
            RunSpec.from_dict({**spec.as_dict(), "bogus": 1})


class TestExpansion:
    def test_skips_incompatible_cells_loudly(self):
        runs, skipped = make_spec().expansion()
        # stationary x highway and dynamic x stationary are impossible.
        assert len(runs) == 4  # 2 compatible cells x 2 seeds
        assert skipped == 4
        assert {r.cell for r in runs} == {
            "arch=stationary,wl=tasks,fault=none,mob=stationary",
            "arch=dynamic,wl=tasks,fault=none,mob=highway",
        }

    def test_defaults_flow_into_every_run(self):
        assert all(r.run_length_s == 10.0 for r in make_spec().expand())

    def test_zero_run_expansion_raises(self):
        spec = make_spec(
            matrix=ScenarioMatrix(
                architectures=("stationary",),
                workloads=("tasks",),
                fault_profiles=("none",),
                mobility_models=("highway",),
                seeds=(1,),
            )
        )
        with pytest.raises(CampaignError):
            spec.expand()

    def test_override_patches_only_its_match(self):
        spec = make_spec(
            overrides=[
                CellOverride.create(
                    match={"architecture": "dynamic"}, set={"members": 12}
                )
            ]
        )
        for run in spec.expand():
            assert run.members == (12 if run.architecture == "dynamic" else 8)

    def test_override_rejects_unknown_fields(self):
        with pytest.raises(CampaignError):
            CellOverride.create(match={"color": "red"}, set={})
        with pytest.raises(CampaignError):
            CellOverride.create(match={}, set={"seed": 9})

    def test_spec_json_roundtrip(self, tmp_path):
        spec = make_spec(
            tolerances={"x": ToleranceBand(rel_tol=0.1, abs_tol=0.2)},
            directions={"x": "higher"},
        )
        path = str(tmp_path / "spec.json")
        spec.to_json(path)
        loaded = CampaignSpec.load(path)
        assert loaded.as_dict() == spec.as_dict()
        assert [r.key for r in loaded.expand()] == [r.key for r in spec.expand()]


class TestExecuteRun:
    SPEC = dict(
        campaign="unit",
        architecture="stationary",
        workload="tasks",
        fault_profile="light",
        mobility="stationary",
        seed=5,
        run_length_s=12.0,
        drain_s=5.0,
    )

    def test_emits_full_artifact_bundle(self, tmp_path):
        spec = RunSpec(**self.SPEC)
        outcome = execute_run(spec, str(tmp_path))
        bundle = outcome.artifact_dir
        assert os.path.basename(os.path.dirname(bundle)) == "runs"
        for name in (
            "report.json",
            "trace.jsonl",
            "events.jsonl",
            "invariants.json",
            "vector.json",
            "run.json",
        ):
            assert os.path.exists(os.path.join(bundle, name)), name
        vector = json.loads(open(os.path.join(bundle, "vector.json")).read())
        assert vector["key"] == spec.key
        assert vector["vector"] == outcome.vector
        assert outcome.vector["invariants/checks"] > 0

    def test_replays_byte_identically(self, tmp_path):
        spec = RunSpec(**self.SPEC)
        first = execute_run(spec, str(tmp_path / "a"))
        second = execute_run(spec, str(tmp_path / "b"))
        assert first.vector == second.vector
        for name in ("report.json", "trace.jsonl", "events.jsonl", "vector.json"):
            with open(os.path.join(first.artifact_dir, name), "rb") as fa:
                with open(os.path.join(second.artifact_dir, name), "rb") as fb:
                    assert fa.read() == fb.read(), name

    def test_orchestrator_writes_manifest(self, tmp_path):
        spec = make_spec(
            matrix=ScenarioMatrix(
                architectures=("stationary",),
                workloads=("tasks",),
                fault_profiles=("none",),
                mobility_models=("stationary",),
                seeds=(1, 2),
            )
        )
        run = CampaignOrchestrator(spec, str(tmp_path)).execute()
        manifest = load_manifest(str(tmp_path))
        assert manifest["campaign"] == "t"
        assert len(manifest["runs"]) == 2
        assert sorted(run.run_vectors()) == sorted(
            entry["key"] for entry in manifest["runs"]
        )
        # Cell vectors average over the seeds of each cell.
        (cell_vector,) = run.cell_vectors().values()
        vectors = list(run.run_vectors().values())
        for name, value in cell_vector.items():
            assert value == pytest.approx(
                sum(v[name] for v in vectors) / len(vectors)
            ), name

    def test_tiered_backhaul_cell_executes(self, tmp_path):
        spec = RunSpec(
            **{
                **self.SPEC,
                "architecture": "tiered",
                "fault_profile": "backhaul",
                "run_length_s": 20.0,
                "drain_s": 8.0,
            }
        )
        outcome = execute_run(spec, str(tmp_path))
        assert not outcome.violations
        # The WAN schedule fired (loss burst + partition + jitter spike)
        # and the tiered submit path produced tier metrics.
        assert outcome.faults_injected == 3
        assert outcome.vector["tier/submitted"] > 0
        assert outcome.vector["tier/speculated"] > 0
        assert outcome.vector["tier/backhaul_sent"] > 0

    def test_backhaul_profile_needs_a_backhaul(self):
        with pytest.raises(CampaignError):
            RunSpec(**{**self.SPEC, "fault_profile": "backhaul"})


class TestBaselineStore:
    def test_record_and_load_roundtrip(self, tmp_path):
        spec = make_spec(
            matrix=ScenarioMatrix(
                architectures=("stationary",),
                workloads=("tasks",),
                fault_profiles=("none",),
                mobility_models=("stationary",),
                seeds=(1,),
            )
        )
        run = CampaignOrchestrator(spec, str(tmp_path / "run")).execute()
        store = BaselineStore(str(tmp_path / "baselines"))
        store.record(run, note="unit")
        assert store.exists("t")
        assert store.cell_vectors("t") == run.cell_vectors()
        assert store.run_vectors("t") == run.run_vectors()

    def test_missing_baseline_raises(self, tmp_path):
        store = BaselineStore(str(tmp_path))
        with pytest.raises(CampaignError):
            store.load("nope")
        with pytest.raises(CampaignError):
            store.path_for("../escape")

    def test_ingest_eseries_results(self, tmp_path):
        results = tmp_path / "results"
        results.mkdir()
        (results / "E99_demo.json").write_text(
            json.dumps(
                {
                    "experiment": "E99_demo",
                    "entries": [
                        {"label": "a", "vector": {"goodput": 2.0}},
                        {"label": "b", "vector": {"goodput": 3.0}},
                    ],
                }
            )
        )
        store = BaselineStore(str(tmp_path / "baselines"))
        path = store.ingest_results_dir(str(results))
        document = json.loads(open(path).read())
        assert document["runs"]["E99_demo/a"] == {"goodput": 2.0}
        assert document["cells"]["E99_demo"]["b/goodput"] == 3.0
        with pytest.raises(CampaignError):
            store.ingest_results_dir(str(tmp_path / "empty"))


class TestReporterClassification:
    def delta(self, baseline, current, classification, delta=None):
        return MetricDelta(
            name="m",
            baseline=baseline,
            current=current,
            delta=delta,
            relative=None,
            classification=classification,
        )

    def test_direction_inference(self):
        assert direction_for("serve/p99_latency_s") == "lower"
        assert direction_for("serve/goodput_per_s") == "higher"
        assert direction_for("dag/deadline_hit_rate") == "higher"
        assert direction_for("invariants/violations") == "lower"
        assert direction_for("tasks/records") == "both"
        assert direction_for("tasks/records", {"tasks/records": "higher"}) == "higher"

    def test_classify_folds_direction_and_verdict(self):
        assert classify(self.delta(1, 1, "within"), "both") == "ok"
        assert classify(self.delta(None, 1, "missing_baseline"), "both") == "new"
        assert classify(self.delta(1, None, "missing_current"), "both") == "missing"
        assert classify(self.delta(1, float("nan"), "nan"), "both") == "nan"
        out = lambda d: self.delta(10, 10 + d, "outside", delta=d)  # noqa: E731
        assert classify(out(-2.0), "higher") == "regression"
        assert classify(out(2.0), "higher") == "improvement"
        assert classify(out(2.0), "lower") == "regression"
        assert classify(out(-2.0), "lower") == "improvement"
        assert classify(out(2.0), "both") == "regression"
        assert classify(out(-2.0), "both") == "regression"


class FakeRun:
    """A CampaignRun-shaped stub for reporter tests."""

    def __init__(self, cells, violations=()):
        self._cells = cells
        self.violations = list(violations)
        self.outcomes = []
        self.workers = 1
        self.wall_clock_s = 0.0
        self.spec = make_spec()

    def cell_vectors(self):
        return self._cells


class TestReporter:
    def test_regression_and_improvement_split(self):
        run = FakeRun({"cell": {"goodput": 5.0, "p99_latency_s": 1.0}})
        baseline = {"cells": {"cell": {"goodput": 10.0, "p99_latency_s": 2.0}}}
        report = Reporter(default_tolerance=ToleranceBand(rel_tol=0.05)).compare(
            run, baseline
        )
        assert [f.metric for f in report.regressions] == ["goodput"]
        assert [f.metric for f in report.improvements] == ["p99_latency_s"]
        assert not report.ok

    def test_within_tolerance_is_green(self):
        run = FakeRun({"cell": {"goodput": 10.4}})
        baseline = {"cells": {"cell": {"goodput": 10.0}}}
        report = Reporter(default_tolerance=ToleranceBand(rel_tol=0.05)).compare(
            run, baseline
        )
        assert report.ok and not report.regressions

    def test_missing_metric_fails(self):
        run = FakeRun({"cell": {}})
        baseline = {"cells": {"cell": {"goodput": 10.0}}}
        report = Reporter().compare(run, baseline)
        assert [f.status for f in report.regressions] == ["missing"]

    def test_violations_fail_even_without_baseline(self):
        report = Reporter().compare(
            FakeRun({"cell": {"x": 1.0}}, violations=["boom"]), None
        )
        assert not report.ok
        assert report.violations == ["boom"]
        assert [f.status for f in report.new_metrics] == ["new"]

    def test_no_baseline_clean_run_passes(self):
        report = Reporter().compare(FakeRun({"cell": {"x": 1.0}}), None)
        assert report.ok and not report.baseline_available

    def test_report_renders_and_strips_volatile(self, tmp_path):
        run = FakeRun({"cell": {"goodput": 5.0}})
        baseline = {"cells": {"cell": {"goodput": 10.0}}}
        report = Reporter().compare(run, baseline)
        paths = report.write(str(tmp_path))
        document = json.loads(open(paths["json"]).read())
        assert document["ok"] is False
        assert "timing" in document
        assert "timing" not in strip_volatile(document)
        markdown = open(paths["markdown"]).read()
        assert "FAIL" in markdown and "goodput" in markdown
