"""Tests for trustworthiness evaluation: classifier, validators, reputation."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.geometry import Vec2
from repro.trust import (
    BayesianValidator,
    DempsterShaferValidator,
    EventCluster,
    EventKind,
    EventReport,
    GroundTruthEvent,
    MajorityVoting,
    MassFunction,
    MessageClassifier,
    ReputationStore,
    TrustPipeline,
    WeightedVoting,
    diversity_weight,
    effective_report_count,
    false_report,
    honest_report,
    path_jaccard,
    shared_relays,
)


def event(kind=EventKind.ICY_ROAD, x=0.0, y=0.0, exists=True) -> GroundTruthEvent:
    return GroundTruthEvent(
        event_id="evt-1", kind=kind, location=Vec2(x, y), occurred_at=0.0, exists=exists
    )


def report(reporter, claim=True, x=0.0, t=0.0, kind=EventKind.ICY_ROAD, path=(), confidence=0.9):
    return EventReport(
        reporter=reporter,
        kind=kind,
        location=Vec2(x, 0.0),
        reported_at=t,
        claim=claim,
        confidence=confidence,
        path=path,
    )


class TestEventReports:
    def test_honest_report_matches_truth(self):
        truth = event(exists=True)
        observed = honest_report("pn-1", truth, now=1.0)
        assert observed.claim is True
        assert observed.kind is truth.kind

    def test_honest_report_of_nonevent_denies(self):
        truth = event(exists=False)
        assert honest_report("pn-1", truth, now=1.0).claim is False

    def test_false_report(self):
        fake = false_report("pn-evil", EventKind.COLLISION, Vec2(5, 5), now=1.0)
        assert fake.claim is True
        assert fake.kind is EventKind.COLLISION

    def test_report_ids_unique(self):
        assert report("a").report_id != report("a").report_id

    def test_invalid_confidence(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            report("a", confidence=1.5)


class TestClassifier:
    def test_groups_nearby_same_kind(self):
        classifier = MessageClassifier(distance_threshold_m=100, time_window_s=10)
        reports = [report("a", x=0), report("b", x=50), report("c", x=90)]
        clusters = classifier.classify(reports)
        assert len(clusters) == 1
        assert clusters[0].size == 3

    def test_separates_distant_reports(self):
        classifier = MessageClassifier(distance_threshold_m=100)
        clusters = classifier.classify([report("a", x=0), report("b", x=5000)])
        assert len(clusters) == 2

    def test_separates_kinds(self):
        classifier = MessageClassifier()
        clusters = classifier.classify(
            [report("a"), report("b", kind=EventKind.COLLISION)]
        )
        assert len(clusters) == 2
        assert {c.kind for c in clusters} == {EventKind.ICY_ROAD, EventKind.COLLISION}

    def test_separates_in_time(self):
        classifier = MessageClassifier(time_window_s=10)
        clusters = classifier.classify([report("a", t=0.0), report("b", t=100.0)])
        assert len(clusters) == 2

    def test_single_linkage_chains(self):
        classifier = MessageClassifier(distance_threshold_m=100)
        # a-b close, b-c close, a-c far: single linkage joins all three.
        clusters = classifier.classify(
            [report("a", x=0), report("b", x=90), report("c", x=180)]
        )
        assert len(clusters) == 1

    def test_bridging_report_merges_clusters(self):
        classifier = MessageClassifier(distance_threshold_m=100)
        # Two far clusters, then a bridge lands between them.
        reports = [report("a", x=0), report("b", x=180), report("bridge", x=90)]
        clusters = classifier.classify(reports)
        assert len(clusters) == 1

    def test_cost_accounted(self):
        classifier = MessageClassifier()
        classifier.classify([report(f"r{i}", x=i * 10.0) for i in range(10)])
        assert classifier.last_cost_s > 0

    def test_cluster_statistics(self):
        cluster = EventCluster(
            kind=EventKind.ICY_ROAD,
            reports=[report("a", claim=True), report("b", claim=False)],
        )
        assert cluster.positive_fraction() == 0.5
        assert sorted(cluster.reporters()) == ["a", "b"]


class TestMajorityVoting:
    def test_believes_majority(self):
        cluster = EventCluster(
            kind=EventKind.ICY_ROAD,
            reports=[report("a"), report("b"), report("c", claim=False)],
        )
        decision = MajorityVoting().evaluate(cluster)
        assert decision.believe
        assert decision.score == pytest.approx(2 / 3)

    def test_rejects_minority(self):
        cluster = EventCluster(
            kind=EventKind.ICY_ROAD,
            reports=[report("a"), report("b", claim=False), report("c", claim=False)],
        )
        assert not MajorityVoting().evaluate(cluster).believe

    def test_latency_scales_with_reports(self):
        small = EventCluster(EventKind.ICY_ROAD, [report("a")])
        big = EventCluster(EventKind.ICY_ROAD, [report(f"r{i}") for i in range(50)])
        validator = MajorityVoting()
        assert validator.evaluate(big).latency_s > validator.evaluate(small).latency_s

    def test_invalid_threshold(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            MajorityVoting(threshold=1.0)


class TestWeightedVoting:
    def test_reputation_downweights_liars(self):
        reputation = ReputationStore()
        for _ in range(10):
            reputation.observe("liar-1", good=False)
            reputation.observe("liar-2", good=False)
            reputation.observe("honest", good=True)
        cluster = EventCluster(
            kind=EventKind.ICY_ROAD,
            reports=[
                report("liar-1", claim=True),
                report("liar-2", claim=True),
                report("honest", claim=False),
            ],
        )
        unweighted = MajorityVoting().evaluate(cluster)
        weighted = WeightedVoting().evaluate(cluster, reputation)
        assert unweighted.believe  # raw majority fooled
        assert not weighted.believe  # reputation-weighted not fooled

    def test_path_diversity_discounts_sybils(self):
        shared_path = ("relay-evil", "relay-2")
        sybils = [report(f"sybil-{i}", claim=True, path=shared_path) for i in range(5)]
        independents = [
            report("honest-1", claim=False, path=("r1",)),
            report("honest-2", claim=False, path=("r2",)),
            report("honest-3", claim=False, path=("r3",)),
        ]
        cluster = EventCluster(EventKind.ICY_ROAD, sybils + independents)
        plain = WeightedVoting(use_reputation=False, use_path_diversity=False).evaluate(cluster)
        diverse = WeightedVoting(use_reputation=False, use_path_diversity=True).evaluate(cluster)
        assert plain.believe  # 5 vs 3 fooled
        assert not diverse.believe  # shared-path sybils collapse

    def test_empty_cluster(self):
        decision = WeightedVoting().evaluate(EventCluster(EventKind.ICY_ROAD, []))
        assert not decision.believe
        assert decision.score == 0.0


class TestBayesianValidator:
    def test_unanimous_positive_high_posterior(self):
        cluster = EventCluster(EventKind.ICY_ROAD, [report(f"r{i}") for i in range(5)])
        decision = BayesianValidator().evaluate(cluster)
        assert decision.believe
        assert decision.score > 0.95

    def test_unanimous_negative_low_posterior(self):
        cluster = EventCluster(
            EventKind.ICY_ROAD, [report(f"r{i}", claim=False) for i in range(5)]
        )
        decision = BayesianValidator().evaluate(cluster)
        assert not decision.believe
        assert decision.score < 0.05

    def test_prior_matters_for_empty_cluster(self):
        cluster = EventCluster(EventKind.ICY_ROAD, [])
        skeptic = BayesianValidator(prior=0.1).evaluate(cluster)
        believer = BayesianValidator(prior=0.9).evaluate(cluster)
        assert skeptic.score == pytest.approx(0.1)
        assert believer.score == pytest.approx(0.9)

    def test_low_reputation_reports_discounted(self):
        reputation = ReputationStore()
        for _ in range(20):
            reputation.observe("liar", good=False)
        cluster = EventCluster(EventKind.ICY_ROAD, [report("liar", claim=True)])
        with_reputation = BayesianValidator().evaluate(cluster, reputation)
        without = BayesianValidator().evaluate(cluster)
        assert with_reputation.score < without.score

    def test_invalid_rates(self):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            BayesianValidator(honest_tpr=0.1, honest_fpr=0.5)


class TestDempsterShafer:
    def test_mass_function_must_sum_to_one(self):
        from repro.errors import TrustError

        with pytest.raises(TrustError):
            MassFunction(0.5, 0.5, 0.5)

    def test_combination_reinforces_agreement(self):
        a = MassFunction(0.6, 0.0, 0.4)
        combined = a.combine(a)
        assert combined.event > a.event

    def test_combination_with_vacuous_is_identity(self):
        a = MassFunction(0.6, 0.1, 0.3)
        vacuous = MassFunction(0.0, 0.0, 1.0)
        combined = a.combine(vacuous)
        assert combined.event == pytest.approx(a.event)
        assert combined.no_event == pytest.approx(a.no_event)

    def test_total_conflict_falls_back_to_ignorance(self):
        yes = MassFunction(1.0, 0.0, 0.0)
        no = MassFunction(0.0, 1.0, 0.0)
        combined = yes.combine(no)
        assert combined.unknown == pytest.approx(1.0)

    def test_unanimous_reports_believed(self):
        cluster = EventCluster(EventKind.ICY_ROAD, [report(f"r{i}") for i in range(4)])
        assert DempsterShaferValidator().evaluate(cluster).believe

    def test_untrusted_reports_add_ignorance_not_belief(self):
        reputation = ReputationStore()
        for _ in range(20):
            reputation.observe("liar", good=False)
        cluster = EventCluster(EventKind.ICY_ROAD, [report("liar")])
        decision = DempsterShaferValidator().evaluate(cluster, reputation)
        assert not decision.believe

    @given(
        st.floats(min_value=0, max_value=1),
        st.floats(min_value=0, max_value=1),
    )
    def test_combination_stays_normalized(self, commit_a, commit_b):
        a = MassFunction(commit_a, 0.0, 1.0 - commit_a)
        b = MassFunction(0.0, commit_b, 1.0 - commit_b)
        combined = a.combine(b)
        total = combined.event + combined.no_event + combined.unknown
        assert total == pytest.approx(1.0)


class TestProvenance:
    def test_jaccard_identical(self):
        assert path_jaccard(("a", "b"), ("a", "b")) == 1.0

    def test_jaccard_disjoint(self):
        assert path_jaccard(("a",), ("b",)) == 0.0

    def test_jaccard_empty_paths_independent(self):
        assert path_jaccard((), ()) == 0.0

    def test_diversity_weight_discounts_shared_paths(self):
        shared = [report(f"s{i}", path=("x", "y")) for i in range(4)]
        weight = diversity_weight(shared[0], shared)
        assert weight < 0.5

    def test_effective_count_bounds(self):
        disjoint = [report(f"r{i}", path=(f"relay-{i}",)) for i in range(5)]
        shared = [report(f"s{i}", path=("same",)) for i in range(5)]
        assert effective_report_count(disjoint) == pytest.approx(5.0)
        assert effective_report_count(shared) < 2.0

    def test_shared_relays(self):
        reports = [
            report("a", path=("evil", "r1")),
            report("b", path=("evil", "r2")),
        ]
        assert shared_relays(reports) == ["evil"]
        assert shared_relays([]) == []


class TestReputationStore:
    def test_prior_for_strangers(self):
        store = ReputationStore(prior_score=0.5)
        assert store.score("ghost") == pytest.approx(0.5)

    def test_observations_move_score(self):
        store = ReputationStore()
        for _ in range(10):
            store.observe("good", good=True)
            store.observe("bad", good=False)
        assert store.score("good") > 0.8
        assert store.score("bad") < 0.2

    def test_decay_pulls_toward_prior(self):
        store = ReputationStore(decay_per_s=0.1)
        for _ in range(10):
            store.observe("x", good=True, now=0.0)
        store.observe("x", good=True, now=1000.0)  # long gap decays history
        assert store.record_of("x").evidence < 11

    def test_mean_encounters_diagnostic(self):
        store = ReputationStore()
        # Ephemeral traffic: every identity seen once.
        for index in range(20):
            store.observe(f"stranger-{index}", good=True)
        assert store.mean_encounters == pytest.approx(1.0)
        assert store.mature_fraction(min_evidence=5) == 0.0

    def test_forget(self):
        store = ReputationStore()
        store.observe("x", good=False)
        store.forget("x")
        assert store.score("x") == pytest.approx(0.5)

    def test_invalid_prior(self):
        with pytest.raises(ValueError):
            ReputationStore(prior_score=1.0)


class TestTrustPipeline:
    def _pipeline(self, validator=None):
        return TrustPipeline(
            classifier=MessageClassifier(),
            validator=validator if validator is not None else MajorityVoting(),
            reputation=ReputationStore(),
            per_message_auth_cost_s=0.002,
        )

    def test_end_to_end_decision(self):
        pipeline = self._pipeline()
        truth = event()
        reports = [honest_report(f"pn-{i}", truth, now=1.0) for i in range(5)]
        decisions = pipeline.process(reports)
        assert len(decisions) == 1
        assert decisions[0].decision.believe
        assert decisions[0].total_latency_s > 0.01  # auth dominates

    def test_multiple_events_classified_separately(self):
        pipeline = self._pipeline()
        near = event(x=0.0)
        far = GroundTruthEvent("evt-2", EventKind.ICY_ROAD, Vec2(10_000, 0), 0.0)
        reports = [honest_report("a", near, 1.0), honest_report("b", far, 1.0)]
        decisions = pipeline.process(reports)
        assert len(decisions) == 2

    def test_feedback_improves_future_judgement(self):
        pipeline = self._pipeline(WeightedVoting())
        truth = event(exists=True)
        liars = [report(f"liar-{i}", claim=False) for i in range(3)]
        honest = [honest_report(f"pn-{i}", truth, now=1.0) for i in range(2)]
        first = pipeline.process(liars + honest)[0]
        assert not first.decision.believe  # liars outnumber honest
        # Ground truth surfaces; reputations update.
        for _ in range(5):
            pipeline.feedback(first.cluster, truth_exists=True, now=2.0)
        second = pipeline.process(liars + honest)[-1]
        assert second.decision.believe  # reputation now discounts liars

    def test_accuracy_scoring(self):
        pipeline = self._pipeline()
        truth = event()
        pipeline.process([honest_report("a", truth, 1.0)])
        assert pipeline.accuracy_against([True]) == 1.0
        with pytest.raises(ValueError):
            pipeline.accuracy_against([True, False])
