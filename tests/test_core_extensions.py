"""Tests for the §V open-problem extensions: bootstrap, federation,
topology forensics, sensing-as-a-service, and networked event reporting."""

from __future__ import annotations

import pytest

from repro.core import (
    CloudFederation,
    ForensicService,
    ResourceOffer,
    SecureBootstrap,
    SensingQuery,
    SensingService,
    TopologyRecorder,
    VehicularCloud,
)
from repro.geometry import Vec2
from repro.mobility import (
    AutomationLevel,
    OnboardEquipment,
    SensorKind,
    StationaryModel,
    Vehicle,
)
from repro.net import VehicleNode, WirelessChannel
from repro.security import RealIdentity, TokenService, TrustedAuthority
from repro.security.access import AuditLog, AuditRecord
from repro.security.protocols import RandomizedAuthProtocol
from repro.sim import ChannelConfig, ScenarioConfig, World
from repro.trust import (
    EventKind,
    EventReportCollector,
    MajorityVoting,
    MessageClassifier,
    TrustPipeline,
    WitnessReporter,
)


# ---------------------------------------------------------------------------
# SecureBootstrap
# ---------------------------------------------------------------------------


class TestSecureBootstrap:
    def _setup(self, world, members=3):
        model = StationaryModel(world, positions=[Vec2(i * 50.0, 0) for i in range(members)])
        vehicles = model.populate(members)
        authority = TrustedAuthority()
        protocol = RandomizedAuthProtocol(authority)
        cloud = VehicularCloud(world, "boot-vc")
        # Seed the coordinator.
        protocol.enroll(vehicles[0].vehicle_id)
        cloud.admit(vehicles[0])
        bootstrap = SecureBootstrap(world, cloud, protocol)
        return vehicles, authority, protocol, cloud, bootstrap

    def test_full_pipeline_admits(self, world):
        vehicles, _ta, _protocol, cloud, bootstrap = self._setup(world)
        result = bootstrap.initialize(vehicles[1])
        assert result.admitted
        assert vehicles[1].vehicle_id in cloud.membership
        assert result.total_latency_s > 0
        assert set(result.stage_latencies_s) == {"enroll", "authenticate", "token", "admit"}

    def test_enrollment_needs_infrastructure(self, world):
        vehicles, _ta, _protocol, cloud, bootstrap = self._setup(world)
        result = bootstrap.initialize(vehicles[1], infra_available=False)
        assert result.failed
        assert result.failure_stage == "enroll"
        assert vehicles[1].vehicle_id not in cloud.membership

    def test_pre_enrolled_vehicle_joins_without_infra(self, world):
        """Infrastructure-light steady state: enrollment done earlier."""
        vehicles, _ta, protocol, cloud, bootstrap = self._setup(world)
        protocol.enroll(vehicles[1].vehicle_id)
        result = bootstrap.initialize(vehicles[1], infra_available=False)
        assert result.admitted
        assert result.stage_latencies_s["enroll"] == 0.0

    def test_randomized_identities_cannot_get_tokens(self, world):
        """Randomized identities are self-generated and unknown to the
        TA escrow, so token issuance fails closed at the token stage —
        the trade-off of going infrastructure-free."""
        vehicles, authority, protocol, cloud, _ = self._setup(world)
        bootstrap = SecureBootstrap(
            world, cloud, protocol, token_service=TokenService(authority)
        )
        result = bootstrap.initialize(vehicles[1])
        assert result.failed
        assert result.failure_stage == "token"

    def test_token_with_pseudonym_protocol(self, world):
        from repro.security.protocols import PseudonymAuthProtocol

        model = StationaryModel(world, positions=[Vec2(0, 0), Vec2(50, 0)])
        vehicles = model.populate(2)
        authority = TrustedAuthority()
        protocol = PseudonymAuthProtocol(authority)
        cloud = VehicularCloud(world, "tok-vc")
        protocol.enroll(vehicles[0].vehicle_id)
        cloud.admit(vehicles[0])
        bootstrap = SecureBootstrap(
            world, cloud, protocol, token_service=TokenService(authority)
        )
        result = bootstrap.initialize(vehicles[1])
        assert result.admitted
        assert result.token is not None
        assert TokenService(authority).verify(
            result.token, "vcloud", now=world.now
        ).value or result.token.service == "vcloud"

    def test_stats_aggregate(self, world):
        vehicles, _ta, _protocol, _cloud, bootstrap = self._setup(world, members=4)
        bootstrap.initialize(vehicles[1])
        bootstrap.initialize(vehicles[2])
        bootstrap.initialize(vehicles[3], infra_available=False)
        assert bootstrap.stats.attempts == 3
        assert bootstrap.stats.admitted == 2
        assert bootstrap.stats.admission_rate == pytest.approx(2 / 3)
        assert bootstrap.stats.rejects_by_stage == {"enroll": 1}
        assert bootstrap.stats.mean_latency_s > 0


# ---------------------------------------------------------------------------
# CloudFederation
# ---------------------------------------------------------------------------


class TestCloudFederation:
    def _cloud(self, world, cloud_id, vehicles):
        cloud = VehicularCloud(world, cloud_id)
        for vehicle in vehicles:
            cloud.admit(vehicle, offer=ResourceOffer(vehicle.vehicle_id, 1000, 10**9, 1e6))
        return cloud

    def _federation(self, world, lookup):
        return CloudFederation(
            world, lookup, merge_range_m=150.0, max_diameter_m=600.0
        )

    def test_nearby_clouds_merge(self, world):
        # Heads (first-admitted members) sit at x=0 and x=120 < 150 m.
        vehicles = [Vehicle(position=Vec2(i * 30.0, 0)) for i in range(6)]
        lookup = {v.vehicle_id: v for v in vehicles}
        alpha = self._cloud(world, "alpha", vehicles[:4])
        beta = self._cloud(world, "beta", vehicles[4:])
        federation = self._federation(world, lookup.get)
        federation.register(alpha)
        federation.register(beta)
        federation.step()
        assert federation.merges == 1
        assert federation.cloud_count() == 1
        assert federation.total_members() == 6

    def test_distant_clouds_stay_separate(self, world):
        near = [Vehicle(position=Vec2(i * 40.0, 0)) for i in range(3)]
        far = [Vehicle(position=Vec2(10_000 + i * 40.0, 0)) for i in range(3)]
        lookup = {v.vehicle_id: v for v in near + far}
        federation = self._federation(world, lookup.get)
        federation.register(self._cloud(world, "near", near))
        federation.register(self._cloud(world, "far", far))
        federation.step()
        assert federation.merges == 0
        assert federation.cloud_count() == 2

    def test_overstretched_cloud_splits(self, world):
        # Two knots of vehicles 1 km apart inside one cloud.
        knot_a = [Vehicle(position=Vec2(i * 30.0, 0)) for i in range(3)]
        knot_b = [Vehicle(position=Vec2(1000 + i * 30.0, 0)) for i in range(3)]
        vehicles = knot_a + knot_b
        lookup = {v.vehicle_id: v for v in vehicles}
        cloud = self._cloud(world, "stretched", vehicles)
        federation = self._federation(world, lookup.get)
        federation.register(cloud)
        federation.step()
        assert federation.splits == 1
        assert federation.cloud_count() == 2
        assert federation.total_members() == 6
        for managed in federation.clouds:
            assert federation.diameter_of(managed) <= 600.0

    def test_split_cloud_elects_new_head(self, world):
        knot_a = [Vehicle(position=Vec2(i * 30.0, 0)) for i in range(3)]
        knot_b = [Vehicle(position=Vec2(1000 + i * 30.0, 0)) for i in range(3)]
        lookup = {v.vehicle_id: v for v in knot_a + knot_b}
        cloud = self._cloud(world, "stretched", knot_a + knot_b)
        federation = self._federation(world, lookup.get)
        federation.register(cloud)
        federation.step()
        spawned = [c for c in federation.clouds if c is not cloud][0]
        assert spawned.head_id in spawned.membership.member_ids()

    def test_merge_respects_capacity(self, world):
        vehicles = [Vehicle(position=Vec2(i * 20.0, 0)) for i in range(6)]
        lookup = {v.vehicle_id: v for v in vehicles}
        alpha = VehicularCloud(world, "alpha", max_members=4)
        for vehicle in vehicles[:4]:
            alpha.admit(vehicle)
        beta = self._cloud(world, "beta", vehicles[4:])
        federation = self._federation(world, lookup.get)
        federation.register(alpha)
        federation.register(beta)
        federation.step()
        assert federation.merges == 0  # 4 + 2 > capacity 4
        assert federation.cloud_count() == 2

    def test_invalid_geometry_rejected(self, world):
        from repro.errors import MembershipError

        with pytest.raises(MembershipError):
            CloudFederation(world, lambda vid: None, merge_range_m=500, max_diameter_m=400)

    def test_periodic_stepping(self, world):
        vehicles = [Vehicle(position=Vec2(i * 40.0, 0)) for i in range(4)]
        lookup = {v.vehicle_id: v for v in vehicles}
        federation = self._federation(world, lookup.get)
        federation.register(self._cloud(world, "a", vehicles[:2]))
        federation.register(self._cloud(world, "b", vehicles[2:]))
        federation.start()
        world.run_for(10.0)
        federation.stop()
        assert federation.cloud_count() == 1


# ---------------------------------------------------------------------------
# Topology snapshots and forensics
# ---------------------------------------------------------------------------


class TestTopologyForensics:
    def _recorder(self, world, vehicles, identity_map=None):
        identity_map = identity_map or {}

        def identity_of(vehicle):
            return identity_map.get(vehicle.vehicle_id, vehicle.vehicle_id)

        return TopologyRecorder(
            world, identity_of, vehicles, link_range_m=300.0, interval_s=5.0
        )

    def test_snapshot_contents(self, world):
        vehicles = [Vehicle(position=Vec2(0, 0)), Vehicle(position=Vec2(100, 0))]
        recorder = self._recorder(world, vehicles)
        snapshot = recorder.sample()
        assert len(snapshot.positions) == 2
        assert len(snapshot.links) == 1  # within 300 m of each other

    def test_area_query(self, world):
        vehicles = [Vehicle(position=Vec2(0, 0)), Vehicle(position=Vec2(5000, 0))]
        recorder = self._recorder(world, vehicles)
        snapshot = recorder.sample()
        nearby = snapshot.nodes_in_area(Vec2(0, 0), 500)
        assert nearby == [vehicles[0].vehicle_id]

    def test_periodic_sampling_and_retention(self, world):
        vehicles = [Vehicle(position=Vec2(0, 0))]
        recorder = TopologyRecorder(
            world, lambda v: v.vehicle_id, vehicles, interval_s=1.0, retention=5
        )
        recorder.start()
        world.run_for(20.0)
        recorder.stop()
        assert len(recorder.snapshots) == 5  # retention bound
        assert recorder.storage_records == 5

    def test_window_query(self, world):
        vehicles = [Vehicle(position=Vec2(0, 0))]
        recorder = self._recorder(world, vehicles)
        recorder.sample()
        world.run_for(10.0)
        recorder.sample()
        assert len(recorder.window(0.0, 5.0)) == 1
        assert len(recorder.window(0.0, 20.0)) == 2

    def test_investigation_names_attacker(self, world):
        authority = TrustedAuthority()
        authority.register_vehicle(RealIdentity("car-evil"))
        authority.register_vehicle(RealIdentity("car-good"))
        evil_pool = authority.issue_pseudonyms("car-evil", 1)
        good_pool = authority.issue_pseudonyms("car-good", 1)
        evil_pn = evil_pool.pseudonyms[0].pseudonym_id
        good_pn = good_pool.pseudonyms[0].pseudonym_id

        vehicles = [Vehicle(position=Vec2(0, 0)), Vehicle(position=Vec2(50, 0))]
        identity_map = {
            vehicles[0].vehicle_id: evil_pn,
            vehicles[1].vehicle_id: good_pn,
        }
        recorder = self._recorder(world, vehicles, identity_map)
        recorder.sample()

        audit = AuditLog()
        for index in range(3):
            audit.append(
                AuditRecord(
                    time=float(index),
                    package_id="pkg",
                    requester=evil_pn,
                    action="read",
                    resource="secret",
                    permitted=False,
                )
            )
        service = ForensicService(authority, recorder)
        report = service.investigate(
            audit, Vec2(0, 0), area_radius_m=500, window=(0.0, 1.0)
        )
        assert report.suspects == ("car-evil",)
        assert report.innocents_exposed == 1  # car-good was de-anonymized too
        assert report.privacy_cost == 2

    def test_investigation_outside_area_finds_nothing(self, world):
        authority = TrustedAuthority()
        recorder = self._recorder(world, [Vehicle(position=Vec2(0, 0))])
        recorder.sample()
        audit = AuditLog()
        service = ForensicService(authority, recorder)
        report = service.investigate(
            audit, Vec2(10_000, 0), area_radius_m=100, window=(0.0, 1.0)
        )
        assert report.suspects == ()
        assert report.privacy_cost == 0


# ---------------------------------------------------------------------------
# Sensing as a service
# ---------------------------------------------------------------------------


class TestSensingService:
    def _fleet(self, count=6, speed=20.0):
        return [
            Vehicle(
                position=Vec2(i * 50.0, 0),
                speed_mps=speed,
                equipment=OnboardEquipment.for_level(AutomationLevel.HIGH_AUTOMATION),
            )
            for i in range(count)
        ]

    def test_speed_query_near_truth(self, world):
        vehicles = self._fleet(speed=20.0)
        service = SensingService(world, vehicles)
        answer = service.query(
            SensingQuery(SensorKind.SPEEDOMETER, Vec2(100, 0), radius_m=500)
        )
        assert answer.answered
        assert answer.value == pytest.approx(20.0, rel=0.1)
        assert answer.readings_used >= 3
        assert answer.latency_s > 0

    def test_area_restricts_contributors(self, world):
        vehicles = self._fleet()
        service = SensingService(world, vehicles)
        answer = service.query(
            SensingQuery(SensorKind.SPEEDOMETER, Vec2(0, 0), radius_m=60, min_readings=1)
        )
        assert answer.contributors == 2  # only the first two are inside

    def test_insufficient_readings_fails_closed(self, world):
        vehicles = self._fleet(count=2)
        service = SensingService(world, vehicles)
        answer = service.query(
            SensingQuery(SensorKind.SPEEDOMETER, Vec2(0, 0), radius_m=60, min_readings=5)
        )
        assert not answer.answered
        assert service.queries_failed == 1

    def test_sensor_requirement_respected(self, world):
        # Level-0 vehicles carry no radar.
        vehicles = [
            Vehicle(
                position=Vec2(0, 0),
                equipment=OnboardEquipment.for_level(AutomationLevel.NO_AUTOMATION),
            )
        ]
        service = SensingService(world, vehicles)
        answer = service.query(
            SensingQuery(SensorKind.RADAR, Vec2(0, 0), radius_m=500, min_readings=1)
        )
        assert not answer.answered

    def test_custom_combiner(self, world):
        vehicles = self._fleet()
        service = SensingService(world, vehicles, combine=max)
        answer = service.query(
            SensingQuery(SensorKind.SPEEDOMETER, Vec2(100, 0), radius_m=500)
        )
        assert answer.answered
        assert answer.value >= 19.0

    def test_invalid_query(self, world):
        from repro.errors import ResourceError

        with pytest.raises(ResourceError):
            SensingQuery(SensorKind.GPS, Vec2(0, 0), radius_m=0)


# ---------------------------------------------------------------------------
# Event reporting over the network
# ---------------------------------------------------------------------------


class TestNetworkedEventReporting:
    def _world(self):
        return World(
            ScenarioConfig(
                seed=77,
                channel=ChannelConfig(base_loss_probability=0.0, loss_per_100m=0.0),
            )
        )

    def test_reports_travel_and_get_validated(self):
        world = self._world()
        channel = WirelessChannel(world)
        collector_node = VehicleNode(world, channel, Vehicle(position=Vec2(0, 0)))
        witnesses = [
            VehicleNode(world, channel, Vehicle(position=Vec2(50.0 + i, 0)))
            for i in range(4)
        ]
        pipeline = TrustPipeline(
            classifier=MessageClassifier(), validator=MajorityVoting()
        )
        collector = EventReportCollector(world, collector_node, pipeline)
        collector.start()
        for node in witnesses:
            WitnessReporter(world, node).report(
                EventKind.ICY_ROAD, Vec2(60, 0), claim=True
            )
        world.run_for(10.0)
        assert collector.reports_received == 4
        assert len(collector.decisions) == 1
        assert collector.decisions[0].decision.believe

    def test_out_of_range_reports_never_arrive(self):
        world = self._world()
        channel = WirelessChannel(world)
        collector_node = VehicleNode(world, channel, Vehicle(position=Vec2(0, 0)))
        far_witness = VehicleNode(world, channel, Vehicle(position=Vec2(50_000, 0)))
        pipeline = TrustPipeline(
            classifier=MessageClassifier(), validator=MajorityVoting()
        )
        collector = EventReportCollector(world, collector_node, pipeline)
        collector.start()
        WitnessReporter(world, far_witness).report(
            EventKind.COLLISION, Vec2(50_000, 0), claim=True
        )
        world.run_for(10.0)
        assert collector.reports_received == 0
        assert collector.decisions == []

    def test_reporter_can_use_pseudonym(self):
        world = self._world()
        channel = WirelessChannel(world)
        collector_node = VehicleNode(world, channel, Vehicle(position=Vec2(0, 0)))
        witness = VehicleNode(world, channel, Vehicle(position=Vec2(50, 0)))
        pipeline = TrustPipeline(
            classifier=MessageClassifier(), validator=MajorityVoting()
        )
        collector = EventReportCollector(world, collector_node, pipeline)
        WitnessReporter(world, witness).report(
            EventKind.ICY_ROAD, Vec2(60, 0), claim=True, identity="pn-masked"
        )
        world.run_for(1.0)
        assert collector.pending[0].reporter == "pn-masked"

    def test_flush_on_demand(self):
        world = self._world()
        channel = WirelessChannel(world)
        collector_node = VehicleNode(world, channel, Vehicle(position=Vec2(0, 0)))
        witness = VehicleNode(world, channel, Vehicle(position=Vec2(50, 0)))
        pipeline = TrustPipeline(
            classifier=MessageClassifier(), validator=MajorityVoting()
        )
        collector = EventReportCollector(world, collector_node, pipeline)
        WitnessReporter(world, witness).report(
            EventKind.ICY_ROAD, Vec2(60, 0), claim=True
        )
        world.run_for(1.0)
        decisions = collector.flush()
        assert len(decisions) == 1
        assert collector.pending == []
        assert collector.flush() == []  # idempotent when drained
