"""Tests for capacity-aware redundancy: the shared backlog estimator,
the deadline-hit planner objective, and the ordering/capacity fixes
that ride along (chosen indices, total_slots sentinel, head-fallback).
"""

from __future__ import annotations

import math

import pytest

from repro.core import (
    BacklogEstimator,
    CheckpointHandoverPolicy,
    LoadSignal,
    ResourceOffer,
    Task,
    VehicularCloud,
)
from repro.dag import (
    DagScheduler,
    GraphState,
    RedundancyPlanner,
    ReliabilityEstimator,
    StageSpec,
    TaskGraph,
    success_probability,
)
from repro.errors import ConfigurationError
from repro.geometry import Vec2
from repro.mobility import StationaryModel
from repro.serve import ServiceGateway, ServiceRequest, TenantFairShareAdmission
from repro.sim import ScenarioConfig, World


def build_cloud(world, members=5, mips=100.0):
    model = StationaryModel(
        world, positions=[Vec2(i * 40.0, 0.0) for i in range(members)]
    )
    vehicles = model.populate(members)
    cloud = VehicularCloud(
        world, "cap-vc", handover_policy=CheckpointHandoverPolicy()
    )
    for vehicle in vehicles:
        cloud.admit(
            vehicle, offer=ResourceOffer(vehicle.vehicle_id, mips, 10**9, 1e6)
        )
    return vehicles, cloud


class TestSuccessProbabilityEdges:
    def test_k_zero_is_certain(self):
        assert success_probability([], 0) == 1.0
        assert success_probability([0.1, 0.2], 0) == 1.0

    def test_k_beyond_n_is_impossible(self):
        assert success_probability([], 1) == 0.0
        assert success_probability([0.9, 0.9], 3) == 0.0

    def test_degenerate_probabilities_are_exact(self):
        assert success_probability([1.0, 0.0], 1) == 1.0
        assert success_probability([0.0, 0.0], 1) == 0.0
        assert success_probability([1.0, 1.0], 2) == 1.0
        assert success_probability([1.0, 0.0], 2) == 0.0

    def test_nan_rejected(self):
        with pytest.raises(ConfigurationError):
            success_probability([float("nan")], 1)

    def test_out_of_range_rejected_even_after_valid_prefix(self):
        # Validation is a pre-pass: the invalid tail entry raises before
        # any DP state is built from the valid prefix.
        for bad in (-0.1, 1.5, float("inf")):
            with pytest.raises(ConfigurationError):
                success_probability([0.5, 0.5, bad], 1)


class TestChosenIndices:
    def test_indices_map_back_to_caller_order(self):
        planner = RedundancyPlanner(target_success=0.999, max_replicas=3)
        plan = planner.plan([0.5, 0.9, 0.5])
        assert plan.chosen_indices == (1, 0, 2)
        assert plan.survival_ps == (0.9, 0.5, 0.5)

    def test_ties_preserve_caller_order(self):
        # The regression: a plain descending sort of equal probabilities
        # gives no way to tell which candidate each slot describes; the
        # stable index sort pins slot i to candidate chosen_indices[i].
        planner = RedundancyPlanner(target_success=0.95, max_replicas=4)
        plan = planner.plan([0.7, 0.7, 0.7, 0.7])
        assert plan.replicas == 3
        assert plan.chosen_indices == (0, 1, 2)

    def test_indices_align_with_survival_ps(self):
        survival = [0.3, 0.8, 0.55, 0.8]
        plan = RedundancyPlanner(target_success=0.999, max_replicas=4).plan(survival)
        assert len(plan.chosen_indices) == plan.replicas == len(plan.survival_ps)
        for slot, index in enumerate(plan.chosen_indices):
            assert plan.survival_ps[slot] == pytest.approx(survival[index])


class TestCapBoundary:
    def test_capped_plan_returned_when_target_unreachable(self):
        plan = RedundancyPlanner(target_success=0.999, max_replicas=2).plan(
            [0.5, 0.5, 0.5]
        )
        assert plan.replicas == 2
        assert plan.predicted_success < 0.999

    def test_capped_under_load_when_unloaded(self):
        # Zero load: the hit objective degenerates to survival, so the
        # unreachable-target path still returns the capped best effort.
        plan = RedundancyPlanner(target_success=0.999, max_replicas=2).plan(
            [0.5, 0.5, 0.5],
            budget_s=100.0, runtime_s=1.0, load=LoadSignal(),
        )
        assert plan.replicas == 2
        assert plan.predicted_deadline_hit == pytest.approx(plan.predicted_success)
        assert plan.load_shed == 0

    def test_cap_smaller_than_candidates_with_load(self):
        plan = RedundancyPlanner(target_success=0.95, max_replicas=3).plan(
            [0.7] * 6, budget_s=100.0, runtime_s=1.0, load=LoadSignal()
        )
        assert plan.replicas == 3


class TestLoadAwarePlanner:
    def test_matches_static_at_zero_load(self):
        survival = [0.7, 0.7, 0.7, 0.7]
        planner = RedundancyPlanner(target_success=0.95, max_replicas=4)
        static = planner.plan(survival)
        adaptive = planner.plan(
            survival, budget_s=100.0, runtime_s=1.0, load=LoadSignal()
        )
        assert adaptive.replicas == static.replicas == 3
        assert adaptive.load_shed == 0

    def test_sheds_under_heavy_load(self):
        survival = [0.7, 0.7, 0.7, 0.7]
        planner = RedundancyPlanner(target_success=0.95, max_replicas=4)
        # slack = 10 - 5 - 2 = 3s; each extra replica induces 2s, so one
        # extra already costs 2/3 of the on-time factor: hit(1) = 0.7
        # beats hit(2) = 0.91 * (1/3) and the planner sheds to 1.
        plan = planner.plan(
            survival,
            budget_s=10.0,
            runtime_s=5.0,
            load=LoadSignal(queue_delay_s=2.0, marginal_delay_s=2.0, utilization=0.5),
        )
        assert plan.replicas == 1
        assert plan.load_shed == 2
        assert plan.predicted_deadline_hit == pytest.approx(0.7)

    def test_no_slack_collapses_to_k(self):
        plan = RedundancyPlanner(target_success=0.95, max_replicas=4).plan(
            [0.7, 0.7, 0.7],
            budget_s=5.0,
            runtime_s=5.0,
            load=LoadSignal(queue_delay_s=1.0, marginal_delay_s=1.0),
        )
        assert plan.replicas == 1
        assert plan.predicted_deadline_hit == 0.0

    def test_legacy_call_keeps_static_semantics(self):
        plan = RedundancyPlanner(target_success=0.95, max_replicas=4).plan(
            [0.7, 0.7, 0.7, 0.7]
        )
        assert plan.replicas == 3
        assert plan.predicted_deadline_hit is None
        assert plan.load_shed == 0


class TestBacklogEstimator:
    def test_backlog_sources_sum(self, world):
        _v, cloud = build_cloud(world, members=4)
        estimator = BacklogEstimator(cloud)
        assert estimator.queued_work_mi() == 0.0
        estimator.add_backlog_source(lambda: 120.0)
        estimator.add_backlog_source(lambda: 30.0)
        assert estimator.queued_work_mi() == pytest.approx(150.0)

    def test_worker_ids_exclude_head(self, world):
        _v, cloud = build_cloud(world, members=4)
        estimator = BacklogEstimator(cloud)
        workers = estimator.worker_ids()
        assert cloud.head_id not in workers
        assert len(workers) == 3

    def test_delay_arithmetic(self, world):
        _v, cloud = build_cloud(world, members=4, mips=100.0)
        estimator = BacklogEstimator(cloud)
        estimator.add_backlog_source(lambda: 150.0)
        # 3 eligible workers x 100 MIPS; 150 MI queued -> 0.5s standing.
        assert estimator.aggregate_capacity_mips() == pytest.approx(300.0)
        assert estimator.queue_delay_s(0.0) == pytest.approx(0.5)
        assert estimator.marginal_delay_s(600.0) == pytest.approx(2.0)

    def test_zero_capacity_is_infinite_delay(self, world):
        model = StationaryModel(world, positions=[Vec2(0.0, 0.0)])
        vehicles = model.populate(1)
        cloud = VehicularCloud(world, "solo-vc")
        cloud.admit(
            vehicles[0], offer=ResourceOffer(vehicles[0].vehicle_id, 0.0, 10**9, 1e6)
        )
        estimator = BacklogEstimator(cloud)
        estimator.add_backlog_source(lambda: 10.0)
        assert math.isinf(estimator.queue_delay_s(0.0))
        assert math.isinf(estimator.marginal_delay_s(10.0))
        assert estimator.marginal_delay_s(0.0) == 0.0

    def test_inflight_work_raises_utilization_and_delay(self, world):
        _v, cloud = build_cloud(world, members=4, mips=100.0)
        estimator = BacklogEstimator(cloud)
        assert estimator.utilization() == 0.0
        cloud.submit(Task(work_mi=400.0, input_bytes=10, output_bytes=10))
        world.run_until(1.0)  # past the input transfer; execution live
        assert estimator.utilization() == pytest.approx(1.0 / 3.0)
        assert estimator.inflight_delay_s(world.now) > 0.0
        signal = estimator.signal(world.now, work_mi=100.0)
        assert signal.loaded
        assert signal.workers == 3

    def test_empty_fleet_reports_saturated(self, world):
        cloud = VehicularCloud(world, "empty-vc")
        estimator = BacklogEstimator(cloud)
        assert estimator.utilization() == 1.0
        assert estimator.worker_ids() == []


class TestTotalSlotsSentinel:
    def test_bounded_queue_counts_capacity(self, world):
        _v, cloud = build_cloud(world, members=4)
        gateway = ServiceGateway(world, cloud, queue_capacity=16)
        assert gateway.total_slots() == 16 + gateway.dispatch_slots()

    def test_unbounded_queue_returns_none(self, world):
        _v, cloud = build_cloud(world, members=4)
        gateway = ServiceGateway(world, cloud, queue_capacity=None)
        assert gateway.total_slots() is None

    def test_fair_share_admits_on_unbounded_queue(self, world):
        _v, cloud = build_cloud(world, members=4)
        gateway = ServiceGateway(
            world, cloud, queue_capacity=None,
            admission=TenantFairShareAdmission(share=0.5, min_slots=1),
        )
        # Before the fix an unbounded queue counted as 0 slots, so the
        # fair-share allowance collapsed to min_slots and throttled a
        # tenant against a denominator missing the entire queue.
        for _ in range(8):
            assert gateway.submit(
                ServiceRequest.build(work_mi=50.0, tenant="hot", deadline_s=60.0)
            )
        assert gateway.stats.rejected == 0


class TestSchedulerLoadAdaptivity:
    def _run(self, with_backlog, background_work_mi=0.0):
        world = World(ScenarioConfig(seed=4321))
        _v, cloud = build_cloud(world, members=5, mips=100.0)
        cloud.enable_replicated_storage(capacity_bytes=10**8)
        backlog = BacklogEstimator(cloud) if with_backlog else None
        if backlog is not None and background_work_mi:
            backlog.add_backlog_source(lambda: background_work_mi)
        scheduler = DagScheduler(
            world, cloud,
            # A target this tight makes the survival-only rule want the
            # full replica cap, so load shedding has room to show up.
            reliability=ReliabilityEstimator(cloud),
            redundancy=RedundancyPlanner(target_success=0.99999, max_replicas=3),
            checkpointing=True,
            backlog=backlog,
        )
        graph = TaskGraph(
            stages=(StageSpec(name="only", work_mi=200.0),), deadline_s=30.0
        )
        record = scheduler.submit(graph)
        world.run_until(60.0)
        return scheduler, record

    def test_adaptive_plan_is_ledgered(self):
        scheduler, record = self._run(with_backlog=True)
        assert record.state is GraphState.COMPLETED
        plan = record.stages["only"].last_plan
        assert plan is not None
        assert plan.predicted_deadline_hit is not None

    def test_static_plan_has_no_hit_prediction(self):
        scheduler, record = self._run(with_backlog=False)
        assert record.state is GraphState.COMPLETED
        plan = record.stages["only"].last_plan
        assert plan is not None
        assert plan.predicted_deadline_hit is None

    def test_standing_backlog_sheds_replicas(self):
        unloaded, _ = self._run(with_backlog=True, background_work_mi=0.0)
        loaded, record = self._run(with_backlog=True, background_work_mi=50_000.0)
        assert record.state is GraphState.COMPLETED
        assert unloaded.stats.replicas_load_shed == 0
        assert loaded.stats.replicas_load_shed > 0
        assert (
            loaded.stats.replicas_submitted < unloaded.stats.replicas_submitted
            or loaded.stats.replicas_submitted == 1
        )


class TestHeadFallback:
    def test_single_candidate_head_still_gets_the_stage(self, world):
        # Pinning the documented fallback in DagScheduler._replica_plan
        # and VehicularCloud allocation: with exactly one member, that
        # member IS the head, and it must still run the stage rather
        # than stalling the graph.
        model = StationaryModel(world, positions=[Vec2(0.0, 0.0)])
        vehicles = model.populate(1)
        cloud = VehicularCloud(world, "head-vc")
        cloud.admit(
            vehicles[0],
            offer=ResourceOffer(vehicles[0].vehicle_id, 100.0, 10**9, 1e6),
        )
        assert cloud.head_id == vehicles[0].vehicle_id
        scheduler = DagScheduler(
            world, cloud,
            reliability=ReliabilityEstimator(cloud),
            redundancy=RedundancyPlanner(target_success=0.95, max_replicas=3),
        )
        record = scheduler.submit(
            TaskGraph(stages=(StageSpec(name="solo", work_mi=100.0),))
        )
        world.run_until(30.0)
        assert record.state is GraphState.COMPLETED
        plan = record.stages["solo"].last_plan
        assert plan is not None and plan.replicas == 1
