"""Tests for access control: policies, PDP, ABE, packages, emergency."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import AuthorizationError, CryptoError
from repro.geometry import Vec2
from repro.mobility import AutomationLevel
from repro.security.access import (
    AbeAuthority,
    AbePolicy,
    AccessContext,
    AccessRequest,
    AttributeEquals,
    AttributeSet,
    AuditLog,
    AuditRecord,
    AutomationAtLeast,
    DataPolicyPackage,
    EmergencyEscalator,
    EmergencyRule,
    GroupIs,
    ModeIs,
    OperatingMode,
    Policy,
    PolicyDecisionPoint,
    RoleIs,
    SpeedBelow,
    VehicleRole,
    WithinArea,
    deny,
    permit,
)


def context(**kwargs) -> AccessContext:
    defaults = dict(requester="pn-1", role=VehicleRole.MEMBER, time=0.0)
    defaults.update(kwargs)
    return AccessContext(**defaults)


class TestAttributeSet:
    def test_get_and_require(self):
        attrs = AttributeSet({"role": "head"})
        assert attrs.get("role") == "head"
        assert attrs.require("role") == "head"
        with pytest.raises(AuthorizationError):
            attrs.require("missing")

    def test_immutability_via_copies(self):
        attrs = AttributeSet({"a": 1})
        extended = attrs.with_attribute("b", 2)
        assert "b" not in attrs
        assert extended.get("b") == 2
        shrunk = extended.without_attribute("a")
        assert "a" not in shrunk

    def test_satisfies(self):
        attrs = AttributeSet({"a": 1, "b": 2})
        assert attrs.satisfies({"a": 1})
        assert not attrs.satisfies({"a": 2})
        assert not attrs.satisfies({"c": 3})

    def test_equality(self):
        assert AttributeSet({"a": 1}) == AttributeSet({"a": 1})
        assert AttributeSet({"a": 1}) != AttributeSet({"a": 2})


class TestConditions:
    def test_role_is(self):
        condition = RoleIs(VehicleRole.HEAD, VehicleRole.GATEWAY)
        assert condition.matches(context(role=VehicleRole.HEAD))
        assert not condition.matches(context(role=VehicleRole.MEMBER))

    def test_mode_is(self):
        condition = ModeIs(OperatingMode.EMERGENCY)
        assert condition.matches(context(mode=OperatingMode.EMERGENCY))
        assert not condition.matches(context())

    def test_group_is(self):
        assert GroupIs("g1").matches(context(group_id="g1"))
        assert not GroupIs("g1").matches(context(group_id="g2"))

    def test_attribute_equals(self):
        condition = AttributeEquals("region", "east")
        assert condition.matches(context(attributes=AttributeSet({"region": "east"})))
        assert not condition.matches(context())

    def test_speed_below(self):
        assert SpeedBelow(20).matches(context(speed_mps=10))
        assert not SpeedBelow(20).matches(context(speed_mps=25))

    def test_automation_at_least(self):
        condition = AutomationAtLeast(4)
        assert condition.matches(context(automation_level=AutomationLevel.HIGH_AUTOMATION))
        assert not condition.matches(
            context(automation_level=AutomationLevel.PARTIAL_AUTOMATION)
        )

    def test_within_area(self):
        condition = WithinArea(Vec2(0, 0), 100)
        assert condition.matches(context(location=Vec2(50, 0)))
        assert not condition.matches(context(location=Vec2(500, 0)))
        assert not condition.matches(context())  # unknown location fails closed

    def test_boolean_composition(self):
        condition = RoleIs(VehicleRole.HEAD) & SpeedBelow(20)
        assert condition.matches(context(role=VehicleRole.HEAD, speed_mps=10))
        assert not condition.matches(context(role=VehicleRole.HEAD, speed_mps=30))
        either = RoleIs(VehicleRole.HEAD) | SpeedBelow(20)
        assert either.matches(context(role=VehicleRole.MEMBER, speed_mps=10))


class TestPolicyDecisionPoint:
    def _policy(self):
        return Policy("p").add_rule(
            permit("head-read", ["read"], "sensor/", RoleIs(VehicleRole.HEAD))
        ).add_rule(
            deny("no-outsiders", ["*"], "", RoleIs(VehicleRole.OUTSIDER), priority=10)
        )

    def test_permit_path(self):
        pdp = PolicyDecisionPoint()
        request = AccessRequest(context(role=VehicleRole.HEAD), "read", "sensor/lidar")
        decision = pdp.evaluate(self._policy(), request)
        assert decision.permitted
        assert decision.matched_rule_id == "head-read"
        assert decision.latency_s > 0

    def test_default_deny(self):
        pdp = PolicyDecisionPoint()
        request = AccessRequest(context(role=VehicleRole.MEMBER), "read", "sensor/lidar")
        decision = pdp.evaluate(self._policy(), request)
        assert not decision.permitted
        assert decision.default_deny

    def test_deny_overrides_within_priority(self):
        policy = Policy("p")
        policy.add_rule(permit("allow", ["read"], "data"))
        policy.add_rule(deny("forbid", ["read"], "data"))
        decision = PolicyDecisionPoint().evaluate(
            policy, AccessRequest(context(), "read", "data")
        )
        assert not decision.permitted
        assert decision.matched_rule_id == "forbid"

    def test_higher_priority_wins(self):
        policy = Policy("p")
        policy.add_rule(deny("forbid", ["read"], "data", priority=0))
        policy.add_rule(permit("vip", ["read"], "data", priority=5))
        decision = PolicyDecisionPoint().evaluate(
            policy, AccessRequest(context(), "read", "data")
        )
        assert decision.permitted
        assert decision.matched_rule_id == "vip"

    def test_action_scoping(self):
        policy = Policy("p").add_rule(permit("read-only", ["read"], "data"))
        pdp = PolicyDecisionPoint()
        assert pdp.evaluate(policy, AccessRequest(context(), "read", "data")).permitted
        assert not pdp.evaluate(policy, AccessRequest(context(), "write", "data")).permitted

    def test_resource_prefix_scoping(self):
        policy = Policy("p").add_rule(permit("video", ["read"], "video/"))
        pdp = PolicyDecisionPoint()
        assert pdp.evaluate(policy, AccessRequest(context(), "read", "video/cam1")).permitted
        assert not pdp.evaluate(policy, AccessRequest(context(), "read", "sensor/gps")).permitted

    def test_wildcard_action(self):
        policy = Policy("p").add_rule(permit("all", ["*"], "data"))
        decision = PolicyDecisionPoint().evaluate(
            policy, AccessRequest(context(), "share", "data")
        )
        assert decision.permitted

    def test_latency_scales_with_policy_size(self):
        small = Policy("s").add_rule(permit("r", ["read"], "zzz"))
        big = Policy("b")
        for index in range(500):
            big.add_rule(permit(f"r{index}", ["read"], f"zzz{index}"))
        pdp = PolicyDecisionPoint()
        request = AccessRequest(context(), "read", "nomatch")
        assert pdp.evaluate(big, request).latency_s > pdp.evaluate(small, request).latency_s

    def test_paper_role_example(self):
        """Group A head reads road conditions; group B buffer reads only video."""
        policy = Policy("roles")
        policy.add_rule(
            permit("head-road", ["read"], "road/", RoleIs(VehicleRole.HEAD) & GroupIs("A"))
        )
        policy.add_rule(
            permit(
                "buffer-video",
                ["read"],
                "video/own",
                RoleIs(VehicleRole.BUFFER_NODE) & GroupIs("B"),
            )
        )
        pdp = PolicyDecisionPoint()
        head_in_a = context(role=VehicleRole.HEAD, group_id="A")
        buffer_in_b = context(role=VehicleRole.BUFFER_NODE, group_id="B")
        assert pdp.evaluate(policy, AccessRequest(head_in_a, "read", "road/cond")).permitted
        assert not pdp.evaluate(policy, AccessRequest(head_in_a, "read", "video/own")).permitted
        assert pdp.evaluate(policy, AccessRequest(buffer_in_b, "read", "video/own")).permitted
        assert not pdp.evaluate(policy, AccessRequest(buffer_in_b, "read", "road/cond")).permitted


class TestAbe:
    def test_round_trip(self):
        authority = AbeAuthority()
        key = authority.keygen({"role": "head", "region": "east"}).value
        ciphertext = authority.encrypt(b"secret", AbePolicy.of(role="head")).value
        assert authority.decrypt(key, ciphertext).value == b"secret"

    def test_unsatisfied_policy_returns_none(self):
        authority = AbeAuthority()
        key = authority.keygen({"role": "member"}).value
        ciphertext = authority.encrypt(b"secret", AbePolicy.of(role="head")).value
        assert authority.decrypt(key, ciphertext).value is None

    def test_forged_key_rejected(self):
        from repro.security.access.abe import AbeKey

        authority = AbeAuthority()
        ciphertext = authority.encrypt(b"secret", AbePolicy.of(role="head")).value
        forged = AbeKey(key_id="fake", attributes=(("role", "head"),), binding="forged")
        assert authority.decrypt(forged, ciphertext).value is None

    def test_cross_authority_key_rejected(self):
        issuing = AbeAuthority()
        other = AbeAuthority()
        # Same attribute set, different master secret.
        key = other.keygen({"role": "head"}).value
        ciphertext = issuing.encrypt(b"secret", AbePolicy.of(role="head")).value
        assert issuing.decrypt(key, ciphertext).value is None

    def test_keygen_cost_scales_with_attributes(self):
        authority = AbeAuthority()
        one = authority.keygen({"a": 1}).cost_s
        three = authority.keygen({"a": 1, "b": 2, "c": 3}).cost_s
        assert three == pytest.approx(3 * one)

    def test_decrypt_cost_scales_with_policy(self):
        authority = AbeAuthority()
        key = authority.keygen({"a": 1, "b": 2, "c": 3}).value
        small = authority.encrypt(b"x", AbePolicy.of(a=1)).value
        large = authority.encrypt(b"x", AbePolicy.of(a=1, b=2, c=3)).value
        assert authority.decrypt(key, large).cost_s > authority.decrypt(key, small).cost_s

    def test_empty_policy_rejected(self):
        with pytest.raises(CryptoError):
            AbeAuthority().encrypt(b"x", AbePolicy(()))

    def test_ciphertext_size_grows_with_policy(self):
        authority = AbeAuthority()
        small = authority.encrypt(b"x", AbePolicy.of(a=1)).value
        large = authority.encrypt(b"x", AbePolicy.of(a=1, b=2, c=3)).value
        assert large.size_bytes > small.size_bytes


class TestDataPolicyPackage:
    def _package(self):
        policy = Policy("pkg-policy").add_rule(
            permit("head-read", ["read"], "data", RoleIs(VehicleRole.HEAD))
        )
        return DataPolicyPackage(b"payload", policy, owner="pn-owner")

    def test_permitted_read(self):
        package = self._package()
        log = AuditLog()
        data = package.read(context(role=VehicleRole.HEAD), PolicyDecisionPoint(), log)
        assert data == b"payload"

    def test_denied_read_raises(self):
        package = self._package()
        log = AuditLog()
        with pytest.raises(AuthorizationError):
            package.read(context(role=VehicleRole.MEMBER), PolicyDecisionPoint(), log)

    def test_every_access_logged(self):
        package = self._package()
        log = AuditLog()
        pdp = PolicyDecisionPoint()
        package.access(context(role=VehicleRole.HEAD), "read", pdp, log)
        package.access(context(role=VehicleRole.MEMBER), "read", pdp, log)
        assert len(log) == 2
        assert len(log.denials()) == 1

    def test_denied_access_returns_no_data(self):
        package = self._package()
        outcome = package.access(
            context(role=VehicleRole.MEMBER), "read", PolicyDecisionPoint(), AuditLog()
        )
        assert not outcome.permitted
        assert outcome.data is None

    def test_tampering_detected(self):
        package = self._package()
        package.tamper_with_data(b"evil payload")
        assert not package.verify_integrity()
        with pytest.raises(CryptoError):
            package.access(
                context(role=VehicleRole.HEAD), "read", PolicyDecisionPoint(), AuditLog()
            )

    def test_size_accounts_policy(self):
        package = self._package()
        assert package.size_bytes > len(b"payload")


class TestAuditLog:
    def _record(self, requester="pn-1", permitted=True, time=0.0):
        return AuditRecord(
            time=time,
            package_id="pkg-1",
            requester=requester,
            action="read",
            resource="data",
            permitted=permitted,
        )

    def test_queries(self):
        log = AuditLog()
        log.append(self._record("pn-1", True, 1.0))
        log.append(self._record("pn-2", False, 2.0))
        assert len(log.for_requester("pn-1")) == 1
        assert len(log.for_package("pkg-1")) == 2
        assert len(log.between(0.0, 1.5)) == 1
        assert log.denial_rate() == 0.5

    def test_suspicious_requesters(self):
        log = AuditLog()
        for _ in range(3):
            log.append(self._record("pn-evil", permitted=False))
        log.append(self._record("pn-good", permitted=False))
        assert log.suspicious_requesters(min_denials=3) == ["pn-evil"]

    def test_merge_time_ordered(self):
        a, b = AuditLog(), AuditLog()
        a.append(self._record(time=2.0))
        b.append(self._record(time=1.0))
        merged = a.merge(b)
        assert [r.time for r in merged.records] == [1.0, 2.0]


class TestEmergencyEscalation:
    def test_grant_in_emergency(self):
        escalator = EmergencyEscalator([EmergencyRule("sensor/brake", "read")])
        grant = escalator.request(
            context(mode=OperatingMode.EMERGENCY, time=5.0), "sensor/brake", "read"
        )
        assert grant is not None
        assert grant.is_active(6.0)
        assert not grant.is_active(1000.0)

    def test_denied_outside_emergency(self):
        escalator = EmergencyEscalator([EmergencyRule("sensor/brake", "read")])
        assert escalator.request(context(), "sensor/brake", "read") is None
        assert escalator.denials == 1

    def test_denied_for_unregistered_resource(self):
        escalator = EmergencyEscalator()
        grant = escalator.request(
            context(mode=OperatingMode.EMERGENCY), "sensor/secret", "read"
        )
        assert grant is None

    def test_millisecond_class_latency(self):
        """The paper's requirement: emergency grants in milliseconds."""
        escalator = EmergencyEscalator([EmergencyRule("sensor/brake", "read")])
        grant = escalator.request(
            context(mode=OperatingMode.EMERGENCY), "sensor/brake", "read"
        )
        assert grant.latency_s < 0.001

    def test_fast_path_beats_full_policy_walk(self):
        big = Policy("big")
        for index in range(1000):
            big.add_rule(permit(f"r{index}", ["read"], f"res{index}"))
        pdp = PolicyDecisionPoint()
        slow = pdp.evaluate(big, AccessRequest(context(), "read", "nomatch")).latency_s
        escalator = EmergencyEscalator([EmergencyRule("sensor/brake", "read")])
        grant = escalator.request(
            context(mode=OperatingMode.EMERGENCY), "sensor/brake", "read"
        )
        assert grant.latency_s < slow

    def test_grants_audited(self):
        escalator = EmergencyEscalator([EmergencyRule("x", "read")])
        log = AuditLog()
        escalator.request(context(mode=OperatingMode.EMERGENCY), "x", "read", log)
        escalator.request(context(), "x", "read", log)
        assert len(log) == 2
        assert len(log.denials()) == 1

    @given(st.sampled_from(list(OperatingMode)))
    def test_only_emergency_mode_grants(self, mode):
        escalator = EmergencyEscalator([EmergencyRule("x", "read")])
        grant = escalator.request(context(mode=mode), "x", "read")
        assert (grant is not None) == (mode is OperatingMode.EMERGENCY)
