"""Tests for the overload-resilient serving stack (`repro.serve`)."""

from __future__ import annotations

import pytest

from repro.core import (
    CheckpointHandoverPolicy,
    GatedAllocator,
    GreedyResourceAllocator,
    ResourceOffer,
    Task,
    VehicularCloud,
)
from repro.core.scheduler import WorkerCandidate
from repro.core.tasks import TaskState, reset_task_ids
from repro.errors import ConfigurationError
from repro.faults import BackoffPolicy
from repro.geometry import Vec2
from repro.mobility import StationaryModel
from repro.mobility.vehicle import reset_vehicle_ids
from repro.serve import (
    AdmitAll,
    BoundedPriorityQueue,
    BreakerState,
    BurstyArrivals,
    CircuitBreaker,
    CircuitBreakerBoard,
    CompositeAdmission,
    DeadlineFeasibilityAdmission,
    DeadlineLapseShedder,
    DiurnalArrivals,
    HedgePolicy,
    LatencyQuantileTracker,
    PoissonArrivals,
    QueueDelayAdmission,
    QueueDelayShedder,
    ServiceGateway,
    ServiceRequest,
    TenantFairShareAdmission,
    TenantSpec,
    WorkloadGenerator,
)
from repro.sim import ScenarioConfig, SeededRng, World


def build_cloud(seed=7, members=5, mips=100.0):
    world = World(ScenarioConfig(seed=seed))
    model = StationaryModel(
        world, positions=[Vec2(i * 40.0, 0.0) for i in range(members)]
    )
    vehicles = model.populate(members)
    cloud = VehicularCloud(
        world, "serve-vc", handover_policy=CheckpointHandoverPolicy()
    )
    for vehicle in vehicles:
        cloud.admit(
            vehicle, offer=ResourceOffer(vehicle.vehicle_id, mips, 10**9, 1e6)
        )
    return world, vehicles, cloud


def request(work_mi=200.0, tenant="t", priority=1, deadline_s=10.0):
    return ServiceRequest.build(
        work_mi=work_mi, tenant=tenant, priority=priority, deadline_s=deadline_s
    )


class TestArrivalProcesses:
    def test_poisson_mean_gap_matches_rate(self):
        rng = SeededRng(5, "poisson")
        process = PoissonArrivals(rate_per_s=4.0)
        gaps = [process.next_gap_s(rng, 0.0) for _ in range(4000)]
        assert sum(gaps) / len(gaps) == pytest.approx(0.25, rel=0.1)

    def test_bursty_rate_exceeds_quiet_rate(self):
        rng = SeededRng(5, "bursty")
        process = BurstyArrivals(
            base_rate_per_s=1.0, burst_rate_per_s=20.0,
            mean_quiet_s=5.0, mean_burst_s=5.0,
        )
        now, gaps_by_phase = 0.0, {True: [], False: []}
        for _ in range(5000):
            gap = process.next_gap_s(rng, now)
            gaps_by_phase[process._in_burst].append(gap)
            now += gap
        assert gaps_by_phase[True] and gaps_by_phase[False]
        mean_burst = sum(gaps_by_phase[True]) / len(gaps_by_phase[True])
        mean_quiet = sum(gaps_by_phase[False]) / len(gaps_by_phase[False])
        assert mean_burst < mean_quiet / 5.0

    def test_diurnal_rate_oscillates(self):
        process = DiurnalArrivals(mean_rate_per_s=2.0, amplitude=0.5, period_s=100.0)
        assert process.rate_at(25.0) == pytest.approx(3.0)  # peak
        assert process.rate_at(75.0) == pytest.approx(1.0)  # trough
        assert process.rate_at(0.0) == pytest.approx(2.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            PoissonArrivals(0.0)
        with pytest.raises(ConfigurationError):
            BurstyArrivals(1.0, 2.0, mean_quiet_s=0.0)
        with pytest.raises(ConfigurationError):
            DiurnalArrivals(1.0, amplitude=1.0)


class TestWorkloadGenerator:
    def _run(self, seed):
        reset_task_ids()
        reset_vehicle_ids()
        world, _v, cloud = build_cloud(seed=seed)
        gateway = ServiceGateway(world, cloud, name="gw", queue_capacity=None)
        tenants = [
            TenantSpec(name="a", arrivals=PoissonArrivals(2.0),
                       work_mi_range=(100.0, 300.0), deadline_s=10.0),
            TenantSpec(name="b", arrivals=PoissonArrivals(1.0),
                       work_mi_range=(50.0, 50.0), deadline_s=5.0, clients=3),
        ]
        generator = WorkloadGenerator(world, gateway, tenants, horizon_s=20.0)
        generator.start()
        world.run_until(30.0)
        return generator, gateway, world

    def test_open_loop_offers_independent_of_completions(self):
        generator, gateway, _world = self._run(3)
        assert generator.total_offered() == gateway.stats.offered
        assert generator.loads["a"].offered > 20
        # 3 clients at 1/s beat 1 client at 2/s.
        assert generator.loads["b"].offered > generator.loads["a"].offered

    def test_same_seed_same_arrivals(self):
        first, _gw1, world1 = self._run(3)
        second, _gw2, world2 = self._run(3)
        assert first.loads["a"].offered == second.loads["a"].offered
        assert first.loads["a"].offered_work_mi == pytest.approx(
            second.loads["a"].offered_work_mi
        )
        assert world1.metrics.snapshot() == world2.metrics.snapshot()

    def test_start_is_idempotent(self):
        reset_task_ids()
        reset_vehicle_ids()
        world, _v, cloud = build_cloud()
        gateway = ServiceGateway(world, cloud, name="gw")
        generator = WorkloadGenerator(
            world, gateway,
            [TenantSpec(name="a", arrivals=PoissonArrivals(1.0))],
            horizon_s=5.0,
        )
        generator.start()
        generator.start()
        world.run_until(10.0)
        solo = generator.total_offered()
        assert 0 < solo < 15  # a doubled chain would offer ~2x

    def test_validation(self):
        world, _v, cloud = build_cloud()
        gateway = ServiceGateway(world, cloud, name="gw")
        spec = TenantSpec(name="a", arrivals=PoissonArrivals(1.0))
        with pytest.raises(ConfigurationError):
            WorkloadGenerator(world, gateway, [], horizon_s=5.0)
        with pytest.raises(ConfigurationError):
            WorkloadGenerator(world, gateway, [spec, spec], horizon_s=5.0)
        with pytest.raises(ConfigurationError):
            TenantSpec(name="x", arrivals=PoissonArrivals(1.0), clients=0)
        with pytest.raises(ConfigurationError):
            TenantSpec(name="x", arrivals=PoissonArrivals(1.0), work_mi_range=(5.0, 1.0))


class TestBoundedPriorityQueue:
    def test_priority_then_fifo_order(self):
        queue = BoundedPriorityQueue()
        first = request(priority=1)
        urgent = request(priority=0)
        second = request(priority=1)
        for r in (first, urgent, second):
            assert queue.push(r)
        assert queue.pop() is urgent
        assert queue.pop() is first
        assert queue.pop() is second
        assert queue.pop() is None

    def test_capacity_refuses_push(self):
        queue = BoundedPriorityQueue(capacity=2)
        assert queue.push(request())
        assert queue.push(request())
        assert queue.full
        assert not queue.push(request())
        assert len(queue) == 2

    def test_evict_tail_takes_worst_newest(self):
        queue = BoundedPriorityQueue()
        keep = request(priority=0)
        older = request(priority=2)
        newest = request(priority=2)
        for r in (keep, older, newest):
            queue.push(r)
        assert queue.evict_tail() is newest
        assert queue.evict_tail() is older
        assert queue.evict_tail() is keep
        assert queue.evict_tail() is None

    def test_accounting_tracks_work_and_tenants(self):
        queue = BoundedPriorityQueue()
        a = request(work_mi=100.0, tenant="a")
        b = request(work_mi=300.0, tenant="b")
        queue.push(a)
        queue.push(b)
        assert queue.queued_work_mi == pytest.approx(400.0)
        assert queue.tenant_depth("a") == 1
        assert queue.remove(a)
        assert not queue.remove(a)
        assert queue.queued_work_mi == pytest.approx(300.0)
        assert queue.tenant_depth("a") == 0

    def test_compaction_preserves_live_entries(self):
        queue = BoundedPriorityQueue()
        keepers = [request(priority=0) for _ in range(5)]
        for keeper in keepers:
            queue.push(keeper)
        for _ in range(40):  # churn enough tombstones to force a rebuild
            victim = request(priority=9)
            queue.push(victim)
            assert queue.evict_tail() is victim
        assert len(queue) == 5
        assert [queue.pop() for _ in range(5)] == keepers


class TestAdmissionPolicies:
    def _gateway(self, **kwargs):
        world, _v, cloud = build_cloud()
        return world, ServiceGateway(world, cloud, name="gw", **kwargs)

    def test_deadline_infeasible_rejected_at_door(self):
        world, gateway = self._gateway(
            queue_capacity=64, admission=DeadlineFeasibilityAdmission()
        )
        # 4 workers x 100 MIPS; 10_000 MI needs 25 s against a 5 s deadline.
        assert not gateway.submit(request(work_mi=10_000.0, deadline_s=5.0))
        assert gateway.stats.rejection_reasons == {"deadline_infeasible": 1}
        assert gateway.submit(request(work_mi=100.0, deadline_s=5.0))

    def test_queue_delay_admission_bounds_backlog(self):
        world, gateway = self._gateway(
            queue_capacity=None, admission=QueueDelayAdmission(max_delay_s=2.0),
            max_dispatch_concurrency=0,  # freeze dispatch: queue only grows
        )
        admitted = 0
        while gateway.submit(request(work_mi=200.0)):
            admitted += 1
            assert admitted < 100, "queue-delay admission never rejected"
        assert gateway.stats.rejection_reasons == {"queue_delay": 1}
        assert gateway.estimated_queue_delay_s() <= 2.0 + 0.5  # one task of slack

    def test_tenant_fair_share_backpressure(self):
        world, gateway = self._gateway(
            queue_capacity=10,
            admission=TenantFairShareAdmission(share=0.5, min_slots=2),
            max_dispatch_concurrency=0,
        )
        hog_admitted = 0
        for _ in range(10):
            if gateway.submit(request(tenant="hog")):
                hog_admitted += 1
        assert hog_admitted == 5  # floor(0.5 * (10 + 0)) = 5
        assert gateway.stats.rejection_reasons["tenant_backpressure"] == 5
        # The quiet tenant is unaffected by the hog's backpressure.
        assert gateway.submit(request(tenant="quiet"))

    def test_composite_first_rejection_wins(self):
        world, gateway = self._gateway(
            queue_capacity=64,
            admission=CompositeAdmission([
                DeadlineFeasibilityAdmission(), AdmitAll(),
            ]),
        )
        assert not gateway.submit(request(work_mi=10_000.0, deadline_s=5.0))
        assert gateway.stats.rejection_reasons == {"deadline_infeasible": 1}


class TestShedding:
    def test_deadline_lapse_shedder_clears_dead_weight(self):
        world, _v, cloud = build_cloud()
        gateway = ServiceGateway(
            world, cloud, name="gw", queue_capacity=None,
            shedders=[DeadlineLapseShedder()], max_dispatch_concurrency=0,
        )
        gateway.submit(request(work_mi=100.0, deadline_s=1.0))
        gateway.submit(request(work_mi=100.0, deadline_s=500.0))
        world.run_until(5.0)  # first deadline lapses in the queue
        assert gateway.stats.shed_reasons == {"deadline_lapsed": 1}
        assert len(gateway.queue) == 1

    def test_queue_delay_shedder_trims_to_bound(self):
        world, _v, cloud = build_cloud()
        gateway = ServiceGateway(
            world, cloud, name="gw", queue_capacity=None,
            shedders=[QueueDelayShedder(max_delay_s=1.0)],
            max_dispatch_concurrency=0,
        )
        for _ in range(20):  # 4000 MI over 400 MIPS = 10 s of backlog
            gateway.submit(request(work_mi=200.0, deadline_s=None))
        world.run_until(1.0)  # one tick
        assert gateway.estimated_queue_delay_s() <= 1.0
        assert gateway.stats.shed_reasons["queue_delay"] >= 15
        acc = gateway.accounting()
        assert acc["admitted"] == acc["shed"] + acc["queued"]

    def test_full_queue_displaces_less_urgent_tail(self):
        world, _v, cloud = build_cloud()
        gateway = ServiceGateway(
            world, cloud, name="gw", queue_capacity=2, max_dispatch_concurrency=0
        )
        gateway.submit(request(priority=5))
        gateway.submit(request(priority=5))
        # A more urgent arrival displaces the newest low-priority victim.
        assert gateway.submit(request(priority=0))
        assert gateway.stats.shed_reasons == {"displaced": 1}
        # An equally-low arrival is rejected instead.
        assert not gateway.submit(request(priority=5))
        assert gateway.stats.rejection_reasons == {"queue_full": 1}


class TestCircuitBreaker:
    def _breaker(self, **kwargs):
        self.now = 0.0
        return CircuitBreaker(
            "w1", clock=lambda: self.now,
            backoff=BackoffPolicy(
                base_delay_s=2.0, multiplier=2.0, max_delay_s=30.0,
                jitter_fraction=0.0, max_retries=100,
            ),
            **kwargs,
        )

    def test_trips_on_failure_rate(self):
        breaker = self._breaker(window=4, failure_threshold=0.5, min_samples=4)
        for _ in range(2):
            breaker.record_success()
        breaker.record_failure()
        assert breaker.state is BreakerState.CLOSED
        breaker.record_failure()  # 2/4 failures hits the 0.5 threshold
        assert breaker.state is BreakerState.OPEN
        assert breaker.last_trip_reason == "failure_rate"
        assert not breaker.allows()

    def test_half_open_probe_success_closes(self):
        breaker = self._breaker(window=4, min_samples=2, failure_threshold=0.5)
        breaker.trip("lease_expiry")
        assert breaker.cooldown_remaining_s == pytest.approx(2.0)
        self.now = 2.5
        assert breaker.allows()
        assert breaker.state is BreakerState.HALF_OPEN
        breaker.note_dispatch()
        assert not breaker.allows()  # one probe at a time
        breaker.record_success()
        assert breaker.state is BreakerState.CLOSED

    def test_half_open_probe_failure_escalates_cooldown(self):
        breaker = self._breaker()
        breaker.trip("lease_expiry")          # cooldown 2 s
        self.now = 3.0
        assert breaker.allows()
        breaker.note_dispatch()
        breaker.record_failure()              # probe failed: re-open
        assert breaker.state is BreakerState.OPEN
        assert breaker.cooldown_remaining_s == pytest.approx(4.0)  # escalated
        assert breaker.trips == 2

    def test_close_resets_escalation(self):
        breaker = self._breaker()
        breaker.trip("x")
        self.now = 10.0
        assert breaker.allows()
        breaker.note_dispatch()
        breaker.record_success()              # closed; streak reset
        breaker.trip("y")
        assert breaker.cooldown_remaining_s == pytest.approx(2.0)

    def test_board_lazily_creates_and_counts(self):
        world, _v, _cloud = build_cloud()
        board = CircuitBreakerBoard(world, "gw")
        assert board.allows("anyone")  # unknown workers pass
        board.trip("w1", "lease_expiry")
        assert not board.allows("w1")
        assert board.open_workers() == ["w1"]
        assert board.total_trips() == 1
        assert world.metrics.counter("serve/gw/breaker_trips") == 1.0


class TestHedging:
    def test_tracker_warms_up_then_quantiles(self):
        tracker = LatencyQuantileTracker(window=16, min_samples=4)
        assert tracker.quantile(0.9) is None
        for value in (1.0, 2.0, 3.0, 4.0):
            tracker.observe(value)
        assert tracker.quantile(0.5) == pytest.approx(2.5)

    def test_policy_gating(self):
        policy = HedgePolicy(max_inflight_hedges=1, require_idle_queue=True)
        assert policy.may_hedge(0, 0, remaining_deadline_s=10.0, expected_runtime_s=2.0)
        assert not policy.may_hedge(1, 0, 10.0, 2.0)   # hedge budget spent
        assert not policy.may_hedge(0, 3, 10.0, 2.0)   # queue backed up
        assert not policy.may_hedge(0, 0, 1.0, 2.0)    # deadline infeasible
        assert policy.may_hedge(0, 0, None, 2.0)       # no deadline: allowed

    def test_trigger_prefers_observed_quantile(self):
        policy = HedgePolicy(quantile=0.5, fallback_factor=3.0)
        tracker = LatencyQuantileTracker(min_samples=2)
        assert policy.trigger_delay_s(tracker, 2.0) == pytest.approx(6.0)
        tracker.observe(1.0)
        tracker.observe(3.0)
        assert policy.trigger_delay_s(tracker, 2.0) == pytest.approx(2.0)

    def test_hedge_rescues_stalled_primary(self):
        """Primary stalls mid-run; the hedge lands on a different worker,
        wins, and the loser is retired as ``hedge_cancelled``."""
        world, vehicles, cloud = build_cloud(members=3)
        gateway = ServiceGateway(
            world, cloud, name="gw", queue_capacity=8,
            hedging=HedgePolicy(quantile=0.9, fallback_factor=1.5),
        )
        gateway.submit(request(work_mi=400.0, deadline_s=60.0))  # ~4 s compute
        world.run_until(0.5)
        primary = next(iter(gateway._inflight.values())).record
        assert primary.worker_id is not None
        cloud.stall_worker(primary.worker_id, 30.0)
        world.run_until(30.0)
        stats = gateway.stats
        assert stats.hedges_launched == 1
        assert stats.hedges_won == 1
        assert stats.hedges_cancelled == 1
        assert stats.completed == 1
        assert cloud.stats.failure_reasons.get("hedge_cancelled") == 1
        # The hedge ran on a different worker than the stalled primary.
        hedge_workers = {
            r.worker_id for r in cloud.records
            if r.task.task_id != primary.task.task_id
        }
        assert primary.worker_id not in hedge_workers
        acc = gateway.accounting()
        assert acc["admitted"] == acc["completed"]

    def test_fast_primary_cancels_hedge_check(self):
        world, _v, cloud = build_cloud(members=3)
        gateway = ServiceGateway(
            world, cloud, name="gw", queue_capacity=8,
            hedging=HedgePolicy(fallback_factor=3.0),
        )
        gateway.submit(request(work_mi=100.0, deadline_s=30.0))
        world.run_until(20.0)
        assert gateway.stats.completed == 1
        assert gateway.stats.hedges_launched == 0


class TestGatewayWiring:
    def test_finish_listener_fires_for_success_and_failure(self):
        world, _v, cloud = build_cloud()
        seen = []
        cloud.on_task_finished(lambda record, reason: seen.append(reason))
        cloud.submit(Task(work_mi=100.0))
        world.run_until(5.0)
        assert seen == ["completed"]
        # Saturate every worker with long tasks, then a short-deadline
        # arrival starves in the retry loop and fails typed "deadline".
        for _ in range(10):
            cloud.submit(Task(work_mi=5000.0))
        cloud.submit(Task(work_mi=100.0, deadline_s=0.5))
        world.run_until(30.0)
        assert "deadline" in seen
        assert cloud.stats.failure_reasons.get("deadline") == 1
        assert world.metrics.counter("serve-vc/task_failures/deadline") == 1.0

    def test_cancel_queued_and_running_tasks(self):
        world, _v, cloud = build_cloud()
        running = cloud.submit(Task(work_mi=500.0))
        world.run_until(0.5)
        assert running.state in (TaskState.ASSIGNED, TaskState.RUNNING)
        assert cloud.cancel(running, "hedge_cancelled")
        assert running.state is TaskState.FAILED
        assert not cloud.cancel(running)  # already terminal
        assert cloud.stats.failure_reasons == {"hedge_cancelled": 1}
        world.run_until(20.0)
        assert cloud.accounting()["executions"] == 0

    def test_gated_allocator_filters_candidates(self):
        inner = GreedyResourceAllocator()
        gated = GatedAllocator(
            inner, lambda task, candidate: candidate.vehicle_id != "banned"
        )
        candidates = [
            WorkerCandidate("banned", free_mips=1000, estimated_dwell_s=100),
            WorkerCandidate("ok", free_mips=10, estimated_dwell_s=100),
        ]
        choice = gated.choose(Task(work_mi=10), candidates)
        assert choice is not None and choice.vehicle_id == "ok"
        all_banned = GatedAllocator(inner, lambda _t, _c: False)
        assert all_banned.choose(Task(work_mi=10), candidates) is None

    def test_lease_eviction_trips_breaker(self):
        world, vehicles, cloud = build_cloud()
        board = CircuitBreakerBoard(world, "gw")
        ServiceGateway(
            world, cloud, name="gw", queue_capacity=8, breakers=board
        )
        cloud.enable_worker_leases(lease_duration_s=2.0, sweep_interval_s=0.5)
        victim = vehicles[-1].vehicle_id
        cloud.mark_worker_crashed(victim)
        world.run_until(5.0)
        assert board.total_trips() == 1
        breaker = board.breaker_for(victim)
        assert breaker.trips == 1
        assert breaker.last_trip_reason == "lease_expiry"

    def test_accounting_balances_through_a_noisy_run(self):
        world, _v, cloud = build_cloud(seed=17, members=6)
        gateway = ServiceGateway(
            world, cloud, name="gw", queue_capacity=16,
            admission=DeadlineFeasibilityAdmission(),
            shedders=[DeadlineLapseShedder(), QueueDelayShedder(max_delay_s=3.0)],
            breakers=CircuitBreakerBoard(world, "gw"),
            hedging=HedgePolicy(),
        )
        cloud.enable_worker_leases(lease_duration_s=3.0, sweep_interval_s=1.0)
        tenants = [
            TenantSpec(name="a", arrivals=PoissonArrivals(4.0),
                       work_mi_range=(100.0, 300.0), deadline_s=8.0),
        ]
        WorkloadGenerator(world, gateway, tenants, horizon_s=30.0).start()
        world.engine.schedule_at(
            10.0, lambda: cloud.mark_worker_crashed(cloud.pool.member_ids()[-1]),
            label="test-crash",
        )
        world.run_until(60.0)
        acc = gateway.accounting()
        assert acc["offered"] == acc["admitted"] + acc["rejected"]
        assert acc["admitted"] == (
            acc["completed"] + acc["failed"] + acc["shed"]
            + acc["queued"] + acc["inflight"]
        )
        assert acc["queued"] == 0 and acc["inflight"] == 0
        stats = gateway.stats
        assert sum(stats.shed_reasons.values()) == stats.shed
        assert sum(stats.rejection_reasons.values()) == stats.rejected

    def test_unprotected_gateway_admits_everything(self):
        world, _v, cloud = build_cloud()
        gateway = ServiceGateway.unprotected(world, cloud)
        for _ in range(30):
            assert gateway.submit(request(work_mi=200.0, deadline_s=2.0))
        world.run_until(60.0)
        stats = gateway.stats
        assert stats.rejected == 0 and stats.shed == 0
        assert stats.completed == 30  # everything runs, however late
        assert stats.slo_misses > 0  # ...and lateness shows up as misses

    def test_seeded_run_metrics_byte_identical(self):
        def run():
            reset_task_ids()
            reset_vehicle_ids()
            world, _v, cloud = build_cloud(seed=23, members=6)
            gateway = ServiceGateway(
                world, cloud, name="gw", queue_capacity=16,
                admission=DeadlineFeasibilityAdmission(),
                shedders=[QueueDelayShedder(max_delay_s=3.0)],
                breakers=CircuitBreakerBoard(world, "gw"),
                hedging=HedgePolicy(),
            )
            tenants = [
                TenantSpec(name="a", arrivals=PoissonArrivals(5.0),
                           work_mi_range=(100.0, 300.0), deadline_s=8.0),
            ]
            WorkloadGenerator(world, gateway, tenants, horizon_s=25.0).start()
            world.run_until(40.0)
            return world.metrics.snapshot()

        assert run() == run()
