"""Tests for the tiered edge↔cloud federation (`repro.tier`).

Covers the backhaul link model, the fault-plan driver, tier topology
registration, the health tracker, and — the heart of it — the
speculation edge cases: both replicas failing, a remote result winning
through an outage that opened after dispatch, cancellation of a local
replica that had already been handed over, and speculation collapsing
to local when the remote has no feasible slack.
"""

from __future__ import annotations

from types import SimpleNamespace

import pytest

from repro.chaos import InvariantSuite, TaskConservation, TierConservation
from repro.core import (
    CheckpointHandoverPolicy,
    CloudFederation,
    ResourceOffer,
    Task,
    VehicularCloud,
)
from repro.core.tasks import TaskState, reset_task_ids
from repro.errors import ConfigurationError
from repro.faults.backhaul import BackhaulFaultDriver
from repro.faults.plan import FaultPlan
from repro.geometry import Vec2
from repro.infra.central_cloud import CentralCloud
from repro.mobility import StationaryModel
from repro.mobility.vehicle import reset_vehicle_ids
from repro.serve import HedgePolicy, ServiceGateway, ServiceRequest
from repro.sim import ScenarioConfig, World
from repro.tier import (
    BACKHAUL_DEGRADED,
    BACKHAUL_LOST,
    NO_REMOTE_SLACK,
    SPECULATION_CANCELLED,
    BackhaulLink,
    CentralCloudTier,
    TieredOffloader,
    TierHealthTracker,
    TierTopology,
    VCloudTier,
)


def build_tiered(
    seed=11,
    members=3,
    mips=200.0,
    central_mips=2_000.0,
    link_kwargs=None,
    handover_policy=None,
):
    """Two-tier scenario: a parked v-cloud plus a central cloud over a WAN."""
    world = World(ScenarioConfig(seed=seed))
    model = StationaryModel(
        world, positions=[Vec2(i * 20.0, 0.0) for i in range(members)]
    )
    vehicles = model.populate(members)
    cloud = VehicularCloud(world, "tier-local", handover_policy=handover_policy)
    for vehicle in vehicles:
        cloud.admit(
            vehicle, offer=ResourceOffer(vehicle.vehicle_id, mips, 10**9, 1e6)
        )
    central = CentralCloud(world, compute_mips=central_mips, wan_delay_s=0.0)
    link = BackhaulLink(world, "wan", **(link_kwargs or {"base_latency_s": 0.05}))
    topology = TierTopology()
    local = topology.register(VCloudTier(world, "local", "local", cloud))
    remote = topology.register(CentralCloudTier(world, "central", central, link))
    offloader = TieredOffloader(world, topology, name="t")
    return SimpleNamespace(
        world=world,
        vehicles=vehicles,
        cloud=cloud,
        central=central,
        link=link,
        topology=topology,
        local=local,
        remote=remote,
        offloader=offloader,
    )


def assert_conserved(offloader, now):
    assert TierConservation(offloader).check(now) == []


# ---------------------------------------------------------------------------
# BackhaulLink
# ---------------------------------------------------------------------------


class TestBackhaulLink:
    def test_validation(self, world):
        with pytest.raises(ConfigurationError):
            BackhaulLink(world, base_latency_s=-1.0)
        with pytest.raises(ConfigurationError):
            BackhaulLink(world, throughput_bps=0.0)
        with pytest.raises(ConfigurationError):
            BackhaulLink(world, loss_probability=1.0)

    def test_delivers_after_latency_plus_serialization(self, world):
        link = BackhaulLink(world, base_latency_s=0.1, throughput_bps=8_000.0)
        delivered = []
        link.transmit(1_000, deliver=lambda: delivered.append(world.now))
        world.run_until(5.0)
        # 0.1s propagation + 1000 B * 8 / 8000 bps = 1.1s total.
        assert delivered == [pytest.approx(1.1)]
        assert link.accounting() == {
            "sent": 1, "delivered": 1, "lost": 0, "in_flight": 0,
        }

    def test_outage_refuses_new_sends_but_not_frames_in_flight(self, world):
        link = BackhaulLink(world, base_latency_s=1.0)
        outcomes = []
        link.transmit(100, deliver=lambda: outcomes.append("delivered"))
        world.run_until(0.5)
        link.start_outage(10.0)
        assert not link.available()
        sent = link.transmit(
            100,
            deliver=lambda: outcomes.append("late"),
            on_lost=lambda reason: outcomes.append(f"lost:{reason}"),
        )
        assert sent is False
        world.run_until(5.0)
        # The in-flight frame beat the cut; the new one was refused.
        assert outcomes == ["lost:outage", "delivered"]
        world.run_until(11.0)
        assert link.available()

    def test_end_outage_restores_immediately(self, world):
        link = BackhaulLink(world)
        link.start_outage()  # indefinite
        assert not link.available()
        link.end_outage()
        assert link.available()

    def test_loss_window_elevates_then_expires(self, world):
        link = BackhaulLink(world, base_latency_s=0.01)
        link.add_loss_window(5.0, 1.0)
        lost = []
        link.transmit(10, deliver=lambda: None, on_lost=lost.append)
        assert lost == ["loss"]
        world.run_until(6.0)
        assert link.effective_loss_probability() == 0.0
        delivered = []
        link.transmit(10, deliver=lambda: delivered.append(True))
        world.run_until(7.0)
        assert delivered == [True]

    def test_latency_estimate_tracks_jitter_window(self, world):
        link = BackhaulLink(world, base_latency_s=0.1, jitter_s=0.02)
        base = link.latency_estimate_s(0)
        assert base == pytest.approx(0.12)
        link.add_jitter_window(5.0, 0.5)
        assert link.latency_estimate_s(0) == pytest.approx(0.62)
        world.run_until(6.0)
        assert link.latency_estimate_s(0) == pytest.approx(0.12)


class TestBackhaulFaultDriver:
    def test_plan_kinds_map_onto_the_link(self, world):
        link = BackhaulLink(world, base_latency_s=0.01)
        plan = (
            FaultPlan(3)
            .partition(1.0, duration_s=2.0)
            .loss_burst(4.0, duration_s=3.0, drop_probability=0.9)
            .jitter_spike(8.0, duration_s=2.0, max_extra_delay_s=0.25)
            .crash(5.0)  # no WAN analogue; must be skipped
        )
        driver = BackhaulFaultDriver(world.engine, link, plan)
        assert driver.arm() == 3
        assert [spec.kind for spec in driver.skipped] == ["crash"]

        world.run_until(1.5)
        assert not link.available()
        world.run_until(3.5)
        assert link.available()
        world.run_until(4.5)
        assert link.effective_loss_probability() == pytest.approx(0.9)
        world.run_until(8.5)
        assert link.max_jitter_s() == pytest.approx(0.25)
        assert [entry[1] for entry in driver.ledger] == [
            "partition", "loss_burst", "jitter_spike",
        ]

    def test_arm_is_idempotent(self, world):
        link = BackhaulLink(world)
        driver = BackhaulFaultDriver(
            world.engine, link, FaultPlan(1).partition(1.0, duration_s=1.0)
        )
        assert driver.arm() == 1
        assert driver.arm() == 0


# ---------------------------------------------------------------------------
# TierTopology
# ---------------------------------------------------------------------------


class TestTierTopology:
    def test_registration_guards(self, world):
        cloud = VehicularCloud(world, "vc")
        topology = TierTopology()
        topology.register(VCloudTier(world, "a", "local", cloud))
        with pytest.raises(ConfigurationError):
            topology.register(VCloudTier(world, "a", "local", cloud))
        with pytest.raises(ConfigurationError):
            VCloudTier(world, "b", "orbital", cloud)
        with pytest.raises(ConfigurationError):
            topology.tier("missing")

    def test_remote_tiers_order_edge_before_cloud(self, world):
        cloud = VehicularCloud(world, "vc")
        central = CentralCloud(world, wan_delay_s=0.0)
        link = BackhaulLink(world)
        topology = TierTopology()
        topology.register(CentralCloudTier(world, "dc", central, link))
        topology.register(VCloudTier(world, "rsu-edge", "edge", cloud, link=link))
        topology.register(VCloudTier(world, "near", "local", cloud))
        assert [t.name for t in topology.remote_tiers()] == ["rsu-edge", "dc"]
        assert [t.name for t in topology.local_tiers()] == ["near"]
        description = topology.describe()
        assert "edge: rsu-edge via backhaul" in description
        assert "local: near" in description

    def test_offloader_requires_tiers(self, world):
        with pytest.raises(ConfigurationError):
            TieredOffloader(world, TierTopology())


# ---------------------------------------------------------------------------
# Speculation: the happy race and its degradations
# ---------------------------------------------------------------------------


class TestSpeculation:
    def test_remote_wins_and_local_loser_is_cancelled(self):
        b = build_tiered(mips=100.0, central_mips=10_000.0)
        spec = b.offloader.submit(
            Task(work_mi=1_000.0, deadline_s=10.0), policy="speculate"
        )
        assert len(spec.attempts) == 2
        b.world.run_until(20.0)
        assert spec.resolved and spec.outcome == "completed"
        assert spec.winner is not None and spec.winner.tier_name == "central"
        local_attempt = next(a for a in spec.attempts if a.tier_name == "local")
        assert local_attempt.cancelled
        assert local_attempt.terminal_reason == SPECULATION_CANCELLED
        assert b.cloud.stats.failure_reasons == {SPECULATION_CANCELLED: 1}
        stats = b.offloader.stats
        assert stats.speculated == 1
        assert stats.deadline_hits == 1 and stats.deadline_misses == 0
        assert stats.attempts_won == 1 and stats.attempts_cancelled == 1
        assert_conserved(b.offloader, b.world.now)

    def test_local_wins_when_remote_is_slow(self):
        b = build_tiered(mips=500.0, central_mips=2_000.0,
                         link_kwargs={"base_latency_s": 3.0})
        # Remote estimate ~ 6.5s still beats the 8s deadline, so the race
        # runs — but the local replica finishes first.
        spec = b.offloader.submit(
            Task(work_mi=1_000.0, deadline_s=8.0), policy="speculate"
        )
        assert len(spec.attempts) == 2
        b.world.run_until(30.0)
        assert spec.winner is not None and spec.winner.tier_name == "local"
        assert b.offloader.stats.wins_by_tier == {"local": 1}
        assert_conserved(b.offloader, b.world.now)

    # -- ISSUE edge case 1: both replicas fail -----------------------------

    def test_both_replicas_fail_yields_typed_task_failure(self):
        b = build_tiered(members=0)  # no workers: local can never assign
        b.link.add_loss_window(60.0, 1.0)  # WAN drops every frame
        spec = b.offloader.submit(
            Task(work_mi=100.0, deadline_s=5.0), policy="speculate"
        )
        b.world.run_until(30.0)
        assert spec.resolved
        remote_attempt = next(a for a in spec.attempts if a.tier_name == "central")
        local_attempt = next(a for a in spec.attempts if a.tier_name == "local")
        assert remote_attempt.terminal_reason == BACKHAUL_LOST
        assert local_attempt.terminal_reason == "deadline"
        assert spec.outcome == "deadline"
        stats = b.offloader.stats
        assert stats.failed == 1 and stats.completed == 0
        assert stats.failure_reasons == {"deadline": 1}
        assert stats.deadline_misses == 1
        assert stats.attempts_failed == 2
        assert_conserved(b.offloader, b.world.now)

    # -- ISSUE edge case 2: remote wins through an outage that opened
    #    after dispatch (result frame already on the wire) ------------------

    def test_remote_wins_during_outage_opened_after_dispatch(self):
        b = build_tiered(mips=100.0, central_mips=2_000.0,
                         link_kwargs={"base_latency_s": 0.5})
        # Uplink delivers ~0.5s, processing 0.5s, result sent ~1.0s,
        # arriving ~1.5s.  The outage at 1.2s opens *after* the result
        # frame left — send-time loss sampling lets it land anyway.
        b.world.engine.schedule_at(
            1.2, lambda: b.link.start_outage(5.0), label="test-outage"
        )
        spec = b.offloader.submit(
            Task(work_mi=1_000.0, deadline_s=10.0), policy="speculate"
        )
        b.world.run_until(3.0)
        assert spec.resolved and spec.outcome == "completed"
        assert spec.winner is not None and spec.winner.tier_name == "central"
        assert spec.resolved_at is not None and 1.2 < spec.resolved_at < 6.2
        assert not b.link.available()  # the link was dark when it won
        assert b.link.loss_reasons == {}
        assert_conserved(b.offloader, b.world.now)

    def test_outage_before_result_send_loses_remote_and_local_wins(self):
        b = build_tiered(mips=500.0, central_mips=2_000.0,
                         link_kwargs={"base_latency_s": 0.5})
        # Same race, but the cut lands at 0.8s — before the remote result
        # is sent at ~1.0s — so the downlink frame is refused.
        b.world.engine.schedule_at(
            0.8, lambda: b.link.start_outage(30.0), label="test-outage"
        )
        spec = b.offloader.submit(
            Task(work_mi=1_000.0, deadline_s=10.0), policy="speculate"
        )
        b.world.run_until(20.0)
        assert spec.winner is not None and spec.winner.tier_name == "local"
        remote_attempt = next(a for a in spec.attempts if a.tier_name == "central")
        assert remote_attempt.terminal_reason == BACKHAUL_LOST
        assert b.link.loss_reasons == {"outage": 1}
        assert b.offloader.stats.deadline_hits == 1
        assert_conserved(b.offloader, b.world.now)

    # -- ISSUE edge case 3: cancel-after-handover of the losing local
    #    replica ------------------------------------------------------------

    def test_cancel_after_handover_of_losing_local_replica(self):
        b = build_tiered(
            mips=200.0,
            central_mips=500.0,
            handover_policy=CheckpointHandoverPolicy(reauth_latency_s=5.0),
        )
        spec = b.offloader.submit(
            Task(work_mi=1_000.0, deadline_s=15.0), policy="speculate"
        )
        local_attempt = next(a for a in spec.attempts if a.tier_name == "local")
        assert local_attempt.record is not None
        worker = local_attempt.record.worker_id
        assert worker is not None
        # Depart the busy worker at 1s: the replica (5s runtime) hands
        # over and sits HANDED_OVER awaiting its slow (5s) requeue.
        b.world.engine.schedule_at(
            1.0, lambda: b.cloud.member_leave(worker), label="test-depart"
        )
        b.world.run_until(1.5)
        assert local_attempt.record.state is TaskState.HANDED_OVER
        assert b.cloud.stats.handovers == 1
        # The remote wins (~2.1s) while the local replica is still parked
        # in handover; the cancel must retire it cleanly.
        b.world.run_until(30.0)
        assert spec.winner is not None and spec.winner.tier_name == "central"
        assert local_attempt.cancelled
        assert local_attempt.terminal_reason == SPECULATION_CANCELLED
        assert local_attempt.record.state is TaskState.FAILED
        assert b.cloud.stats.failure_reasons == {SPECULATION_CANCELLED: 1}
        # The pending requeue fired into a terminal record: a no-op.
        assert b.offloader.accounting()["live"] == 0
        assert_conserved(b.offloader, b.world.now)

    # -- ISSUE edge case 4: no feasible remote slack -----------------------

    def test_no_remote_slack_collapses_without_remote_dispatch(self):
        b = build_tiered(mips=200.0, link_kwargs={"base_latency_s": 5.0})
        spec = b.offloader.submit(
            Task(work_mi=100.0, deadline_s=2.0), policy="speculate"
        )
        # Collapse decided at submit: one local attempt, nothing on the
        # wire, nothing pending remotely.
        assert spec.degraded == NO_REMOTE_SLACK
        assert [a.tier_name for a in spec.attempts] == ["local"]
        assert b.link.sent == 0
        assert b.central.pending_requests() == 0
        b.world.run_until(10.0)
        stats = b.offloader.stats
        assert stats.speculated == 0
        assert stats.degraded == {NO_REMOTE_SLACK: 1}
        assert stats.deadline_hits == 1
        assert spec.winner is not None and spec.winner.tier_name == "local"
        assert_conserved(b.offloader, b.world.now)

    def test_backhaul_outage_at_submit_degrades_to_local(self):
        b = build_tiered()
        b.link.start_outage()  # WAN already dark when the task arrives
        spec = b.offloader.submit(
            Task(work_mi=100.0, deadline_s=5.0), policy="speculate"
        )
        assert spec.degraded == BACKHAUL_DEGRADED
        assert [a.tier_name for a in spec.attempts] == ["local"]
        assert b.link.sent == 0
        b.world.run_until(10.0)
        assert b.offloader.stats.degraded == {BACKHAUL_DEGRADED: 1}
        assert spec.winner is not None and spec.winner.tier_name == "local"
        assert_conserved(b.offloader, b.world.now)

    def test_speculate_without_deadline_degrades_to_prefer_local(self):
        b = build_tiered()
        spec = b.offloader.submit(Task(work_mi=100.0), policy="speculate")
        assert [a.tier_name for a in spec.attempts] == ["local"]
        assert b.offloader.stats.speculated == 0
        b.world.run_until(10.0)
        assert spec.outcome == "completed"
        assert_conserved(b.offloader, b.world.now)


class TestPolicies:
    def test_local_only_never_leaves_the_local_tier(self):
        b = build_tiered(central_mips=100_000.0)
        spec = b.offloader.submit(
            Task(work_mi=100.0, deadline_s=10.0), policy="local_only"
        )
        assert [a.tier_name for a in spec.attempts] == ["local"]
        b.world.run_until(10.0)
        assert b.link.sent == 0
        assert spec.winner is not None and spec.winner.tier_name == "local"

    def test_prefer_local_fails_over_when_local_is_unhealthy(self):
        b = build_tiered(members=0)  # zero workers: local unreachable
        spec = b.offloader.submit(Task(work_mi=100.0), policy="prefer_local")
        assert [a.tier_name for a in spec.attempts] == ["central"]
        b.world.run_until(10.0)
        assert spec.outcome == "completed"
        assert b.offloader.stats.failovers == 1
        assert_conserved(b.offloader, b.world.now)

    def test_unknown_policy_rejected(self):
        b = build_tiered()
        with pytest.raises(ConfigurationError):
            b.offloader.submit(Task(work_mi=1.0), policy="yolo")


class TestTierHealth:
    def test_sustained_failures_demote_the_tier(self):
        # Tier demotion demands a *sustained* failure streak (the
        # default threshold is deliberately loss-tolerant: sporadic
        # frame loss is speculation's job to absorb, not the breaker's).
        b = build_tiered()
        health = b.offloader.health
        assert health.healthy(b.remote)
        for _ in range(6):
            health.note_dispatch(b.remote)
            health.record_outcome(b.remote, BACKHAUL_LOST)
        assert not health.healthy(b.remote)
        assert health.demotions == 1
        assert health.breaker_state(b.remote) == "OPEN"

    def test_cancelled_losers_are_neutral(self):
        b = build_tiered()
        health = b.offloader.health
        for _ in range(10):
            health.note_dispatch(b.remote)
            health.record_outcome(b.remote, SPECULATION_CANCELLED)
        assert health.healthy(b.remote)
        assert health.demotions == 0

    def test_sporadic_failures_do_not_demote(self):
        # 4 losses spread over 12 successes is a lossy-but-alive WAN:
        # well under the 0.9 threshold, the tier keeps its place.
        b = build_tiered()
        health = b.offloader.health
        for i in range(16):
            health.note_dispatch(b.remote)
            health.record_outcome(
                b.remote, BACKHAUL_LOST if i % 4 == 0 else "completed"
            )
        assert health.healthy(b.remote)
        assert health.demotions == 0

    def test_demoted_remote_collapses_speculation(self):
        b = build_tiered()
        health = b.offloader.health
        for _ in range(6):
            health.note_dispatch(b.remote)
            health.record_outcome(b.remote, BACKHAUL_LOST)
        spec = b.offloader.submit(
            Task(work_mi=100.0, deadline_s=5.0), policy="speculate"
        )
        assert spec.degraded == BACKHAUL_DEGRADED
        assert [a.tier_name for a in spec.attempts] == ["local"]

    def test_validation(self, world):
        with pytest.raises(ConfigurationError):
            TierHealthTracker(world, cooldown_s=0.0)
        with pytest.raises(ConfigurationError):
            TierHealthTracker(world, max_queue_delay_s=-1.0)


# ---------------------------------------------------------------------------
# Determinism and conservation under churn
# ---------------------------------------------------------------------------


class TestDeterminismAndConservation:
    def _run_smoke(self, seed):
        from repro.tier.smoke import HORIZON_S, build

        reset_task_ids()
        reset_vehicle_ids()
        world, offloader, suite, driver = build(seed)
        world.run_until(HORIZON_S)
        return world, offloader, suite

    def test_seeded_replay_is_identical(self):
        world1, off1, suite1 = self._run_smoke(77)
        world2, off2, suite2 = self._run_smoke(77)
        assert off1.accounting() == off2.accounting()
        assert off1.stats.wins_by_tier == off2.stats.wins_by_tier
        assert off1.stats.degraded == off2.stats.degraded
        assert world1.metrics.snapshot() == world2.metrics.snapshot()
        assert not suite1.violations and not suite2.violations

    def test_smoke_scenario_is_conservation_clean(self):
        world, offloader, suite = self._run_smoke(2024)
        assert suite.checks_run > 0
        assert suite.violations == []
        acc = offloader.accounting()
        assert acc["live"] == 0 and acc["attempts_live"] == 0


# ---------------------------------------------------------------------------
# CentralCloud satellite: typed failures and queue estimates
# ---------------------------------------------------------------------------


class TestCentralCloudContract:
    def test_cancel_is_a_typed_failure(self, world):
        cloud = CentralCloud(world, compute_mips=1_000.0, wan_delay_s=0.1)
        responses = []
        failures = []
        cloud.submit("r1", 500.0, responses.append, on_failure=failures.append)
        assert cloud.pending_requests() == 1
        assert cloud.cancel("r1", reason="speculation_cancelled")
        assert failures == ["speculation_cancelled"]
        assert cloud.failure_reasons == {"speculation_cancelled": 1}
        assert cloud.pending_requests() == 0
        world.run_until(5.0)
        assert responses == []  # the response event really was cancelled
        assert cloud.requests_served == 0
        assert not cloud.cancel("r1")  # already terminal
        assert not cloud.cancel("never-existed")

    def test_cancel_reclaims_unstarted_queue_slot(self, world):
        cloud = CentralCloud(world, compute_mips=1_000.0, wan_delay_s=0.0)
        cloud.submit("head", 2_000.0, lambda _r: None)  # 2s of work
        cloud.submit("tail", 2_000.0, lambda _r: None)  # queued behind it
        assert cloud.queue_delay_estimate() == pytest.approx(4.0)
        cloud.cancel("tail")
        assert cloud.queue_delay_estimate() == pytest.approx(2.0)
        assert cloud.backlog_s == pytest.approx(2.0)

    def test_queue_delay_estimate_matches_reported_delay(self, world):
        cloud = CentralCloud(world, compute_mips=1_000.0, wan_delay_s=0.5)
        cloud.submit("warm", 3_000.0, lambda _r: None)
        estimate = cloud.queue_delay_estimate()
        observed = []
        cloud.submit("probe", 0.0, lambda r: observed.append(r.queue_delay_s))
        world.run_until(20.0)
        assert observed == [pytest.approx(estimate)]


# ---------------------------------------------------------------------------
# Federation satellite: merge/split observability
# ---------------------------------------------------------------------------


class TestFederationObservability:
    def _vehicles(self, world, positions):
        model = StationaryModel(world, positions=positions)
        return model.populate(len(positions))

    def test_merge_emits_event_and_metrics(self):
        world = World(ScenarioConfig(seed=5))
        world.enable_observability()
        vehicles = self._vehicles(
            world, [Vec2(0.0, 0.0), Vec2(10.0, 0.0), Vec2(20.0, 0.0), Vec2(30.0, 0.0)]
        )
        lookup = {v.vehicle_id: v for v in vehicles}
        a = VehicularCloud(world, "fed-a")
        b = VehicularCloud(world, "fed-b")
        for vehicle in vehicles[:2]:
            a.admit(vehicle, offer=ResourceOffer(vehicle.vehicle_id, 100.0, 1e9, 1e6))
        for vehicle in vehicles[2:]:
            b.admit(vehicle, offer=ResourceOffer(vehicle.vehicle_id, 100.0, 1e9, 1e6))
        federation = CloudFederation(
            world, lookup.get, merge_range_m=50.0, max_diameter_m=1_000.0
        )
        federation.register(a)
        federation.register(b)
        federation.step()
        assert federation.merges == 1 and federation.cloud_count() == 1
        assert world.metrics.counter("federation/merges") == 1
        assert world.metrics.gauge("federation/clouds") == 1.0
        assert world.metrics.gauge("federation/members") == 4.0
        merged = [r for r in world.events.records() if r.name == "cloud_merged"]
        assert len(merged) == 1
        assert merged[0].attrs["moved_members"] == 2

    def test_split_emits_event_and_metrics(self):
        world = World(ScenarioConfig(seed=6))
        world.enable_observability()
        vehicles = self._vehicles(
            world,
            [Vec2(0.0, 0.0), Vec2(10.0, 0.0), Vec2(500.0, 0.0), Vec2(510.0, 0.0)],
        )
        lookup = {v.vehicle_id: v for v in vehicles}
        cloud = VehicularCloud(world, "fed-wide")
        for vehicle in vehicles:
            cloud.admit(
                vehicle, offer=ResourceOffer(vehicle.vehicle_id, 100.0, 1e9, 1e6)
            )
        federation = CloudFederation(
            world, lookup.get, merge_range_m=50.0, max_diameter_m=100.0
        )
        federation.register(cloud)
        federation.step()
        assert federation.splits == 1 and federation.cloud_count() == 2
        assert world.metrics.counter("federation/splits") == 1
        assert world.metrics.gauge("federation/clouds") == 2.0
        split = [r for r in world.events.records() if r.name == "cloud_split"]
        assert len(split) == 1
        assert split[0].attrs["seceded_members"] == 2


# ---------------------------------------------------------------------------
# Gateway integration: tiering=
# ---------------------------------------------------------------------------


def build_gateway_tiered(seed=9, **gateway_kwargs):
    b = build_tiered(seed=seed, mips=100.0, central_mips=10_000.0)
    gateway = ServiceGateway(
        b.world, b.cloud, name="gw", tiering=b.offloader, **gateway_kwargs
    )
    return b, gateway


class TestGatewayTiering:
    def test_deadline_requests_speculate_and_complete(self):
        b, gateway = build_gateway_tiered()
        accepted = gateway.submit(
            ServiceRequest.build(work_mi=1_000.0, tenant="t", deadline_s=10.0)
        )
        assert accepted
        b.world.run_until(20.0)
        assert gateway.stats.completed == 1
        assert gateway.stats.slo_hits == 1
        assert b.offloader.stats.speculated == 1
        assert b.offloader.stats.wins_by_tier == {"central": 1}
        assert_conserved(b.offloader, b.world.now)

    def test_requests_without_deadline_prefer_local(self):
        b, gateway = build_gateway_tiered()
        gateway.submit(
            ServiceRequest.build(work_mi=100.0, tenant="t", deadline_s=None)
        )
        b.world.run_until(20.0)
        assert gateway.stats.completed == 1
        assert b.offloader.stats.speculated == 0
        assert b.offloader.stats.wins_by_tier == {"local": 1}

    def test_tiered_failure_lands_as_gateway_failure(self):
        b = build_tiered(seed=9, members=0)  # local can never assign
        b.link.add_loss_window(120.0, 1.0)  # and the WAN eats every frame
        gateway = ServiceGateway(b.world, b.cloud, name="gw", tiering=b.offloader)
        gateway.submit(
            ServiceRequest.build(work_mi=100.0, tenant="t", deadline_s=5.0)
        )
        b.world.run_until(30.0)
        assert gateway.stats.completed == 0
        assert gateway.stats.failed == 1
        assert_conserved(b.offloader, b.world.now)

    def test_tiering_excludes_hedging(self):
        b = build_tiered()
        with pytest.raises(ConfigurationError):
            ServiceGateway(
                b.world, b.cloud, name="gw",
                tiering=b.offloader, hedging=HedgePolicy(),
            )

    def test_tiering_must_cover_the_gateway_cloud(self):
        b = build_tiered()
        other = VehicularCloud(b.world, "other-vc")
        with pytest.raises(ConfigurationError):
            ServiceGateway(b.world, other, name="gw", tiering=b.offloader)


# ---------------------------------------------------------------------------
# TierConservation wiring
# ---------------------------------------------------------------------------


class TestTierConservationInvariant:
    def test_clean_run_has_no_violations(self):
        b = build_tiered()
        suite = InvariantSuite(
            [TaskConservation(b.cloud), TierConservation(b.offloader)],
            metrics=b.world.metrics,
        )
        suite.attach(b.world, check_interval_s=0.25)
        for index in range(5):
            b.world.engine.schedule_at(
                index * 1.0,
                lambda: b.offloader.submit(
                    Task(work_mi=200.0, deadline_s=8.0), policy="speculate"
                ),
                label="test-submit",
            )
        b.world.run_until(30.0)
        assert suite.checks_run > 0
        assert suite.violations == []

    def test_detects_a_leaked_winner(self):
        b = build_tiered()
        spec = b.offloader.submit(
            Task(work_mi=100.0, deadline_s=10.0), policy="speculate"
        )
        b.world.run_until(10.0)
        assert spec.resolved
        # Sabotage the ledger: pretend the winning attempt never won.
        b.offloader.stats.attempts_won -= 1
        violations = TierConservation(b.offloader).check(b.world.now)
        assert violations
        assert any("winner" in v.message or "winning" in v.message for v in violations)
