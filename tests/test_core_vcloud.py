"""Integration tests for the VehicularCloud orchestrator and architectures."""

from __future__ import annotations

import pytest

from repro.core import (
    DropPolicy,
    DynamicVCloud,
    InfrastructureVCloud,
    RsuCoordination,
    StationaryVCloud,
    Task,
    TaskState,
    V2VCoordination,
    VehicularCloud,
)
from repro.geometry import Vec2
from repro.infra import Rsu, deploy_rsus_on_highway
from repro.mobility import (
    Highway,
    HighwayModel,
    ParkingLotModel,
    StationaryModel,
)
from repro.net import WirelessChannel
from repro.security import TrustedAuthority
from repro.security.protocols import PseudonymAuthProtocol
from repro.sim import ScenarioConfig, World


def static_cloud(world, members=4, mips=1000.0):
    """A cloud of stationary vehicles (no churn) for focused task tests."""
    model = StationaryModel(world, positions=[Vec2(i * 50.0, 0) for i in range(members)])
    vehicles = model.populate(members)
    cloud = VehicularCloud(world, "test-vc")
    from repro.core import ResourceOffer

    for vehicle in vehicles:
        cloud.admit(
            vehicle,
            offer=ResourceOffer(vehicle.vehicle_id, mips, 10**9, 1e6),
        )
    return model, vehicles, cloud


class TestTaskExecution:
    def test_task_completes(self, world):
        _model, _vehicles, cloud = static_cloud(world)
        record = cloud.submit(Task(work_mi=1000))
        world.run_for(10.0)
        assert record.state is TaskState.COMPLETED
        assert record.completion_latency_s == pytest.approx(1.0, abs=0.5)
        assert cloud.stats.completion_rate == 1.0

    def test_deadline_accounting(self, world):
        _m, _v, cloud = static_cloud(world)
        met = cloud.submit(Task(work_mi=100, deadline_s=10.0))
        missed = cloud.submit(Task(work_mi=100_000, deadline_s=1.0))
        world.run_for(200.0)
        assert met.met_deadline() is True
        assert missed.met_deadline() is False
        assert cloud.stats.deadline_hits == 1
        assert cloud.stats.deadline_misses == 1

    def test_head_does_not_self_assign(self, world):
        _m, vehicles, cloud = static_cloud(world, members=3)
        records = [cloud.submit(Task(work_mi=100)) for _ in range(6)]
        world.run_for(30.0)
        for record in records:
            assert cloud.head_id not in record.workers_history

    def test_single_member_cloud_self_assigns(self, world):
        _m, vehicles, cloud = static_cloud(world, members=1)
        record = cloud.submit(Task(work_mi=100))
        world.run_for(10.0)
        assert record.state is TaskState.COMPLETED

    def test_no_members_retries_then_fails(self, world):
        cloud = VehicularCloud(world, "empty-vc", max_assignment_retries=3)
        record = cloud.submit(Task(work_mi=100))
        world.run_for(30.0)
        assert record.state is TaskState.FAILED
        assert cloud.stats.failed == 1

    def test_parallel_tasks_spread_across_workers(self, world):
        _m, vehicles, cloud = static_cloud(world, members=5)
        records = [cloud.submit(Task(work_mi=2000)) for _ in range(4)]
        world.run_for(0.5)
        workers = {r.worker_id for r in records if r.worker_id}
        assert len(workers) == 4  # one busy worker per task

    def test_metrics_track_submissions(self, world):
        _m, _v, cloud = static_cloud(world)
        for _ in range(5):
            cloud.submit(Task(work_mi=10))
        world.run_for(10.0)
        assert cloud.stats.submitted == 5
        assert cloud.stats.completed == 5


class TestChurnAndHandover:
    def test_departure_triggers_handover(self, world):
        _m, vehicles, cloud = static_cloud(world, members=3, mips=100.0)
        record = cloud.submit(Task(work_mi=1000))  # 10s of work
        world.run_for(3.0)
        assert record.state is TaskState.RUNNING
        worker = record.worker_id
        cloud.member_leave(worker)
        world.run_for(30.0)
        assert record.state is TaskState.COMPLETED
        assert record.handovers == 1
        assert worker not in (record.worker_id,)
        assert cloud.stats.handovers == 1

    def test_handover_preserves_progress(self, world):
        _m, vehicles, cloud = static_cloud(world, members=3, mips=100.0)
        record = cloud.submit(Task(work_mi=1000))
        world.run_for(6.0)  # over half done
        first_worker = record.worker_id
        cloud.member_leave(first_worker)
        world.run_for(1.0)
        assert record.progress > 0.4

    def test_drop_policy_wastes_work(self, world):
        model = StationaryModel(world, positions=[Vec2(i * 50.0, 0) for i in range(3)])
        vehicles = model.populate(3)
        cloud = VehicularCloud(world, "drop-vc", handover_policy=DropPolicy())
        from repro.core import ResourceOffer

        for vehicle in vehicles:
            cloud.admit(vehicle, offer=ResourceOffer(vehicle.vehicle_id, 100.0, 10**9, 1e6))
        record = cloud.submit(Task(work_mi=1000))
        world.run_for(6.0)
        cloud.member_leave(record.worker_id)
        world.run_for(1.0)
        assert record.progress == 0.0
        assert cloud.stats.wasted_work_mi > 0
        assert cloud.stats.drops == 1

    def test_head_departure_promotes_new_head(self, world):
        _m, vehicles, cloud = static_cloud(world)
        old_head = cloud.head_id
        cloud.member_leave(old_head)
        assert cloud.head_id is not None
        assert cloud.head_id != old_head


class TestAuthenticatedAdmission:
    def test_enrolled_vehicles_admitted(self, world):
        authority = TrustedAuthority()
        protocol = PseudonymAuthProtocol(authority)
        model = StationaryModel(world, positions=[Vec2(0, 0), Vec2(50, 0)])
        vehicles = model.populate(2)
        for vehicle in vehicles:
            protocol.enroll(vehicle.vehicle_id)
        cloud = VehicularCloud(world, "auth-vc", auth_protocol=protocol)
        assert cloud.admit(vehicles[0])  # first member becomes head, no handshake
        assert cloud.admit(vehicles[1])
        assert cloud.member_count() == 2

    def test_unenrolled_vehicle_rejected(self, world):
        authority = TrustedAuthority()
        protocol = PseudonymAuthProtocol(authority)
        model = StationaryModel(world, positions=[Vec2(0, 0), Vec2(50, 0)])
        vehicles = model.populate(2)
        protocol.enroll(vehicles[0].vehicle_id)
        cloud = VehicularCloud(world, "auth-vc", auth_protocol=protocol)
        cloud.admit(vehicles[0])
        assert not cloud.admit(vehicles[1])  # never enrolled
        assert cloud.stats.auth_failures == 1
        assert cloud.member_count() == 1


class TestCoordinationAdapters:
    def test_rsu_coordination_counts_infra_messages(self, world):
        channel = WirelessChannel(world)
        rsu = Rsu(world, channel, Vec2(0, 0))
        model = StationaryModel(world, positions=[Vec2(10, 0), Vec2(20, 0)])
        vehicles = model.populate(2)
        cloud = VehicularCloud(
            world, "rsu-vc", coordination=RsuCoordination(rsu), head_id=rsu.node_id
        )
        for vehicle in vehicles:
            cloud.admit(vehicle)
        record = cloud.submit(Task(work_mi=100))
        world.run_for(10.0)
        assert record.state is TaskState.COMPLETED
        assert cloud.stats.infra_messages == 4

    def test_v2v_coordination_is_infra_free(self, world):
        _m, _v, cloud = static_cloud(world)
        cloud.submit(Task(work_mi=100))
        world.run_for(10.0)
        assert cloud.stats.infra_messages == 0

    def test_rsu_latency_includes_backhaul(self, world):
        channel = WirelessChannel(world)
        rsu = Rsu(world, channel, Vec2(0, 0))
        rsu_adapter = RsuCoordination(rsu)
        v2v = V2VCoordination()
        assert rsu_adapter.coordination_latency_s(1000) > v2v.coordination_latency_s(1000)

    def test_damaged_rsu_blocks_coordination(self, world):
        channel = WirelessChannel(world)
        rsu = Rsu(world, channel, Vec2(0, 0))
        adapter = RsuCoordination(rsu)
        assert adapter.available()
        rsu.damage()
        assert not adapter.available()


class TestArchitectures:
    def test_stationary_cloud_runs_tasks(self):
        world = World(ScenarioConfig(seed=21))
        lot = ParkingLotModel(world, departure_rate_per_hour=0.0)
        lot.populate(10)
        lot.start()
        arch = StationaryVCloud(world, lot)
        arch.start()
        records = [arch.cloud.submit(Task(work_mi=500)) for _ in range(5)]
        world.run_for(60.0)
        assert all(r.state is TaskState.COMPLETED for r in records)

    def test_stationary_battery_limit_reduces_offers(self):
        world = World(ScenarioConfig(seed=22))
        lot = ParkingLotModel(world, departure_rate_per_hour=0.0)
        vehicles = lot.populate(4)
        arch = StationaryVCloud(world, lot, battery_lend_fraction=0.25)
        arch.start()
        for vehicle in vehicles:
            offered = arch.cloud.pool.offer_of(vehicle.vehicle_id).compute_mips
            assert offered == pytest.approx(vehicle.equipment.compute_mips * 0.25)

    def test_stationary_cloud_handles_departures(self):
        world = World(ScenarioConfig(seed=23))
        lot = ParkingLotModel(world, departure_rate_per_hour=1800.0, arrivals_enabled=False)
        lot.populate(20)
        lot.start()
        arch = StationaryVCloud(world, lot)
        arch.start()
        world.run_for(60.0)
        assert arch.cloud.member_count() == len(lot.vehicles)

    def test_infrastructure_cloud_membership_tracks_coverage(self):
        world = World(ScenarioConfig(seed=24))
        highway = Highway(length_m=4000)
        model = HighwayModel(world, highway)
        model.populate(30)
        model.start()
        channel = WirelessChannel(world)
        rsus = deploy_rsus_on_highway(world, channel, highway, spacing_m=2000)
        arch = InfrastructureVCloud(world, rsus[0], model)
        arch.start()
        world.run_for(10.0)
        rsu = rsus[0]
        for member_id in arch.cloud.membership.member_ids():
            vehicle = next(v for v in model.vehicles if v.vehicle_id == member_id)
            assert rsu.covers(vehicle.position)

    def test_infrastructure_cloud_dies_with_rsu(self):
        world = World(ScenarioConfig(seed=25))
        highway = Highway(length_m=3000)
        model = HighwayModel(world, highway)
        model.populate(20)
        model.start()
        channel = WirelessChannel(world)
        rsus = deploy_rsus_on_highway(world, channel, highway, spacing_m=1500)
        arch = InfrastructureVCloud(world, rsus[0], model)
        arch.start()
        world.run_for(5.0)
        assert arch.cloud.member_count() > 0
        rsus[0].damage()
        world.run_for(5.0)
        assert arch.cloud.member_count() == 0
        record = arch.cloud.submit(Task(work_mi=100, deadline_s=5.0))
        world.run_for(20.0)
        assert record.state is TaskState.FAILED

    def test_dynamic_cloud_completes_tasks_under_motion(self):
        world = World(ScenarioConfig(seed=26, vehicle_count=40))
        model = HighwayModel(world, Highway(length_m=4000))
        model.populate(40)
        model.start()
        arch = DynamicVCloud(world, model)
        arch.start()
        records = [arch.cloud.submit(Task(work_mi=1000, deadline_s=60)) for _ in range(10)]
        world.run_for(90.0)
        completed = sum(1 for r in records if r.state is TaskState.COMPLETED)
        assert completed >= 8

    def test_dynamic_cloud_survives_without_infrastructure(self):
        """The paper's core claim: dynamic v-clouds need no RSUs at all."""
        world = World(ScenarioConfig(seed=27))
        model = HighwayModel(world, Highway(length_m=3000))
        model.populate(30)
        model.start()
        arch = DynamicVCloud(world, model)
        arch.start()
        record = arch.cloud.submit(Task(work_mi=500))
        world.run_for(30.0)
        assert record.state is TaskState.COMPLETED
        assert arch.cloud.stats.infra_messages == 0

    def test_dynamic_cloud_holds_elections(self):
        world = World(ScenarioConfig(seed=28))
        model = HighwayModel(world, Highway(length_m=2000))
        model.populate(20)
        model.start()
        arch = DynamicVCloud(world, model, reelection_interval_s=5.0)
        arch.start()
        world.run_for(60.0)
        assert arch.elections_held >= 1
        assert arch.cloud.head_id is not None

    def test_dynamic_cloud_membership_is_local(self):
        world = World(ScenarioConfig(seed=29))
        model = HighwayModel(world, Highway(length_m=10_000))
        model.populate(40)
        model.start()
        arch = DynamicVCloud(world, model, coordination_range_m=300.0)
        arch.start()
        world.run_for(5.0)
        head = arch._head_vehicle()
        for member_id in arch.cloud.membership.member_ids():
            vehicle = arch._find_vehicle(member_id)
            if vehicle is not None and head is not None:
                assert vehicle.position.distance_to(head.position) <= 600.0


class TestGeometryCoordination:
    def test_farther_worker_pays_more_latency(self, world):
        from repro.core import GeometryCoordination
        from repro.net import VehicleNode, WirelessChannel

        channel = WirelessChannel(world)
        model = StationaryModel(
            world, positions=[Vec2(0, 0), Vec2(50, 0), Vec2(280, 0)]
        )
        vehicles = model.populate(3)
        for vehicle in vehicles:
            VehicleNode(world, channel, vehicle)
        adapter = GeometryCoordination(channel)
        head_id = vehicles[0].vehicle_id
        near = adapter.latency_for(head_id, vehicles[1].vehicle_id, 10_000)
        far = adapter.latency_for(head_id, vehicles[2].vehicle_id, 10_000)
        assert far > near

    def test_unknown_endpoints_fall_back(self, world):
        from repro.core import GeometryCoordination
        from repro.net import WirelessChannel

        adapter = GeometryCoordination(WirelessChannel(world))
        fallback = adapter.latency_for("ghost-a", "ghost-b", 5_000)
        assert fallback == pytest.approx(adapter.coordination_latency_s(5_000))

    def test_cloud_runs_with_geometry_pricing(self, world):
        from repro.core import GeometryCoordination
        from repro.net import VehicleNode, WirelessChannel

        channel = WirelessChannel(world)
        model = StationaryModel(
            world, positions=[Vec2(i * 60.0, 0) for i in range(4)]
        )
        vehicles = model.populate(4)
        for vehicle in vehicles:
            VehicleNode(world, channel, vehicle)
        cloud = VehicularCloud(
            world, "geo-vc", coordination=GeometryCoordination(channel)
        )
        from repro.core import ResourceOffer

        for vehicle in vehicles:
            cloud.admit(vehicle, offer=ResourceOffer(vehicle.vehicle_id, 1000, 10**9, 1e6))
        record = cloud.submit(Task(work_mi=500))
        world.run_for(10.0)
        assert record.state is TaskState.COMPLETED


class TestCancelEdgeCases:
    """`cancel(record, reason)` stays conserved on every edge path."""

    @staticmethod
    def _assert_conserved(cloud):
        acc = cloud.accounting()
        assert acc["submitted"] == acc["records"]
        assert acc["completed"] == acc["records_completed"]
        assert acc["failed"] == acc["records_failed"]
        assert acc["submitted"] == (
            acc["completed"] + acc["failed"] + acc["records_in_flight"]
        )

    def test_cancel_after_handover(self, world):
        """A handed-over (requeued) task can still be cancelled typed."""
        _m, _v, cloud = static_cloud(world, members=3, mips=100.0)
        record = cloud.submit(Task(work_mi=1000))  # 10 s of work
        world.run_for(3.0)
        assert record.state is TaskState.RUNNING
        cloud.member_leave(record.worker_id)
        assert record.state is TaskState.HANDED_OVER
        assert record.progress > 0.0
        assert cloud.cancel(record, "caller_gone") is True
        assert record.state is TaskState.FAILED
        assert cloud.stats.failure_reasons == {"caller_gone": 1}
        self._assert_conserved(cloud)
        world.run_for(30.0)  # any stale retry events must be no-ops
        assert record.state is TaskState.FAILED
        assert cloud.stats.failure_reasons == {"caller_gone": 1}
        self._assert_conserved(cloud)

    def test_double_cancel_counts_once(self, world):
        _m, _v, cloud = static_cloud(world, members=3, mips=100.0)
        record = cloud.submit(Task(work_mi=1000))
        world.run_for(1.0)
        assert cloud.cancel(record, "first") is True
        assert cloud.cancel(record, "second") is False
        assert cloud.stats.failure_reasons == {"first": 1}
        assert cloud.stats.failed == 1
        self._assert_conserved(cloud)

    def test_cancel_completed_record_is_refused(self, world):
        _m, _v, cloud = static_cloud(world, members=3, mips=100.0)
        record = cloud.submit(Task(work_mi=100))
        world.run_for(10.0)
        assert record.state is TaskState.COMPLETED
        assert cloud.cancel(record, "too_late") is False
        assert record.state is TaskState.COMPLETED
        assert cloud.stats.failure_reasons == {}
        assert cloud.stats.completed == 1
        self._assert_conserved(cloud)

    def test_cancel_running_releases_worker(self, world):
        """Cancelling an executing task frees the reservation for new work."""
        _m, _v, cloud = static_cloud(world, members=2, mips=100.0)
        record = cloud.submit(Task(work_mi=5000))  # 50 s on the lone worker
        world.run_for(1.0)
        worker = record.worker_id
        assert cloud.cancel(record, "superseded") is True
        self._assert_conserved(cloud)
        follow_up = cloud.submit(Task(work_mi=100))
        world.run_for(10.0)
        assert follow_up.state is TaskState.COMPLETED
        assert follow_up.worker_id == worker
        self._assert_conserved(cloud)
