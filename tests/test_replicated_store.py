"""Tests for the quorum-consistent replicated store (tentpole, E12)."""

from __future__ import annotations

import pytest

from repro.core import (
    FileStore,
    QuorumConfig,
    ReplicationManager,
    StoredFile,
    VersionStamp,
    ZERO_STAMP,
)
from repro.core.replication import ReadResult, WriteResult
from repro.errors import (
    ConfigurationError,
    QuorumUnreachableError,
    ReplicaPlacementError,
    ResourceError,
)
from repro.faults import BackoffPolicy
from repro.sim import Engine, SeededRng


def make_manager(members=5, capacity=1000, quorum=None, **kwargs):
    manager = ReplicationManager(SeededRng(11, "repl"), quorum=quorum, **kwargs)
    for index in range(members):
        manager.add_store(FileStore(f"v{index}", capacity))
    return manager


def stamps_of(manager, file_id):
    return {
        owner: manager._stores[owner].stamp_of(file_id)
        for owner in manager.holders_of(file_id)
    }


class TestVersionStamp:
    def test_ordering_is_counter_then_writer(self):
        assert VersionStamp(2, "a") > VersionStamp(1, "z")
        assert VersionStamp(2, "b") > VersionStamp(2, "a")
        assert ZERO_STAMP < VersionStamp(1, "")

    def test_describe(self):
        assert VersionStamp(3, "v7").describe() == "3@v7"


class TestQuorumConfig:
    def test_majority(self):
        assert QuorumConfig.majority(3) == QuorumConfig(2, 2)
        assert QuorumConfig.majority(5) == QuorumConfig(3, 3)

    def test_safety_predicate(self):
        assert QuorumConfig.majority(3).is_safe_for(3)
        assert not QuorumConfig(1, 1).is_safe_for(3)
        assert QuorumConfig(3, 1).is_safe_for(3)

    def test_lost_update_prevention_needs_write_overlap(self):
        assert QuorumConfig.majority(3).prevents_lost_updates(3)
        assert QuorumConfig(3, 1).prevents_lost_updates(3)
        # Read overlap alone (W=1, R=k) does not protect writes.
        assert QuorumConfig(1, 3).is_safe_for(3)
        assert not QuorumConfig(1, 3).prevents_lost_updates(3)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            QuorumConfig(0, 1)
        with pytest.raises(ConfigurationError):
            QuorumConfig.majority(0)


class TestVersionedFileStore:
    def test_running_used_bytes_counter(self):
        store = FileStore("v0", 100)
        store.put("a", 40)
        store.put("b", 30)
        assert store.used_bytes == 70 and store.free_bytes == 30
        store.drop("a")
        assert store.used_bytes == 30
        store.drop("a")  # idempotent
        assert store.used_bytes == 30

    def test_apply_moves_only_forward(self):
        store = FileStore("v0", 100)
        store.put("a", 10, VersionStamp(2, "x"))
        assert not store.apply("a", 10, VersionStamp(1, "y"))
        assert not store.apply("a", 10, VersionStamp(2, "x"))
        assert store.apply("a", 10, VersionStamp(3, "y"))
        assert store.stamp_of("a") == VersionStamp(3, "y")

    def test_digest_equality_tracks_stamps(self):
        a, b = FileStore("a", 100), FileStore("b", 100)
        for store in (a, b):
            store.put("f1", 10, VersionStamp(1))
            store.put("f2", 10, VersionStamp(1))
        assert a.digest() == b.digest()
        b.apply("f2", 10, VersionStamp(2, "w"))
        assert a.digest() != b.digest()
        assert a.digest(["f1"]) == b.digest(["f1"])

    def test_bucket_digests_narrow_divergence(self):
        a, b = FileStore("a", 10_000), FileStore("b", 10_000)
        files = [f"f{i}" for i in range(40)]
        for fid in files:
            a.put(fid, 10, VersionStamp(1))
            b.put(fid, 10, VersionStamp(1))
        b.apply("f7", 10, VersionStamp(2, "w"))
        digests_a, digests_b = a.bucket_digests(files), b.bucket_digests(files)
        differing = [k for k in digests_a if digests_a[k] != digests_b.get(k)]
        assert len(differing) == 1


class TestQuorumReadWrite:
    def test_write_advances_all_reachable_replicas(self):
        manager = make_manager(quorum=QuorumConfig.majority(3))
        manager.store_file(StoredFile("f1", 100, 3))
        result = manager.write("f1", writer="v9")
        assert isinstance(result, WriteResult)
        assert result.stamp.counter == 2  # initial placement stamped 1
        assert set(stamps_of(manager, "f1").values()) == {result.stamp}

    def test_read_serves_newest_and_repairs_stale(self):
        manager = make_manager(members=3, quorum=QuorumConfig(3, 3))
        manager.store_file(StoredFile("f1", 100, 3))
        holders = manager.holders_of("f1")
        # Force divergence directly on one replica.
        manager._stores[holders[0]].apply("f1", 100, VersionStamp(5, "x"))
        result = manager.read_file("f1")
        assert isinstance(result, ReadResult)
        assert result.stamp == VersionStamp(5, "x")
        assert result.repaired == 2
        assert manager.read_repairs == 2
        assert len(set(stamps_of(manager, "f1").values())) == 1

    def test_write_below_quorum_raises_and_mutates_nothing(self):
        manager = make_manager(members=3, quorum=QuorumConfig.majority(3))
        manager.store_file(StoredFile("f1", 100, 3))
        before = stamps_of(manager, "f1")
        for owner in manager.holders_of("f1")[:2]:
            manager.set_offline(owner)
        with pytest.raises(QuorumUnreachableError):
            manager.write("f1", writer="w")
        assert manager.failed_writes == 1
        assert stamps_of(manager, "f1") == before

    def test_read_below_quorum_raises(self):
        manager = make_manager(members=3, quorum=QuorumConfig.majority(3))
        manager.store_file(StoredFile("f1", 100, 3))
        for owner in manager.holders_of("f1")[:2]:
            manager.set_offline(owner)
        with pytest.raises(QuorumUnreachableError):
            manager.read_file("f1")

    def test_unknown_file(self):
        manager = make_manager()
        with pytest.raises(ResourceError):
            manager.read_file("nope")
        with pytest.raises(ResourceError):
            manager.write("nope", writer="w")

    def test_legacy_read_returns_holder_or_none(self):
        manager = make_manager(members=3)
        manager.store_file(StoredFile("f1", 100, 2))
        assert manager.read("f1") in manager.holders_of("f1")
        for owner in manager.holders_of("f1"):
            manager.set_offline(owner)
        assert manager.read("f1") is None

    def test_quorum_overlap_prevents_stale_read(self):
        # R + W > k: after any write, every read must see its stamp.
        manager = make_manager(members=5, quorum=QuorumConfig.majority(3))
        manager.store_file(StoredFile("f1", 100, 3))
        for round_no in range(10):
            written = manager.write("f1", writer=f"w{round_no}").stamp
            assert manager.read_file("f1").stamp == written


class TestPartitions:
    def _split(self, manager, file_id):
        holders = manager.holders_of(file_id)
        minority, majority = [holders[0]], holders[1:]
        manager.set_partition(minority, majority + [
            m for m in manager.member_ids() if m not in holders
        ])
        return minority[0], majority

    def test_best_effort_minority_read_is_stale(self):
        manager = make_manager(members=3, quorum=QuorumConfig(1, 1), hinted_handoff=False)
        manager.store_file(StoredFile("f1", 100, 3))
        minority, majority = self._split(manager, "f1")
        manager.write("f1", writer="w", origin=majority[0])
        stale = manager._stores[minority].stamp_of("f1")
        assert stale.counter == 1  # minority replica missed the write
        result = manager.read_file("f1", origin=minority)
        assert result.stamp == stale

    def test_best_effort_split_brain_collides_counters(self):
        manager = make_manager(members=3, quorum=QuorumConfig(1, 1), hinted_handoff=False)
        manager.store_file(StoredFile("f1", 100, 3))
        minority, majority = self._split(manager, "f1")
        a = manager.write("f1", writer="wa", origin=minority)
        b = manager.write("f1", writer="wb", origin=majority[0])
        assert a.stamp.counter == b.stamp.counter  # the lost-update signature

    def test_majority_quorum_rejects_minority_side(self):
        manager = make_manager(members=3, quorum=QuorumConfig.majority(3))
        manager.store_file(StoredFile("f1", 100, 3))
        minority, majority = self._split(manager, "f1")
        with pytest.raises(QuorumUnreachableError):
            manager.write("f1", writer="w", origin=minority)
        assert manager.write("f1", writer="w", origin=majority[0]).replicas_updated == 2

    def test_heal_delivers_hints(self):
        manager = make_manager(members=3, quorum=QuorumConfig.majority(3))
        manager.store_file(StoredFile("f1", 100, 3))
        minority, majority = self._split(manager, "f1")
        written = manager.write("f1", writer="w", origin=majority[0])
        assert written.hinted == 1
        manager.clear_partition()
        assert manager.hints_delivered == 1
        assert manager._stores[minority].stamp_of("f1") == written.stamp


class TestHintedHandoff:
    def test_offline_holder_catches_up_at_revival(self):
        manager = make_manager(members=3, quorum=QuorumConfig(2, 2))
        manager.store_file(StoredFile("f1", 100, 3))
        victim = manager.holders_of("f1")[0]
        manager.set_offline(victim)
        written = manager.write("f1", writer="w")
        assert written.hinted == 1 and manager.hints_stored == 1
        assert manager._stores[victim].stamp_of("f1").counter == 1
        manager.set_online(victim)
        assert manager.hints_delivered == 1
        assert manager._stores[victim].stamp_of("f1") == written.stamp

    def test_hints_disabled(self):
        manager = make_manager(members=3, quorum=QuorumConfig(2, 2), hinted_handoff=False)
        manager.store_file(StoredFile("f1", 100, 3))
        victim = manager.holders_of("f1")[0]
        manager.set_offline(victim)
        manager.write("f1", writer="w")
        manager.set_online(victim)
        assert manager.hints_stored == 0
        assert manager._stores[victim].stamp_of("f1").counter == 1


class TestRepairAndPlacement:
    def test_offline_members_skipped_before_capacity(self):
        manager = ReplicationManager(SeededRng(3, "r"))
        manager.add_store(FileStore("big-offline", 10_000))
        manager.add_store(FileStore("small-online", 200))
        manager.set_offline("big-offline")
        placed = manager.store_file(StoredFile("f1", 100, 2))
        assert placed == 1
        assert manager.holders_of("f1") == ["small-online"]

    def test_repair_file_raises_typed_error_without_placement(self):
        manager = make_manager(members=2, capacity=100)
        manager.store_file(StoredFile("f1", 80, 2))
        # Departure leaves one holder; the other member has no room.
        survivor, gone = manager.holders_of("f1")[0], manager.holders_of("f1")[1]
        manager.remove_store(gone)
        assert manager.repair_failures == 1  # departure repair already failed
        with pytest.raises(ReplicaPlacementError):
            manager.repair_file("f1")
        # The typed error is still a ResourceError for legacy handlers.
        with pytest.raises(ResourceError):
            manager.repair_file("f1")
        assert manager.holders_of("f1") == [survivor]

    def test_repair_file_raises_without_online_source(self):
        manager = make_manager(members=4)
        manager.store_file(StoredFile("f1", 100, 2))
        holders = manager.holders_of("f1")
        for owner in holders:
            manager.set_offline(owner)
        manager.remove_store(holders[0])
        with pytest.raises(ReplicaPlacementError):
            manager.repair_file("f1")

    def test_departure_repair_copies_newest_version(self):
        manager = make_manager(members=4, quorum=QuorumConfig.majority(3))
        manager.store_file(StoredFile("f1", 100, 3))
        written = manager.write("f1", writer="w")
        victim = manager.holders_of("f1")[0]
        manager.remove_store(victim)
        assert len(manager.holders_of("f1")) == 3
        assert set(stamps_of(manager, "f1").values()) == {written.stamp}
        assert manager.repair_transfers == 1


class TestAntiEntropy:
    def test_round_reconciles_divergent_holders(self):
        manager = make_manager(members=3, quorum=QuorumConfig(1, 1))
        manager.store_file(StoredFile("f1", 100, 3))
        holders = manager.holders_of("f1")
        manager._stores[holders[0]].apply("f1", 100, VersionStamp(7, "x"))
        assert manager.divergent_files() == ["f1"]
        engine = Engine()
        manager.start_anti_entropy(engine, period_s=1.0)
        engine.run_until(3.5)
        assert manager.divergent_files() == []
        assert manager.anti_entropy_repairs >= 1
        assert set(stamps_of(manager, "f1").values()) == {VersionStamp(7, "x")}

    def test_offline_holder_retried_with_backoff_until_revival(self):
        manager = make_manager(members=3, quorum=QuorumConfig(2, 2), hinted_handoff=False)
        manager.store_file(StoredFile("f1", 100, 3))
        victim = manager.holders_of("f1")[0]
        manager.set_offline(victim)
        written = manager.write("f1", writer="w")
        engine = Engine()
        backoff = BackoffPolicy(
            base_delay_s=0.5, multiplier=2.0, max_delay_s=4.0,
            jitter_fraction=0.0, max_retries=10,
        )
        manager.start_anti_entropy(engine, period_s=1.0, backoff=backoff)
        engine.schedule_at(2.6, lambda: manager.set_online(victim))
        engine.run_until(10.0)
        assert manager.anti_entropy_failed_transfers >= 1
        assert manager._stores[victim].stamp_of("f1") == written.stamp
        assert manager.divergent_files() == []

    def test_retry_chain_is_bounded(self):
        manager = make_manager(members=3, quorum=QuorumConfig(2, 2), hinted_handoff=False)
        manager.store_file(StoredFile("f1", 100, 3))
        victim = manager.holders_of("f1")[0]
        manager.set_offline(victim)
        manager.write("f1", writer="w")
        engine = Engine()
        backoff = BackoffPolicy(
            base_delay_s=0.1, multiplier=1.0, max_delay_s=0.1,
            jitter_fraction=0.0, max_retries=2,
        )
        manager.start_anti_entropy(engine, period_s=100.0)
        manager._backoff = backoff
        manager.anti_entropy_round()
        manager.stop_anti_entropy()
        engine.drain(max_events=10_000)
        # One initial failure per sweep plus max_retries retry failures.
        assert manager.anti_entropy_failed_transfers == 3

    def test_validation(self):
        manager = make_manager()
        with pytest.raises(ConfigurationError):
            manager.start_anti_entropy(Engine(), period_s=0.0)


class TestMetricsEmission:
    def test_counters_flow_into_registry_under_prefix(self):
        from repro.sim import MetricsRegistry

        metrics = MetricsRegistry()
        manager = ReplicationManager(
            SeededRng(5, "m"), metrics=metrics, metric_prefix="vc/storage"
        )
        for index in range(3):
            manager.add_store(FileStore(f"v{index}", 1000))
        manager.store_file(StoredFile("f1", 100, 3))
        manager.write("f1", writer="w")
        manager.read_file("f1")
        flat = metrics.counters_under("vc/storage")
        assert flat["writes"] == 1.0
        assert flat["reads"] == 1.0
        assert metrics.counters_under("vc") == {
            "storage/reads": 1.0,
            "storage/writes": 1.0,
        }
