"""Tests for RSUs, base stations, central cloud and the disaster model."""

from __future__ import annotations

import pytest

from repro.geometry import Vec2
from repro.infra import (
    BaseStation,
    CentralCloud,
    DisasterModel,
    Rsu,
    coverage_fraction,
    deploy_rsus_on_grid,
    deploy_rsus_on_highway,
)
from repro.mobility import AutomationLevel, Highway, ManhattanGrid, OnboardEquipment, Vehicle
from repro.net import WirelessChannel
from repro.net.messages import data_message


class TestRsu:
    def test_covers(self, world):
        channel = WirelessChannel(world)
        rsu = Rsu(world, channel, Vec2(0, 0), radio_range_m=500)
        assert rsu.covers(Vec2(400, 0))
        assert not rsu.covers(Vec2(600, 0))

    def test_damage_takes_offline(self, world):
        channel = WirelessChannel(world)
        rsu = Rsu(world, channel, Vec2(0, 0))
        rsu.damage()
        assert rsu.damaged and not rsu.online
        rsu.repair()
        assert not rsu.damaged and rsu.online

    def test_backhaul_forwarding(self, world):
        channel = WirelessChannel(world)
        a = Rsu(world, channel, Vec2(0, 0))
        b = Rsu(world, channel, Vec2(1000, 0))
        a.connect_backhaul(b)
        received = []
        b.on_any(lambda msg, frm: received.append((msg, frm)))
        message = data_message(a.node_id, b.node_id, 100, world.now)
        assert a.forward_via_backhaul(b, message)
        world.run_for(1.0)
        assert received and received[0][1] == a.node_id

    def test_backhaul_fails_when_damaged(self, world):
        channel = WirelessChannel(world)
        a = Rsu(world, channel, Vec2(0, 0))
        b = Rsu(world, channel, Vec2(1000, 0))
        a.connect_backhaul(b)
        b.damage()
        assert not a.forward_via_backhaul(b, data_message(a.node_id, b.node_id, 100, 0.0))

    def test_backhaul_peers_bidirectional(self, world):
        channel = WirelessChannel(world)
        a = Rsu(world, channel, Vec2(0, 0))
        b = Rsu(world, channel, Vec2(500, 0))
        a.connect_backhaul(b)
        assert b in a.backhaul_peers()
        assert a in b.backhaul_peers()


class TestBaseStation:
    def test_serves_cellular_vehicles_in_range(self, world):
        channel = WirelessChannel(world)
        station = BaseStation(world, channel, Vec2(0, 0), radio_range_m=2000)
        cellular = Vehicle(
            position=Vec2(500, 0),
            equipment=OnboardEquipment.for_level(AutomationLevel.HIGH_AUTOMATION, cellular=True),
        )
        dsrc_only = Vehicle(
            position=Vec2(500, 0),
            equipment=OnboardEquipment.for_level(AutomationLevel.HIGH_AUTOMATION),
        )
        far = Vehicle(
            position=Vec2(9000, 0),
            equipment=OnboardEquipment.for_level(AutomationLevel.HIGH_AUTOMATION, cellular=True),
        )
        assert station.can_serve(cellular)
        assert not station.can_serve(dsrc_only)
        assert not station.can_serve(far)

    def test_damaged_station_serves_nobody(self, world):
        channel = WirelessChannel(world)
        station = BaseStation(world, channel, Vec2(0, 0))
        vehicle = Vehicle(
            position=Vec2(100, 0),
            equipment=OnboardEquipment.for_level(AutomationLevel.HIGH_AUTOMATION, cellular=True),
        )
        station.damage()
        assert not station.can_serve(vehicle)


class TestCentralCloud:
    def test_request_completes_after_wan_delay(self, world):
        cloud = CentralCloud(world, compute_mips=1000.0, wan_delay_s=0.1)
        responses = []
        cloud.submit("r1", work_mi=100.0, on_complete=responses.append)
        world.run_for(0.05)
        assert responses == []
        world.run_for(1.0)
        assert len(responses) == 1
        response = responses[0]
        # 0.1 uplink + 0.1 compute + 0.1 downlink
        assert response.completed_at == pytest.approx(0.3)
        assert response.queue_delay_s == 0.0

    def test_queueing_under_load(self, world):
        cloud = CentralCloud(world, compute_mips=100.0, wan_delay_s=0.0)
        responses = []
        for index in range(3):
            cloud.submit(f"r{index}", work_mi=100.0, on_complete=responses.append)
        world.run_for(10.0)
        assert len(responses) == 3
        assert responses[-1].queue_delay_s == pytest.approx(2.0)

    def test_backlog_reported(self, world):
        cloud = CentralCloud(world, compute_mips=100.0, wan_delay_s=0.0)
        cloud.submit("r", work_mi=500.0, on_complete=lambda r: None)
        assert cloud.backlog_s == pytest.approx(5.0)

    def test_negative_work_rejected(self, world):
        cloud = CentralCloud(world)
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            cloud.submit("r", work_mi=-1.0, on_complete=lambda r: None)


class TestDeployment:
    def test_highway_spacing(self, world):
        channel = WirelessChannel(world)
        highway = Highway(length_m=3000)
        rsus = deploy_rsus_on_highway(world, channel, highway, spacing_m=1000)
        assert len(rsus) == 3
        xs = [rsu.position.x for rsu in rsus]
        assert xs == [500.0, 1500.0, 2500.0]

    def test_highway_chain_backhaul(self, world):
        channel = WirelessChannel(world)
        rsus = deploy_rsus_on_highway(world, channel, Highway(length_m=3000), 1000)
        assert rsus[1] in rsus[0].backhaul_peers()
        assert rsus[2] not in rsus[0].backhaul_peers()

    def test_grid_deployment(self, world):
        channel = WirelessChannel(world)
        grid = ManhattanGrid(blocks_x=4, blocks_y=4, block_size_m=200)
        rsus = deploy_rsus_on_grid(world, channel, grid, every_nth_intersection=2)
        assert len(rsus) == 9  # (0,2,4) x (0,2,4)

    def test_coverage_fraction(self, world):
        channel = WirelessChannel(world)
        rsus = deploy_rsus_on_highway(world, channel, Highway(length_m=2000), 1000)
        points = [Vec2(x, 0) for x in (0, 500, 1500, 10_000)]
        fraction = coverage_fraction(rsus, points)
        assert fraction == pytest.approx(0.75)
        rsus[0].damage()
        assert coverage_fraction(rsus, points) < fraction


class TestDisasterModel:
    def _deploy(self, world):
        channel = WirelessChannel(world)
        return deploy_rsus_on_highway(world, channel, Highway(length_m=4000), 1000)

    def test_strike_fraction(self, world):
        rsus = self._deploy(world)
        disaster = DisasterModel(world, rsus)
        victims = disaster.strike(0.5)
        assert len(victims) == 2
        assert disaster.live_fraction == 0.5

    def test_strike_full(self, world):
        rsus = self._deploy(world)
        disaster = DisasterModel(world, rsus)
        disaster.strike(1.0)
        assert all(rsu.damaged for rsu in rsus)

    def test_invalid_fraction(self, world):
        disaster = DisasterModel(world, self._deploy(world))
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            disaster.strike(1.5)

    def test_scheduled_strike_and_repair(self, world):
        rsus = self._deploy(world)
        disaster = DisasterModel(world, rsus)
        disaster.schedule_strike(at_time=10.0, fraction=1.0)
        disaster.schedule_repair(at_time=20.0)
        world.run_for(5.0)
        assert disaster.live_fraction == 1.0
        world.run_for(10.0)
        assert disaster.live_fraction == 0.0
        world.run_for(10.0)
        assert disaster.live_fraction == 1.0

    def test_repair_all_count(self, world):
        disaster = DisasterModel(world, self._deploy(world))
        disaster.strike(1.0)
        assert disaster.repair_all() == 4
        assert disaster.repair_all() == 0


class TestDisasterRepairPaths:
    def _deploy(self, world):
        channel = WirelessChannel(world)
        return deploy_rsus_on_highway(world, channel, Highway(length_m=4000), 1000)

    def test_repair_one_restores_longest_damaged_first(self, world):
        rsus = self._deploy(world)
        disaster = DisasterModel(world, rsus)
        first = disaster.strike(0.5)
        disaster.strike(1.0)  # remaining intact nodes
        repaired = disaster.repair_one()
        assert repaired is first[0]
        assert not repaired.damaged
        assert len(disaster.damaged_nodes) == 3

    def test_repair_one_empty_returns_none(self, world):
        disaster = DisasterModel(world, self._deploy(world))
        assert disaster.repair_one() is None

    def test_repair_metric_counted(self, world):
        disaster = DisasterModel(world, self._deploy(world))
        disaster.strike(1.0)
        disaster.repair_one()
        disaster.repair_all()
        assert world.metrics.counter("disaster/nodes_repaired") == 4

    def test_staggered_repair_ramps_capacity(self, world):
        rsus = self._deploy(world)
        disaster = DisasterModel(world, rsus)
        disaster.strike(1.0)
        disaster.schedule_staggered_repair(at_time=10.0, interval_s=5.0)
        world.run_for(9.0)
        assert disaster.live_fraction == 0.0
        world.run_for(1.5)  # t=10.5: first node back
        assert disaster.live_fraction == 0.25
        world.run_for(5.0)  # t=15.5: second node back
        assert disaster.live_fraction == 0.5
        world.run_for(20.0)
        assert disaster.live_fraction == 1.0

    def test_staggered_repair_validates_interval(self, world):
        from repro.errors import ConfigurationError

        disaster = DisasterModel(world, self._deploy(world))
        with pytest.raises(ConfigurationError):
            disaster.schedule_staggered_repair(at_time=1.0, interval_s=0.0)

    def test_staggered_repair_only_covers_nodes_damaged_at_start(self, world):
        rsus = self._deploy(world)
        disaster = DisasterModel(world, rsus)
        disaster.strike(0.5)
        disaster.schedule_staggered_repair(at_time=5.0, interval_s=1.0)
        world.run_for(20.0)
        assert disaster.live_fraction == 1.0
        assert world.metrics.counter("disaster/nodes_repaired") == 2
