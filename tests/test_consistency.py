"""Tests for the consistency checker and storage fault driver (E12)."""

from __future__ import annotations

import pytest

from repro.core import (
    FileStore,
    QuorumConfig,
    ReplicationManager,
    ResourceOffer,
    StoredFile,
    VehicularCloud,
    VersionStamp,
)
from repro.errors import QuorumUnreachableError, ResourceError
from repro.faults import ConsistencyChecker, FaultPlan, StorageFaultDriver
from repro.geometry import Vec2
from repro.mobility import StationaryModel
from repro.sim import Engine, ScenarioConfig, SeededRng, World


def make_manager(members=3, quorum=None, **kwargs):
    manager = ReplicationManager(SeededRng(21, "cons"), quorum=quorum, **kwargs)
    for index in range(members):
        manager.add_store(FileStore(f"v{index}", 10_000))
    return manager


class TestConsistencyChecker:
    def test_clean_history_has_no_violations(self):
        manager = make_manager(quorum=QuorumConfig.majority(3))
        checker = ConsistencyChecker().attach(manager)
        manager.store_file(StoredFile("f1", 100, 3))
        for round_no in range(5):
            manager.write("f1", writer=f"w{round_no}")
            manager.read_file("f1")
        report = checker.report()
        assert report.reads == 5 and report.writes == 5
        assert report.violations == 0
        assert report.divergent_files == ()

    def test_stale_read_is_flagged(self):
        manager = make_manager(quorum=QuorumConfig(1, 1), hinted_handoff=False)
        checker = ConsistencyChecker().attach(manager)
        manager.store_file(StoredFile("f1", 100, 3))
        holders = manager.holders_of("f1")
        manager.set_partition([holders[0]], holders[1:])
        manager.write("f1", writer="w", origin=holders[1])
        manager.read_file("f1", origin=holders[0])  # sees the old version
        assert checker.stale_reads == 1
        assert checker.report().violations == 1
        assert checker.read_history[-1].stale

    def test_lost_update_is_flagged_on_counter_collision(self):
        manager = make_manager(quorum=QuorumConfig(1, 1), hinted_handoff=False)
        checker = ConsistencyChecker().attach(manager)
        manager.store_file(StoredFile("f1", 100, 3))
        holders = manager.holders_of("f1")
        manager.set_partition([holders[0]], holders[1:])
        manager.write("f1", writer="wa", origin=holders[0])
        manager.write("f1", writer="wb", origin=holders[1])
        assert checker.lost_updates == 1
        assert checker.report().lost_updates == 1

    def test_failed_operations_recorded_not_violations(self):
        manager = make_manager(quorum=QuorumConfig.majority(3))
        checker = ConsistencyChecker().attach(manager)
        manager.store_file(StoredFile("f1", 100, 3))
        for owner in manager.holders_of("f1")[:2]:
            manager.set_offline(owner)
        with pytest.raises(QuorumUnreachableError):
            manager.write("f1", writer="w")
        with pytest.raises(QuorumUnreachableError):
            manager.read_file("f1")
        report = checker.report()
        assert report.failed_reads == 1 and report.failed_writes == 1
        assert report.violations == 0

    def test_divergence_surfaces_in_report(self):
        manager = make_manager(quorum=QuorumConfig(1, 1))
        checker = ConsistencyChecker().attach(manager)
        manager.store_file(StoredFile("f1", 100, 3))
        holders = manager.holders_of("f1")
        manager._stores[holders[0]].apply("f1", 100, VersionStamp(9, "x"))
        assert checker.report().divergent_files == ("f1",)

    def test_describe(self):
        report = ConsistencyChecker().report()
        assert "stale=0" in report.describe()


class TestStorageFaultDriver:
    def _driven(self, plan, quorum=None, **kwargs):
        engine = Engine()
        manager = make_manager(members=4, quorum=quorum, **kwargs)
        manager.store_file(StoredFile("f1", 100, 3))
        driver = StorageFaultDriver(engine, manager, plan, crash_downtime_s=5.0)
        return engine, manager, driver

    def test_crash_takes_member_offline_then_revives(self):
        plan = FaultPlan(seed=7).crash(at=1.0, target="v0")
        engine, manager, driver = self._driven(plan)
        assert driver.arm() == 1
        engine.run_until(2.0)
        assert not manager.is_online("v0")
        engine.run_until(7.0)
        assert manager.is_online("v0")
        kinds = [kind for _, kind, _ in driver.ledger]
        assert kinds == ["crash", "revive"]

    def test_partition_splits_and_heals(self):
        plan = FaultPlan(seed=7).partition(at=1.0, duration_s=3.0, fraction=0.5)
        engine, manager, driver = self._driven(plan)
        driver.arm()
        engine.run_until(2.0)
        assert manager._partition is not None
        engine.run_until(5.0)
        assert manager._partition is None

    def test_explicit_groups_respected(self):
        plan = FaultPlan(seed=7).partition(
            at=1.0, duration_s=3.0, group_a=["v0"], group_b=["v1", "v2", "v3"]
        )
        engine, manager, driver = self._driven(plan)
        driver.arm()
        engine.run_until(2.0)
        assert not manager._can_reach("v0", "v1")
        assert manager._can_reach("v1", "v2")

    def test_network_only_faults_are_skipped(self):
        plan = FaultPlan(seed=7).loss_burst(at=1.0, duration_s=2.0, drop_probability=0.5)
        plan.jitter_spike(at=2.0, duration_s=2.0, max_extra_delay_s=0.1)
        engine, manager, driver = self._driven(plan)
        assert driver.arm() == 0
        assert len(driver.skipped) == 2

    def test_same_seed_same_schedule(self):
        def run(seed):
            plan = FaultPlan(seed=seed).random_crashes(count=2, window=(1.0, 8.0))
            engine, manager, driver = self._driven(plan)
            driver.arm()
            engine.run_until(20.0)
            return driver.ledger

        assert run(13) == run(13)
        assert run(13) != run(14)


def make_cloud(world, members=5):
    model = StationaryModel(world, positions=[Vec2(i * 30.0, 0) for i in range(members)])
    vehicles = model.populate(members)
    cloud = VehicularCloud(world, "store-vc")
    for vehicle in vehicles:
        cloud.admit(vehicle, offer=ResourceOffer(vehicle.vehicle_id, 1000.0, 10**9, 1e6))
    return vehicles, cloud


class TestVehicularCloudStorage:
    def test_requires_enable(self):
        world = World(ScenarioConfig(seed=3))
        _vehicles, cloud = make_cloud(world)
        with pytest.raises(ResourceError):
            cloud.store_put("f1", 100)

    def test_put_write_read_roundtrip(self):
        world = World(ScenarioConfig(seed=3))
        _vehicles, cloud = make_cloud(world)
        cloud.enable_replicated_storage(quorum=QuorumConfig.majority(3))
        assert cloud.store_put("f1", 1000, target_replicas=3) == 3
        written = cloud.store_write("f1", writer="head")
        result = cloud.store_read("f1")
        assert result is not None and result.stamp == written.stamp
        assert cloud.stats.storage_reads == 1
        assert cloud.stats.storage_writes == 1

    def test_degrades_when_quorum_unreachable(self):
        world = World(ScenarioConfig(seed=3))
        _vehicles, cloud = make_cloud(world)
        cloud.enable_replicated_storage(quorum=QuorumConfig.majority(3))
        cloud.store_put("f1", 1000, target_replicas=3)
        for owner in cloud.storage.holders_of("f1")[:2]:
            cloud.mark_worker_crashed(owner)
        assert cloud.store_write("f1", writer="head") is None
        assert cloud.store_read("f1") is None
        assert cloud.stats.storage_degraded == 2

    def test_crash_eviction_triggers_re_replication(self):
        world = World(ScenarioConfig(seed=3))
        vehicles, cloud = make_cloud(world)
        cloud.enable_replicated_storage(quorum=QuorumConfig.majority(3))
        cloud.enable_worker_leases(lease_duration_s=2.0, sweep_interval_s=0.5)
        cloud.store_put("f1", 1000, target_replicas=3)
        victim = cloud.storage.holders_of("f1")[0]
        world.run_for(1.0)
        cloud.mark_worker_crashed(victim)
        world.run_for(5.0)  # lease lapses -> eviction -> repair
        assert victim not in cloud.membership
        assert victim not in cloud.storage.holders_of("f1")
        assert len(cloud.storage.holders_of("f1")) == 3
        assert cloud.store_read("f1") is not None

    def test_reboot_revives_storage(self):
        world = World(ScenarioConfig(seed=3))
        _vehicles, cloud = make_cloud(world)
        cloud.enable_replicated_storage(quorum=QuorumConfig.majority(3))
        cloud.store_put("f1", 1000, target_replicas=3)
        victim = cloud.storage.holders_of("f1")[0]
        cloud.reboot_worker(victim, downtime_s=2.0)
        assert not cloud.storage.is_online(victim)
        world.run_for(3.0)
        assert cloud.storage.is_online(victim)

    def test_new_member_contributes_storage(self):
        world = World(ScenarioConfig(seed=3))
        _vehicles, cloud = make_cloud(world, members=2)
        cloud.enable_replicated_storage(quorum=QuorumConfig(1, 1))
        model = StationaryModel(world, positions=[Vec2(500.0, 0)])
        (late,) = model.populate(1)
        cloud.admit(late, offer=ResourceOffer(late.vehicle_id, 1000.0, 10**9, 1e6))
        assert late.vehicle_id in cloud.storage.member_ids()
