"""Tests for the attack suite and paired defences (§III threats)."""

from __future__ import annotations

from repro.attacks import (
    CollusionRing,
    DelaySuppressAttacker,
    DosFlooder,
    EavesdropAttacker,
    FalseReporter,
    ImpersonationAttacker,
    JunkProcessingMeter,
    MitmAttacker,
    RateLimiter,
    ReplayAttacker,
    ReplayCache,
    SignatureDefense,
    SybilForger,
    TrackingAdversary,
    TrafficFlowAnalyzer,
)
from repro.geometry import Vec2
from repro.mobility import Vehicle
from repro.net import (
    MessageKind,
    SecurityEnvelope,
    VehicleNode,
    WirelessChannel,
    data_message,
)
from repro.security.crypto import KeyPair, SignatureScheme
from repro.sim import ChannelConfig, ScenarioConfig, World
from repro.trust.events import EventKind, GroundTruthEvent


def lossless_world(seed=11):
    return World(
        ScenarioConfig(
            seed=seed,
            channel=ChannelConfig(base_loss_probability=0.0, loss_per_100m=0.0),
        )
    )


def pair(world, distance=100.0):
    channel = WirelessChannel(world)
    a = VehicleNode(world, channel, Vehicle(position=Vec2(0, 0)))
    b = VehicleNode(world, channel, Vehicle(position=Vec2(distance, 0)))
    return channel, a, b


class TestEavesdropping:
    def test_captures_plaintext_in_range(self):
        world = lossless_world()
        channel, a, b = pair(world)
        attacker = EavesdropAttacker(world, channel, position=Vec2(50, 0))
        a.send(b.node_id, data_message(a.node_id, b.node_id, 256, world.now))
        world.run_for(1.0)
        assert attacker.captured_bytes() >= 256
        assert attacker.outcome.success_rate == 1.0
        assert a.node_id in attacker.captured_identities()

    def test_out_of_range_hears_nothing(self):
        world = lossless_world()
        channel, a, b = pair(world)
        attacker = EavesdropAttacker(
            world, channel, position=Vec2(50_000, 0), listen_range_m=300
        )
        a.send(b.node_id, data_message(a.node_id, b.node_id, 256, world.now))
        assert attacker.captured == []

    def test_encrypted_payloads_not_a_success(self):
        world = lossless_world()
        channel, a, b = pair(world)
        attacker = EavesdropAttacker(world, channel, position=Vec2(50, 0))
        message = data_message(
            a.node_id, b.node_id, 256, world.now, payload={"encrypted": True}
        )
        a.send(b.node_id, message)
        assert attacker.outcome.success_rate == 0.0


class TestReplay:
    def test_replayed_message_accepted_without_defense(self):
        world = lossless_world()
        channel, a, b = pair(world)
        attacker_node = VehicleNode(world, channel, Vehicle(position=Vec2(50, 0)))
        attacker = ReplayAttacker(world, channel, attacker_node)
        received = []
        b.on(MessageKind.DATA, lambda msg, frm: received.append(msg))
        original = data_message(a.node_id, b.node_id, 100, world.now).with_envelope(
            SecurityEnvelope(claimed_identity=a.node_id, nonce="n-1", timestamp=world.now)
        )
        a.send(b.node_id, original)
        world.run_for(1.0)
        attacker.replay_all()
        world.run_for(1.0)
        assert len(received) == 2  # original + replay processed

    def test_replay_cache_blocks_duplicate(self):
        cache = ReplayCache(window_s=30.0)
        assert cache.accept("n-1", timestamp=0.0, now=1.0)
        assert not cache.accept("n-1", timestamp=0.0, now=2.0)
        assert cache.rejected == 1

    def test_replay_cache_blocks_stale(self):
        cache = ReplayCache(window_s=10.0)
        assert not cache.accept("n-2", timestamp=0.0, now=100.0)

    def test_replay_cache_eviction(self):
        cache = ReplayCache(window_s=1.0, capacity=5)
        for index in range(5):
            cache.accept(f"n-{index}", timestamp=0.0, now=0.0)
        # Old entries evicted, new one fits.
        assert cache.accept("n-new", timestamp=100.0, now=100.0)
        assert len(cache) <= 5

    def test_envelope_free_message_passes_cache(self):
        cache = ReplayCache()
        message = data_message("a", "b", 100, 0.0)
        assert cache.accept_message(message, now=1.0)

    def test_end_to_end_defense(self):
        """Receiver with a replay cache processes the original, not the replay."""
        world = lossless_world()
        channel, a, b = pair(world)
        attacker_node = VehicleNode(world, channel, Vehicle(position=Vec2(50, 0)))
        attacker = ReplayAttacker(world, channel, attacker_node)
        cache = ReplayCache(window_s=30.0)
        processed = []

        def guarded(msg, frm):
            if cache.accept_message(msg, world.now):
                processed.append(msg)

        b.on(MessageKind.DATA, guarded)
        original = data_message(a.node_id, b.node_id, 100, world.now).with_envelope(
            SecurityEnvelope(claimed_identity=a.node_id, nonce="n-1", timestamp=world.now)
        )
        a.send(b.node_id, original)
        world.run_for(1.0)
        attacker.replay_all()
        world.run_for(1.0)
        assert len(processed) == 1


class TestImpersonation:
    def test_forged_message_lacks_valid_signature(self):
        world = lossless_world()
        channel, a, b = pair(world)
        attacker_node = VehicleNode(world, channel, Vehicle(position=Vec2(50, 0)))
        attacker = ImpersonationAttacker(world, attacker_node, victim_identity=a.node_id)
        defense = SignatureDefense(SignatureScheme())
        accepted = []

        def guarded(msg, frm):
            if defense.verify(msg):
                accepted.append(msg)

        b.on(MessageKind.DATA, guarded)
        attacker.send_forged(MessageKind.DATA, {"speed": 999})
        world.run_for(1.0)
        assert accepted == []
        assert defense.rejected == 1

    def test_naive_receiver_fooled(self):
        world = lossless_world()
        channel, a, b = pair(world)
        attacker_node = VehicleNode(world, channel, Vehicle(position=Vec2(50, 0)))
        attacker = ImpersonationAttacker(world, attacker_node, victim_identity=a.node_id)
        naive = []
        b.on(MessageKind.DATA, lambda msg, frm: naive.append(msg.src))
        attacker.send_forged(MessageKind.DATA, {"speed": 999})
        world.run_for(1.0)
        assert naive == [a.node_id]  # believes the claimed identity

    def test_genuine_signature_passes_defense(self):
        scheme = SignatureScheme()
        defense = SignatureDefense(scheme)
        keypair = KeyPair.generate("honest")
        message = data_message("honest", "b", 100, 1.0, payload={"speed": 20})
        signature = scheme.sign(keypair, defense.message_digest_payload(message)).value
        signed = message.with_envelope(
            SecurityEnvelope(
                claimed_identity="honest", signature=signature, nonce="n", timestamp=1.0
            )
        )
        assert defense.verify(signed, expected_public_id=keypair.public_id)


class TestMitm:
    def test_tampering_between_victims(self):
        world = lossless_world()
        channel, a, b = pair(world)
        attacker = MitmAttacker(
            world, channel, Vec2(50, 0), victim_a=a.node_id, victim_b=b.node_id
        )
        received = []
        b.on(MessageKind.DATA, lambda msg, frm: received.append(msg))
        a.send(b.node_id, data_message(a.node_id, b.node_id, 100, world.now))
        world.run_for(1.0)
        assert received[0].payload.get("tampered") is True
        assert attacker.tampered_count == 1

    def test_non_victims_untouched(self):
        world = lossless_world()
        channel, a, b = pair(world)
        c = VehicleNode(world, channel, Vehicle(position=Vec2(50, 50)))
        MitmAttacker(world, channel, Vec2(50, 0), victim_a=a.node_id, victim_b=c.node_id)
        received = []
        b.on(MessageKind.DATA, lambda msg, frm: received.append(msg))
        a.send(b.node_id, data_message(a.node_id, b.node_id, 100, world.now))
        world.run_for(1.0)
        assert "tampered" not in received[0].payload

    def test_signature_defense_detects_tampering(self):
        world = lossless_world()
        channel, a, b = pair(world)
        scheme = SignatureScheme()
        defense = SignatureDefense(scheme)
        keypair = KeyPair.generate()
        MitmAttacker(world, channel, Vec2(50, 0), victim_a=a.node_id, victim_b=b.node_id)
        verified = []
        b.on(MessageKind.DATA, lambda msg, frm: verified.append(defense.verify(msg, keypair.public_id)))
        message = data_message(a.node_id, b.node_id, 100, world.now, payload={"v": 1})
        signature = scheme.sign(keypair, defense.message_digest_payload(message)).value
        a.send(
            b.node_id,
            message.with_envelope(
                SecurityEnvelope(claimed_identity=a.node_id, signature=signature),
            ),
        )
        world.run_for(1.0)
        assert verified == [False]

    def test_stop_removes_interceptor(self):
        world = lossless_world()
        channel, a, b = pair(world)
        attacker = MitmAttacker(
            world, channel, Vec2(50, 0), victim_a=a.node_id, victim_b=b.node_id
        )
        attacker.stop()
        received = []
        b.on(MessageKind.DATA, lambda msg, frm: received.append(msg))
        a.send(b.node_id, data_message(a.node_id, b.node_id, 100, world.now))
        world.run_for(1.0)
        assert "tampered" not in received[0].payload


class TestDelaySuppress:
    def test_victim_messages_delayed(self):
        world = lossless_world()
        channel, a, b = pair(world)
        DelaySuppressAttacker(world, channel, Vec2(50, 0), victim=a.node_id, delay_s=1.0)
        times = []
        b.on(MessageKind.DATA, lambda msg, frm: times.append(world.now))
        a.send(b.node_id, data_message(a.node_id, b.node_id, 100, world.now))
        world.run_for(0.5)
        assert times == []
        world.run_for(1.0)
        assert len(times) == 1 and times[0] > 1.0

    def test_suppression_drops_messages(self):
        world = lossless_world()
        channel, a, b = pair(world)
        DelaySuppressAttacker(
            world, channel, Vec2(50, 0), victim=a.node_id,
            delay_s=0.0, suppress_probability=1.0,
        )
        received = []
        b.on(MessageKind.DATA, lambda msg, frm: received.append(msg))
        for _ in range(5):
            a.send(b.node_id, data_message(a.node_id, b.node_id, 100, world.now))
        world.run_for(2.0)
        assert received == []

    def test_non_victims_unaffected(self):
        world = lossless_world()
        channel, a, b = pair(world)
        DelaySuppressAttacker(
            world, channel, Vec2(50, 0), victim="someone-else", suppress_probability=1.0
        )
        received = []
        b.on(MessageKind.DATA, lambda msg, frm: received.append(msg))
        a.send(b.node_id, data_message(a.node_id, b.node_id, 100, world.now))
        world.run_for(1.0)
        assert len(received) == 1


class TestDos:
    def test_flooder_sends_at_rate(self):
        world = lossless_world()
        channel, a, b = pair(world)
        flooder = DosFlooder(world, a, rate_per_s=50.0)
        flooder.start()
        world.run_for(2.0)
        flooder.stop()
        assert 90 <= flooder.messages_sent <= 110

    def test_junk_processed_without_limiter(self):
        world = lossless_world()
        channel, a, b = pair(world)
        meter = JunkProcessingMeter(world)
        b.on(MessageKind.DATA, meter)
        flooder = DosFlooder(world, a, rate_per_s=100.0)
        flooder.start()
        world.run_for(1.0)
        flooder.stop()
        world.run_for(1.0)
        assert meter.processed > 50
        assert meter.drop_rate == 0.0

    def test_rate_limiter_sheds_flood(self):
        world = lossless_world()
        channel, a, b = pair(world)
        meter = JunkProcessingMeter(world, RateLimiter(rate_per_s=10.0, burst=10.0))
        b.on(MessageKind.DATA, meter)
        flooder = DosFlooder(world, a, rate_per_s=200.0)
        flooder.start()
        world.run_for(2.0)
        flooder.stop()
        world.run_for(1.0)
        assert meter.drop_rate > 0.8

    def test_rate_limiter_refills(self):
        limiter = RateLimiter(rate_per_s=1.0, burst=1.0)
        assert limiter.allow("x", now=0.0)
        assert not limiter.allow("x", now=0.1)
        assert limiter.allow("x", now=2.0)

    def test_rate_limiter_per_sender(self):
        limiter = RateLimiter(rate_per_s=1.0, burst=1.0)
        assert limiter.allow("a", now=0.0)
        assert limiter.allow("b", now=0.0)


class TestTracking:
    def test_static_identity_fully_tracked(self):
        world = lossless_world()
        channel, a, b = pair(world, distance=150)
        tracker = TrackingAdversary(channel)
        from repro.net import BeaconService

        services = [BeaconService(world, node) for node in (a, b)]
        for service in services:
            service.start()
        world.run_for(20.0)
        # Static identities: each vehicle is one identity, trivially one track.
        assert len(tracker.tracks) == 2

    def test_kinematic_linking_across_identity_change(self):
        world = lossless_world()
        channel = WirelessChannel(world)
        vehicle = Vehicle(position=Vec2(0, 0), speed_mps=20.0, heading_rad=0.0)
        node = VehicleNode(world, channel, vehicle)
        tracker = TrackingAdversary(channel, gate_m=30.0)

        class SwitchingIdentity:
            def current_identity(self, now):
                return "pn-early" if now < 10 else "pn-late"

        from repro.net import BeaconService

        service = BeaconService(world, node, identity_provider=SwitchingIdentity())
        service.start()

        def advance():
            vehicle.advance(0.5)

        world.engine.call_every(0.5, advance)
        world.run_for(20.0)
        owner = {"pn-early": "veh", "pn-late": "veh"}
        assert tracker.linking_accuracy(owner) == 1.0
        assert tracker.tracked_fraction(owner) == 1.0

    def test_gate_prevents_wild_links(self):
        world = lossless_world()
        channel = WirelessChannel(world)
        tracker = TrackingAdversary(channel, gate_m=10.0)
        # Two vehicles far apart with fresh identities every beacon would
        # never be cross-linked.
        from repro.net import BeaconService

        v1 = Vehicle(position=Vec2(0, 0))
        v2 = Vehicle(position=Vec2(5000, 0))
        n1 = VehicleNode(world, channel, v1)
        n2 = VehicleNode(world, channel, v2)
        BeaconService(world, n1).start()
        BeaconService(world, n2).start()
        world.run_for(5.0)
        assert len(tracker.tracks) == 2


class TestTrafficFlowAnalysis:
    def test_flow_statistics(self):
        world = lossless_world()
        channel, a, b = pair(world)
        analyzer = TrafficFlowAnalyzer(channel)
        for _ in range(3):
            a.send(b.node_id, data_message(a.node_id, b.node_id, 500, world.now))
        world.run_for(1.0)
        top = analyzer.top_talkers()
        assert top[0][0] == a.node_id
        assert (a.node_id, b.node_id) in analyzer.conversation_pairs()


class TestDataDisruption:
    def _event(self, exists=True):
        return GroundTruthEvent(
            "evt", EventKind.ICY_ROAD, Vec2(0, 0), 0.0, exists=exists
        )

    def test_false_reporter_inverts_truth(self):
        reporter = FalseReporter("evil")
        lie = reporter.report_on(self._event(exists=True), now=1.0)
        assert lie.claim is False

    def test_fabricate_nonevent(self):
        reporter = FalseReporter("evil")
        fake = reporter.fabricate(EventKind.COLLISION, Vec2(9, 9), now=1.0)
        assert fake.claim is True
        assert reporter.reports_sent == 1

    def test_collusion_ring_consistent_lies(self):
        ring = CollusionRing([f"evil-{i}" for i in range(4)])
        reports = ring.smear(self._event(exists=True), now=1.0)
        assert len(reports) == 4
        assert all(r.claim is False for r in reports)

    def test_sybil_forger_shares_path(self):
        forger = SybilForger("evil", sybil_count=5, relay_chain=("evil-relay",))
        reports = forger.fabricate_event(EventKind.COLLISION, Vec2(0, 0), now=1.0)
        assert len(reports) == 5
        assert len({r.reporter for r in reports}) == 5
        assert all(r.path == ("evil-relay",) for r in reports)
