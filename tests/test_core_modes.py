"""Unit tests for operating modes and mode propagation."""

from __future__ import annotations

import pytest

from repro.core import DEFAULT_POLICIES, ModeManager, ModePropagation
from repro.errors import ConfigurationError
from repro.geometry import Vec2
from repro.mobility import Vehicle
from repro.net import VehicleNode, WirelessChannel
from repro.security.access import OperatingMode
from repro.sim import ChannelConfig, ScenarioConfig, World


def lossless_world():
    return World(
        ScenarioConfig(
            seed=9,
            channel=ChannelConfig(base_loss_probability=0.0, loss_per_100m=0.0),
        )
    )


class TestModeManager:
    def test_starts_normal(self):
        manager = ModeManager("n1")
        assert manager.mode is OperatingMode.NORMAL
        assert not manager.policy.minimize_rsu_use

    def test_apply_order_changes_mode(self):
        manager = ModeManager("n1")
        changed = manager.apply_order("o1", OperatingMode.EMERGENCY, now=5.0)
        assert changed
        assert manager.mode is OperatingMode.EMERGENCY
        assert manager.last_change_at == 5.0
        assert manager.policy.minimize_rsu_use

    def test_duplicate_order_ignored(self):
        manager = ModeManager("n1")
        manager.apply_order("o1", OperatingMode.EMERGENCY, now=5.0)
        assert not manager.apply_order("o1", OperatingMode.EMERGENCY, now=9.0)
        assert manager.last_change_at == 5.0

    def test_same_mode_order_is_noop(self):
        manager = ModeManager("n1")
        assert not manager.apply_order("o1", OperatingMode.NORMAL, now=1.0)

    def test_listeners_fire_on_change(self):
        manager = ModeManager("n1")
        seen = []
        manager.on_change(seen.append)
        manager.apply_order("o1", OperatingMode.EVENT, now=1.0)
        manager.apply_order("o2", OperatingMode.EMERGENCY, now=2.0)
        assert seen == [OperatingMode.EVENT, OperatingMode.EMERGENCY]

    def test_default_policies_cover_all_modes(self):
        assert set(DEFAULT_POLICIES) == set(OperatingMode)


class TestModePropagation:
    def _chain(self, world, count=4, spacing=200.0):
        channel = WirelessChannel(world)
        return [
            VehicleNode(world, channel, Vehicle(position=Vec2(i * spacing, 0)))
            for i in range(count)
        ]

    def test_order_floods_connected_chain(self):
        world = lossless_world()
        nodes = self._chain(world)
        propagation = ModePropagation(world, nodes)
        order_id = propagation.issue_order(nodes[0], OperatingMode.EMERGENCY)
        world.run_for(5.0)
        assert propagation.adoption_fraction(OperatingMode.EMERGENCY) == 1.0
        latency = propagation.propagation_latency(order_id, OperatingMode.EMERGENCY)
        assert latency is not None and latency > 0

    def test_latency_none_until_everyone_adopts(self):
        world = lossless_world()
        nodes = self._chain(world)
        # Isolate the last node so the flood cannot reach it.
        nodes[-1].vehicle.position = Vec2(100_000, 0)
        propagation = ModePropagation(world, nodes)
        order_id = propagation.issue_order(nodes[0], OperatingMode.EMERGENCY)
        world.run_for(10.0)
        assert propagation.adoption_fraction(OperatingMode.EMERGENCY) == 0.75
        assert propagation.propagation_latency(order_id, OperatingMode.EMERGENCY) is None

    def test_readvertisement_heals_partitions(self):
        world = lossless_world()
        nodes = self._chain(world, count=3, spacing=200.0)
        # Third node starts out of range and drives back within 2 s.
        nodes[2].vehicle.position = Vec2(5000, 0)
        propagation = ModePropagation(world, nodes, repeats=5, repeat_interval_s=1.0)
        propagation.issue_order(nodes[0], OperatingMode.EMERGENCY)
        world.run_for(1.0)
        assert propagation.adoption_fraction(OperatingMode.EMERGENCY) < 1.0
        nodes[2].vehicle.position = Vec2(400, 0)  # back in range of node 1
        world.run_for(5.0)
        assert propagation.adoption_fraction(OperatingMode.EMERGENCY) == 1.0

    def test_two_orders_latest_wins(self):
        world = lossless_world()
        nodes = self._chain(world)
        propagation = ModePropagation(world, nodes)
        propagation.issue_order(nodes[0], OperatingMode.EMERGENCY)
        world.run_for(5.0)
        propagation.issue_order(nodes[0], OperatingMode.NORMAL)
        world.run_for(5.0)
        assert propagation.adoption_fraction(OperatingMode.NORMAL) == 1.0
        assert propagation.adoption_fraction(OperatingMode.EMERGENCY) == 0.0

    def test_requires_nodes(self):
        world = lossless_world()
        with pytest.raises(ConfigurationError):
            ModePropagation(world, [])

    def test_invalid_repeat_config(self):
        world = lossless_world()
        nodes = self._chain(world, count=1)
        with pytest.raises(ConfigurationError):
            ModePropagation(world, nodes, repeats=-1)
        with pytest.raises(ConfigurationError):
            ModePropagation(world, nodes, repeat_interval_s=0.0)
