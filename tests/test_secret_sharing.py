"""Tests for threshold secret sharing (§V.B)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CryptoError
from repro.security.secret_sharing import (
    DistributedSecretStore,
    reconstruct_secret,
    split_secret,
)
from repro.sim import SeededRng


@pytest.fixture
def rng():
    return SeededRng(7, "shamir")


class TestSplitReconstruct:
    def test_round_trip(self, rng):
        secret = b"driver biometric template 0xDEADBEEF"
        shares = split_secret(secret, n=5, k=3, rng=rng)
        assert len(shares) == 5
        assert reconstruct_secret(shares[:3]) == secret

    def test_any_k_shares_suffice(self, rng):
        secret = b"route history"
        shares = split_secret(secret, n=5, k=3, rng=rng)
        import itertools

        for combo in itertools.combinations(shares, 3):
            assert reconstruct_secret(list(combo)) == secret

    def test_fewer_than_k_rejected(self, rng):
        shares = split_secret(b"secret", n=5, k=3, rng=rng)
        with pytest.raises(CryptoError):
            reconstruct_secret(shares[:2])

    def test_duplicate_shares_do_not_count(self, rng):
        shares = split_secret(b"secret", n=5, k=3, rng=rng)
        with pytest.raises(CryptoError):
            reconstruct_secret([shares[0], shares[0], shares[1]])

    def test_k_minus_one_shares_reveal_nothing(self, rng):
        """Information-theoretic hiding: the k-1 views of two different
        secrets are both consistent with *any* secret, so observing them
        cannot distinguish the secrets.  We check the operational form:
        reconstruction from k-1 shares plus a wrong guess share fails to
        produce the secret."""
        secret = b"AAAAAAA"
        shares = split_secret(secret, n=4, k=3, rng=rng)
        forged = shares[2].__class__(
            index=99,
            values=tuple(0 for _ in shares[0].values),
            total_blocks=shares[0].total_blocks,
            original_length=shares[0].original_length,
            threshold=shares[0].threshold,
        )
        result = reconstruct_secret([shares[0], shares[1], forged])
        assert result != secret

    def test_mixed_splits_rejected(self, rng):
        a = split_secret(b"secret-one", n=3, k=2, rng=rng)
        b = split_secret(b"different!", n=3, k=2, rng=rng.fork("b"))
        # Same parameters but different polynomials: reconstruction mixes
        # into garbage rather than either secret.
        mixed = reconstruct_secret([a[0], b[1]])
        assert mixed not in (b"secret-one", b"different!")

    def test_incompatible_parameters_rejected(self, rng):
        a = split_secret(b"short", n=3, k=2, rng=rng)
        b = split_secret(b"a much longer secret value", n=3, k=2, rng=rng)
        with pytest.raises(CryptoError):
            reconstruct_secret([a[0], b[1]])

    def test_invalid_parameters(self, rng):
        with pytest.raises(CryptoError):
            split_secret(b"x", n=2, k=3, rng=rng)
        with pytest.raises(CryptoError):
            split_secret(b"", n=3, k=2, rng=rng)

    def test_k_equals_one_is_replication(self, rng):
        shares = split_secret(b"public-ish", n=3, k=1, rng=rng)
        for share in shares:
            assert reconstruct_secret([share]) == b"public-ish"

    def test_k_equals_n(self, rng):
        shares = split_secret(b"all hands", n=4, k=4, rng=rng)
        assert reconstruct_secret(shares) == b"all hands"
        with pytest.raises(CryptoError):
            reconstruct_secret(shares[:3])

    @given(st.binary(min_size=1, max_size=64), st.integers(min_value=2, max_value=6))
    @settings(max_examples=30, deadline=None)
    def test_round_trip_property(self, secret, n):
        rng = SeededRng(11, "prop")
        k = max(2, n - 1)
        shares = split_secret(secret, n=n, k=k, rng=rng)
        assert reconstruct_secret(shares[:k]) == secret
        assert reconstruct_secret(list(reversed(shares))[:k]) == secret


class TestDistributedSecretStore:
    def test_scatter_and_reconstruct(self, rng):
        store = DistributedSecretStore(rng)
        members = [f"v{i}" for i in range(5)]
        store.scatter("biometrics", b"iris-template", members, k=3)
        assert store.can_reconstruct("biometrics")
        assert store.reconstruct("biometrics") == b"iris-template"
        assert store.colluders_needed("biometrics") == 3

    def test_survives_tolerated_departures(self, rng):
        store = DistributedSecretStore(rng)
        members = [f"v{i}" for i in range(5)]
        store.scatter("s", b"payload", members, k=3)
        store.member_departed("v0")
        store.member_departed("v1")
        assert store.can_reconstruct("s")
        assert store.reconstruct("s") == b"payload"

    def test_too_many_departures_lose_the_secret(self, rng):
        store = DistributedSecretStore(rng)
        members = [f"v{i}" for i in range(5)]
        store.scatter("s", b"payload", members, k=3)
        for member in members[:3]:
            store.member_departed(member)
        assert not store.can_reconstruct("s")
        with pytest.raises(CryptoError):
            store.reconstruct("s")

    def test_duplicate_secret_id_rejected(self, rng):
        store = DistributedSecretStore(rng)
        store.scatter("s", b"x", ["a", "b"], k=2)
        with pytest.raises(CryptoError):
            store.scatter("s", b"y", ["a", "b"], k=2)

    def test_unknown_secret(self, rng):
        store = DistributedSecretStore(rng)
        assert not store.can_reconstruct("ghost")
        with pytest.raises(CryptoError):
            store.reconstruct("ghost")
