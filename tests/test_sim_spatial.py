"""Tests for the spatial grid index and its brute-force equivalence.

The non-negotiable contract of ``repro.sim.spatial``: every indexed
range query returns **exactly** what the brute-force pairwise scan it
replaced would return — same set, same order — on any snapshot,
including boundary-exact distances and coincident positions.  These
tests pin that with hypothesis property tests plus seeded random loops
across the three rewired call sites (channel, clustering, topology).
"""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import radio_graph
from repro.errors import SimulationError
from repro.geometry import Vec2
from repro.mobility import Vehicle
from repro.net import VehicleNode, WirelessChannel
from repro.net.clustering import neighbors_within
from repro.sim import ScenarioConfig, SpatialGrid, World, grid_from_positions
from repro.sim.config import ChannelConfig


def brute_within(positions, point, radius):
    """Reference implementation: insertion-ordered linear scan."""
    return [
        item_id
        for item_id, pos in positions.items()
        if point.distance_to(pos) <= radius
    ]


# Coordinates drawn from a small integer lattice scaled to metres, so
# boundary-exact distances (e.g. exactly one radius apart) and coincident
# positions both occur often instead of almost never.
coords = st.integers(min_value=-30, max_value=30).map(lambda v: v * 50.0)
points = st.tuples(coords, coords).map(lambda t: Vec2(*t))
radii = st.sampled_from([0.0, 50.0, 100.0, 150.0, 300.0, 500.0, 3000.0])


class TestSpatialGridBasics:
    def test_insert_query_remove(self):
        grid = SpatialGrid(cell_size_m=100.0)
        grid.insert("a", Vec2(0, 0))
        grid.insert("b", Vec2(50, 0))
        grid.insert("c", Vec2(500, 0))
        assert len(grid) == 3
        assert "b" in grid
        assert grid.within(Vec2(0, 0), 100.0) == ["a", "b"]
        grid.remove("b")
        assert grid.within(Vec2(0, 0), 100.0) == ["a"]
        grid.remove("b")  # idempotent
        assert len(grid) == 2

    def test_invalid_cell_size(self):
        with pytest.raises(SimulationError):
            SpatialGrid(cell_size_m=0.0)

    def test_duplicate_insert_raises(self):
        grid = SpatialGrid(cell_size_m=100.0)
        grid.insert("a", Vec2(0, 0))
        with pytest.raises(SimulationError):
            grid.insert("a", Vec2(1, 1))

    def test_move_unknown_raises(self):
        grid = SpatialGrid(cell_size_m=100.0)
        with pytest.raises(SimulationError):
            grid.move("ghost", Vec2(0, 0))

    def test_move_across_cells(self):
        grid = SpatialGrid(cell_size_m=100.0)
        grid.insert("a", Vec2(0, 0))
        grid.move("a", Vec2(1000, 1000))
        assert grid.within(Vec2(0, 0), 200.0) == []
        assert grid.within(Vec2(1000, 1000), 0.0) == ["a"]
        assert grid.position_of("a") == Vec2(1000, 1000)

    def test_move_if_changed_identity_fast_path(self):
        grid = SpatialGrid(cell_size_m=100.0)
        position = Vec2(10, 10)
        grid.insert("a", position)
        assert not grid.move_if_changed("a", position)  # same object
        assert not grid.move_if_changed("a", Vec2(10, 10))  # equal value
        assert grid.move_if_changed("a", Vec2(20, 10))

    def test_boundary_distance_is_inclusive(self):
        grid = SpatialGrid(cell_size_m=100.0)
        grid.insert("edge", Vec2(300.0, 0.0))
        assert grid.within(Vec2(0, 0), 300.0) == ["edge"]
        assert grid.within(Vec2(0, 0), math.nextafter(300.0, 0.0)) == []

    def test_coincident_positions(self):
        grid = SpatialGrid(cell_size_m=100.0)
        grid.insert("a", Vec2(5, 5))
        grid.insert("b", Vec2(5, 5))
        assert grid.within(Vec2(5, 5), 0.0) == ["a", "b"]

    def test_negative_radius_is_empty(self):
        grid = SpatialGrid(cell_size_m=100.0)
        grid.insert("a", Vec2(0, 0))
        assert grid.within(Vec2(0, 0), -1.0) == []

    def test_order_follows_insertion_sequence(self):
        grid = SpatialGrid(cell_size_m=50.0)
        ids = [f"n{i}" for i in range(20)]
        rnd = random.Random(7)
        for item_id in ids:
            grid.insert(item_id, Vec2(rnd.uniform(0, 100), rnd.uniform(0, 100)))
        assert grid.within(Vec2(50, 50), 1000.0) == ids

    def test_reinsert_after_remove_goes_to_back(self):
        grid = SpatialGrid(cell_size_m=50.0)
        for item_id in ("a", "b", "c"):
            grid.insert(item_id, Vec2(0, 0))
        grid.remove("a")
        grid.insert("a", Vec2(0, 0))
        assert grid.within(Vec2(0, 0), 10.0) == ["b", "c", "a"]

    def test_huge_radius_uses_occupied_cell_walk(self):
        grid = SpatialGrid(cell_size_m=10.0)
        for index in range(50):
            grid.insert(index, Vec2(index * 25.0, 0.0))
        # Disc spans far more cells than are occupied.
        assert grid.within(Vec2(0, 0), 1e6) == list(range(50))

    def test_clear(self):
        grid = SpatialGrid(cell_size_m=100.0)
        grid.insert("a", Vec2(0, 0))
        grid.clear()
        assert len(grid) == 0
        assert grid.within(Vec2(0, 0), 100.0) == []

    def test_grid_from_positions(self):
        grid = grid_from_positions({"a": Vec2(0, 0), "b": Vec2(10, 0)}, 100.0)
        assert grid.within(Vec2(0, 0), 50.0) == ["a", "b"]


class TestGridEqualsBruteForce:
    """Property: ``within()`` ≡ insertion-ordered brute-force scan."""

    @given(
        items=st.lists(points, min_size=0, max_size=40),
        query=points,
        radius=radii,
        cell=st.sampled_from([30.0, 100.0, 300.0, 1500.0]),
    )
    @settings(max_examples=200, deadline=None)
    def test_within_matches_brute_force(self, items, query, radius, cell):
        positions = {f"n{i}": pos for i, pos in enumerate(items)}
        grid = grid_from_positions(positions, cell)
        assert grid.within(query, radius) == brute_within(positions, query, radius)

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=60, deadline=None)
    def test_within_matches_after_random_churn(self, seed):
        rnd = random.Random(seed)
        grid = SpatialGrid(cell_size_m=rnd.choice([50.0, 200.0]))
        positions = {}
        for step in range(60):
            action = rnd.random()
            if action < 0.5 or not positions:
                item_id = f"n{step}"
                pos = Vec2(rnd.uniform(-500, 500), rnd.uniform(-500, 500))
                grid.insert(item_id, pos)
                positions[item_id] = pos
            elif action < 0.8:
                item_id = rnd.choice(list(positions))
                pos = Vec2(rnd.uniform(-500, 500), rnd.uniform(-500, 500))
                grid.move(item_id, pos)
                positions[item_id] = pos
            else:
                item_id = rnd.choice(list(positions))
                grid.remove(item_id)
                del positions[item_id]
            query = Vec2(rnd.uniform(-500, 500), rnd.uniform(-500, 500))
            radius = rnd.choice([0.0, 100.0, 250.0, 2000.0])
            assert grid.within(query, radius) == brute_within(positions, query, radius)


class TestRewiredCallSitesEquivalence:
    """The three rewired call sites agree with their brute-force paths."""

    @given(
        items=st.lists(points, min_size=1, max_size=30),
        radius=st.sampled_from([50.0, 100.0, 300.0, 1000.0]),
    )
    @settings(max_examples=60, deadline=None)
    def test_neighbors_within_matches_pairwise_scan(self, items, radius):
        vehicles = [
            Vehicle(vehicle_id=f"v{i}", position=pos) for i, pos in enumerate(items)
        ]
        indexed = neighbors_within(vehicles, radius)
        brute = neighbors_within(vehicles, radius, use_index=False)
        assert {k: [v.vehicle_id for v in vs] for k, vs in indexed.items()} == {
            k: [v.vehicle_id for v in vs] for k, vs in brute.items()
        }

    @given(
        items=st.lists(points, min_size=1, max_size=30),
        radius=st.sampled_from([50.0, 150.0, 300.0]),
    )
    @settings(max_examples=60, deadline=None)
    def test_radio_graph_matches_pairwise_scan(self, items, radius):
        vehicles = [
            Vehicle(vehicle_id=f"v{i}", position=pos) for i, pos in enumerate(items)
        ]
        indexed = radio_graph(vehicles, radius)
        brute = radio_graph(vehicles, radius, use_index=False)
        assert list(indexed.nodes) == list(brute.nodes)
        assert set(map(frozenset, indexed.edges)) == set(map(frozenset, brute.edges))

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=40, deadline=None)
    def test_channel_neighbors_match_full_scan(self, seed):
        rnd = random.Random(seed)
        world_indexed = World(ScenarioConfig(seed=3))
        world_brute = World(ScenarioConfig(seed=3))
        indexed = WirelessChannel(world_indexed)
        brute = WirelessChannel(world_brute, use_spatial_index=False)
        count = rnd.randint(2, 25)
        pairs = []
        for i in range(count):
            pos = Vec2(rnd.uniform(-1500, 1500), rnd.uniform(-1500, 1500))
            range_m = rnd.choice([80.0, 300.0, 900.0])
            vid = f"s{seed}v{i}"
            pairs.append(
                (
                    VehicleNode(
                        world_indexed,
                        indexed,
                        Vehicle(vehicle_id=vid, position=pos),
                        radio_range_m=range_m,
                    ),
                    VehicleNode(
                        world_brute,
                        brute,
                        Vehicle(vehicle_id=vid, position=pos),
                        radio_range_m=range_m,
                    ),
                )
            )
        for a, b in pairs:
            assert [n.node_id for n in indexed.neighbors_of(a.node_id)] == [
                n.node_id for n in brute.neighbors_of(b.node_id)
            ]
        # Move a random subset (direct mutation, as mobility models do),
        # detach one node, and require the answers to stay in lock-step.
        for a, b in pairs:
            if rnd.random() < 0.5:
                pos = Vec2(rnd.uniform(-1500, 1500), rnd.uniform(-1500, 1500))
                a.vehicle.position = pos
                b.vehicle.position = pos
        victim = rnd.choice(pairs)[0].node_id
        indexed.detach(victim)
        brute.detach(victim)
        for a, b in pairs:
            if a.node_id == victim:
                continue
            assert [n.node_id for n in indexed.neighbors_of(a.node_id)] == [
                n.node_id for n in brute.neighbors_of(b.node_id)
            ]


class TestChannelCacheInvalidation:
    def test_cache_sees_direct_position_mutation(self):
        world = World(ScenarioConfig(seed=11))
        channel = WirelessChannel(world)
        a = VehicleNode(
            world, channel, Vehicle(vehicle_id="ca", position=Vec2(0, 0)), 100.0
        )
        VehicleNode(
            world, channel, Vehicle(vehicle_id="cb", position=Vec2(50, 0)), 100.0
        )
        assert channel.neighbor_count(a.node_id) == 1
        assert channel.neighbor_count(a.node_id) == 1  # cached path
        channel.node("cb").vehicle.position = Vec2(5000, 0)
        assert channel.neighbor_count(a.node_id) == 0

    def test_cache_invalidated_on_attach_and_detach(self):
        world = World(ScenarioConfig(seed=12))
        channel = WirelessChannel(world)
        a = VehicleNode(
            world, channel, Vehicle(vehicle_id="ia", position=Vec2(0, 0)), 300.0
        )
        assert channel.neighbor_count(a.node_id) == 0
        VehicleNode(
            world, channel, Vehicle(vehicle_id="ib", position=Vec2(50, 0)), 300.0
        )
        assert channel.neighbor_count(a.node_id) == 1
        channel.detach("ib")
        assert channel.neighbor_count(a.node_id) == 0

    def test_second_channel_on_one_world_gets_private_grid(self):
        world = World(ScenarioConfig(seed=13))
        first = WirelessChannel(world)
        second = WirelessChannel(world)
        a1 = VehicleNode(
            world, first, Vehicle(vehicle_id="w1", position=Vec2(0, 0)), 300.0
        )
        VehicleNode(world, second, Vehicle(vehicle_id="w2", position=Vec2(10, 0)), 300.0)
        # Different media: the channels must not see each other's nodes.
        assert first.neighbors_of(a1.node_id) == []
        assert second.neighbors_of("w2") == []


class TestTapIndexEquivalence:
    def test_many_taps_match_linear_scan(self):
        class RecordingTap:
            def __init__(self, x, listen):
                self.position = Vec2(x, 0.0)
                self.listen_range_m = listen
                self.frames = []

            def on_frame(self, frame):
                self.frames.append(frame)

        def build(use_index):
            config = ChannelConfig(base_loss_probability=0.0, loss_per_100m=0.0)
            world = World(ScenarioConfig(seed=21, channel=config))
            channel = WirelessChannel(world, use_spatial_index=use_index)
            src = VehicleNode(
                world,
                channel,
                Vehicle(vehicle_id=f"tap-src-{use_index}", position=Vec2(0, 0)),
                300.0,
            )
            # 12 taps (>= threshold): some in range, one boundary-exact,
            # most out of range; per-tap listen ranges differ.
            taps = [RecordingTap(i * 100.0, 250.0 if i % 2 else 150.0) for i in range(12)]
            for tap in taps:
                channel.add_tap(tap)
            from repro.net.messages import hello_message

            src.broadcast(hello_message(src.node_id, (0, 0), 0, 0, world.now))
            # Move the taps (adversaries ride vehicles) and send again.
            for index, tap in enumerate(taps):
                tap.position = Vec2(index * 40.0, 0.0)
            src.broadcast(hello_message(src.node_id, (0, 0), 0, 0, world.now))
            return [len(tap.frames) for tap in taps]

        assert build(True) == build(False)
