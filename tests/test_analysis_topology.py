"""Tests for the networkx-backed topology analytics."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.geometry import Vec2
from repro.mobility import Vehicle
from repro.analysis.topology import (
    connectivity_over_time,
    partition_risk,
    radio_graph,
    topology_stats,
)


def chain(count: int, spacing: float = 100.0):
    return [Vehicle(position=Vec2(i * spacing, 0)) for i in range(count)]


class TestRadioGraph:
    def test_edges_respect_range(self):
        vehicles = chain(3, spacing=250.0)
        graph = radio_graph(vehicles, range_m=300.0)
        assert graph.number_of_edges() == 2  # only adjacent pairs

    def test_invalid_range(self):
        with pytest.raises(ConfigurationError):
            radio_graph([], 0.0)

    def test_isolated_nodes_present(self):
        vehicles = [Vehicle(position=Vec2(0, 0)), Vehicle(position=Vec2(10_000, 0))]
        graph = radio_graph(vehicles, 300.0)
        assert graph.number_of_nodes() == 2
        assert graph.number_of_edges() == 0


class TestTopologyStats:
    def test_empty(self):
        stats = topology_stats([], 300.0)
        assert stats.nodes == 0 and stats.components == 0

    def test_connected_chain(self):
        stats = topology_stats(chain(5), 150.0)
        assert stats.is_connected
        assert stats.components == 1
        assert stats.giant_fraction == 1.0
        assert stats.giant_diameter_hops == 4

    def test_partitioned(self):
        vehicles = chain(3) + [Vehicle(position=Vec2(50_000 + i * 100.0, 0)) for i in range(2)]
        stats = topology_stats(vehicles, 150.0)
        assert stats.components == 2
        assert stats.giant_fraction == pytest.approx(3 / 5)
        assert not stats.is_connected

    def test_articulation_points_of_chain(self):
        vehicles = chain(5)
        stats = topology_stats(vehicles, 150.0)
        # Interior chain nodes are articulation points; endpoints are not.
        interior = {v.vehicle_id for v in vehicles[1:-1]}
        assert set(stats.articulation_points) == interior

    def test_clique_has_no_articulation_points(self):
        vehicles = [Vehicle(position=Vec2(i * 10.0, 0)) for i in range(5)]
        stats = topology_stats(vehicles, 300.0)
        assert stats.articulation_points == ()
        assert stats.mean_degree == pytest.approx(4.0)

    def test_single_node(self):
        stats = topology_stats([Vehicle(position=Vec2(0, 0))], 300.0)
        assert stats.giant_diameter_hops == 0
        assert stats.giant_fraction == 1.0


class TestPartitionRisk:
    def test_bridge_node_is_risky(self):
        # a -- bridge -- b : removing the bridge halves the network.
        vehicles = [
            Vehicle(position=Vec2(0, 0)),
            Vehicle(position=Vec2(140, 0)),  # the bridge
            Vehicle(position=Vec2(280, 0)),
        ]
        risks = partition_risk(vehicles, range_m=150.0)
        bridge_risk = risks[vehicles[1].vehicle_id]
        end_risk = risks[vehicles[0].vehicle_id]
        assert bridge_risk > end_risk

    def test_clique_members_riskless(self):
        vehicles = [Vehicle(position=Vec2(i * 10.0, 0)) for i in range(4)]
        risks = partition_risk(vehicles, range_m=300.0)
        assert all(risk == pytest.approx(0.0) for risk in risks.values())

    def test_single_vehicle(self):
        vehicle = Vehicle(position=Vec2(0, 0))
        assert partition_risk([vehicle], 300.0) == {vehicle.vehicle_id: 0.0}


class TestOverTime:
    def test_sequence_of_snapshots(self):
        early = chain(4)
        late = chain(4, spacing=1000.0)  # drifted apart
        series = connectivity_over_time([early, late], range_m=300.0)
        assert series[0].is_connected
        assert not series[1].is_connected
