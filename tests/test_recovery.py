"""Tests for recovery primitives: backoff, leases, and their wiring."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.faults import BackoffPolicy, WorkerLeases
from repro.core import (
    NetworkedTaskExchange,
    ResourceOffer,
    Task,
    TaskState,
    VehicularCloud,
)
from repro.geometry import Vec2
from repro.mobility import StationaryModel, Vehicle
from repro.net import InterceptVerdict, VehicleNode, WirelessChannel
from repro.sim import ChannelConfig, ScenarioConfig, SeededRng, World


class _ExplodingRng:
    """Fails the test if any draw is attempted."""

    def __getattr__(self, name):
        raise AssertionError("rng must not be consulted")


class TestBackoffPolicy:
    def test_exponential_growth_with_cap(self):
        policy = BackoffPolicy(
            base_delay_s=0.5, multiplier=2.0, max_delay_s=4.0, jitter_fraction=0.0
        )
        delays = [policy.delay_for(attempt) for attempt in range(6)]
        assert delays == [0.5, 1.0, 2.0, 4.0, 4.0, 4.0]

    def test_fixed_policy_is_constant_and_draws_nothing(self):
        policy = BackoffPolicy.fixed(0.5, max_retries=5)
        rng = _ExplodingRng()
        assert [policy.delay_for(a, rng) for a in range(4)] == [0.5] * 4

    def test_jitter_bounds_and_determinism(self):
        policy = BackoffPolicy(
            base_delay_s=1.0, multiplier=2.0, max_delay_s=8.0, jitter_fraction=0.2
        )
        draws_a = [policy.delay_for(a, SeededRng(7, "b").fork(str(a))) for a in range(5)]
        draws_b = [policy.delay_for(a, SeededRng(7, "b").fork(str(a))) for a in range(5)]
        assert draws_a == draws_b
        for attempt, delay in enumerate(draws_a):
            nominal = min(8.0, 1.0 * 2.0**attempt)
            assert nominal * 0.8 <= delay <= nominal * 1.2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BackoffPolicy(base_delay_s=0.0)
        with pytest.raises(ConfigurationError):
            BackoffPolicy(multiplier=0.5)
        with pytest.raises(ConfigurationError):
            BackoffPolicy(base_delay_s=2.0, max_delay_s=1.0)
        with pytest.raises(ConfigurationError):
            BackoffPolicy(jitter_fraction=1.0)
        with pytest.raises(ConfigurationError):
            BackoffPolicy(max_retries=-1)
        with pytest.raises(ConfigurationError):
            BackoffPolicy().delay_for(-1)


class TestBackoffDeterminism:
    def test_delay_sequence_identical_for_one_seed(self):
        policy = BackoffPolicy(
            base_delay_s=0.25, multiplier=2.0, max_delay_s=6.0, jitter_fraction=0.3
        )
        runs = []
        for _ in range(3):
            rng = SeededRng(42, "backoff")
            runs.append([policy.delay_for(a, rng) for a in range(8)])
        assert runs[0] == runs[1] == runs[2]

    def test_different_seeds_diverge(self):
        policy = BackoffPolicy(jitter_fraction=0.3)
        seq_a = [policy.delay_for(a, SeededRng(1, "b")) for a in range(6)]
        seq_b = [policy.delay_for(a, SeededRng(2, "b")) for a in range(6)]
        assert seq_a != seq_b

    def test_cap_bounds_jittered_delays(self):
        policy = BackoffPolicy(
            base_delay_s=1.0, multiplier=3.0, max_delay_s=5.0, jitter_fraction=0.25
        )
        rng = SeededRng(9, "cap")
        for attempt in range(20, 40):
            delay = policy.delay_for(attempt, rng)
            # Jitter applies around the capped nominal, never beyond it.
            assert 5.0 * 0.75 <= delay <= 5.0 * 1.25

    def test_cap_without_jitter_is_exact(self):
        policy = BackoffPolicy(
            base_delay_s=1.0, multiplier=2.0, max_delay_s=3.0, jitter_fraction=0.0
        )
        assert [policy.delay_for(a) for a in range(2, 10)] == [3.0] * 8

    def test_jitter_bounds_hold_across_seeds_and_attempts(self):
        """Property sweep: every draw stays inside
        ``[base*(1-j), max*(1+j)]`` and each seed replays byte-identically."""
        jitter = 0.3
        policy = BackoffPolicy(
            base_delay_s=0.5, multiplier=2.0, max_delay_s=6.0,
            jitter_fraction=jitter, max_retries=50,
        )
        lo = 0.5 * (1.0 - jitter)
        hi = 6.0 * (1.0 + jitter)
        for seed in range(20):
            draws = [
                policy.delay_for(attempt, SeededRng(seed, "sweep"))
                for attempt in range(12)
            ]
            replay = [
                policy.delay_for(attempt, SeededRng(seed, "sweep"))
                for attempt in range(12)
            ]
            assert draws == replay
            for attempt, delay in enumerate(draws):
                assert lo <= delay <= hi
                # The per-attempt envelope is tighter than the global one.
                nominal = min(6.0, 0.5 * 2.0**attempt)
                assert nominal * (1 - jitter) <= delay <= nominal * (1 + jitter)


class TestWorkerLeases:
    def test_expiry_boundary_tick_is_not_expired(self):
        # A lease granted at t=0 with duration 5 expires *after* t=5.0:
        # the boundary tick itself still counts as leased (strict <).
        leases = WorkerLeases(lease_duration_s=5.0)
        leases.grant("w1", now=0.0)
        assert leases.expires_at("w1") == 5.0
        assert leases.expired(4.999) == []
        assert leases.expired(5.0) == []
        assert leases.expired(5.000001) == ["w1"]

    def test_renewal_moves_the_boundary(self):
        leases = WorkerLeases(lease_duration_s=5.0)
        leases.grant("w1", now=0.0)
        leases.renew("w1", now=3.0)
        assert leases.expired(8.0) == []
        assert leases.expired(8.5) == ["w1"]


    def test_grant_renew_expire(self):
        leases = WorkerLeases(lease_duration_s=5.0)
        leases.grant("w1", now=0.0)
        leases.grant("w2", now=0.0)
        assert len(leases) == 2 and "w1" in leases
        leases.renew("w1", now=4.0)
        assert leases.expired(6.0) == ["w2"]
        assert leases.expirations == 1
        assert leases.renewals == 1

    def test_expired_sorted_deterministically(self):
        leases = WorkerLeases(lease_duration_s=1.0)
        for wid in ["w3", "w1", "w2"]:
            leases.grant(wid, now=0.0)
        assert leases.expired(5.0) == ["w1", "w2", "w3"]

    def test_revoke(self):
        leases = WorkerLeases(lease_duration_s=1.0)
        leases.grant("w1", now=0.0)
        leases.revoke("w1")
        assert "w1" not in leases
        assert leases.expires_at("w1") is None
        assert leases.expired(10.0) == []

    def test_duration_validation(self):
        with pytest.raises(ConfigurationError):
            WorkerLeases(lease_duration_s=0.0)


def make_cloud(world, members=4, **kwargs):
    model = StationaryModel(world, positions=[Vec2(i * 40.0, 0) for i in range(members)])
    vehicles = model.populate(members)
    cloud = VehicularCloud(world, "recovery-vc", **kwargs)
    for vehicle in vehicles:
        cloud.admit(vehicle, offer=ResourceOffer(vehicle.vehicle_id, 1000.0, 10**9, 1e6))
    return vehicles, cloud


class TestCloudBackoffWiring:
    def test_backoff_spaces_assignment_retries(self):
        world = World(ScenarioConfig(seed=3))
        policy = BackoffPolicy(
            base_delay_s=1.0, multiplier=2.0, max_delay_s=60.0, jitter_fraction=0.0
        )
        cloud = VehicularCloud(world, "empty-vc", retry_backoff=policy)
        record = cloud.submit(Task(work_mi=100))  # no members: retries forever
        world.run_for(6.9)  # retries at 1, 3 (=1+2), 7 (=3+4), ...
        assert cloud._retries[record.task.task_id] == 3
        world.run_for(0.2)
        assert cloud._retries[record.task.task_id] == 4

    def test_default_keeps_fixed_interval(self):
        world = World(ScenarioConfig(seed=3))
        cloud = VehicularCloud(world, "empty-vc")
        record = cloud.submit(Task(work_mi=100))
        world.run_for(5.5)
        assert cloud._retries[record.task.task_id] == 6  # one per RETRY_INTERVAL_S

    def test_task_recovers_when_worker_arrives(self):
        world = World(ScenarioConfig(seed=3))
        policy = BackoffPolicy(base_delay_s=0.5, jitter_fraction=0.1)
        cloud = VehicularCloud(world, "late-vc", retry_backoff=policy)
        record = cloud.submit(Task(work_mi=500))
        model = StationaryModel(world, positions=[Vec2(0, 0)])
        (vehicle,) = model.populate(1)

        def _arrive():
            cloud.admit(vehicle, offer=ResourceOffer(vehicle.vehicle_id, 1000.0, 10**9, 1e6))

        world.engine.schedule_at(3.0, _arrive)
        world.run_for(60.0)
        assert record.state is TaskState.COMPLETED


class TestExchangeBackoffWiring:
    def _exchange(self, loss, backoff=None, seed=5):
        channel_config = ChannelConfig(base_loss_probability=loss, loss_per_100m=0.0)
        world = World(ScenarioConfig(seed=seed, channel=channel_config))
        channel = WirelessChannel(world)
        head = VehicleNode(world, channel, Vehicle(position=Vec2(0, 0)), radio_range_m=300.0)
        worker = VehicleNode(world, channel, Vehicle(position=Vec2(50, 0)), radio_range_m=300.0)
        exchange = NetworkedTaskExchange(world, head, backoff=backoff)
        exchange.register_worker(worker, mips=1000.0)
        return world, exchange, worker, channel

    def test_default_backoff_mirrors_legacy_params(self):
        world, exchange, worker, _channel = self._exchange(loss=0.0)
        assert exchange.backoff.multiplier == 1.0
        assert exchange.backoff.base_delay_s == exchange.retry_interval_s
        assert exchange.max_retries == exchange.backoff.max_retries

    def test_offload_completes_under_loss_with_backoff(self):
        policy = BackoffPolicy(
            base_delay_s=0.3,
            multiplier=2.0,
            max_delay_s=4.0,
            jitter_fraction=0.1,
            max_retries=10,
        )
        world, exchange, worker, _channel = self._exchange(loss=0.5, backoff=policy)
        result = exchange.offload(worker.node_id, Task(work_mi=500))
        world.run_for(120.0)
        assert result.done
        assert result.assign_transmissions >= 1

    def test_max_retries_comes_from_backoff(self):
        policy = BackoffPolicy(base_delay_s=0.1, max_retries=2, jitter_fraction=0.0)
        world, exchange, worker, channel = self._exchange(loss=0.0, backoff=policy)
        channel.add_interceptor(lambda frame: InterceptVerdict.drop())
        result = exchange.offload(worker.node_id, Task(work_mi=500))
        world.run_for(60.0)
        assert result.failed
        assert result.assign_transmissions == 3  # initial + 2 retries


class TestLeaseLiveness:
    def test_sweep_auto_renews_live_members(self):
        world = World(ScenarioConfig(seed=3))
        _vehicles, cloud = make_cloud(world)
        leases = cloud.enable_worker_leases(lease_duration_s=2.0, sweep_interval_s=0.5)
        world.run_for(20.0)
        assert cloud.member_count() == 4
        assert cloud.stats.lease_evictions == 0
        assert leases.renewals > 0

    def test_crashed_member_evicted_within_lease_duration(self):
        world = World(ScenarioConfig(seed=3))
        vehicles, cloud = make_cloud(world)
        cloud.enable_worker_leases(lease_duration_s=2.0, sweep_interval_s=0.5)
        victim = vehicles[-1].vehicle_id
        world.run_for(1.0)
        cloud.mark_worker_crashed(victim)
        world.run_for(3.0)  # > lease_duration + sweep
        assert victim not in cloud.membership
        assert cloud.stats.lease_evictions == 1
        assert cloud.member_count() == 3

    def test_heartbeat_keeps_explicitly_renewed_member(self):
        world = World(ScenarioConfig(seed=3))
        vehicles, cloud = make_cloud(world)
        cloud.enable_worker_leases(lease_duration_s=2.0, sweep_interval_s=0.5)
        cloud.heartbeat(vehicles[0].vehicle_id)
        assert cloud.leases.renewals == 1

    def test_disable_stops_evictions(self):
        world = World(ScenarioConfig(seed=3))
        vehicles, cloud = make_cloud(world)
        cloud.enable_worker_leases(lease_duration_s=2.0, sweep_interval_s=0.5)
        cloud.disable_worker_leases()
        cloud.mark_worker_crashed(vehicles[-1].vehicle_id)
        world.run_for(10.0)
        assert cloud.member_count() == 4
        assert cloud.leases is None

    def test_readmitted_member_is_no_longer_crashed(self):
        world = World(ScenarioConfig(seed=3))
        vehicles, cloud = make_cloud(world)
        cloud.enable_worker_leases(lease_duration_s=2.0, sweep_interval_s=0.5)
        victim = vehicles[-1]
        cloud.mark_worker_crashed(victim.vehicle_id)
        world.run_for(3.0)
        assert victim.vehicle_id not in cloud.membership
        cloud.admit(victim, offer=ResourceOffer(victim.vehicle_id, 1000.0, 10**9, 1e6))
        world.run_for(5.0)
        # The reboot cleared the crash flag: the member stays leased.
        assert victim.vehicle_id in cloud.membership


class TestExhaustionLedgering:
    """Whole-run retry failures are ledgered, never silently dropped."""

    def test_assignment_retry_exhaustion_fails_task_into_stats(self):
        world = World(ScenarioConfig(seed=4))
        world.enable_observability(trace=False, events=True)
        cloud = VehicularCloud(
            world,
            "exhaust-vc",
            max_assignment_retries=5,
            retry_backoff=BackoffPolicy(
                base_delay_s=0.2, multiplier=1.0, max_delay_s=0.2, jitter_fraction=0.0
            ),
        )
        record = cloud.submit(Task(work_mi=100))  # no members, ever
        world.run_for(30.0)
        assert record.state is TaskState.FAILED
        assert cloud.stats.failed == 1
        # Conservation holds after exhaustion: nothing stays in flight.
        acc = cloud.accounting()
        assert acc["submitted"] == acc["completed"] + acc["failed"] + acc["records_in_flight"]
        assert acc["records_in_flight"] == 0
        reasons = [
            e.attrs.get("reason")
            for e in world.events.records()
            if e.name == "task_failed"
        ]
        assert "retries_exhausted" in reasons

    def test_anti_entropy_exhaustion_is_counted_and_listed(self):
        from repro.core import FileStore, QuorumConfig, ReplicationManager, StoredFile
        from repro.sim import Engine

        manager = ReplicationManager(
            SeededRng(5, "exhaust"), quorum=QuorumConfig(2, 2), hinted_handoff=False
        )
        for index in range(3):
            manager.add_store(FileStore(f"v{index}", 10_000))
        manager.store_file(StoredFile("f1", 100, 3))
        victim = manager.holders_of("f1")[0]
        manager.set_offline(victim)
        manager.write("f1", writer="w")
        engine = Engine()
        backoff = BackoffPolicy(
            base_delay_s=0.1, multiplier=1.0, max_delay_s=0.1,
            jitter_fraction=0.0, max_retries=2,
        )
        manager.start_anti_entropy(engine, period_s=100.0, backoff=backoff)
        manager.anti_entropy_round()
        manager.stop_anti_entropy()
        engine.drain(max_events=10_000)
        # The victim never came back: the retry chain must end in the
        # exhaustion ledger, with no retry left pending.
        assert manager.anti_entropy_retries_exhausted == 1
        assert manager.exhausted_transfers == [(victim, "f1")]
        assert manager._pending_retries == set()

    def test_whole_run_quorum_outage_lands_in_storage_degraded(self):
        from repro.core import QuorumConfig

        world = World(ScenarioConfig(seed=6))
        vehicles, cloud = make_cloud(world, members=3)
        cloud.enable_replicated_storage(quorum=QuorumConfig(3, 3))
        cloud.store_put("f1", size_bytes=100, target_replicas=3)
        for vehicle in vehicles[:2]:
            cloud.storage.set_offline(vehicle.vehicle_id)
        attempts = 6
        for _ in range(attempts):
            assert cloud.store_write("f1", writer=vehicles[2].vehicle_id) is None
            assert cloud.store_read("f1") is None
        assert cloud.stats.storage_degraded == 2 * attempts
        assert world.metrics.counter("vc/exhaust") == 0  # no stray counters
