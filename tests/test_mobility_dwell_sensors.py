"""Tests for dwell estimation, sensors and traces."""

from __future__ import annotations

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.geometry import Vec2
from repro.mobility import (
    DwellEstimator,
    MobilityTrace,
    SensorKind,
    SensorSuite,
    TraceRecorder,
    Vehicle,
    link_lifetime,
    zone_residence_time,
)
from repro.mobility.models import HighwayModel
from repro.mobility.sensors import GpsSensor, Radar, Speedometer


class TestLinkLifetime:
    def test_out_of_range_is_zero(self):
        a = Vehicle(position=Vec2(0, 0))
        b = Vehicle(position=Vec2(1000, 0))
        assert link_lifetime(a, b, 300) == 0.0

    def test_static_pair_is_infinite(self):
        a = Vehicle(position=Vec2(0, 0))
        b = Vehicle(position=Vec2(100, 0))
        assert math.isinf(link_lifetime(a, b, 300))

    def test_platoon_is_infinite(self):
        a = Vehicle(position=Vec2(0, 0), speed_mps=20, heading_rad=0)
        b = Vehicle(position=Vec2(50, 0), speed_mps=20, heading_rad=0)
        assert math.isinf(link_lifetime(a, b, 300))

    def test_opposite_traffic_short_lifetime(self):
        a = Vehicle(position=Vec2(0, 0), speed_mps=20, heading_rad=0)
        b = Vehicle(position=Vec2(100, 0), speed_mps=20, heading_rad=math.pi)
        # Closing at 40 m/s from 100m apart inside a 300m radius: the gap
        # shrinks, passes zero, then opens to 300 -> (100+300)/40 = 10 s.
        assert link_lifetime(a, b, 300) == pytest.approx(10.0)

    def test_diverging_pair(self):
        a = Vehicle(position=Vec2(0, 0), speed_mps=10, heading_rad=math.pi)
        b = Vehicle(position=Vec2(100, 0), speed_mps=10, heading_rad=0)
        # Opening at 20 m/s with 200m margin -> 10 s.
        assert link_lifetime(a, b, 300) == pytest.approx(10.0)

    def test_invalid_range_raises(self):
        with pytest.raises(ConfigurationError):
            link_lifetime(Vehicle(), Vehicle(), 0)

    @given(st.floats(min_value=10, max_value=40), st.floats(min_value=10, max_value=290))
    def test_lifetime_non_negative(self, speed, gap):
        a = Vehicle(position=Vec2(0, 0), speed_mps=speed, heading_rad=0)
        b = Vehicle(position=Vec2(gap, 0), speed_mps=speed / 2, heading_rad=math.pi)
        assert link_lifetime(a, b, 300) >= 0


class TestZoneResidence:
    def test_outside_is_zero(self):
        vehicle = Vehicle(position=Vec2(1000, 0))
        assert zone_residence_time(vehicle, Vec2(0, 0), 300) == 0.0

    def test_parked_inside_is_infinite(self):
        vehicle = Vehicle(position=Vec2(10, 0))
        assert math.isinf(zone_residence_time(vehicle, Vec2(0, 0), 300))

    def test_crossing_through_center(self):
        vehicle = Vehicle(position=Vec2(-300, 0), speed_mps=30, heading_rad=0)
        # Entering at the rim, exiting 600m later at 30 m/s -> 20 s.
        assert zone_residence_time(vehicle, Vec2(0, 0), 300) == pytest.approx(20.0)

    def test_leaving_radially(self):
        vehicle = Vehicle(position=Vec2(100, 0), speed_mps=20, heading_rad=0)
        assert zone_residence_time(vehicle, Vec2(0, 0), 300) == pytest.approx(10.0)


class TestDwellEstimator:
    def test_unbiased_estimate_near_truth(self, rng):
        estimator = DwellEstimator(rng, bias=1.0, noise_std_fraction=0.0)
        a = Vehicle(position=Vec2(0, 0), speed_mps=20, heading_rad=0)
        b = Vehicle(position=Vec2(100, 0), speed_mps=20, heading_rad=math.pi)
        estimate = estimator.estimate_link(a, b, 300)
        assert estimate.estimated_s == pytest.approx(estimate.true_s)
        assert estimate.error_s == pytest.approx(0.0)

    def test_bias_shifts_estimate(self, rng):
        estimator = DwellEstimator(rng, bias=2.0, noise_std_fraction=0.0)
        a = Vehicle(position=Vec2(0, 0), speed_mps=20, heading_rad=0)
        b = Vehicle(position=Vec2(100, 0), speed_mps=20, heading_rad=math.pi)
        estimate = estimator.estimate_link(a, b, 300)
        assert estimate.estimated_s == pytest.approx(2.0 * estimate.true_s)

    def test_infinite_truth_capped(self, rng):
        estimator = DwellEstimator(rng, noise_std_fraction=0.0)
        a = Vehicle(position=Vec2(0, 0))
        b = Vehicle(position=Vec2(10, 0))
        estimate = estimator.estimate_link(a, b, 300)
        assert estimate.estimated_s <= DwellEstimator.HORIZON_S
        assert math.isinf(estimate.true_s)

    def test_invalid_bias(self, rng):
        with pytest.raises(ConfigurationError):
            DwellEstimator(rng, bias=0.0)

    def test_estimate_never_negative(self, rng):
        estimator = DwellEstimator(rng, noise_std_fraction=2.0)
        a = Vehicle(position=Vec2(0, 0), speed_mps=20, heading_rad=0)
        b = Vehicle(position=Vec2(250, 0), speed_mps=20, heading_rad=math.pi)
        for _ in range(50):
            assert estimator.estimate_link(a, b, 300).estimated_s >= 0


class TestSensors:
    def test_gps_noise_bounded(self, rng):
        sensor = GpsSensor(rng, error_std_m=1.0)
        vehicle = Vehicle(position=Vec2(100, 100))
        errors = [
            sensor.read(vehicle, 0.0).value.distance_to(vehicle.position)
            for _ in range(200)
        ]
        assert sum(errors) / len(errors) < 5.0

    def test_speedometer_relative_noise(self, rng):
        sensor = Speedometer(rng, relative_error_std=0.01)
        vehicle = Vehicle(speed_mps=30.0)
        readings = [sensor.read(vehicle, 0.0).value for _ in range(100)]
        assert 29.0 < sum(readings) / len(readings) < 31.0

    def test_radar_detects_in_range_only(self, rng):
        radar = Radar(rng, max_range_m=100, detection_probability=1.0, range_error_std_m=0.0)
        me = Vehicle(position=Vec2(0, 0))
        near = Vehicle(position=Vec2(50, 0))
        far = Vehicle(position=Vec2(500, 0))
        contacts = radar.sweep(me, [near, far], 0.0).value
        assert [c.target_id for c in contacts] == [near.vehicle_id]
        assert contacts[0].range_m == pytest.approx(50.0)

    def test_radar_never_detects_self(self, rng):
        radar = Radar(rng, detection_probability=1.0)
        me = Vehicle(position=Vec2(0, 0))
        assert radar.sweep(me, [me], 0.0).value == []

    def test_suite_respects_equipment(self, rng):
        from repro.mobility import AutomationLevel, OnboardEquipment

        vehicle = Vehicle(
            equipment=OnboardEquipment.for_level(AutomationLevel.NO_AUTOMATION)
        )
        suite = SensorSuite(vehicle, rng)
        assert suite.read_gps(0.0) is not None
        assert suite.radar_sweep([], 0.0) is None  # no radar at level 0

    def test_suite_reading_kinds(self, rng):
        vehicle = Vehicle()
        suite = SensorSuite(vehicle, rng)
        assert suite.read_gps(1.0).sensor is SensorKind.GPS
        assert suite.read_speed(1.0).sensor is SensorKind.SPEEDOMETER


class TestTrace:
    def test_record_and_duration(self):
        trace = MobilityTrace()
        vehicle = Vehicle(position=Vec2(0, 0))
        trace.record(0.0, vehicle)
        vehicle.position = Vec2(10, 0)
        trace.record(5.0, vehicle)
        assert trace.duration() == 5.0
        assert trace.vehicle_ids() == [vehicle.vehicle_id]

    def test_interpolation(self):
        trace = MobilityTrace()
        vehicle = Vehicle(position=Vec2(0, 0))
        trace.record(0.0, vehicle)
        vehicle.position = Vec2(10, 0)
        trace.record(10.0, vehicle)
        midpoint = trace.position_at(vehicle.vehicle_id, 5.0)
        assert midpoint == Vec2(5, 0)

    def test_interpolation_clamps_to_ends(self):
        trace = MobilityTrace()
        vehicle = Vehicle(position=Vec2(3, 3))
        trace.record(1.0, vehicle)
        assert trace.position_at(vehicle.vehicle_id, 0.0) == Vec2(3, 3)
        assert trace.position_at(vehicle.vehicle_id, 99.0) == Vec2(3, 3)

    def test_unknown_vehicle_returns_none(self):
        assert MobilityTrace().position_at("ghost", 0.0) is None

    def test_recorder_samples_population(self, world):
        model = HighwayModel(world)
        model.populate(5)
        model.start()
        recorder = TraceRecorder(world, model, interval_s=1.0)
        recorder.start()
        world.run_for(10)
        recorder.stop()
        assert len(recorder.trace.points) == 5 * 10
        assert len(recorder.trace.vehicle_ids()) == 5
