"""Tests for routing protocols over the live channel."""

from __future__ import annotations

import pytest

from repro.geometry import Vec2
from repro.mobility import Vehicle
from repro.net import VehicleNode, WirelessChannel
from repro.net.routing import (
    ClusterRouting,
    EpidemicRouting,
    GreedyGeographicRouting,
    MovingZoneRouting,
    NetworkView,
    RoutingHarness,
    RoutingStats,
)
from repro.sim import ChannelConfig, ScenarioConfig, World


def lossless_world(seed=3):
    return World(
        ScenarioConfig(
            seed=seed,
            channel=ChannelConfig(base_loss_probability=0.0, loss_per_100m=0.0),
        )
    )


def build_chain(world, spacing=200.0, count=6, range_m=300.0):
    """A line of stationary vehicles, each reaching only its neighbors."""
    channel = WirelessChannel(world)
    vehicles = [Vehicle(position=Vec2(i * spacing, 0)) for i in range(count)]
    nodes = [VehicleNode(world, channel, v, radio_range_m=range_m) for v in vehicles]
    return channel, vehicles, nodes


class TestNetworkView:
    def test_position_lookup(self):
        world = lossless_world()
        channel, vehicles, nodes = build_chain(world)
        view = NetworkView(channel)
        assert view.position_of(nodes[0].node_id) == vehicles[0].position
        assert view.position_of("ghost") is None

    def test_neighbors(self):
        world = lossless_world()
        channel, vehicles, nodes = build_chain(world)
        view = NetworkView(channel)
        middle = view.neighbors(nodes[2].node_id)
        assert nodes[1].node_id in middle and nodes[3].node_id in middle
        assert nodes[5].node_id not in middle


class TestGreedyRouting:
    def test_multi_hop_delivery(self):
        world = lossless_world()
        channel, vehicles, nodes = build_chain(world)
        harness = RoutingHarness(world, channel, GreedyGeographicRouting(), nodes)
        record = harness.send(nodes[0].node_id, nodes[-1].node_id)
        world.run_for(5.0)
        assert record.delivered
        assert record.hop_count == 5  # chain of 6 = 5 hops
        assert record.latency_s > 0

    def test_direct_neighbor_one_hop(self):
        world = lossless_world()
        channel, vehicles, nodes = build_chain(world)
        harness = RoutingHarness(world, channel, GreedyGeographicRouting(), nodes)
        record = harness.send(nodes[0].node_id, nodes[1].node_id)
        world.run_for(2.0)
        assert record.delivered
        assert record.hop_count == 1

    def test_partition_fails_with_reason(self):
        world = lossless_world()
        channel, vehicles, nodes = build_chain(world, spacing=200.0, count=3)
        # An unreachable island.
        island_vehicle = Vehicle(position=Vec2(50_000, 0))
        island = VehicleNode(world, channel, island_vehicle, radio_range_m=300.0)
        harness = RoutingHarness(
            world, channel, GreedyGeographicRouting(), nodes + [island]
        )
        record = harness.send(nodes[0].node_id, island.node_id)
        world.run_for(5.0)
        assert not record.delivered
        assert record.drop_reason == "no_next_hop"

    def test_path_recorded(self):
        world = lossless_world()
        channel, vehicles, nodes = build_chain(world)
        harness = RoutingHarness(world, channel, GreedyGeographicRouting(), nodes)
        record = harness.send(nodes[0].node_id, nodes[3].node_id)
        world.run_for(5.0)
        assert record.path[-1] == nodes[3].node_id


class TestEpidemicRouting:
    def test_delivery_with_high_overhead(self):
        # Dense chain (each node hears 4 others) so flooding fans out.
        world = lossless_world()
        channel, vehicles, nodes = build_chain(world, spacing=100.0, count=8)
        harness = RoutingHarness(world, channel, EpidemicRouting(), nodes)
        record = harness.send(nodes[0].node_id, nodes[-1].node_id)
        world.run_for(5.0)
        assert record.delivered
        greedy_world = lossless_world()
        g_channel, g_vehicles, g_nodes = build_chain(
            greedy_world, spacing=100.0, count=8
        )
        g_harness = RoutingHarness(
            greedy_world, g_channel, GreedyGeographicRouting(), g_nodes
        )
        g_record = g_harness.send(g_nodes[0].node_id, g_nodes[-1].node_id)
        greedy_world.run_for(5.0)
        assert record.transmissions > g_record.transmissions

    def test_duplicate_suppression_bounds_transmissions(self):
        world = lossless_world()
        channel, vehicles, nodes = build_chain(world, spacing=50.0, count=8, range_m=300.0)
        harness = RoutingHarness(world, channel, EpidemicRouting(), nodes)
        harness.send(nodes[0].node_id, nodes[-1].node_id)
        world.run_for(5.0)
        # Each node forwards at most once: bounded by n * mean-degree.
        assert harness.stats.total_transmissions < 8 * 8

    def test_fanout_limit(self):
        protocol = EpidemicRouting(fanout_limit=2)
        world = lossless_world()
        channel, vehicles, nodes = build_chain(world, spacing=50.0, count=6)
        view = NetworkView(channel)
        from repro.net.messages import data_message

        hops = protocol.next_hops(
            nodes[2].node_id,
            nodes[5].node_id,
            data_message(nodes[2].node_id, nodes[5].node_id, 100, 0.0),
            view,
        )
        assert len(hops) <= 2


class TestMovingZoneRouting:
    def test_zone_formation_groups_co_moving(self):
        world = lossless_world()
        channel = WirelessChannel(world)
        eastbound = [
            Vehicle(position=Vec2(i * 100.0, 0), speed_mps=25, heading_rad=0.0)
            for i in range(4)
        ]
        westbound = [
            Vehicle(position=Vec2(i * 100.0, 10), speed_mps=25, heading_rad=3.14159)
            for i in range(4)
        ]
        _nodes = [VehicleNode(world, channel, v) for v in eastbound + westbound]
        protocol = MovingZoneRouting(zone_range_m=500)
        protocol.prepare(NetworkView(channel), eastbound + westbound)
        east_zones = {protocol.zone_index_of(v.vehicle_id) for v in eastbound}
        west_zones = {protocol.zone_index_of(v.vehicle_id) for v in westbound}
        assert east_zones.isdisjoint(west_zones)

    def test_delivery_across_zones(self):
        world = lossless_world()
        channel, vehicles, nodes = build_chain(world)
        protocol = MovingZoneRouting()
        harness = RoutingHarness(world, channel, protocol, nodes)
        harness.prepare(vehicles)
        record = harness.send(nodes[0].node_id, nodes[-1].node_id)
        world.run_for(5.0)
        assert record.delivered

    def test_refresh_counts_control_messages(self):
        world = lossless_world()
        channel, vehicles, nodes = build_chain(world)
        protocol = MovingZoneRouting()
        harness = RoutingHarness(world, channel, protocol, nodes)
        harness.prepare(vehicles)
        before = harness.stats.control_messages
        harness.refresh(vehicles)
        assert harness.stats.control_messages > before


class TestClusterRouting:
    def test_delivery(self):
        world = lossless_world()
        channel, vehicles, nodes = build_chain(world)
        protocol = ClusterRouting()
        harness = RoutingHarness(world, channel, protocol, nodes)
        harness.prepare(vehicles)
        record = harness.send(nodes[0].node_id, nodes[-1].node_id)
        world.run_for(5.0)
        assert record.delivered

    def test_head_lookup(self):
        world = lossless_world()
        channel, vehicles, nodes = build_chain(world, spacing=50.0, count=4)
        protocol = ClusterRouting()
        protocol.prepare(NetworkView(channel), vehicles)
        for vehicle in vehicles:
            assert protocol.head_of(vehicle.vehicle_id) is not None
        assert protocol.head_of("ghost") is None


class TestRoutingStats:
    def test_empty_stats(self):
        stats = RoutingStats()
        assert stats.pdr == 0.0
        assert stats.mean_hops == 0.0
        assert stats.mean_latency_s == 0.0
        assert stats.overhead_per_delivery == float("inf")

    def test_aggregates(self):
        world = lossless_world()
        channel, vehicles, nodes = build_chain(world)
        harness = RoutingHarness(world, channel, GreedyGeographicRouting(), nodes)
        for _ in range(5):
            harness.send(nodes[0].node_id, nodes[-1].node_id)
        world.run_for(10.0)
        stats = harness.stats
        assert stats.sent == 5
        assert stats.pdr == 1.0
        assert stats.mean_hops == pytest.approx(5.0)
        assert stats.total_transmissions == 25

    def test_ttl_drop(self):
        world = lossless_world()
        channel, vehicles, nodes = build_chain(world, count=10)
        harness = RoutingHarness(world, channel, GreedyGeographicRouting(), nodes)
        from repro.net.messages import data_message

        # Manually originate with a tiny TTL through the harness internals.
        message = data_message(
            nodes[0].node_id, nodes[-1].node_id, 100, world.now, ttl_hops=2
        )
        from repro.net.routing.base import DeliveryRecord

        record = DeliveryRecord(
            msg_id=message.msg_id,
            src_id=nodes[0].node_id,
            dst_id=nodes[-1].node_id,
            sent_at=world.now,
        )
        harness._records[message.msg_id] = record
        harness.stats.records.append(record)
        harness._forward(nodes[0].node_id, message, record)
        world.run_for(5.0)
        assert not record.delivered
        assert record.drop_reason == "ttl"


class TestCarryForwardRouting:
    def test_carries_across_a_partition(self):
        """A gap a greedy packet dies in is crossed by a moving carrier."""
        from repro.net.routing import CarryForwardRouting

        world = lossless_world()
        channel = WirelessChannel(world)
        # Source cluster, a 1 km gap, then the destination; one courier
        # vehicle drives from the source side across the gap.
        src_vehicle = Vehicle(position=Vec2(0, 0))
        courier = Vehicle(position=Vec2(100, 0), speed_mps=30.0, heading_rad=0.0)
        dst_vehicle = Vehicle(position=Vec2(1400, 0))
        nodes = [
            VehicleNode(world, channel, v, radio_range_m=300.0)
            for v in (src_vehicle, courier, dst_vehicle)
        ]

        def advance():
            courier.advance(0.5)

        world.engine.call_every(0.5, advance)

        greedy = RoutingHarness(world, channel, GreedyGeographicRouting(), nodes)
        greedy_record = greedy.send(nodes[0].node_id, nodes[2].node_id)
        carry = RoutingHarness(
            world, channel, CarryForwardRouting(max_hold_s=120.0), nodes
        )
        carry_record = carry.send(nodes[0].node_id, nodes[2].node_id)
        world.run_for(90.0)
        assert not greedy_record.delivered  # dies at the gap
        assert carry_record.delivered  # the courier carried it across
        assert carry_record.carries > 0
        assert carry_record.latency_s > 10.0  # carried at vehicle speed

    def test_hold_budget_expires(self):
        from repro.net.routing import CarryForwardRouting

        world = lossless_world()
        channel = WirelessChannel(world)
        stranded = Vehicle(position=Vec2(0, 0))  # never moves, never meets anyone
        dst = Vehicle(position=Vec2(50_000, 0))
        nodes = [VehicleNode(world, channel, v) for v in (stranded, dst)]
        harness = RoutingHarness(
            world, channel, CarryForwardRouting(max_hold_s=5.0), nodes
        )
        record = harness.send(nodes[0].node_id, nodes[1].node_id)
        world.run_for(30.0)
        assert not record.delivered
        assert record.drop_reason == "carry_timeout"
        assert record.carries >= 4

    def test_invalid_config(self):
        from repro.errors import ConfigurationError
        from repro.net.routing import CarryForwardRouting

        with pytest.raises(ConfigurationError):
            CarryForwardRouting(hold_retry_interval_s=0.0)
        with pytest.raises(ConfigurationError):
            CarryForwardRouting(hold_retry_interval_s=5.0, max_hold_s=1.0)

    def test_behaves_like_greedy_when_connected(self):
        from repro.net.routing import CarryForwardRouting

        world = lossless_world()
        channel, vehicles, nodes = build_chain(world)
        harness = RoutingHarness(world, channel, CarryForwardRouting(), nodes)
        record = harness.send(nodes[0].node_id, nodes[-1].node_id)
        world.run_for(5.0)
        assert record.delivered
        assert record.carries == 0
