"""Tests for the four authentication protocol families (§IV.B / Fig. 5)."""

from __future__ import annotations

import pytest

from repro.security import TrustedAuthority
from repro.security.protocols import (
    GroupAuthProtocol,
    HybridAuthProtocol,
    LinkProfile,
    PseudonymAuthProtocol,
    RandomizedAuthProtocol,
)


@pytest.fixture
def authority():
    return TrustedAuthority()


def enroll_pair(protocol, prefix="car"):
    a, b = f"{prefix}-a", f"{prefix}-b"
    protocol.enroll(a, now=0.0)
    protocol.enroll(b, now=0.0)
    return a, b


class TestPseudonymProtocol:
    def test_successful_handshake(self, authority):
        protocol = PseudonymAuthProtocol(authority)
        a, b = enroll_pair(protocol)
        result = protocol.mutual_authenticate(a, b, now=1.0)
        assert result.success
        assert result.latency_s > 0
        assert result.bytes_on_air > 0
        assert result.infra_messages == 0  # pool is pre-loaded

    def test_unenrolled_rejected(self, authority):
        protocol = PseudonymAuthProtocol(authority)
        protocol.enroll("car-a")
        result = protocol.mutual_authenticate("car-a", "stranger", now=1.0)
        assert not result.success
        assert "not enrolled" in result.reason

    def test_revoked_vehicle_rejected(self, authority):
        protocol = PseudonymAuthProtocol(authority)
        a, b = enroll_pair(protocol)
        authority.revoke_vehicle(b)
        result = protocol.mutual_authenticate(a, b, now=1.0)
        assert not result.success

    def test_crl_growth_slows_handshake(self, authority):
        protocol = PseudonymAuthProtocol(authority)
        a, b = enroll_pair(protocol)
        fast = protocol.mutual_authenticate(a, b, now=1.0).latency_s
        for index in range(20_000):
            authority.crl.revoke(f"revoked-{index}")
        slow = protocol.mutual_authenticate(a, b, now=2.0).latency_s
        assert slow > fast * 2

    def test_pool_exhaustion_triggers_refill(self, authority):
        protocol = PseudonymAuthProtocol(authority, pool_size=2, change_interval_s=1.0)
        a, b = enroll_pair(protocol)
        # Burn through the pools by rotating identities.
        for t in range(10):
            protocol.on_air_identity(a, float(t * 2))
            protocol.on_air_identity(b, float(t * 2))
        result = protocol.mutual_authenticate(a, b, now=30.0)
        assert result.success
        assert protocol.refills > 0

    def test_pool_exhaustion_without_infra_fails(self, authority):
        protocol = PseudonymAuthProtocol(authority, pool_size=2, change_interval_s=1.0)
        a, b = enroll_pair(protocol)
        for t in range(10):
            protocol.on_air_identity(a, float(t * 2))
        result = protocol.mutual_authenticate(a, b, now=30.0, infra_available=False)
        assert not result.success
        assert "no infra" in result.reason

    def test_on_air_identity_rotates(self, authority):
        protocol = PseudonymAuthProtocol(authority, change_interval_s=10.0)
        protocol.enroll("car-a")
        early = protocol.on_air_identity("car-a", 0.0)
        late = protocol.on_air_identity("car-a", 50.0)
        assert early != late

    def test_message_overhead_includes_certificate(self, authority):
        protocol = PseudonymAuthProtocol(authority)
        cost = protocol.message_auth_cost()
        assert cost.overhead_bytes == (
            authority.costs.signature_bytes + authority.costs.certificate_bytes
        )


class TestGroupProtocol:
    def test_successful_handshake(self, authority):
        protocol = GroupAuthProtocol(authority)
        a, b = enroll_pair(protocol)
        result = protocol.mutual_authenticate(a, b, now=1.0)
        assert result.success

    def test_handshake_slower_than_pseudonym(self, authority):
        group = GroupAuthProtocol(authority)
        pseudonym = PseudonymAuthProtocol(authority)
        ga, gb = enroll_pair(group, "g")
        pa, pb = enroll_pair(pseudonym, "p")
        group_latency = group.mutual_authenticate(ga, gb, now=1.0).latency_s
        pseudonym_latency = pseudonym.mutual_authenticate(pa, pb, now=1.0).latency_s
        assert group_latency > pseudonym_latency

    def test_on_air_identity_is_group_tag(self, authority):
        protocol = GroupAuthProtocol(authority, group_id="fleet-1")
        a, b = enroll_pair(protocol)
        assert protocol.on_air_identity(a, 0.0) == protocol.on_air_identity(b, 0.0)
        assert "fleet-1" in protocol.on_air_identity(a, 0.0)

    def test_stale_key_requires_infrastructure(self, authority):
        protocol = GroupAuthProtocol(authority, rekey_interval_s=10.0)
        a, b = enroll_pair(protocol)
        result = protocol.mutual_authenticate(a, b, now=100.0, infra_available=False)
        assert not result.success
        assert "no infrastructure" in result.reason

    def test_stale_key_rekeys_via_infrastructure(self, authority):
        protocol = GroupAuthProtocol(authority, rekey_interval_s=10.0)
        a, b = enroll_pair(protocol)
        result = protocol.mutual_authenticate(a, b, now=100.0, infra_available=True)
        assert result.success
        assert result.infra_messages > 0
        assert protocol.rekeys == 2

    def test_coordinator_can_identify(self, authority):
        assert GroupAuthProtocol(authority).coordinator_can_identify()

    def test_no_crl_scan_in_message_cost(self, authority):
        for index in range(10_000):
            authority.crl.revoke(f"x-{index}")
        group_cost = GroupAuthProtocol(authority).message_auth_cost()
        assert group_cost.verify_cost_s == authority.costs.group_verify_s


class TestHybridProtocol:
    def test_first_contact_then_fast_path(self, authority):
        protocol = HybridAuthProtocol(authority)
        a, b = enroll_pair(protocol)
        first = protocol.mutual_authenticate(a, b, now=1.0)
        second = protocol.mutual_authenticate(a, b, now=2.0)
        assert first.success and second.success
        assert second.latency_s < first.latency_s
        assert protocol.full_handshakes == 1
        assert protocol.session_hits == 1

    def test_session_expires(self, authority):
        protocol = HybridAuthProtocol(authority, session_lifetime_s=10.0)
        a, b = enroll_pair(protocol)
        protocol.mutual_authenticate(a, b, now=1.0)
        protocol.mutual_authenticate(a, b, now=100.0)
        assert protocol.full_handshakes == 2

    def test_no_crl_dependence(self, authority):
        protocol = HybridAuthProtocol(authority)
        a, b = enroll_pair(protocol)
        before = protocol.mutual_authenticate(a, b, now=1.0).latency_s
        for index in range(20_000):
            authority.crl.revoke(f"r-{index}")
        protocol2 = HybridAuthProtocol(authority)
        c, d = enroll_pair(protocol2, "cd")
        after = protocol2.mutual_authenticate(c, d, now=1.0).latency_s
        assert after == pytest.approx(before, rel=0.01)

    def test_fast_path_message_cost_is_hmac(self, authority):
        protocol = HybridAuthProtocol(authority)
        cost = protocol.message_auth_cost(session_established=True)
        assert cost.overhead_bytes == authority.costs.hmac_bytes

    def test_session_tracking_is_symmetric(self, authority):
        protocol = HybridAuthProtocol(authority)
        a, b = enroll_pair(protocol)
        protocol.mutual_authenticate(a, b, now=1.0)
        assert protocol.has_session(b, a, now=2.0)


class TestRandomizedProtocol:
    def test_successful_handshake(self, authority):
        protocol = RandomizedAuthProtocol(authority)
        a, b = enroll_pair(protocol)
        result = protocol.mutual_authenticate(a, b, now=1.0)
        assert result.success
        assert result.infra_messages == 0

    def test_cheapest_handshake(self, authority):
        randomized = RandomizedAuthProtocol(authority)
        pseudonym = PseudonymAuthProtocol(authority)
        group = GroupAuthProtocol(authority)
        ra, rb = enroll_pair(randomized, "r")
        pa, pb = enroll_pair(pseudonym, "p")
        ga, gb = enroll_pair(group, "g")
        link = LinkProfile()
        r_latency = randomized.mutual_authenticate(ra, rb, 1.0, link).latency_s
        p_latency = pseudonym.mutual_authenticate(pa, pb, 1.0, link).latency_s
        g_latency = group.mutual_authenticate(ga, gb, 1.0, link).latency_s
        assert r_latency < p_latency < g_latency

    def test_identity_changes_per_epoch(self, authority):
        protocol = RandomizedAuthProtocol(authority, identity_epoch_s=30.0)
        protocol.enroll("car-a")
        assert protocol.on_air_identity("car-a", 0.0) != protocol.on_air_identity(
            "car-a", 31.0
        )
        assert protocol.on_air_identity("car-a", 0.0) == protocol.on_air_identity(
            "car-a", 29.0
        )

    def test_self_generated_identities_need_no_infra(self, authority):
        protocol = RandomizedAuthProtocol(authority)
        a, b = enroll_pair(protocol)
        result = protocol.mutual_authenticate(a, b, now=1.0, infra_available=False)
        assert result.success

    def test_revoked_vehicle_caught_via_bloom(self, authority):
        protocol = RandomizedAuthProtocol(authority)
        a, b = enroll_pair(protocol)
        protocol.revoke(b)
        result = protocol.mutual_authenticate(a, b, now=1.0, infra_available=True)
        assert not result.success
        assert "revoked" in result.reason

    def test_revoked_flag_without_infra_fails_closed(self, authority):
        protocol = RandomizedAuthProtocol(authority)
        a, b = enroll_pair(protocol)
        protocol.revoke(b)
        result = protocol.mutual_authenticate(a, b, now=1.0, infra_available=False)
        assert not result.success

    def test_enrollment_single_round_trip(self, authority):
        protocol = RandomizedAuthProtocol(authority)
        receipt = protocol.enroll("car-x", now=0.0)
        assert receipt.infra_messages == 2


class TestFig5Shape:
    """The qualitative orderings of the paper's Fig. 5 comparison."""

    def test_message_overhead_ordering(self, authority):
        pseudonym = PseudonymAuthProtocol(authority)
        group = GroupAuthProtocol(authority)
        hybrid = HybridAuthProtocol(authority)
        randomized = RandomizedAuthProtocol(authority)
        # Pseudonym per-message overhead (cert+sig) is the largest among
        # certificate bearers; session-based protocols are far cheaper.
        assert (
            pseudonym.message_auth_cost().overhead_bytes
            > hybrid.message_auth_cost().overhead_bytes
        )
        assert (
            group.message_auth_cost().overhead_bytes
            > randomized.message_auth_cost().overhead_bytes
        )

    def test_infrastructure_reliance_ordering(self, authority):
        # Group-based cannot handshake with stale keys and no RSU;
        # randomized always can.
        group = GroupAuthProtocol(authority, rekey_interval_s=1.0)
        randomized = RandomizedAuthProtocol(authority)
        ga, gb = enroll_pair(group, "g")
        ra, rb = enroll_pair(randomized, "r")
        assert not group.mutual_authenticate(ga, gb, now=100.0, infra_available=False).success
        assert randomized.mutual_authenticate(ra, rb, now=100.0, infra_available=False).success

    def test_no_protocol_linkable_by_design(self, authority):
        for protocol in (
            PseudonymAuthProtocol(authority),
            GroupAuthProtocol(authority),
            HybridAuthProtocol(authority),
            RandomizedAuthProtocol(authority),
        ):
            assert not protocol.identity_linkable_by_peer()
