"""Cross-module property-based tests (hypothesis).

These pin the framework's global invariants: determinism from seeds,
conservation laws in membership and replication, monotonicity of cost
models, and algebraic properties of the evidence-fusion machinery.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry import Vec2
from repro.mobility import Vehicle, link_lifetime
from repro.core import (
    FileStore,
    MembershipManager,
    ReplicationManager,
    ResourceOffer,
    ResourcePool,
    StoredFile,
    Task,
)
from repro.security.access import (
    AccessContext,
    AccessRequest,
    Policy,
    PolicyDecisionPoint,
    VehicleRole,
    permit,
)
from repro.sim import Engine, ScenarioConfig, SeededRng, World
from repro.trust.validators.dempster_shafer import MassFunction, VACUOUS


# ---------------------------------------------------------------------------
# Determinism
# ---------------------------------------------------------------------------


class TestDeterminism:
    @given(st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=20, deadline=None)
    def test_rng_streams_replay(self, seed):
        a = SeededRng(seed, "stream")
        b = SeededRng(seed, "stream")
        assert [a.random() for _ in range(20)] == [b.random() for _ in range(20)]

    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=10, deadline=None)
    def test_engine_event_order_is_stable(self, seed):
        def run():
            engine = Engine()
            rng = SeededRng(seed, "order")
            fired = []
            for index in range(30):
                engine.schedule(
                    rng.uniform(0.0, 10.0), lambda i=index: fired.append(i)
                )
            engine.run_until(10.0)
            return fired

        assert run() == run()

    @given(st.integers(min_value=1, max_value=100))
    @settings(max_examples=10, deadline=None)
    def test_world_simulation_replays(self, seed):
        def run():
            world = World(ScenarioConfig(seed=seed))
            from repro.mobility import HighwayModel

            model = HighwayModel(world)
            model.populate(8)
            model.start()
            world.run_for(15.0)
            return [round(v.position.x, 9) for v in model.vehicles]

        assert run() == run()


# ---------------------------------------------------------------------------
# Conservation laws
# ---------------------------------------------------------------------------


member_lists = st.lists(
    st.integers(min_value=0, max_value=29), min_size=2, max_size=12, unique=True
)


class TestMembershipConservation:
    @given(member_lists)
    @settings(max_examples=30, deadline=None)
    def test_split_conserves_members(self, indices):
        manager = MembershipManager("vc", max_members=64)
        ids = [f"m{i}" for i in indices]
        for member_id in ids:
            manager.join(member_id, 0.0)
        to_split = ids[: len(ids) // 2]
        if not to_split:
            return
        spawned = manager.split(to_split, "vc2", 1.0)
        assert sorted(manager.member_ids() + spawned.member_ids()) == sorted(ids)

    @given(member_lists)
    @settings(max_examples=30, deadline=None)
    def test_absorb_conserves_members(self, indices):
        ids = [f"m{i}" for i in indices]
        half = len(ids) // 2
        alpha = MembershipManager("a", max_members=64)
        beta = MembershipManager("b", max_members=64)
        for member_id in ids[:half]:
            alpha.join(member_id, 0.0)
        for member_id in ids[half:]:
            beta.join(member_id, 0.0)
        alpha.absorb(beta, 1.0)
        assert sorted(alpha.member_ids() + beta.member_ids()) == sorted(ids)


class TestResourceConservation:
    @given(
        st.lists(
            st.floats(min_value=10.0, max_value=1000.0), min_size=1, max_size=8
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_reserve_release_round_trip(self, amounts):
        pool = ResourcePool()
        pool.add_offer(ResourceOffer("v", sum(amounts) + 1.0, 10**9, 1e6))
        reservations = [pool.reserve("v", amount) for amount in amounts]
        for reservation in reservations:
            pool.release(reservation)
        assert pool.free_mips("v") == pytest.approx(sum(amounts) + 1.0)
        assert pool.utilization() == pytest.approx(0.0, abs=1e-9)


class TestReplicationInvariants:
    @given(
        st.integers(min_value=1, max_value=8),
        st.integers(min_value=1, max_value=12),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_replicas_never_exceed_members(self, replicas, members, seed):
        manager = ReplicationManager(SeededRng(seed, "p"), repair=False)
        for index in range(members):
            manager.add_store(FileStore(f"v{index}", 10**6))
        placed = manager.store_file(StoredFile("f", 100, target_replicas=replicas))
        assert placed == min(replicas, members)
        assert manager.replica_count("f") == placed

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_repair_restores_target_while_possible(self, seed):
        rng = SeededRng(seed, "repair")
        manager = ReplicationManager(rng.fork("m"), repair=True)
        for index in range(6):
            manager.add_store(FileStore(f"v{index}", 10**6))
        manager.store_file(StoredFile("f", 100, target_replicas=3))
        # Remove members one at a time; while >=3 members remain the
        # replica count must return to target.
        members = manager.member_ids()
        rng.shuffle(members)
        for removed, member in enumerate(members[:3], start=1):
            manager.remove_store(member)
            remaining = 6 - removed
            expected = min(3, remaining)
            assert manager.replica_count("f") == expected


# ---------------------------------------------------------------------------
# Cost-model monotonicity
# ---------------------------------------------------------------------------


class TestCostMonotonicity:
    @given(st.floats(min_value=1.0, max_value=1e6), st.floats(min_value=1.0, max_value=1e4))
    @settings(max_examples=30, deadline=None)
    def test_task_runtime_monotone(self, work, mips):
        task = Task(work_mi=work)
        assert task.runtime_on(mips) >= task.runtime_on(mips * 2)

    @given(
        st.integers(min_value=1, max_value=400),
        st.integers(min_value=1, max_value=400),
    )
    @settings(max_examples=20, deadline=None)
    def test_pdp_latency_monotone_in_rules(self, small, extra):
        def build(count):
            policy = Policy(f"p{count}")
            for index in range(count):
                policy.add_rule(permit(f"r{index}", ["read"], f"never-{index}"))
            return policy

        pdp = PolicyDecisionPoint()
        request = AccessRequest(
            AccessContext(requester="x", role=VehicleRole.MEMBER), "read", "nomatch"
        )
        latency_small = pdp.evaluate(build(small), request).latency_s
        latency_large = pdp.evaluate(build(small + extra), request).latency_s
        assert latency_large >= latency_small


# ---------------------------------------------------------------------------
# Evidence-fusion algebra
# ---------------------------------------------------------------------------


def masses():
    return st.tuples(
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.0, max_value=1.0),
    ).map(
        lambda pair: MassFunction(
            pair[0] * (1 - pair[1]),
            pair[1] * (1 - pair[0] * (1 - pair[1])) if pair[0] * (1 - pair[1]) + pair[1] <= 1 else 0.0,
            max(0.0, 1.0 - pair[0] * (1 - pair[1]) - (pair[1] * (1 - pair[0] * (1 - pair[1])) if pair[0] * (1 - pair[1]) + pair[1] <= 1 else 0.0)),
        )
    )


def simple_masses():
    """Mass functions committing to one side plus ignorance."""
    return st.tuples(
        st.booleans(), st.floats(min_value=0.0, max_value=0.95)
    ).map(
        lambda pair: MassFunction(pair[1], 0.0, 1.0 - pair[1])
        if pair[0]
        else MassFunction(0.0, pair[1], 1.0 - pair[1])
    )


class TestDempsterShaferAlgebra:
    @given(simple_masses(), simple_masses())
    @settings(max_examples=50, deadline=None)
    def test_combination_commutative(self, a, b):
        ab = a.combine(b)
        ba = b.combine(a)
        assert ab.event == pytest.approx(ba.event, abs=1e-9)
        assert ab.no_event == pytest.approx(ba.no_event, abs=1e-9)

    @given(simple_masses())
    @settings(max_examples=50, deadline=None)
    def test_vacuous_is_identity(self, a):
        combined = a.combine(VACUOUS)
        assert combined.event == pytest.approx(a.event, abs=1e-9)
        assert combined.no_event == pytest.approx(a.no_event, abs=1e-9)

    @given(simple_masses(), simple_masses())
    @settings(max_examples=50, deadline=None)
    def test_combination_normalized(self, a, b):
        combined = a.combine(b)
        total = combined.event + combined.no_event + combined.unknown
        assert total == pytest.approx(1.0, abs=1e-9)

    @given(simple_masses())
    @settings(max_examples=50, deadline=None)
    def test_belief_bounded_by_plausibility(self, a):
        assert a.belief_event <= a.plausibility_event + 1e-12


# ---------------------------------------------------------------------------
# Kinematics
# ---------------------------------------------------------------------------


class TestLinkLifetimeProperties:
    @given(
        st.floats(min_value=-200, max_value=200),
        st.floats(min_value=0, max_value=40),
        st.floats(min_value=-math.pi, max_value=math.pi),
        st.floats(min_value=0, max_value=40),
        st.floats(min_value=-math.pi, max_value=math.pi),
    )
    @settings(max_examples=60, deadline=None)
    def test_lifetime_consistent_with_simulation(self, gap, speed_a, heading_a, speed_b, heading_b):
        """At the analytic exit time, the pair really is at the range edge."""
        a = Vehicle(position=Vec2(0, 0), speed_mps=speed_a, heading_rad=heading_a)
        b = Vehicle(position=Vec2(gap, 0), speed_mps=speed_b, heading_rad=heading_b)
        if a.relative_speed(b) < 1e-3:
            return  # near-zero relative motion: quadratic is ill-conditioned
        range_m = 300.0
        lifetime = link_lifetime(a, b, range_m)
        if lifetime == 0.0 or math.isinf(lifetime):
            return
        position_a = a.position + a.velocity * lifetime
        position_b = b.position + b.velocity * lifetime
        assert position_a.distance_to(position_b) == pytest.approx(range_m, rel=1e-4)

    @given(st.floats(min_value=0, max_value=250))
    @settings(max_examples=30, deadline=None)
    def test_symmetry(self, gap):
        a = Vehicle(position=Vec2(0, 0), speed_mps=20, heading_rad=0)
        b = Vehicle(position=Vec2(gap, 0), speed_mps=10, heading_rad=math.pi)
        assert link_lifetime(a, b, 300) == pytest.approx(link_lifetime(b, a, 300))
