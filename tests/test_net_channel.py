"""Tests for the wireless channel, nodes and messages."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError, NetworkError
from repro.geometry import Vec2
from repro.mobility import Vehicle
from repro.net import (
    BROADCAST,
    FixedNode,
    InterceptVerdict,
    Message,
    MessageKind,
    SecurityEnvelope,
    VehicleNode,
    WirelessChannel,
    data_message,
    hello_message,
)
from repro.net.channel import Frame
from repro.sim import ChannelConfig, ScenarioConfig, World


def make_world(loss: float = 0.0) -> World:
    channel_config = ChannelConfig(base_loss_probability=loss, loss_per_100m=0.0)
    return World(ScenarioConfig(seed=7, channel=channel_config))


def vehicle_node(world, channel, x, y, range_m=300.0):
    vehicle = Vehicle(position=Vec2(x, y))
    return VehicleNode(world, channel, vehicle, radio_range_m=range_m)


class TestMessage:
    def test_broadcast_detection(self):
        message = hello_message("a", (0, 0), 10.0, 0.0, 0.0)
        assert message.is_broadcast()
        assert message.dst == BROADCAST

    def test_forwarded_by_extends_path_and_decrements_ttl(self):
        message = data_message("a", "b", 100, 0.0, ttl_hops=3)
        forwarded = message.forwarded_by("relay")
        assert forwarded.path == ("relay",)
        assert forwarded.ttl_hops == 2
        assert message.path == ()  # original untouched

    def test_expired(self):
        message = data_message("a", "b", 100, 0.0, ttl_hops=0)
        assert message.expired()

    def test_total_bytes_includes_envelope(self):
        message = data_message("a", "b", 100, 0.0)
        enveloped = message.with_envelope(
            SecurityEnvelope(claimed_identity="pn-1", extra_bytes=64)
        )
        assert enveloped.total_bytes == 164

    def test_with_payload_merges(self):
        message = data_message("a", "b", 100, 0.0, payload={"x": 1})
        updated = message.with_payload(y=2)
        assert updated.payload == {"x": 1, "y": 2}
        assert message.payload == {"x": 1}

    def test_invalid_size_raises(self):
        with pytest.raises(ConfigurationError):
            Message(kind=MessageKind.DATA, src="a", dst="b", size_bytes=0)

    def test_unique_ids(self):
        a = data_message("a", "b", 10, 0.0)
        b = data_message("a", "b", 10, 0.0)
        assert a.msg_id != b.msg_id


class TestChannelTopology:
    def test_attach_detach(self):
        world = make_world()
        channel = WirelessChannel(world)
        node = vehicle_node(world, channel, 0, 0)
        assert channel.is_attached(node.node_id)
        channel.detach(node.node_id)
        assert not channel.is_attached(node.node_id)

    def test_double_attach_raises(self):
        world = make_world()
        channel = WirelessChannel(world)
        node = vehicle_node(world, channel, 0, 0)
        with pytest.raises(NetworkError):
            channel.attach(node)

    def test_unknown_node_raises(self):
        world = make_world()
        channel = WirelessChannel(world)
        with pytest.raises(NetworkError):
            channel.node("ghost")

    def test_neighbors_respect_range(self):
        world = make_world()
        channel = WirelessChannel(world)
        a = vehicle_node(world, channel, 0, 0, range_m=100)
        b = vehicle_node(world, channel, 50, 0)
        c = vehicle_node(world, channel, 500, 0)
        neighbor_ids = [n.node_id for n in channel.neighbors_of(a.node_id)]
        assert b.node_id in neighbor_ids
        assert c.node_id not in neighbor_ids

    def test_range_asymmetry(self):
        world = make_world()
        channel = WirelessChannel(world)
        strong = vehicle_node(world, channel, 0, 0, range_m=1000)
        weak = vehicle_node(world, channel, 500, 0, range_m=100)
        assert channel.in_range(strong, weak)
        assert not channel.in_range(weak, strong)

    def test_moving_vehicle_changes_topology(self):
        world = make_world()
        channel = WirelessChannel(world)
        a = vehicle_node(world, channel, 0, 0, range_m=100)
        b = vehicle_node(world, channel, 50, 0, range_m=100)
        assert channel.neighbor_count(a.node_id) == 1
        b.vehicle.position = Vec2(1000, 0)
        assert channel.neighbor_count(a.node_id) == 0


class TestDelivery:
    def test_unicast_delivers_in_range(self):
        world = make_world()
        channel = WirelessChannel(world)
        a = vehicle_node(world, channel, 0, 0)
        b = vehicle_node(world, channel, 100, 0)
        received = []
        b.on(MessageKind.DATA, lambda msg, frm: received.append((msg, frm)))
        assert a.send(b.node_id, data_message(a.node_id, b.node_id, 100, world.now))
        world.run_for(1.0)
        assert len(received) == 1
        assert received[0][1] == a.node_id

    def test_unicast_out_of_range_returns_false(self):
        world = make_world()
        channel = WirelessChannel(world)
        a = vehicle_node(world, channel, 0, 0, range_m=100)
        b = vehicle_node(world, channel, 5000, 0)
        assert not a.send(b.node_id, data_message(a.node_id, b.node_id, 100, 0.0))

    def test_delivery_has_positive_latency(self):
        world = make_world()
        channel = WirelessChannel(world)
        a = vehicle_node(world, channel, 0, 0)
        b = vehicle_node(world, channel, 100, 0)
        times = []
        b.on(MessageKind.DATA, lambda msg, frm: times.append(world.now))
        a.send(b.node_id, data_message(a.node_id, b.node_id, 100, world.now))
        assert not times, "delivery must not be synchronous"
        world.run_for(1.0)
        assert times and times[0] > 0.0

    def test_larger_messages_take_longer(self):
        world = make_world()
        channel = WirelessChannel(world)
        small = channel.latency(100, 100, 0)
        large = channel.latency(100, 100_000, 0)
        assert large > small

    def test_contention_raises_latency(self):
        world = make_world()
        channel = WirelessChannel(world)
        quiet = channel.latency(100, 500, 0)
        crowded = channel.latency(100, 500, 50)
        assert crowded > quiet

    def test_broadcast_reaches_all_in_range(self):
        world = make_world()
        channel = WirelessChannel(world)
        center = vehicle_node(world, channel, 0, 0)
        near = [vehicle_node(world, channel, 50 * (i + 1), 0) for i in range(3)]
        far = vehicle_node(world, channel, 5000, 0)
        counts = {"n": 0}
        for node in near + [far]:
            node.on(MessageKind.HELLO, lambda msg, frm: counts.__setitem__("n", counts["n"] + 1))
        receivers = center.broadcast(hello_message(center.node_id, (0, 0), 0, 0, 0.0))
        world.run_for(1.0)
        assert receivers == 3
        assert counts["n"] == 3

    def test_lossy_channel_drops_frames(self):
        world = make_world(loss=0.5)
        channel = WirelessChannel(world)
        a = vehicle_node(world, channel, 0, 0)
        b = vehicle_node(world, channel, 10, 0)
        received = []
        b.on(MessageKind.DATA, lambda msg, frm: received.append(msg))
        for _ in range(200):
            a.send(b.node_id, data_message(a.node_id, b.node_id, 100, world.now))
        world.run_for(5.0)
        assert 40 < len(received) < 160

    def test_offline_node_neither_sends_nor_receives(self):
        world = make_world()
        channel = WirelessChannel(world)
        a = vehicle_node(world, channel, 0, 0)
        b = vehicle_node(world, channel, 50, 0)
        b.go_offline()
        received = []
        b.on(MessageKind.DATA, lambda msg, frm: received.append(msg))
        a.send(b.node_id, data_message(a.node_id, b.node_id, 100, world.now))
        world.run_for(1.0)
        assert received == []
        assert b.broadcast(hello_message(b.node_id, (0, 0), 0, 0, 0.0)) == 0
        b.go_online()
        a.send(b.node_id, data_message(a.node_id, b.node_id, 100, world.now))
        world.run_for(1.0)
        assert len(received) == 1

    def test_detached_destination_counted(self):
        world = make_world()
        channel = WirelessChannel(world)
        a = vehicle_node(world, channel, 0, 0)
        b = vehicle_node(world, channel, 50, 0)
        a.send(b.node_id, data_message(a.node_id, b.node_id, 100, world.now))
        channel.detach(b.node_id)
        world.run_for(1.0)
        assert world.metrics.counter("channel/frames_to_departed") == 1


class TestInterceptors:
    def _pair(self):
        world = make_world()
        channel = WirelessChannel(world)
        a = vehicle_node(world, channel, 0, 0)
        b = vehicle_node(world, channel, 50, 0)
        received = []
        b.on(MessageKind.DATA, lambda msg, frm: received.append(msg))
        return world, channel, a, b, received

    def test_drop_interceptor(self):
        world, channel, a, b, received = self._pair()
        channel.add_interceptor(lambda frame: InterceptVerdict.drop())
        a.send(b.node_id, data_message(a.node_id, b.node_id, 100, world.now))
        world.run_for(1.0)
        assert received == []
        assert world.metrics.counter("channel/frames_suppressed") == 1

    def test_delay_interceptor(self):
        world, channel, a, b, received = self._pair()
        channel.add_interceptor(lambda frame: InterceptVerdict.delay(2.0))
        a.send(b.node_id, data_message(a.node_id, b.node_id, 100, world.now))
        world.run_for(1.0)
        assert received == []
        world.run_for(2.0)
        assert len(received) == 1

    def test_replace_interceptor(self):
        world, channel, a, b, received = self._pair()
        fake = data_message(a.node_id, b.node_id, 100, 0.0, payload={"evil": True})
        channel.add_interceptor(lambda frame: InterceptVerdict.replace(fake))
        a.send(b.node_id, data_message(a.node_id, b.node_id, 100, world.now))
        world.run_for(1.0)
        assert received[0].payload == {"evil": True}

    def test_remove_interceptor_restores_flow(self):
        world, channel, a, b, received = self._pair()
        interceptor = lambda frame: InterceptVerdict.drop()
        channel.add_interceptor(interceptor)
        channel.remove_interceptor(interceptor)
        a.send(b.node_id, data_message(a.node_id, b.node_id, 100, world.now))
        world.run_for(1.0)
        assert len(received) == 1


class TestTaps:
    def test_tap_hears_nearby_frames(self):
        world = make_world()
        channel = WirelessChannel(world)
        a = vehicle_node(world, channel, 0, 0)
        b = vehicle_node(world, channel, 50, 0)

        class Tap:
            position = Vec2(10, 0)
            listen_range_m = 300.0
            frames = []

            def on_frame(self, frame: Frame) -> None:
                self.frames.append(frame)

        tap = Tap()
        channel.add_tap(tap)
        a.send(b.node_id, data_message(a.node_id, b.node_id, 100, world.now))
        assert len(tap.frames) == 1

    def test_distant_tap_hears_nothing(self):
        world = make_world()
        channel = WirelessChannel(world)
        a = vehicle_node(world, channel, 0, 0)
        b = vehicle_node(world, channel, 50, 0)

        class Tap:
            position = Vec2(10_000, 0)
            listen_range_m = 300.0
            frames = []

            def on_frame(self, frame: Frame) -> None:
                self.frames.append(frame)

        channel.add_tap(Tap())
        a.send(b.node_id, data_message(a.node_id, b.node_id, 100, world.now))
        assert Tap.frames == []


class TestLossProbabilityClamp:
    def test_loss_clamped_to_non_negative(self):
        world = make_world()
        channel = WirelessChannel(world)
        # Forge a config that slipped past validation (e.g. built by
        # mutation in older code): the channel must still clamp.
        object.__setattr__(channel.config, "base_loss_probability", -0.5)
        assert channel._loss_probability(0.0) == 0.0
        assert channel._loss_probability(100.0) == 0.0

    def test_loss_clamped_to_upper_bound(self):
        world = World(ScenarioConfig(seed=7))  # default lossy channel
        channel = WirelessChannel(world)
        assert channel._loss_probability(1e9) == 0.95


class TestSpatialIndexRegression:
    """The index swap must not change any seeded channel metric."""

    def _beacon_scene(self, use_index):
        from repro.net import BeaconService

        world = World(
            ScenarioConfig(
                seed=314,
                channel=ChannelConfig(base_loss_probability=0.05, loss_per_100m=0.01),
            )
        )
        channel = WirelessChannel(world, use_spatial_index=use_index)
        nodes = [
            VehicleNode(
                world,
                channel,
                Vehicle(
                    vehicle_id=f"r{i}",
                    position=Vec2((i % 6) * 120.0, (i // 6) * 120.0),
                    speed_mps=20.0,
                ),
            )
            for i in range(18)
        ]
        for node in nodes:
            BeaconService(world, node).start()
        # Direct position churn between event batches, as mobility does.
        for step in range(4):
            world.run_for(2.0)
            for index, node in enumerate(nodes):
                node.vehicle.position = node.vehicle.position + Vec2(
                    10.0 * ((index % 3) - 1), 5.0
                )
        world.run_for(2.0)
        return world.metrics

    def test_latency_metrics_unchanged_by_index_and_contention_fix(self):
        indexed = self._beacon_scene(True)
        legacy = self._beacon_scene(False)
        assert indexed.counter("channel/frames_delivered") == legacy.counter(
            "channel/frames_delivered"
        )
        assert indexed.counter("channel/frames_lost") == legacy.counter(
            "channel/frames_lost"
        )
        # Byte-identical latency samples: same receivers, same contention
        # term (computed once per frame vs once per receiver), same RNG.
        assert indexed.samples("channel/delivery_latency_s") == legacy.samples(
            "channel/delivery_latency_s"
        )
        assert indexed.samples("channel/delivery_latency_s")  # non-trivial scene

    def test_broadcast_computes_contention_once_per_frame(self):
        world = make_world()
        channel = WirelessChannel(world)
        center = vehicle_node(world, channel, 0, 0)
        for i in range(5):
            vehicle_node(world, channel, 40.0 * (i + 1), 0)
        calls = {"n": 0}
        original = channel.neighbor_count

        def counting(node_id):
            calls["n"] += 1
            return original(node_id)

        channel.neighbor_count = counting
        receivers = channel.broadcast(
            center.node_id, hello_message(center.node_id, (0, 0), 0, 0, 0.0)
        )
        assert receivers == 5
        # The contention term is passed down from the receiver set; no
        # per-receiver recomputation of the source's neighbor scan.
        assert calls["n"] == 0


class TestFixedNode:
    def test_position_is_static(self):
        world = make_world()
        channel = WirelessChannel(world)
        node = FixedNode(world, channel, "anchor", Vec2(5, 5), 100.0)
        assert node.position == Vec2(5, 5)

    def test_on_any_handler(self):
        world = make_world()
        channel = WirelessChannel(world)
        a = vehicle_node(world, channel, 0, 0)
        node = FixedNode(world, channel, "anchor", Vec2(10, 0), 100.0)
        seen = []
        node.on_any(lambda msg, frm: seen.append(msg.kind))
        a.send("anchor", data_message(a.node_id, "anchor", 100, world.now))
        a.send("anchor", hello_message(a.node_id, (0, 0), 0, 0, world.now))
        world.run_for(1.0)
        assert sorted(k.value for k in seen) == ["data", "hello"]
