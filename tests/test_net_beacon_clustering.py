"""Tests for beaconing, neighbor tables and clustering algorithms."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError
from repro.geometry import Vec2
from repro.mobility import Vehicle
from repro.net import BeaconService, NeighborTable, VehicleNode, WirelessChannel
from repro.net.clustering import (
    Cluster,
    ClusterSet,
    MobilityClustering,
    PassiveMultihopClustering,
    RsuAnchoredClustering,
    head_lifetimes,
    neighbors_within,
)
from repro.net.messages import hello_message
from repro.sim import ChannelConfig, ScenarioConfig, World


def lossless_world():
    return World(
        ScenarioConfig(seed=5, channel=ChannelConfig(base_loss_probability=0.0, loss_per_100m=0.0))
    )


def vehicles_at(*positions, speed=0.0, heading=0.0):
    return [
        Vehicle(position=Vec2(x, y), speed_mps=speed, heading_rad=heading)
        for x, y in positions
    ]


class TestNeighborTable:
    def test_update_from_hello(self):
        table = NeighborTable(timeout_s=3.0)
        hello = hello_message("veh-x", (10, 20), 15.0, 0.5, 0.0)
        entry = table.update_from_hello(hello, now=1.0)
        assert entry.position == Vec2(10, 20)
        assert entry.speed_mps == 15.0
        assert "veh-x" in table

    def test_refresh_updates_state(self):
        table = NeighborTable(timeout_s=3.0)
        table.update_from_hello(hello_message("veh-x", (0, 0), 10, 0, 0.0), now=0.0)
        table.update_from_hello(hello_message("veh-x", (5, 0), 12, 0, 1.0), now=1.0)
        entry = table.get("veh-x")
        assert entry.position == Vec2(5, 0)
        assert entry.beacon_count == 2

    def test_expiry(self):
        table = NeighborTable(timeout_s=2.0)
        table.update_from_hello(hello_message("veh-x", (0, 0), 10, 0, 0.0), now=0.0)
        dropped = table.expire(now=5.0)
        assert dropped == ["veh-x"]
        assert len(table) == 0

    def test_fresh_entries_survive_expiry(self):
        table = NeighborTable(timeout_s=2.0)
        table.update_from_hello(hello_message("veh-x", (0, 0), 10, 0, 0.0), now=4.0)
        assert table.expire(now=5.0) == []

    def test_invalid_timeout(self):
        with pytest.raises(ConfigurationError):
            NeighborTable(timeout_s=0.0)


class TestBeaconService:
    def test_neighbors_discover_each_other(self):
        world = lossless_world()
        channel = WirelessChannel(world)
        nodes = [
            VehicleNode(world, channel, Vehicle(position=Vec2(i * 100.0, 0)))
            for i in range(3)
        ]
        services = [BeaconService(world, node) for node in nodes]
        for service in services:
            service.start()
        world.run_for(5.0)
        assert len(services[1].table) == 2  # middle node hears both

    def test_departed_neighbor_expires(self):
        world = lossless_world()
        channel = WirelessChannel(world)
        a = VehicleNode(world, channel, Vehicle(position=Vec2(0, 0)))
        b = VehicleNode(world, channel, Vehicle(position=Vec2(100, 0)))
        service_a = BeaconService(world, a)
        service_b = BeaconService(world, b)
        service_a.start()
        service_b.start()
        world.run_for(5.0)
        assert len(service_a.table) == 1
        b.vehicle.position = Vec2(10_000, 0)
        world.run_for(10.0)
        assert len(service_a.table) == 0

    def test_identity_provider_changes_on_air_source(self):
        world = lossless_world()
        channel = WirelessChannel(world)
        node = VehicleNode(world, channel, Vehicle(position=Vec2(0, 0)))

        class FixedIdentity:
            def current_identity(self, now):
                return "pn-masked"

        service = BeaconService(world, node, identity_provider=FixedIdentity())
        assert service.on_air_identity() == "pn-masked"

    def test_stop_halts_beaconing(self):
        world = lossless_world()
        channel = WirelessChannel(world)
        node = VehicleNode(world, channel, Vehicle(position=Vec2(0, 0)))
        service = BeaconService(world, node)
        service.start()
        world.run_for(3.0)
        sent_before = world.metrics.counter("beacon/sent")
        service.stop()
        world.run_for(5.0)
        assert world.metrics.counter("beacon/sent") == sent_before

    def test_crashed_beaconer_does_not_keep_frozen_table(self):
        """Expiry used to run only inside ``_beacon``: a node whose own
        beaconing crashed/stalled (``repro.faults`` style) served an
        ever-stale table forever.  Reads must expire on their own."""
        world = lossless_world()
        channel = WirelessChannel(world)
        a = VehicleNode(world, channel, Vehicle(position=Vec2(0, 0)))
        b = VehicleNode(world, channel, Vehicle(position=Vec2(100, 0)))
        service_a = BeaconService(world, a)
        service_b = BeaconService(world, b)
        service_a.start()
        service_b.start()
        world.run_for(5.0)
        assert b.node_id in service_a.table.ids()
        # A crashes (its periodic beacon — and with it the old expiry
        # hook — never runs again); B simultaneously goes silent.
        service_a.stop()
        service_b.stop()
        b.go_offline()
        world.run_for(30.0)  # far beyond the neighbor timeout
        assert service_a.table.ids() == []
        assert service_a.table.get(b.node_id) is None
        assert b.node_id not in service_a.table
        assert len(service_a.table) == 0

    def test_table_without_clock_keeps_explicit_expiry_contract(self):
        table = NeighborTable(timeout_s=2.0)
        table.update_from_hello(hello_message("veh-x", (0, 0), 10, 0, 0.0), now=0.0)
        # No clock: reads do not expire on their own...
        assert "veh-x" in table
        # ...until expire() is called explicitly.
        assert table.expire(now=10.0) == ["veh-x"]


class TestNeighborsWithin:
    def test_adjacency_symmetric(self):
        vehicles = vehicles_at((0, 0), (100, 0), (500, 0))
        adjacency = neighbors_within(vehicles, 200)
        a, b, c = [v.vehicle_id for v in vehicles]
        assert [v.vehicle_id for v in adjacency[a]] == [b]
        assert [v.vehicle_id for v in adjacency[b]] == [a]
        assert adjacency[c] == []

    def test_invalid_range(self):
        with pytest.raises(ConfigurationError):
            neighbors_within([], 0)


class TestCluster:
    def test_head_always_member(self):
        cluster = Cluster(head_id="h", member_ids=["a", "b"])
        assert cluster.contains("h")
        assert cluster.size == 3

    def test_cluster_set_lookup(self):
        clusters = ClusterSet(clusters=[Cluster(head_id="h", member_ids=["h", "a"])])
        assert clusters.cluster_of("a").head_id == "h"
        assert clusters.cluster_of("ghost") is None
        assert clusters.head_ids() == ["h"]

    def test_mean_size(self):
        clusters = ClusterSet(
            clusters=[
                Cluster(head_id="a", member_ids=["a"]),
                Cluster(head_id="b", member_ids=["b", "c", "d"]),
            ]
        )
        assert clusters.mean_size == 2.0


class TestMobilityClustering:
    def test_covers_all_vehicles(self):
        vehicles = vehicles_at((0, 0), (50, 0), (100, 0), (1000, 0))
        clustering = MobilityClustering()
        result = clustering.form(vehicles, range_m=200)
        assert sorted(result.all_member_ids()) == sorted(v.vehicle_id for v in vehicles)

    def test_clusters_disjoint(self):
        vehicles = vehicles_at(*[(i * 60.0, 0) for i in range(12)])
        result = MobilityClustering().form(vehicles, range_m=150)
        members = result.all_member_ids()
        assert len(members) == len(set(members))

    def test_isolated_vehicle_is_singleton(self):
        vehicles = vehicles_at((0, 0), (10_000, 0))
        result = MobilityClustering().form(vehicles, range_m=100)
        sizes = sorted(c.size for c in result.clusters)
        assert sizes == [1, 1]

    def test_co_moving_vehicles_score_higher(self):
        clustering = MobilityClustering()
        center = Vehicle(position=Vec2(0, 0), speed_mps=20, heading_rad=0)
        aligned = [
            Vehicle(position=Vec2(50, 0), speed_mps=20, heading_rad=0),
            Vehicle(position=Vec2(-50, 0), speed_mps=21, heading_rad=0),
        ]
        opposing = [
            Vehicle(position=Vec2(50, 0), speed_mps=20, heading_rad=math.pi),
            Vehicle(position=Vec2(-50, 0), speed_mps=21, heading_rad=math.pi),
        ]
        assert clustering.stability_score(center, aligned) > clustering.stability_score(
            center, opposing
        )

    def test_max_cluster_size_respected(self):
        vehicles = vehicles_at(*[(i * 10.0, 0) for i in range(20)])
        result = MobilityClustering(max_cluster_size=5).form(vehicles, range_m=500)
        assert all(c.size <= 5 for c in result.clusters)

    def test_deterministic(self):
        vehicles = vehicles_at(*[(i * 40.0, 0) for i in range(10)])
        a = MobilityClustering().form(vehicles, range_m=150)
        b = MobilityClustering().form(vehicles, range_m=150)
        assert a.head_ids() == b.head_ids()

    def test_maintain_preserves_formed_at_for_stable_heads(self):
        vehicles = vehicles_at(*[(i * 50.0, 0) for i in range(6)])
        clustering = MobilityClustering()
        first = clustering.form(vehicles, range_m=200, now=0.0)
        second = clustering.maintain(first, vehicles, range_m=200, now=10.0)
        assert set(second.head_ids()) == set(first.head_ids())
        assert all(c.formed_at == 0.0 for c in second.clusters)

    def test_control_messages_counted(self):
        vehicles = vehicles_at(*[(i * 50.0, 0) for i in range(6)])
        result = MobilityClustering().form(vehicles, range_m=200)
        assert result.control_messages >= len(vehicles)


class TestPassiveMultihop:
    def test_covers_all_vehicles(self):
        vehicles = vehicles_at(*[(i * 80.0, 0) for i in range(10)])
        result = PassiveMultihopClustering(n_hops=2).form(vehicles, range_m=100)
        assert sorted(result.all_member_ids()) == sorted(v.vehicle_id for v in vehicles)

    def test_members_within_n_hops(self):
        # A chain: with n_hops=1, no member may be 2 hops from its head.
        vehicles = vehicles_at(*[(i * 90.0, 0) for i in range(8)])
        result = PassiveMultihopClustering(n_hops=1).form(vehicles, range_m=100)
        adjacency = neighbors_within(vehicles, 100)
        for cluster in result.clusters:
            head = cluster.head_id
            direct = {v.vehicle_id for v in adjacency[head]} | {head}
            assert set(cluster.member_ids) <= direct

    def test_stable_node_becomes_head(self):
        # One vehicle matches the flow; another diverges wildly.
        flow = [
            Vehicle(position=Vec2(i * 50.0, 0), speed_mps=20, heading_rad=0)
            for i in range(4)
        ]
        outlier = Vehicle(position=Vec2(100, 10), speed_mps=40, heading_rad=math.pi)
        result = PassiveMultihopClustering(n_hops=2).form(flow + [outlier], range_m=300)
        biggest = max(result.clusters, key=lambda c: c.size)
        assert biggest.head_id != outlier.vehicle_id

    def test_invalid_hops(self):
        with pytest.raises(ConfigurationError):
            PassiveMultihopClustering(n_hops=0)


class TestRsuAnchored:
    def test_vehicles_assigned_to_nearest_rsu(self):
        clustering = RsuAnchoredClustering(
            [Vec2(0, 0), Vec2(1000, 0)], coverage_m=400
        )
        vehicles = vehicles_at((100, 0), (900, 0))
        result = clustering.form(vehicles, range_m=300)
        assert len(result.clusters) == 2
        assert all(c.size == 1 for c in result.clusters)

    def test_uncovered_vehicles_excluded(self):
        clustering = RsuAnchoredClustering([Vec2(0, 0)], coverage_m=200)
        vehicles = vehicles_at((100, 0), (5000, 0))
        result = clustering.form(vehicles, range_m=300)
        assert len(result.all_member_ids()) == 1

    def test_coverage_fraction(self):
        clustering = RsuAnchoredClustering([Vec2(0, 0)], coverage_m=200)
        vehicles = vehicles_at((100, 0), (5000, 0))
        assert clustering.coverage_fraction(vehicles) == 0.5

    def test_requires_rsus(self):
        with pytest.raises(ConfigurationError):
            RsuAnchoredClustering([])


class TestHeadLifetimes:
    def test_continuous_head_counts_snapshots(self):
        snapshot = ClusterSet(clusters=[Cluster(head_id="h", member_ids=["h"])])
        lifetimes = head_lifetimes([snapshot, snapshot, snapshot], interval_s=2.0)
        assert lifetimes == [6.0]

    def test_head_change_splits_tenure(self):
        first = ClusterSet(clusters=[Cluster(head_id="a", member_ids=["a"])])
        second = ClusterSet(clusters=[Cluster(head_id="b", member_ids=["b"])])
        lifetimes = sorted(head_lifetimes([first, first, second], interval_s=1.0))
        assert lifetimes == [1.0, 2.0]

    def test_invalid_interval(self):
        with pytest.raises(ConfigurationError):
            head_lifetimes([], 0.0)
