"""Smoke tests: every shipped example must run clean and self-check.

Each example script ends with assertions on its own output, so running
them is a meaningful end-to-end regression, not just an import check.
"""

from __future__ import annotations

import pathlib
import runpy

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).parent.parent / "examples"

EXAMPLE_SCRIPTS = sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))


def test_all_examples_discovered():
    assert len(EXAMPLE_SCRIPTS) >= 5
    assert "quickstart.py" in EXAMPLE_SCRIPTS


@pytest.mark.parametrize("script", EXAMPLE_SCRIPTS)
def test_example_runs_clean(script, capsys):
    runpy.run_path(str(EXAMPLES_DIR / script), run_name="__main__")
    output = capsys.readouterr().out
    # Every example prints a titled results table.
    assert "|" in output and "-+-" in output
