"""Tests for small-task batching in the serving gateway."""

from __future__ import annotations

import pytest

from repro.core import CheckpointHandoverPolicy, ResourceOffer, VehicularCloud
from repro.errors import ConfigurationError
from repro.geometry import Vec2
from repro.mobility import StationaryModel
from repro.serve import BatchingPolicy, HedgePolicy, ServiceGateway, ServiceRequest
from repro.sim import ScenarioConfig, World


def build_cloud(world, members=5, mips=100.0):
    model = StationaryModel(
        world, positions=[Vec2(i * 40.0, 0.0) for i in range(members)]
    )
    vehicles = model.populate(members)
    cloud = VehicularCloud(
        world, "batch-vc", handover_policy=CheckpointHandoverPolicy()
    )
    for vehicle in vehicles:
        cloud.admit(
            vehicle, offer=ResourceOffer(vehicle.vehicle_id, mips, 10**9, 1e6)
        )
    return vehicles, cloud


def small(tenant="t", work_mi=40.0, priority=1, deadline_s=60.0):
    return ServiceRequest.build(
        work_mi=work_mi, tenant=tenant, priority=priority, deadline_s=deadline_s
    )


def gateway_with_batching(world, cloud, **kwargs):
    kwargs.setdefault("batching", BatchingPolicy(
        max_batch_size=4, max_member_work_mi=50.0, max_batch_work_mi=200.0
    ))
    kwargs.setdefault("queue_capacity", 64)
    kwargs.setdefault("max_dispatch_concurrency", 1)
    return ServiceGateway(world, cloud, **kwargs)


def assert_conserved(gateway):
    acc = gateway.accounting()
    assert acc["offered"] == acc["admitted"] + acc["rejected"]
    assert acc["admitted"] == (
        acc["completed"] + acc["failed"] + acc["shed"]
        + acc["queued"] + acc["inflight"]
    )


class TestBatchingPolicy:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BatchingPolicy(max_batch_size=1)
        with pytest.raises(ConfigurationError):
            BatchingPolicy(max_member_work_mi=0.0)
        with pytest.raises(ConfigurationError):
            BatchingPolicy(max_member_work_mi=100.0, max_batch_work_mi=50.0)

    def test_eligibility_is_size_bound(self):
        policy = BatchingPolicy(max_member_work_mi=50.0)
        assert policy.eligible(small(work_mi=50.0))
        assert not policy.eligible(small(work_mi=51.0))

    def test_compatibility_requires_tenant_and_priority(self):
        policy = BatchingPolicy()
        anchor = small(tenant="a", priority=1)
        assert policy.compatible(anchor, small(tenant="a", priority=1))
        assert not policy.compatible(anchor, small(tenant="b", priority=1))
        assert not policy.compatible(anchor, small(tenant="a", priority=2))
        assert not policy.compatible(anchor, small(tenant="a", work_mi=500.0))


class TestBatchDispatch:
    def _congest(self, world, gateway):
        """Fill the single dispatch slot so later arrivals queue."""
        blocker = ServiceRequest.build(work_mi=400.0, tenant="big", deadline_s=60.0)
        assert gateway.submit(blocker)
        return blocker

    def test_queued_smalls_coalesce_into_one_dispatch(self, world):
        _v, cloud = build_cloud(world)
        gateway = gateway_with_batching(world, cloud)
        self._congest(world, gateway)
        for _ in range(3):
            assert gateway.submit(small())
        # While the blocker runs the smalls are queued requests.
        acc = gateway.accounting()
        assert acc["queued"] == 3 and acc["inflight"] == 1
        assert_conserved(gateway)
        world.run_until(30.0)
        assert gateway.stats.batches_dispatched == 1
        assert gateway.stats.batched_requests == 3
        assert gateway.stats.completed == 4
        assert gateway.stats.slo_hits == 4
        assert_conserved(gateway)

    def test_inflight_counts_members_not_dispatches(self, world):
        _v, cloud = build_cloud(world)
        gateway = gateway_with_batching(world, cloud)
        self._congest(world, gateway)
        for _ in range(3):
            gateway.submit(small())
        world.run_until(4.5)  # blocker done (4s), batch now in flight
        acc = gateway.accounting()
        assert acc["inflight"] == 3 and acc["queued"] == 0
        assert len(gateway._inflight) == 1
        assert_conserved(gateway)
        world.run_until(30.0)
        assert gateway.stats.completed == 4

    def test_different_tenants_do_not_batch(self, world):
        _v, cloud = build_cloud(world)
        gateway = gateway_with_batching(world, cloud)
        self._congest(world, gateway)
        gateway.submit(small(tenant="a"))
        gateway.submit(small(tenant="b"))
        gateway.submit(small(tenant="c"))
        world.run_until(30.0)
        assert gateway.stats.batches_dispatched == 0
        assert gateway.stats.completed == 4
        assert_conserved(gateway)

    def test_batch_respects_size_and_work_caps(self, world):
        _v, cloud = build_cloud(world)
        gateway = gateway_with_batching(
            world, cloud,
            batching=BatchingPolicy(
                max_batch_size=2, max_member_work_mi=50.0, max_batch_work_mi=60.0
            ),
        )
        self._congest(world, gateway)
        for _ in range(3):
            gateway.submit(small(work_mi=40.0))
        world.run_until(30.0)
        # 40 + 40 breaches the 60 MI batch budget, and the size cap is 2,
        # so every small dispatches alone.
        assert gateway.stats.batches_dispatched == 0
        assert gateway.stats.completed == 4

    def test_large_requests_never_batch(self, world):
        _v, cloud = build_cloud(world)
        gateway = gateway_with_batching(world, cloud)
        self._congest(world, gateway)
        gateway.submit(small(work_mi=300.0))  # too big to anchor
        gateway.submit(small())
        gateway.submit(small())
        world.run_until(30.0)
        # The big one dispatched alone; the two smalls behind it batched.
        assert gateway.stats.batches_dispatched == 1
        assert gateway.stats.batched_requests == 2
        assert gateway.stats.completed == 4

    def test_batch_deadline_is_tightest_member_budget(self, world):
        _v, cloud = build_cloud(world)
        gateway = gateway_with_batching(world, cloud)
        members = [
            small(deadline_s=50.0),
            small(deadline_s=20.0),
            small(deadline_s=40.0),
        ]
        task = gateway._batch_task(members)
        assert task.deadline_s == pytest.approx(20.0)
        assert task.work_mi == pytest.approx(120.0)

    def test_batch_failure_accounts_every_member(self, world):
        _v, cloud = build_cloud(world)
        gateway = gateway_with_batching(world, cloud)
        self._congest(world, gateway)
        for _ in range(3):
            gateway.submit(small())
        world.run_until(4.5)  # batch in flight
        dispatch = next(iter(gateway._inflight.values()))
        assert len(dispatch.members) == 3
        cloud.cancel(dispatch.record, "test_fault")
        assert gateway.stats.failed == 3
        assert_conserved(gateway)

    def test_batches_skip_hedging(self, world):
        _v, cloud = build_cloud(world)
        gateway = gateway_with_batching(world, cloud, hedging=HedgePolicy())
        self._congest(world, gateway)
        for _ in range(3):
            gateway.submit(small())
        world.run_until(4.5)
        dispatch = next(iter(gateway._inflight.values()))
        assert len(dispatch.members) == 3
        assert dispatch.hedge_check is None
        world.run_until(30.0)
        assert gateway.stats.completed == 4
        assert_conserved(gateway)

    def test_unbatched_gateway_unchanged(self, world):
        _v, cloud = build_cloud(world)
        gateway = ServiceGateway(
            world, cloud, queue_capacity=64, max_dispatch_concurrency=1
        )
        self._congest(world, gateway)
        for _ in range(3):
            gateway.submit(small())
        world.run_until(30.0)
        assert gateway.stats.batches_dispatched == 0
        assert gateway.stats.completed == 4
        assert_conserved(gateway)
