"""Tests for the chaos harness (`repro.chaos`)."""

from __future__ import annotations

import pytest

from repro.chaos import (
    ChaosProfile,
    ChaosRunner,
    ChaosTargets,
    InvariantSuite,
    QuorumSafety,
    StrandedTasks,
    TaskConservation,
    Violation,
    campaign_size,
    ddmin,
    generate_plan,
    stationary_scenario,
)
from repro.chaos.invariants import ChannelConservation, SingleHead
from repro.core import ResourceOffer, VehicularCloud
from repro.errors import ChaosError, ConfigurationError
from repro.faults.plan import NETWORK_FAULTS, PROCESS_FAULTS
from repro.geometry import Vec2
from repro.mobility import StationaryModel
from repro.sim import ScenarioConfig, World

ALL_TARGETS = ChaosTargets(members=12, has_channel=True, infrastructure=2)


def small_cloud(seed=3, members=4):
    world = World(ScenarioConfig(seed=seed))
    model = StationaryModel(world, positions=[Vec2(i * 40.0, 0) for i in range(members)])
    vehicles = model.populate(members)
    cloud = VehicularCloud(world, "chaos-test-vc")
    for vehicle in vehicles:
        cloud.admit(vehicle, offer=ResourceOffer(vehicle.vehicle_id, 100.0, 10**9, 1e6))
    return world, vehicles, cloud


class TestGenerator:
    def test_same_seed_byte_identical_plan(self):
        a = generate_plan(42, 60.0, ALL_TARGETS).describe()
        b = generate_plan(42, 60.0, ALL_TARGETS).describe()
        c = generate_plan(43, 60.0, ALL_TARGETS).describe()
        assert a == b
        assert a != c

    def test_missing_targets_drop_families(self):
        no_channel = ChaosTargets(members=6, has_channel=False, infrastructure=0)
        plan = generate_plan(7, 120.0, no_channel)
        kinds = {spec.kind for spec in plan.schedule()}
        assert kinds  # something was generated
        assert kinds <= set(PROCESS_FAULTS)
        no_members = ChaosTargets(members=0, has_channel=True, infrastructure=0)
        kinds = {spec.kind for spec in generate_plan(7, 120.0, no_members).schedule()}
        assert kinds <= set(NETWORK_FAULTS)

    def test_empty_grammar_raises(self):
        nothing = ChaosTargets(members=0, has_channel=False, infrastructure=0)
        with pytest.raises(ConfigurationError):
            generate_plan(1, 60.0, nothing)
        process_only = ChaosProfile().only("crash", "stall")
        no_members = ChaosTargets(members=0, has_channel=True, infrastructure=1)
        with pytest.raises(ConfigurationError):
            generate_plan(1, 60.0, no_members, process_only)

    def test_too_short_run_raises(self):
        with pytest.raises(ConfigurationError):
            generate_plan(1, 4.0, ALL_TARGETS)  # shorter than warmup

    def test_profile_validation(self):
        with pytest.raises(ConfigurationError):
            ChaosProfile(weights=(("meteor", 1.0),))
        with pytest.raises(ConfigurationError):
            ChaosProfile(weights=(("crash", -1.0),))
        with pytest.raises(ConfigurationError):
            ChaosProfile(cooldown_fraction=1.0)
        with pytest.raises(ConfigurationError):
            ChaosProfile(mean_interval_s=0.0)

    def test_times_stay_on_grid_inside_window(self):
        profile = ChaosProfile()
        plan = generate_plan(9, 100.0, ALL_TARGETS, profile)
        horizon = 100.0 * (1.0 - profile.cooldown_fraction)
        for spec in plan.schedule():
            assert spec.at == round(spec.at, 1)  # 0.1 s grid
            assert profile.warmup_s <= spec.at <= horizon

    def test_campaign_size_scales_and_clamps(self):
        profile = ChaosProfile()
        small = campaign_size(profile, 60.0, members=3)
        large = campaign_size(profile, 60.0, members=40)
        assert small < large
        assert campaign_size(profile, 10_000.0, members=12) == profile.max_faults
        assert campaign_size(profile, 6.0, members=12) >= profile.min_faults


class TestInvariants:
    def test_task_conservation_clean_then_tampered(self):
        world, _vehicles, cloud = small_cloud()
        inv = TaskConservation(cloud)
        from repro.core import Task

        cloud.submit(Task(work_mi=100))
        world.run_for(10.0)
        assert inv.check(world.now) == []
        cloud.stats.completed += 1  # corrupt the ledger
        assert inv.check(world.now)

    def test_single_head_detects_headless_and_foreign_head(self):
        world, _vehicles, cloud = small_cloud()
        inv = SingleHead(cloud)
        assert inv.check(world.now) == []
        cloud.head_id = None
        assert inv.check(world.now)
        cloud.head_id = "not-a-member"
        assert inv.check(world.now)
        external = SingleHead(cloud, external_heads=("not-a-member",))
        assert external.check(world.now) == []

    def test_quorum_safety_reports_deltas_once(self):
        class FakeChecker:
            stale_reads = 0
            lost_updates = 0

        checker = FakeChecker()
        inv = QuorumSafety(checker)
        assert inv.check(1.0) == []
        checker.stale_reads = 2
        first = inv.check(2.0)
        assert len(first) == 1 and "2 stale read(s)" in first[0].message
        assert inv.check(3.0) == []  # no new anomalies, no new violations
        checker.lost_updates = 1
        assert len(inv.check(4.0)) == 1

    def test_channel_conservation_detects_tampering(self):
        world, _vehicles, _cloud = small_cloud()
        inv = ChannelConservation(world)
        assert inv.check(world.now) == []
        world.metrics.increment("channel/frames_dispatched", 3)
        assert inv.check(world.now)

    def test_stranded_tasks_reports_each_task_once(self):
        world, vehicles, cloud = small_cloud()
        from repro.core import Task

        cloud.submit(Task(work_mi=10_000))
        world.run_for(2.0)
        cloud.mark_worker_crashed(vehicles[0].vehicle_id)
        for vehicle in vehicles[1:]:
            cloud.mark_worker_crashed(vehicle.vehicle_id)
        inv = StrandedTasks(cloud, grace_s=5.0)
        world.run_for(10.0)
        first = inv.check(world.now)
        assert len(first) == 1
        assert inv.check(world.now + 1.0) == []  # deduplicated

    def test_suite_accumulates_and_counts(self):
        world, _vehicles, cloud = small_cloud()
        suite = InvariantSuite([TaskConservation(cloud)], metrics=world.metrics)
        assert suite.check_now(0.0) == []
        cloud.stats.submitted += 5
        fresh = suite.check_now(1.0)
        assert fresh and suite.first_violation is fresh[0]
        assert suite.checks_run == 2
        assert world.metrics.counter("chaos/violations") == len(fresh)
        assert world.metrics.counter("chaos/violations/task-conservation") == len(fresh)

    def test_violation_describe(self):
        v = Violation(invariant="x", time=1.25, message="boom")
        assert "t=1.250" in v.describe() and "[x]" in v.describe()


class TestDdmin:
    def test_single_culprit(self):
        minimal, runs = ddmin(range(8), lambda s: 5 in s)
        assert minimal == [5]
        assert runs >= 1

    def test_conjunctive_pair(self):
        minimal, _runs = ddmin(range(10), lambda s: 2 in s and 7 in s)
        assert minimal == [2, 7]

    def test_all_needed(self):
        indices = [0, 1, 2]
        minimal, _runs = ddmin(indices, lambda s: set(s) == set(indices))
        assert minimal == indices

    def test_full_set_must_fail(self):
        with pytest.raises(ValueError):
            ddmin(range(4), lambda s: False)

    def test_memoization_bounds_run_count(self):
        calls = []

        def test_fn(subset):
            calls.append(subset)
            return 3 in subset

        _minimal, runs = ddmin(range(16), test_fn)
        assert runs == len(calls) == len(set(calls))


class TestRunner:
    def test_run_seed_is_deterministic(self):
        runner = ChaosRunner(
            lambda s: stationary_scenario(s, members=6), run_length_s=30.0
        )
        a = runner.run_seed(5)
        b = runner.run_seed(5)
        assert a.plan.describe() == b.plan.describe()
        assert (a.submitted, a.completed, a.failed) == (b.submitted, b.completed, b.failed)
        assert [v.describe() for v in a.violations] == [v.describe() for v in b.violations]

    def test_campaign_aggregates(self):
        runner = ChaosRunner(
            lambda s: stationary_scenario(s, members=6), run_length_s=30.0
        )
        campaign = runner.run_campaign([1, 2, 3])
        assert campaign.runs == 3
        assert campaign.clean_runs + len(campaign.failing_seeds) == 3
        assert "stationary" in campaign.describe()

    def test_capture_requires_a_failing_seed(self):
        runner = ChaosRunner(
            lambda s: stationary_scenario(s, members=6), run_length_s=30.0
        )
        clean = next(r.seed for r in runner.run_campaign([1, 2, 3]).results if r.ok)
        with pytest.raises(ChaosError):
            runner.capture_reproducer(clean)

    def test_weakened_cloud_minimizes_and_replays(self):
        runner = ChaosRunner(
            lambda s: stationary_scenario(s, hardened=False), run_length_s=45.0
        )
        campaign = runner.run_campaign(range(7001, 7006))
        assert campaign.failing_seeds, "weakened cloud should violate invariants"
        seed = campaign.failing_seeds[0]
        bundle = runner.capture_reproducer(seed)
        assert 1 <= len(bundle.minimized_specs) <= 3
        assert bundle.minimize_runs >= 1
        replay = runner.run_seed(seed, only_indices=list(bundle.minimized_indices))
        assert any(v.invariant == bundle.invariant for v in replay.violations)
        text = bundle.describe()
        assert f"seed               : {seed}" in text
        assert "replay" in text
        payload = bundle.to_dict()
        assert payload["seed"] == seed
        assert payload["minimized_indices"] == list(bundle.minimized_indices)

    def test_runner_validation(self):
        with pytest.raises(ChaosError):
            ChaosRunner(stationary_scenario, run_length_s=0.0)
        with pytest.raises(ChaosError):
            ChaosRunner(stationary_scenario, check_interval_s=-1.0)


class TestServingConservation:
    def _gateway(self, seed=11):
        from repro.serve import PoissonArrivals, ServiceGateway, TenantSpec, WorkloadGenerator

        world, _vehicles, cloud = small_cloud(seed=seed, members=6)
        gateway = ServiceGateway(world, cloud, name="inv-gw", queue_capacity=8)
        tenants = [
            TenantSpec(
                name="t", arrivals=PoissonArrivals(5.0),
                work_mi_range=(200.0, 200.0), deadline_s=6.0,
            )
        ]
        WorkloadGenerator(world, gateway, tenants, horizon_s=20.0).start()
        return world, gateway

    def test_clean_under_load_then_tampered(self):
        from repro.chaos import ServingConservation

        world, gateway = self._gateway()
        inv = ServingConservation(gateway)
        world.run_for(10.0)
        assert gateway.stats.offered > 0
        assert inv.check(world.now) == []
        gateway.stats.completed += 1  # corrupt the ledger: a phantom completion
        violations = inv.check(world.now)
        assert violations and "admitted" in violations[0].message
        gateway.stats.completed -= 1
        gateway.stats.offered += 1  # now the door counters disagree
        violations = inv.check(world.now)
        assert violations and "offered" in violations[0].message

    def test_detects_silent_drop(self):
        """A request removed from the queue without a typed outcome is
        exactly the leak the invariant exists to catch."""
        from repro.chaos import ServingConservation

        world, gateway = self._gateway(seed=12)
        inv = ServingConservation(gateway)
        world.run_for(3.0)
        assert inv.check(world.now) == []
        victim = next(iter(gateway.queue.items()), None)
        if victim is None:
            return  # queue drained at this instant; nothing to drop
        gateway.queue.remove(victim)  # bypasses the typed shed path
        assert inv.check(world.now)


class TestOverloadScenario:
    def test_campaign_under_overload_stays_conserved(self):
        from repro.chaos import overload_scenario

        runner = ChaosRunner(overload_scenario, run_length_s=30.0)
        result = runner.run_seed(21)
        assert result.ok, [v.describe() for v in result.violations]

    def test_scenario_actually_overloads(self):
        from repro.chaos import overload_scenario

        scenario = overload_scenario(31)
        scenario.world.run_until(40.0)
        gateway_metrics = scenario.world.metrics
        shed = sum(
            gateway_metrics.counters_under("serve/chaos-overload/shed").values()
        )
        rejected = sum(
            gateway_metrics.counters_under("serve/chaos-overload/rejected").values()
        )
        assert shed + rejected > 0, "2x load produced no shedding or rejection"
