"""Tests for the discrete-event engine."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim import Engine, SeededRng


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Engine().now == 0.0

    def test_schedule_and_run(self):
        engine = Engine()
        fired = []
        engine.schedule(1.0, lambda: fired.append(engine.now))
        engine.run_until(2.0)
        assert fired == [1.0]

    def test_negative_delay_raises(self):
        with pytest.raises(SimulationError):
            Engine().schedule(-0.1, lambda: None)

    def test_schedule_at_past_raises(self):
        engine = Engine()
        engine.schedule(1.0, lambda: None)
        engine.run_until(1.0)
        with pytest.raises(SimulationError):
            engine.schedule_at(0.5, lambda: None)

    def test_events_execute_in_time_order(self):
        engine = Engine()
        order = []
        engine.schedule(3.0, lambda: order.append("c"))
        engine.schedule(1.0, lambda: order.append("a"))
        engine.schedule(2.0, lambda: order.append("b"))
        engine.run_until(5.0)
        assert order == ["a", "b", "c"]

    def test_simultaneous_events_fifo(self):
        engine = Engine()
        order = []
        for name in "abc":
            engine.schedule(1.0, lambda n=name: order.append(n))
        engine.run_until(1.0)
        assert order == ["a", "b", "c"]

    def test_run_until_sets_clock_exactly(self):
        engine = Engine()
        engine.run_until(7.5)
        assert engine.now == 7.5

    def test_run_until_backwards_raises(self):
        engine = Engine()
        engine.run_until(5.0)
        with pytest.raises(SimulationError):
            engine.run_until(4.0)

    def test_events_beyond_horizon_stay_queued(self):
        engine = Engine()
        fired = []
        engine.schedule(10.0, lambda: fired.append(1))
        engine.run_until(5.0)
        assert fired == []
        engine.run_until(10.0)
        assert fired == [1]

    def test_callback_can_schedule_more_events(self):
        engine = Engine()
        fired = []

        def cascade():
            fired.append(engine.now)
            if len(fired) < 3:
                engine.schedule(1.0, cascade)

        engine.schedule(1.0, cascade)
        engine.run_until(10.0)
        assert fired == [1.0, 2.0, 3.0]

    def test_run_for_relative(self):
        engine = Engine()
        engine.run_until(2.0)
        engine.run_for(3.0)
        assert engine.now == 5.0

    def test_max_events_guard(self):
        engine = Engine()

        def storm():
            engine.schedule(0.0001, storm)

        engine.schedule(0.0001, storm)
        with pytest.raises(SimulationError):
            engine.run_until(10.0, max_events=50)

    def test_events_executed_counter(self):
        engine = Engine()
        for _ in range(5):
            engine.schedule(1.0, lambda: None)
        engine.run_until(1.0)
        assert engine.events_executed == 5

    def test_step_returns_false_when_empty(self):
        assert Engine().step() is False

    def test_drain_runs_everything(self):
        engine = Engine()
        fired = []
        for index in range(4):
            engine.schedule(index + 1.0, lambda i=index: fired.append(i))
        count = engine.drain()
        assert count == 4
        assert fired == [0, 1, 2, 3]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        engine = Engine()
        fired = []
        handle = engine.schedule(1.0, lambda: fired.append(1))
        handle.cancel()
        engine.run_until(2.0)
        assert fired == []
        assert handle.cancelled

    def test_cancel_is_idempotent(self):
        engine = Engine()
        handle = engine.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert handle.cancelled

    def test_handle_exposes_time_and_label(self):
        engine = Engine()
        handle = engine.schedule(2.5, lambda: None, label="probe")
        assert handle.time == 2.5
        assert handle.label == "probe"


class TestPeriodicTask:
    def test_fires_repeatedly(self):
        engine = Engine()
        fired = []
        engine.call_every(1.0, lambda: fired.append(engine.now))
        engine.run_until(5.5)
        assert fired == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_stop_halts_firing(self):
        engine = Engine()
        fired = []
        task = engine.call_every(1.0, lambda: fired.append(engine.now))
        engine.run_until(2.5)
        task.stop()
        engine.run_until(10.0)
        assert fired == [1.0, 2.0]
        assert task.stopped

    def test_zero_interval_raises(self):
        with pytest.raises(SimulationError):
            Engine().call_every(0.0, lambda: None)

    def test_jitter_desynchronizes(self):
        engine = Engine()
        rng = SeededRng(4, "jitter")
        times = []
        engine.call_every(1.0, lambda: times.append(engine.now), jitter=0.2, rng=rng)
        engine.run_until(5.0)
        assert times, "jittered task must still fire"
        assert any(t != round(t) for t in times), "jitter should move firings off the grid"

    def test_start_delay_override(self):
        engine = Engine()
        fired = []
        engine.call_every(5.0, lambda: fired.append(engine.now), start_delay=1.0)
        engine.run_until(1.0)
        assert fired == [1.0]

    def test_firings_counted(self):
        engine = Engine()
        task = engine.call_every(1.0, lambda: None)
        engine.run_until(3.0)
        assert task.firings == 3
