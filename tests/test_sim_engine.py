"""Tests for the discrete-event engine."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim import Engine, SeededRng


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Engine().now == 0.0

    def test_schedule_and_run(self):
        engine = Engine()
        fired = []
        engine.schedule(1.0, lambda: fired.append(engine.now))
        engine.run_until(2.0)
        assert fired == [1.0]

    def test_negative_delay_raises(self):
        with pytest.raises(SimulationError):
            Engine().schedule(-0.1, lambda: None)

    def test_schedule_at_past_raises(self):
        engine = Engine()
        engine.schedule(1.0, lambda: None)
        engine.run_until(1.0)
        with pytest.raises(SimulationError):
            engine.schedule_at(0.5, lambda: None)

    def test_events_execute_in_time_order(self):
        engine = Engine()
        order = []
        engine.schedule(3.0, lambda: order.append("c"))
        engine.schedule(1.0, lambda: order.append("a"))
        engine.schedule(2.0, lambda: order.append("b"))
        engine.run_until(5.0)
        assert order == ["a", "b", "c"]

    def test_simultaneous_events_fifo(self):
        engine = Engine()
        order = []
        for name in "abc":
            engine.schedule(1.0, lambda n=name: order.append(n))
        engine.run_until(1.0)
        assert order == ["a", "b", "c"]

    def test_run_until_sets_clock_exactly(self):
        engine = Engine()
        engine.run_until(7.5)
        assert engine.now == 7.5

    def test_run_until_backwards_raises(self):
        engine = Engine()
        engine.run_until(5.0)
        with pytest.raises(SimulationError):
            engine.run_until(4.0)

    def test_events_beyond_horizon_stay_queued(self):
        engine = Engine()
        fired = []
        engine.schedule(10.0, lambda: fired.append(1))
        engine.run_until(5.0)
        assert fired == []
        engine.run_until(10.0)
        assert fired == [1]

    def test_callback_can_schedule_more_events(self):
        engine = Engine()
        fired = []

        def cascade():
            fired.append(engine.now)
            if len(fired) < 3:
                engine.schedule(1.0, cascade)

        engine.schedule(1.0, cascade)
        engine.run_until(10.0)
        assert fired == [1.0, 2.0, 3.0]

    def test_run_for_relative(self):
        engine = Engine()
        engine.run_until(2.0)
        engine.run_for(3.0)
        assert engine.now == 5.0

    def test_max_events_guard(self):
        engine = Engine()

        def storm():
            engine.schedule(0.0001, storm)

        engine.schedule(0.0001, storm)
        with pytest.raises(SimulationError):
            engine.run_until(10.0, max_events=50)

    def test_events_executed_counter(self):
        engine = Engine()
        for _ in range(5):
            engine.schedule(1.0, lambda: None)
        engine.run_until(1.0)
        assert engine.events_executed == 5

    def test_step_returns_false_when_empty(self):
        assert Engine().step() is False

    def test_drain_runs_everything(self):
        engine = Engine()
        fired = []
        for index in range(4):
            engine.schedule(index + 1.0, lambda i=index: fired.append(i))
        count = engine.drain()
        assert count == 4
        assert fired == [0, 1, 2, 3]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        engine = Engine()
        fired = []
        handle = engine.schedule(1.0, lambda: fired.append(1))
        handle.cancel()
        engine.run_until(2.0)
        assert fired == []
        assert handle.cancelled

    def test_cancel_is_idempotent(self):
        engine = Engine()
        handle = engine.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert handle.cancelled

    def test_handle_exposes_time_and_label(self):
        engine = Engine()
        handle = engine.schedule(2.5, lambda: None, label="probe")
        assert handle.time == 2.5
        assert handle.label == "probe"


class TestPeriodicTask:
    def test_fires_repeatedly(self):
        engine = Engine()
        fired = []
        engine.call_every(1.0, lambda: fired.append(engine.now))
        engine.run_until(5.5)
        assert fired == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_stop_halts_firing(self):
        engine = Engine()
        fired = []
        task = engine.call_every(1.0, lambda: fired.append(engine.now))
        engine.run_until(2.5)
        task.stop()
        engine.run_until(10.0)
        assert fired == [1.0, 2.0]
        assert task.stopped

    def test_zero_interval_raises(self):
        with pytest.raises(SimulationError):
            Engine().call_every(0.0, lambda: None)

    def test_jitter_desynchronizes(self):
        engine = Engine()
        rng = SeededRng(4, "jitter")
        times = []
        engine.call_every(1.0, lambda: times.append(engine.now), jitter=0.2, rng=rng)
        engine.run_until(5.0)
        assert times, "jittered task must still fire"
        assert any(t != round(t) for t in times), "jitter should move firings off the grid"

    def test_start_delay_override(self):
        engine = Engine()
        fired = []
        engine.call_every(5.0, lambda: fired.append(engine.now), start_delay=1.0)
        engine.run_until(1.0)
        assert fired == [1.0]

    def test_firings_counted(self):
        engine = Engine()
        task = engine.call_every(1.0, lambda: None)
        engine.run_until(3.0)
        assert task.firings == 3


class TestPendingEvents:
    def test_counts_only_live_events(self):
        engine = Engine()
        keep = engine.schedule(1.0, lambda: None)
        drop = engine.schedule(2.0, lambda: None)
        assert engine.pending_events == 2
        drop.cancel()
        assert engine.pending_events == 1
        drop.cancel()  # idempotent: no double decrement
        assert engine.pending_events == 1
        keep.cancel()
        assert engine.pending_events == 0

    def test_count_correct_after_cancelled_events_pass(self):
        engine = Engine()
        handles = [engine.schedule(float(i + 1), lambda: None) for i in range(10)]
        for handle in handles[:5]:
            handle.cancel()
        engine.run_until(20.0)
        assert engine.pending_events == 0
        assert engine.events_executed == 5

    def test_cancel_after_fire_is_a_noop(self):
        engine = Engine()
        handle = engine.schedule(1.0, lambda: None)
        engine.run_until(2.0)
        handle.cancel()
        assert engine.pending_events == 0

    def test_heavy_cancellation_compacts_queue(self):
        engine = Engine()
        for _ in range(5):
            engine.schedule(1000.0, lambda: None)
        doomed = [engine.schedule(2000.0, lambda: None) for _ in range(500)]
        for handle in doomed:
            handle.cancel()
        # Compaction kicked in: the heap holds (close to) only live events.
        assert engine.pending_events == 5
        assert len(engine._queue) < 100
        engine.run_until(3000.0)
        assert engine.events_executed == 5


class TestErrorPolicy:
    def _boom(self):
        raise ValueError("boom")

    def test_invalid_policy_rejected(self):
        with pytest.raises(SimulationError):
            Engine(error_policy="ignore")

    def test_raise_policy_propagates(self):
        engine = Engine(error_policy="raise")
        engine.schedule(1.0, self._boom, label="bad")
        with pytest.raises(ValueError):
            engine.run_until(2.0)

    def test_record_policy_continues_and_ledgers(self):
        engine = Engine(error_policy="record")
        fired = []
        engine.schedule(1.0, self._boom, label="bad")
        engine.schedule(2.0, lambda: fired.append(engine.now))
        executed = engine.run_until(3.0)
        assert executed == 2
        assert fired == [2.0]
        assert len(engine.failures) == 1
        assert engine.failures[0].label == "bad"
        assert "ValueError: boom" in engine.failures[0].error
        assert engine.failure_counts == {"bad": 1}

    def test_suppress_policy_counts_without_records(self):
        engine = Engine(error_policy="suppress")
        engine.schedule(1.0, self._boom, label="bad")
        engine.run_until(2.0)
        assert engine.failures == []
        assert engine.failure_counts == {"bad": 1}

    def test_failure_listeners_notified(self):
        engine = Engine(error_policy="record")
        seen = []
        engine.on_callback_failure(seen.append)
        engine.schedule(1.0, self._boom, label="bad")
        engine.run_until(2.0)
        assert len(seen) == 1
        assert seen[0].time == 1.0

    def test_unlabelled_failures_get_placeholder(self):
        engine = Engine(error_policy="record")
        engine.schedule(1.0, self._boom)
        engine.run_until(2.0)
        assert engine.failure_counts == {"<unlabelled>": 1}


class TestPeriodicTaskFailure:
    def test_raise_policy_marks_failed_and_stops(self):
        engine = Engine(error_policy="raise")

        def boom():
            raise RuntimeError("dead")

        task = engine.call_every(1.0, boom, label="beat")
        with pytest.raises(RuntimeError):
            engine.run_until(5.0)
        assert task.failed
        assert task.stopped

    def test_record_policy_keeps_task_alive(self):
        engine = Engine(error_policy="record")
        count = [0]

        def flaky():
            count[0] += 1
            if count[0] % 2 == 1:
                raise RuntimeError("flaky")

        task = engine.call_every(1.0, flaky, label="beat")
        engine.run_until(6.5)
        assert task.firings == 6
        assert not task.failed
        assert not task.stopped
        assert engine.failure_counts["beat"] == 3

    def test_callback_stopping_own_task_does_not_rearm(self):
        engine = Engine(error_policy="record")
        holder = {}

        def once():
            holder["task"].stop()

        holder["task"] = engine.call_every(1.0, once)
        engine.run_until(10.0)
        assert holder["task"].firings == 1
