"""Tests for per-access anonymous authorization (§V.C open problem)."""

from __future__ import annotations

import pytest

from repro.errors import AuthorizationError
from repro.security.access.anonymous import (
    AccessTicket,
    AnonymousAccessIssuer,
    AnonymousAccessVerifier,
)


@pytest.fixture
def issuer():
    return AnonymousAccessIssuer(owner_secret=b"owner-master-secret")


@pytest.fixture
def verifier(issuer):
    return AnonymousAccessVerifier(issuer)


def grant(issuer, grantee="lender-real-7", actions=("read",), count=5):
    return issuer.grant(grantee, "sensor/feed", actions, ticket_count=count)


class TestGranting:
    def test_capability_has_requested_tickets(self, issuer):
        capability = grant(issuer, count=8)
        assert capability.remaining == 8
        assert capability.resource == "sensor/feed"

    def test_ticket_ids_unique_and_opaque(self, issuer):
        capability = grant(issuer, grantee="lender-alice")
        ids = [t.ticket_id for t in capability.tickets]
        assert len(set(ids)) == len(ids)
        for ticket_id in ids:
            assert "alice" not in ticket_id
            assert "lender" not in ticket_id

    def test_ledger_links_capability_to_grantee(self, issuer):
        capability = grant(issuer, grantee="lender-bob")
        assert issuer.attribute(capability.capability_id) == "lender-bob"
        assert issuer.attribute("cap-unknown") is None

    def test_zero_tickets_rejected(self, issuer):
        with pytest.raises(AuthorizationError):
            grant(issuer, count=0)


class TestVerification:
    def test_valid_ticket_accepted_once(self, issuer, verifier):
        capability = grant(issuer)
        ticket = capability.tickets[0]
        assert verifier.verify(ticket, capability.capability_id, "read").value
        # Second spend of the same ticket is a replay.
        assert not verifier.verify(ticket, capability.capability_id, "read").value
        assert verifier.accepted == 1
        assert verifier.rejected == 1

    def test_each_access_uses_fresh_id(self, issuer, verifier):
        capability = grant(issuer, count=4)
        for ticket in capability.tickets:
            assert verifier.verify(ticket, capability.capability_id, "read").value
        assert len(verifier.observed_ticket_ids()) == 4

    def test_action_outside_grant_rejected(self, issuer, verifier):
        capability = grant(issuer, actions=("read",))
        ticket = capability.tickets[0]
        assert not verifier.verify(ticket, capability.capability_id, "write").value

    def test_forged_ticket_rejected(self, issuer, verifier):
        capability = grant(issuer)
        forged = AccessTicket(
            ticket_id="tkt-forged",
            mac="0" * 64,
            actions=("read",),
            resource="sensor/feed",
        )
        assert not verifier.verify(forged, capability.capability_id, "read").value

    def test_ticket_bound_to_its_capability(self, issuer, verifier):
        cap_a = grant(issuer, grantee="a")
        cap_b = grant(issuer, grantee="b")
        # A ticket from capability A fails under capability B's key.
        assert not verifier.verify(cap_a.tickets[0], cap_b.capability_id, "read").value

    def test_revoked_capability_rejected(self, issuer, verifier):
        capability = grant(issuer)
        issuer.revoke_capability(capability.capability_id)
        assert not verifier.verify(
            capability.tickets[0], capability.capability_id, "read"
        ).value

    def test_cross_owner_tickets_rejected(self):
        issuer_a = AnonymousAccessIssuer(b"secret-a")
        issuer_b = AnonymousAccessIssuer(b"secret-b")
        verifier_b = AnonymousAccessVerifier(issuer_b)
        capability = issuer_a.grant("lender", "sensor/feed", ("read",))
        assert not verifier_b.verify(
            capability.tickets[0], capability.capability_id, "read"
        ).value


class TestUnlinkability:
    def test_verifier_view_carries_no_identity(self, issuer, verifier):
        capability = grant(issuer, grantee="lender-real-42", count=3)
        for ticket in capability.tickets:
            verifier.verify(ticket, capability.capability_id, "read")
        for observed in verifier.observed_ticket_ids():
            assert "42" not in observed
            assert "lender" not in observed

    def test_two_lenders_tickets_indistinguishable_in_form(self, issuer):
        cap_a = grant(issuer, grantee="lender-a")
        cap_b = grant(issuer, grantee="lender-b")
        # Same shape: same prefix and length, nothing identity-derived.
        sample_a = cap_a.tickets[0].ticket_id
        sample_b = cap_b.tickets[0].ticket_id
        assert sample_a.split("-")[0] == sample_b.split("-")[0]
        assert len(sample_a) == len(sample_b)

    def test_dispute_resolution_via_owner_ledger(self, issuer, verifier):
        """Accountability without identity exposure: the owner (alone)
        can attribute a misused capability."""
        capability = grant(issuer, grantee="lender-misbehaving")
        verifier.verify(capability.tickets[0], capability.capability_id, "read")
        # The verifier only knows the capability id; the owner resolves it.
        assert issuer.attribute(capability.capability_id) == "lender-misbehaving"
