"""Tests for trace replay (paired-comparison support)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.mobility import (
    HighwayModel,
    MobilityTrace,
    TraceRecorder,
    TraceReplayModel,
)
from repro.sim import ScenarioConfig, World


def record_highway_trace(seed=33, vehicles=6, duration=20.0):
    world = World(ScenarioConfig(seed=seed))
    model = HighwayModel(world)
    model.populate(vehicles)
    model.start()
    recorder = TraceRecorder(world, model, interval_s=1.0)
    recorder.start()
    world.run_for(duration)
    return recorder.trace


class TestTraceReplay:
    def test_empty_trace_rejected(self):
        world = World(ScenarioConfig(seed=1))
        with pytest.raises(ConfigurationError):
            TraceReplayModel(world, MobilityTrace())

    def test_populate_from_trace_creates_all_vehicles(self):
        trace = record_highway_trace()
        world = World(ScenarioConfig(seed=2))
        replay = TraceReplayModel(world, trace)
        created = replay.populate_from_trace()
        assert len(created) == len(trace.vehicle_ids())

    def test_replay_follows_recorded_positions(self):
        trace = record_highway_trace()
        world = World(ScenarioConfig(seed=3))
        replay = TraceReplayModel(world, trace)
        created = replay.populate_from_trace()
        replay.start()
        world.run_for(10.0)
        for vehicle in created:
            source_id = vehicle.vehicle_id.replace("replay-", "", 1)
            expected = trace.position_at(source_id, trace.points[0].time + world.now)
            assert expected is not None
            assert vehicle.position.distance_to(expected) < 1e-6

    def test_replay_is_identical_across_runs(self):
        trace = record_highway_trace()

        def run():
            world = World(ScenarioConfig(seed=99))
            replay = TraceReplayModel(world, trace)
            created = replay.populate_from_trace()
            replay.start()
            world.run_for(15.0)
            return [(round(v.position.x, 9), round(v.position.y, 9)) for v in created]

        assert run() == run()

    def test_manual_spawn_rejected(self):
        trace = record_highway_trace()
        world = World(ScenarioConfig(seed=4))
        replay = TraceReplayModel(world, trace)
        with pytest.raises(ConfigurationError):
            replay.populate(1)

    def test_paired_comparison_use_case(self):
        """Two different protocols can be evaluated on one mobility
        realization — the reason replay exists."""
        trace = record_highway_trace()

        def final_spread(marker):
            world = World(ScenarioConfig(seed=hash(marker) % 1000 + 1))
            replay = TraceReplayModel(world, trace)
            created = replay.populate_from_trace()
            replay.start()
            world.run_for(12.0)
            xs = [v.position.x for v in created]
            return max(xs) - min(xs)

        # Identical mobility regardless of the world seed.
        assert final_spread("protocol-a") == pytest.approx(final_spread("protocol-b"))
