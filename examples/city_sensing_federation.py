#!/usr/bin/env python3
"""City-scale sensing with federated v-clouds and forensic audit.

An urban grid hosts two dynamic v-clouds that merge and split as traffic
flows (§V.A group management).  The federated clouds answer
data-as-a-service sensing queries ("mean speed near the central
intersection?", Azizian-style DaaS), lenders access shared data through
single-use anonymous tickets (§V.C), and at the end the authority runs a
privacy-priced forensic investigation against a misbehaving capability.

Run:  python examples/city_sensing_federation.py
"""

from __future__ import annotations

from repro import ScenarioConfig, World
from repro.analysis import render_table
from repro.core import (
    CloudFederation,
    SensingQuery,
    SensingService,
    TopologyRecorder,
    VehicularCloud,
)
from repro.geometry import Vec2
from repro.mobility import ManhattanGrid, ManhattanModel, SensorKind
from repro.security.access import AnonymousAccessIssuer, AnonymousAccessVerifier


def main() -> None:
    world = World(ScenarioConfig(seed=61))
    grid = ManhattanGrid(blocks_x=4, blocks_y=4, block_size_m=300)
    model = ManhattanModel(world, grid)
    vehicles = model.populate(30)
    model.start()
    lookup = {vehicle.vehicle_id: vehicle for vehicle in vehicles}

    # Two seed clouds in opposite corners of the city.
    west = VehicularCloud(world, "west-vc")
    east = VehicularCloud(world, "east-vc")
    for vehicle in vehicles[:15]:
        west.admit(vehicle)
    for vehicle in vehicles[15:]:
        east.admit(vehicle)

    federation = CloudFederation(
        world, lookup.get, merge_range_m=250.0, max_diameter_m=900.0,
        check_interval_s=5.0,
    )
    federation.register(west)
    federation.register(east)
    federation.start()

    # Management record for later audits.
    recorder = TopologyRecorder(
        world, lambda vehicle: vehicle.vehicle_id, vehicles, interval_s=10.0
    )
    recorder.start()

    # Let the city move; clouds merge/split as vehicles flow.
    world.run_for(120.0)

    # Data-as-a-service: speed field around the central intersection.
    sensing = SensingService(world, vehicles)
    center = Vec2(grid.width_m / 2, grid.height_m / 2)
    speed_answer = sensing.query(
        SensingQuery(SensorKind.SPEEDOMETER, center, radius_m=700.0, min_readings=3)
    )
    density_answer = sensing.query(
        SensingQuery(SensorKind.RADAR, center, radius_m=700.0, min_readings=2)
    )

    # Anonymous per-access data lending (§V.C): single-use tickets.
    issuer = AnonymousAccessIssuer(owner_secret=b"fleet-owner-secret")
    verifier = AnonymousAccessVerifier(issuer)
    capability = issuer.grant(
        "lender-vehicle-9", "sensing/speed-field", ("read",), ticket_count=4
    )
    reads_ok = sum(
        1
        for ticket in capability.tickets
        if verifier.verify(ticket, capability.capability_id, "read").value
    )
    replay_blocked = not verifier.verify(
        capability.tickets[0], capability.capability_id, "read"
    ).value
    # The misused capability is attributed by the owner, not the verifier.
    attributed = issuer.attribute(capability.capability_id)

    rows = [
        ["clouds after 2 min of mobility", federation.cloud_count()],
        ["merges / splits", f"{federation.merges} / {federation.splits}"],
        ["members under federation", federation.total_members()],
        ["mean speed near centre (m/s)", speed_answer.value],
        ["speed readings used", speed_answer.readings_used],
        ["radar density answer (contacts)", density_answer.value],
        ["sensing latency (ms)", speed_answer.latency_s * 1000],
        ["anonymous reads honoured", reads_ok],
        ["replayed ticket blocked", replay_blocked],
        ["misuse attributed by owner to", attributed],
        ["topology records held (privacy cost)", recorder.storage_records],
    ]
    print(render_table(["metric", "value"], rows, title="City sensing over federated v-clouds"))
    assert speed_answer.answered
    assert reads_ok == 4 and replay_blocked


if __name__ == "__main__":
    main()
