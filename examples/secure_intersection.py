#!/usr/bin/env python3
"""Secure intersection crossing: authentication + trust under attack.

The paper's running safety example: vehicles approaching an intersection
must (1) authenticate each other within a strict time budget, (2) judge
whether a broadcast EMERGENCY_BRAKE warning is real before acting on it
("wrong actions taken based on erroneous information may not be
undone"), while (3) a collusion ring fabricates a phantom braking event
and a tracking adversary tries to follow vehicles across pseudonym
changes.

Run:  python examples/secure_intersection.py
"""

from __future__ import annotations

from repro import ScenarioConfig, World
from repro.analysis import render_table
from repro.attacks import CollusionRing, TrackingAdversary
from repro.geometry import Vec2
from repro.mobility import ManhattanGrid, ManhattanModel
from repro.net import BeaconService, VehicleNode, WirelessChannel
from repro.security import TrustedAuthority
from repro.security.protocols import HybridAuthProtocol
from repro.trust import (
    EventKind,
    GroundTruthEvent,
    MessageClassifier,
    ReputationStore,
    TrustPipeline,
    WeightedVoting,
    honest_report,
)


def main() -> None:
    world = World(ScenarioConfig(seed=47))
    grid = ManhattanGrid(blocks_x=3, blocks_y=3, block_size_m=300)
    model = ManhattanModel(world, grid)
    vehicles = model.populate(20)
    model.start()

    channel = WirelessChannel(world)
    nodes = [VehicleNode(world, channel, vehicle) for vehicle in model.vehicles]

    # --- authentication within the time budget -------------------------
    authority = TrustedAuthority()
    protocol = HybridAuthProtocol(authority)
    for vehicle in vehicles:
        protocol.enroll(vehicle.vehicle_id)
    # Approaching pairs authenticate; the paper's budget: "must be done
    # in seconds".
    budget_s = 1.0
    first = protocol.mutual_authenticate(
        vehicles[0].vehicle_id, vehicles[1].vehicle_id, now=world.now
    )
    repeat = protocol.mutual_authenticate(
        vehicles[0].vehicle_id, vehicles[1].vehicle_id, now=world.now + 1.0
    )

    # Beacons carry rotating pseudonyms; a global tracker listens.
    tracker = TrackingAdversary(channel, gate_m=40.0)
    services = []
    for vehicle, node in zip(vehicles, nodes):
        provider = protocol._rotators[vehicle.vehicle_id]
        service = BeaconService(world, node, identity_provider=provider)
        service.start()
        services.append(service)
    # Long enough for several pseudonym rotations (default 60 s interval),
    # so the tracker has real linking work to do.
    world.run_for(150.0)

    # --- a phantom emergency-brake event --------------------------------
    intersection = Vec2(300, 300)
    phantom = GroundTruthEvent(
        "phantom-brake", EventKind.EMERGENCY_BRAKE, intersection, world.now, exists=False
    )
    ring = CollusionRing([f"ghost-{i}" for i in range(4)], world.rng.fork("ring"))
    fabricated = ring.smear(phantom, world.now)  # colluders claim it happened
    witnesses = [
        honest_report(f"witness-{i}", phantom, world.now + 0.5, path=(f"relay-{i}",))
        for i in range(6)
    ]  # honest vehicles saw nothing

    pipeline = TrustPipeline(
        classifier=MessageClassifier(),
        validator=WeightedVoting(),
        reputation=ReputationStore(),
        per_message_auth_cost_s=protocol.message_auth_cost().verify_cost_s,
    )
    decisions = pipeline.process(fabricated + witnesses)
    verdict = decisions[0]

    owner_of = {}
    for vehicle in vehicles:
        for pseudonym in protocol._pools[vehicle.vehicle_id].pseudonyms:
            owner_of[pseudonym.pseudonym_id] = vehicle.vehicle_id

    rows = [
        ["first-contact handshake (ms)", first.latency_s * 1000],
        ["session handshake (ms)", repeat.latency_s * 1000],
        ["handshakes inside 1 s budget", first.latency_s < budget_s and repeat.latency_s < budget_s],
        ["phantom brake believed", verdict.decision.believe],
        ["phantom trust score", verdict.decision.score],
        ["trust decision latency (ms)", verdict.total_latency_s * 1000],
        ["tracker: fully-tracked fraction", tracker.tracked_fraction(owner_of)],
        ["tracker: linking accuracy", tracker.linking_accuracy(owner_of)],
    ]
    print(render_table(["metric", "value"], rows, title="Secure intersection crossing"))
    assert not verdict.decision.believe, "phantom braking event must be rejected"
    assert first.latency_s < budget_s


if __name__ == "__main__":
    main()
