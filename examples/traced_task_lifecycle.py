#!/usr/bin/env python3
"""One task's causal trace: submit → crash → eviction → handover → recovery.

A small stationary v-cloud runs a single long task.  Mid-execution a
seeded :class:`~repro.faults.FaultInjector` crash-stops the worker; the
lease sweep detects the silent death, evicts the member, and the
checkpoint handover policy re-queues the preserved progress onto a
survivor, which finishes the job.

With tracing attached, all of that is *one trace*: the task's root span,
the interrupted execution span (linked to the ``fault.crash`` span that
caused it), the eviction events, and the second execution that
completed.  The example prints the rendered trace and then asks the
tracer the dependability question the paper's Sec. V cares about —
"which fault broke this execution?" — and checks the answer.

Run:  python examples/traced_task_lifecycle.py
"""

from __future__ import annotations

from repro import ScenarioConfig, World
from repro.analysis import render_table
from repro.core import ResourceOffer, Task, TaskState, VehicularCloud
from repro.faults import FaultInjector, FaultPlan
from repro.geometry import Vec2
from repro.mobility import StationaryModel


def main() -> None:
    world = World(ScenarioConfig(seed=21, error_policy="record"))
    obs = world.enable_observability(profile=True, channel_frames="tagged")
    tracer = obs.tracer
    assert tracer is not None

    # A parked cloud of four vehicles: no mobility churn, so the only
    # disturbance in the trace is the fault we inject.
    model = StationaryModel(world, positions=[Vec2(i * 40.0, 0.0) for i in range(4)])
    vehicles = model.populate(4)
    cloud = VehicularCloud(world, "traced-vc")
    for vehicle in vehicles:
        cloud.admit(vehicle, offer=ResourceOffer(vehicle.vehicle_id, 500.0, 10**9, 1e6))
    cloud.enable_worker_leases(lease_duration_s=3.0, sweep_interval_s=1.0)

    # One long task (~20 s of work on a 500-MIPS member).
    record = cloud.submit(Task(work_mi=10_000.0))
    task_span = cloud.task_span(record.task.task_id)
    assert task_span is not None
    trace_id = task_span.trace_id

    # Crash the worker 5 s in.  The injector stamps a fault.crash span
    # into the same world the task is tracing through.
    worker = record.worker_id
    plan = FaultPlan(seed=9).crash(5.0, target=worker)
    FaultInjector(world, plan, cloud=cloud).arm()

    world.run_for(60.0)

    print(tracer.render_trace(trace_id))
    print()

    # The dependability question: which fault interrupted the execution?
    interrupted = next(
        s for s in tracer.trace(trace_id) if s.name == "task.execute" and s.links
    )
    causes = [s for s in tracer.explain(interrupted) if s.subsystem == "faults"]

    rows = [
        ["task state", record.state.value],
        ["workers tried", len(record.workers_history)],
        ["handovers (work preserved)", cloud.stats.handovers],
        ["lease evictions", cloud.stats.lease_evictions],
        ["spans in trace", len(tracer.trace(trace_id))],
        ["causing fault", f"{causes[0].name} on {causes[0].attrs.get('target')}"],
        ["telemetry events", len(obs.events.records()) if obs.events else 0],
        ["profiled event labels", len(obs.profiler) if obs.profiler else 0],
    ]
    print(render_table(["metric", "value"], rows, title="Traced task lifecycle"))

    assert record.state is TaskState.COMPLETED, "task must recover and finish"
    assert cloud.stats.handovers == 1, "the crash must flow through handover"
    assert causes and causes[0].name == "fault.crash", "trace must name the cause"
    assert causes[0].attrs.get("target") == worker


if __name__ == "__main__":
    main()
