#!/usr/bin/env python3
"""Emergency response: disaster knocks out the RSUs, the v-cloud adapts.

The scenario the paper's introduction motivates: an emergency at the
scene, infrastructure damaged, conventional offload impossible.

Timeline
  t=0     traffic flows; an RSU-anchored v-cloud serves offloaded tasks
  t=30    earthquake: the disaster model destroys every RSU
  t=32    the authority floods an EMERGENCY mode order — pure V2V,
          because no infrastructure survives to relay it
  t=35    a dynamic v-cloud self-organizes from the same vehicles and
          takes over the workload; emergency permission escalation
          grants responders access to brake telemetry in milliseconds

Run:  python examples/emergency_response.py
"""

from __future__ import annotations

from repro import ScenarioConfig, World
from repro.analysis import render_table
from repro.core import (
    DynamicVCloud,
    InfrastructureVCloud,
    ModePropagation,
    Task,
    TaskState,
)
from repro.infra import DisasterModel, deploy_rsus_on_highway
from repro.mobility import Highway, HighwayModel
from repro.net import VehicleNode, WirelessChannel
from repro.security.access import (
    AccessContext,
    AuditLog,
    EmergencyEscalator,
    EmergencyRule,
    OperatingMode,
)


def completion_rate(records) -> float:
    if not records:
        return 0.0
    return sum(1 for r in records if r.state is TaskState.COMPLETED) / len(records)


def main() -> None:
    world = World(ScenarioConfig(seed=13, vehicle_count=30))
    highway = Highway(length_m=3000)
    model = HighwayModel(world, highway)
    model.populate(30)
    model.start()

    channel = WirelessChannel(world)
    nodes = [VehicleNode(world, channel, vehicle) for vehicle in model.vehicles]
    rsus = deploy_rsus_on_highway(world, channel, highway, spacing_m=1500)
    disaster = DisasterModel(world, rsus)

    # Phase 1: the infrastructure-based v-cloud at work.
    infra_cloud = InfrastructureVCloud(world, rsus[0], model)
    infra_cloud.start()
    phase1 = [infra_cloud.cloud.submit(Task(work_mi=600, deadline_s=20)) for _ in range(8)]
    world.run_for(30.0)

    # Phase 2: the earthquake.
    disaster.strike(fraction=1.0)
    phase2 = [infra_cloud.cloud.submit(Task(work_mi=600, deadline_s=20)) for _ in range(8)]

    # The emergency-mode order spreads V2V (no RSU survives).
    propagation = ModePropagation(world, nodes)
    order_id = propagation.issue_order(nodes[0], OperatingMode.EMERGENCY)
    world.run_for(30.0)

    # Phase 3: dynamic failover cloud, zero infrastructure.
    failover = DynamicVCloud(world, model, cloud_id="failover-vc")
    failover.start()
    phase3 = [failover.cloud.submit(Task(work_mi=600, deadline_s=20)) for _ in range(8)]
    world.run_for(30.0)

    # Millisecond-class emergency permission escalation for a responder.
    escalator = EmergencyEscalator([EmergencyRule("sensor/brake_telemetry", "read")])
    audit = AuditLog()
    responder = AccessContext(
        requester="pn-responder", mode=OperatingMode.EMERGENCY, time=world.now
    )
    grant = escalator.request(responder, "sensor/brake_telemetry", "read", audit)

    rows = [
        ["phase 1: infra cloud completion", completion_rate(phase1)],
        ["RSUs surviving the strike", disaster.live_fraction],
        ["phase 2: infra cloud completion", completion_rate(phase2)],
        ["emergency-mode adoption (V2V flood)",
         propagation.adoption_fraction(OperatingMode.EMERGENCY)],
        ["mode propagation latency (ms)",
         (propagation.propagation_latency(order_id, OperatingMode.EMERGENCY) or 0) * 1000],
        ["phase 3: dynamic failover completion", completion_rate(phase3)],
        ["failover infra messages", failover.cloud.stats.infra_messages],
        ["emergency grant issued", grant is not None],
        ["emergency grant latency (ms)", grant.latency_s * 1000 if grant else "n/a"],
        ["escalation audit records", len(audit)],
    ]
    print(render_table(["metric", "value"], rows, title="Emergency response timeline"))
    assert completion_rate(phase2) == 0.0, "infra cloud must collapse with its RSUs"
    assert completion_rate(phase3) > 0.5, "dynamic failover must restore service"


if __name__ == "__main__":
    main()
