#!/usr/bin/env python3
"""Content sharing in a stationary v-cloud (the airport-datacenter idea).

Parked vehicles at a long-term lot pool their storage (Arif et al.'s
"datacenter at the airport").  Media files are replicated across
members; owners wrap sensitive files in sticky data-policy packages so
the policy travels with the data and every access is audit-logged; a
resource directory answers "who can store/serve this?" queries; and as
vehicles drive away, the replication manager repairs lost replicas.

Run:  python examples/content_sharing.py
"""

from __future__ import annotations

from repro import ScenarioConfig, World
from repro.analysis import render_table
from repro.core import (
    FileStore,
    ReplicationManager,
    ResourceDirectory,
    ResourceOffer,
    ResourceQuery,
    StationaryVCloud,
    StoredFile,
)
from repro.mobility import ParkingLotModel
from repro.security.access import (
    AccessContext,
    AuditLog,
    DataPolicyPackage,
    GroupIs,
    Policy,
    PolicyDecisionPoint,
    RoleIs,
    VehicleRole,
    permit,
)


def main() -> None:
    world = World(ScenarioConfig(seed=31))
    # Per-vehicle departure rate: ~0.5/h means roughly a third of the lot
    # leaves over the simulated hour.
    lot = ParkingLotModel(world, departure_rate_per_hour=0.5, arrivals_enabled=False)
    vehicles = lot.populate(40)
    lot.start()

    cloud = StationaryVCloud(world, lot)
    cloud.start()

    # Storage fabric: every member lends a bounded slice of its disk.
    replication = ReplicationManager(world.rng.fork("replication"), repair=True)
    directory = ResourceDirectory()
    for vehicle in vehicles:
        replication.add_store(FileStore(vehicle.vehicle_id, capacity_bytes=2 * 10**9))
        directory.register(ResourceOffer.from_equipment(vehicle.vehicle_id, vehicle.equipment))
    lot.on_departure(lambda v: replication.remove_store(v.vehicle_id))
    lot.on_departure(lambda v: directory.deregister(v.vehicle_id))

    # Publish a content catalogue with 3-way replication.
    for index in range(25):
        replication.store_file(
            StoredFile(f"movie-{index}", size_bytes=50_000_000, target_replicas=3)
        )

    # A privacy-sensitive file travels as a sticky data-policy package:
    # only fleet-A storage nodes may read it, and every attempt is logged.
    policy = Policy("fleet-a-only").add_rule(
        permit(
            "storage-read",
            ["read"],
            "media/private",
            RoleIs(VehicleRole.STORAGE_NODE) & GroupIs("fleet-a"),
        )
    )
    package = DataPolicyPackage(
        b"dashcam footage" * 1000, policy, owner="pn-owner-77", resource="media/private"
    )
    pdp = PolicyDecisionPoint()
    audit = AuditLog()
    authorized = AccessContext(
        requester="pn-42", role=VehicleRole.STORAGE_NODE, group_id="fleet-a", time=1.0
    )
    snooper = AccessContext(
        requester="pn-99", role=VehicleRole.MEMBER, group_id="fleet-b", time=2.0
    )
    granted = package.access(authorized, "read", pdp, audit)
    denied = package.access(snooper, "read", pdp, audit)

    # One virtual hour of departures; repair keeps the catalogue alive.
    world.run_for(3600.0)

    # Directory query: a member looks for a high-capacity serving node.
    query = ResourceQuery(min_storage_bytes=10**9, min_bandwidth_bps=1e6, limit=3)
    matches = directory.search(query)

    reads_ok = sum(1 for i in range(25) if replication.read(f"movie-{i}") is not None)
    rows = [
        ["vehicles initially parked", 40],
        ["vehicles remaining", len(lot.vehicles)],
        ["catalogue availability", replication.availability()],
        ["successful reads (of 25)", reads_ok],
        ["repair transfers paid", replication.repair_transfers],
        ["directory matches for serving query", len(matches)],
        ["private file: authorized read ok", granted.permitted],
        ["private file: snooper denied", not denied.permitted],
        ["audit records written", len(audit)],
        ["package integrity intact", package.verify_integrity()],
    ]
    print(render_table(["metric", "value"], rows, title="Stationary v-cloud content sharing"))
    assert granted.permitted and not denied.permitted


if __name__ == "__main__":
    main()
