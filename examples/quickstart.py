#!/usr/bin/env python3
"""Quickstart: form a dynamic vehicular cloud and run tasks on it.

Thirty autonomous vehicles drive a 4 km highway.  A dynamic v-cloud
self-organizes around an elected captain (no RSUs anywhere), pools the
members' on-board compute, and executes a stream of offloaded tasks —
handing unfinished work over when a member drives out of range.

Run:  python examples/quickstart.py

Set ``REPRO_TRACE_EXPORT=<path>`` to run the same scenario with causal
tracing + profiling enabled and export the trace as JSONL to ``<path>``
(plus a JSON run report next to it) — seeded results are identical
either way, which CI's smoke job asserts.
"""

from __future__ import annotations

import os

from repro import ScenarioConfig, World, write_json_report
from repro.analysis import render_table
from repro.core import DynamicVCloud, Task, TaskState
from repro.mobility import Highway, HighwayModel


def main() -> None:
    # 1. A world: engine + seeded RNG + metrics, all from one config.
    world = World(ScenarioConfig(seed=7, vehicle_count=30))
    trace_path = os.environ.get("REPRO_TRACE_EXPORT")
    obs = None
    if trace_path:
        obs = world.enable_observability(profile=True)

    # 2. Mobility substrate: vehicles on a highway.
    model = HighwayModel(world, Highway(length_m=4000))
    model.populate(30)
    model.start()

    # 3. The paper's dynamic v-cloud: self-organized, pure V2V.
    arch = DynamicVCloud(world, model)
    arch.start()

    # 4. Offload a task stream.
    records = []
    for index in range(12):
        world.engine.schedule_at(
            index * 2.0,
            lambda: records.append(
                arch.cloud.submit(Task(work_mi=1500.0, deadline_s=30.0))
            ),
            label="submit",
        )

    # 5. Run one virtual minute.
    world.run_for(60.0)

    completed = [r for r in records if r.state is TaskState.COMPLETED]
    rows = [
        ["members in cloud", arch.cloud.member_count()],
        ["captain", arch.cloud.head_id],
        ["elections held", arch.elections_held],
        ["tasks submitted", len(records)],
        ["tasks completed", len(completed)],
        ["mean completion latency (s)", arch.cloud.stats.mean_latency_s],
        ["deadline hit rate", arch.cloud.stats.deadline_hit_rate],
        ["handovers (work preserved)", arch.cloud.stats.handovers],
        ["infrastructure messages", arch.cloud.stats.infra_messages],
    ]
    print(render_table(["metric", "value"], rows, title="Dynamic v-cloud quickstart"))
    assert arch.cloud.stats.infra_messages == 0, "dynamic v-cloud must be RSU-free"

    if obs is not None and obs.tracer is not None and trace_path:
        exported = obs.tracer.export_jsonl(trace_path)
        write_json_report(
            trace_path + ".report.json",
            metrics=world.metrics,
            tracer=obs.tracer,
            events=obs.events,
            profiler=obs.profiler,
            meta={"example": "quickstart", "seed": 7},
        )
        print(f"exported {exported} spans to {trace_path}")
        assert exported > 0, "traced run must produce spans"


if __name__ == "__main__":
    main()
