"""Road-side units (RSUs).

An RSU is a fixed radio node with a wired backhaul to the central cloud
and the trusted authority.  The paper's infrastructure-reliance argument
is quantified by counting how much of a workload's traffic must transit
an RSU — and by what breaks when :mod:`repro.infra.damage` turns them off.
"""

from __future__ import annotations

import itertools
from typing import Callable, List, Optional

from ..geometry import Vec2
from ..net.channel import WirelessChannel
from ..net.messages import Message
from ..net.node import FixedNode
from ..sim.world import World

_rsu_counter = itertools.count(1)


def next_rsu_id() -> str:
    """Return a fresh process-unique RSU id."""
    return f"rsu-{next(_rsu_counter)}"


class Rsu(FixedNode):
    """A road-side unit: local radio plus wired backhaul."""

    def __init__(
        self,
        world: World,
        channel: WirelessChannel,
        position: Vec2,
        rsu_id: Optional[str] = None,
        radio_range_m: Optional[float] = None,
    ) -> None:
        range_m = (
            radio_range_m if radio_range_m is not None else world.config.channel.rsu_range_m
        )
        super().__init__(
            world, channel, rsu_id if rsu_id is not None else next_rsu_id(), position, range_m
        )
        self.backhaul_delay_s = world.config.channel.wired_backhaul_delay_s
        self._backhaul_peers: List["Rsu"] = []
        self.damaged = False

    # -- backhaul -----------------------------------------------------------

    def connect_backhaul(self, peer: "Rsu") -> None:
        """Wire this RSU to a peer RSU (bidirectional)."""
        if peer not in self._backhaul_peers:
            self._backhaul_peers.append(peer)
        if self not in peer._backhaul_peers:
            peer._backhaul_peers.append(self)

    def backhaul_peers(self) -> List["Rsu"]:
        """Return RSUs reachable over the wired backhaul."""
        return list(self._backhaul_peers)

    def forward_via_backhaul(
        self, peer: "Rsu", message: Message, on_delivered: Optional[Callable[[], None]] = None
    ) -> bool:
        """Send a message to a peer RSU over the wire.

        Returns False when either end is damaged/offline.
        """
        if self.damaged or peer.damaged or not peer.online:
            self.world.metrics.increment("infra/backhaul_failures")
            return False
        self.world.metrics.increment("infra/backhaul_messages")

        def _deliver() -> None:
            peer.deliver(message, self.node_id)
            if on_delivered is not None:
                on_delivered()

        self.world.engine.schedule(self.backhaul_delay_s, _deliver, label="backhaul")
        return True

    # -- damage -----------------------------------------------------------------

    def damage(self) -> None:
        """Take the RSU out of service (disaster model)."""
        self.damaged = True
        self.go_offline()

    def repair(self) -> None:
        """Return the RSU to service."""
        self.damaged = False
        self.go_online()

    def covers(self, position: Vec2) -> bool:
        """Return True if a point is inside this RSU's radio coverage."""
        return self.position.distance_to(position) <= self.radio_range_m
