"""Infrastructure substrate: RSUs, base stations, central cloud, disasters."""

from .base_station import BaseStation, next_base_station_id
from .central_cloud import CentralCloud, CloudResponse
from .damage import DisasterModel
from .deployment import (
    coverage_fraction,
    deploy_base_station,
    deploy_rsus_on_grid,
    deploy_rsus_on_highway,
)
from .rsu import Rsu, next_rsu_id

__all__ = [
    "BaseStation",
    "CentralCloud",
    "CloudResponse",
    "DisasterModel",
    "Rsu",
    "coverage_fraction",
    "deploy_base_station",
    "deploy_rsus_on_grid",
    "deploy_rsus_on_highway",
    "next_base_station_id",
    "next_rsu_id",
]
