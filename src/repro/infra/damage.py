"""Disaster / infrastructure-damage model.

The paper motivates dynamic v-clouds with disasters that damage RSUs
(§II.C, §V.A: earthquakes, hurricanes).  A :class:`DisasterModel`
disables a configurable fraction of infrastructure at a scheduled time
and optionally repairs it later, letting experiments E2 and E10 measure
what each architecture loses when the infrastructure goes away.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from ..errors import ConfigurationError
from ..sim.world import World
from .base_station import BaseStation
from .rsu import Rsu

Damageable = Union[Rsu, BaseStation]


class DisasterModel:
    """Schedules damage and repair of infrastructure nodes."""

    def __init__(self, world: World, infrastructure: Sequence[Damageable]) -> None:
        self.world = world
        self.infrastructure = list(infrastructure)
        self.rng = world.rng.fork("disaster")
        self.damaged_nodes: List[Damageable] = []

    def strike(self, fraction: float) -> List[Damageable]:
        """Immediately damage a random fraction of the infrastructure."""
        if not 0.0 <= fraction <= 1.0:
            raise ConfigurationError("fraction must be in [0, 1]")
        intact = [node for node in self.infrastructure if not node.damaged]
        count = round(len(intact) * fraction)
        victims = self.rng.sample(intact, count) if count else []
        for node in victims:
            node.damage()
            self.damaged_nodes.append(node)
        self.world.metrics.increment("disaster/strikes")
        self.world.metrics.increment("disaster/nodes_damaged", len(victims))
        return victims

    def schedule_strike(self, at_time: float, fraction: float) -> None:
        """Damage ``fraction`` of the infrastructure at virtual ``at_time``."""
        self.world.engine.schedule_at(
            at_time, lambda: self.strike(fraction), label="disaster-strike"
        )

    def repair_all(self) -> int:
        """Repair every damaged node; returns the repair count."""
        count = 0
        for node in list(self.damaged_nodes):
            node.repair()
            self.damaged_nodes.remove(node)
            count += 1
        self.world.metrics.increment("disaster/nodes_repaired", count)
        return count

    def repair_one(self) -> Optional[Damageable]:
        """Repair the longest-damaged node; None when nothing is damaged."""
        if not self.damaged_nodes:
            return None
        node = self.damaged_nodes.pop(0)
        node.repair()
        self.world.metrics.increment("disaster/nodes_repaired")
        return node

    def schedule_repair(self, at_time: float) -> None:
        """Repair all damaged nodes at virtual ``at_time``."""
        self.world.engine.schedule_at(at_time, self.repair_all, label="disaster-repair")

    def schedule_staggered_repair(self, at_time: float, interval_s: float) -> None:
        """Repair damaged nodes one at a time from ``at_time`` onward.

        One node returns to service every ``interval_s`` seconds — the
        partial-capacity recovery ramp real repair crews produce, as
        opposed to :meth:`schedule_repair`'s instantaneous restoration.
        The set of nodes to repair is whatever is damaged when the ramp
        starts.
        """
        if interval_s <= 0:
            raise ConfigurationError("interval_s must be positive")

        def _begin() -> None:
            for index in range(len(self.damaged_nodes)):
                self.world.engine.schedule(
                    index * interval_s, self.repair_one, label="disaster-staggered-repair"
                )

        self.world.engine.schedule_at(at_time, _begin, label="disaster-repair-start")

    @property
    def live_fraction(self) -> float:
        """Fraction of infrastructure currently in service."""
        if not self.infrastructure:
            return 0.0
        live = sum(1 for node in self.infrastructure if not node.damaged)
        return live / len(self.infrastructure)
