"""Cellular base stations.

Base stations provide the wide-area uplink of the *mobile cloud*
configuration in the paper's Fig. 2 comparison.  They have long radio
range but add WAN latency toward the central cloud, and only vehicles
carrying a cellular radio can use them.
"""

from __future__ import annotations

import itertools
from typing import Optional

from ..geometry import Vec2
from ..mobility.equipment import RadioKind
from ..mobility.vehicle import Vehicle
from ..net.channel import WirelessChannel
from ..net.node import FixedNode
from ..sim.world import World

_bs_counter = itertools.count(1)


def next_base_station_id() -> str:
    """Return a fresh process-unique base-station id."""
    return f"bs-{next(_bs_counter)}"


class BaseStation(FixedNode):
    """A cellular tower with wide coverage and WAN backhaul."""

    def __init__(
        self,
        world: World,
        channel: WirelessChannel,
        position: Vec2,
        station_id: Optional[str] = None,
        radio_range_m: Optional[float] = None,
    ) -> None:
        range_m = (
            radio_range_m
            if radio_range_m is not None
            else world.config.channel.base_station_range_m
        )
        super().__init__(
            world,
            channel,
            station_id if station_id is not None else next_base_station_id(),
            position,
            range_m,
        )
        self.wan_delay_s = world.config.channel.wan_delay_s
        self.damaged = False

    def can_serve(self, vehicle: Vehicle) -> bool:
        """True if the vehicle has a cellular radio and is in coverage."""
        if self.damaged or not self.online:
            return False
        if not vehicle.equipment.has_radio(RadioKind.CELLULAR):
            return False
        return self.position.distance_to(vehicle.position) <= self.radio_range_m

    def damage(self) -> None:
        """Take the station out of service (disaster model)."""
        self.damaged = True
        self.go_offline()

    def repair(self) -> None:
        """Return the station to service."""
        self.damaged = False
        self.go_online()
