"""Infrastructure deployment generators.

Helpers that place RSUs along a highway or at grid intersections with a
given density, so the infrastructure-reliance axis (paper Fig. 2) can be
swept as a scalar parameter.
"""

from __future__ import annotations

from typing import List

from ..errors import ConfigurationError
from ..geometry import Vec2
from ..mobility.road import Highway, ManhattanGrid
from ..net.channel import WirelessChannel
from ..sim.world import World
from .base_station import BaseStation
from .rsu import Rsu


def deploy_rsus_on_highway(
    world: World,
    channel: WirelessChannel,
    highway: Highway,
    spacing_m: float,
    chain_backhaul: bool = True,
) -> List[Rsu]:
    """Place RSUs every ``spacing_m`` metres along the median.

    With ``chain_backhaul`` the RSUs are wired to their neighbors,
    forming the linear backhaul typical of corridor deployments.
    """
    if spacing_m <= 0:
        raise ConfigurationError("spacing_m must be positive")
    positions = []
    x = spacing_m / 2.0
    while x < highway.length_m:
        positions.append(Vec2(x, 0.0))
        x += spacing_m
    rsus = [Rsu(world, channel, position) for position in positions]
    if chain_backhaul:
        for left, right in zip(rsus, rsus[1:]):
            left.connect_backhaul(right)
    return rsus


def deploy_rsus_on_grid(
    world: World,
    channel: WirelessChannel,
    grid: ManhattanGrid,
    every_nth_intersection: int = 2,
    mesh_backhaul: bool = True,
) -> List[Rsu]:
    """Place RSUs at every ``n``-th grid intersection."""
    if every_nth_intersection < 1:
        raise ConfigurationError("every_nth_intersection must be >= 1")
    rsus: List[Rsu] = []
    for i in range(0, grid.blocks_x + 1, every_nth_intersection):
        for j in range(0, grid.blocks_y + 1, every_nth_intersection):
            position = Vec2(i * grid.block_size_m, j * grid.block_size_m)
            rsus.append(Rsu(world, channel, position))
    if mesh_backhaul:
        for index, rsu in enumerate(rsus):
            for other in rsus[index + 1 :]:
                if rsu.position.distance_to(other.position) <= 2.5 * every_nth_intersection * grid.block_size_m:
                    rsu.connect_backhaul(other)
    return rsus


def deploy_base_station(
    world: World,
    channel: WirelessChannel,
    center: Vec2,
) -> BaseStation:
    """Place one wide-coverage base station at ``center``."""
    return BaseStation(world, channel, center)


def coverage_fraction(rsus: List[Rsu], points: List[Vec2]) -> float:
    """Fraction of sample points covered by at least one live RSU."""
    if not points:
        return 0.0
    covered = sum(
        1
        for point in points
        if any(rsu.covers(point) and not rsu.damaged for rsu in rsus)
    )
    return covered / len(points)
