"""The conventional central cloud endpoint.

Used as the *conventional cloud* arm of the Fig. 2 comparison (E1) and
as the upstream the infrastructure-based v-cloud offloads to.  Requests
reach it through an RSU or base station, pay WAN latency both ways, and
are processed with ample-but-not-infinite capacity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..errors import ConfigurationError
from ..sim.world import World


@dataclass(frozen=True)
class CloudResponse:
    """Result of a central-cloud request."""

    request_id: str
    completed_at: float
    queue_delay_s: float
    processing_s: float


class CentralCloud:
    """A datacenter with a WAN in front and a work queue inside."""

    def __init__(
        self,
        world: World,
        compute_mips: float = 500_000.0,
        wan_delay_s: Optional[float] = None,
    ) -> None:
        if compute_mips <= 0:
            raise ConfigurationError("compute_mips must be positive")
        self.world = world
        self.compute_mips = compute_mips
        self.wan_delay_s = (
            wan_delay_s if wan_delay_s is not None else world.config.channel.wan_delay_s
        )
        #: Virtual time at which the last queued job finishes.
        self._busy_until = 0.0
        self.requests_served = 0

    def submit(
        self,
        request_id: str,
        work_mi: float,
        on_complete: Callable[[CloudResponse], None],
    ) -> None:
        """Process ``work_mi`` million instructions; respond via callback.

        The response callback fires after uplink WAN delay, queueing,
        processing, and downlink WAN delay.
        """
        if work_mi < 0:
            raise ConfigurationError("work_mi must be non-negative")
        arrival = self.world.now + self.wan_delay_s
        start = max(arrival, self._busy_until)
        processing = work_mi / self.compute_mips
        finish = start + processing
        self._busy_until = finish
        queue_delay = start - arrival
        respond_at = finish + self.wan_delay_s
        self.requests_served += 1
        self.world.metrics.increment("central_cloud/requests")

        def _respond() -> None:
            on_complete(
                CloudResponse(
                    request_id=request_id,
                    completed_at=self.world.now,
                    queue_delay_s=queue_delay,
                    processing_s=processing,
                )
            )

        self.world.engine.schedule_at(respond_at, _respond, label="cloud-response")

    @property
    def backlog_s(self) -> float:
        """Seconds of work currently queued ahead of a new arrival."""
        return max(0.0, self._busy_until - self.world.now)
