"""The conventional central cloud endpoint.

Used as the *conventional cloud* arm of the Fig. 2 comparison (E1), as
the upstream the infrastructure-based v-cloud offloads to, and as the
``cloud`` tier of the tiered federation (``repro.tier``).  Requests
reach it through an RSU or base station, pay WAN latency both ways, and
are processed with ample-but-not-infinite capacity.

Failures are typed and ledgered (``failure_reasons``), mirroring the
:class:`~repro.core.vcloud.VehicularCloud` contract: a cancelled or
deadline-lapsed request lands in the ledger instead of vanishing, so
tier-level conservation checks can reconcile remote work exactly.  The
queue is no longer opaque — :meth:`queue_delay_estimate` exposes the
standing delay a new arrival would face, which the tier health tracker
and :class:`~repro.core.capacity.BacklogEstimator` consumers read
instead of guessing from response latencies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from ..errors import ConfigurationError
from ..sim.engine import EventHandle
from ..sim.world import World


@dataclass(frozen=True)
class CloudResponse:
    """Result of a central-cloud request."""

    request_id: str
    completed_at: float
    queue_delay_s: float
    processing_s: float


@dataclass
class _PendingRequest:
    """One accepted request awaiting its response callback."""

    request_id: str
    work_mi: float
    finish_at: float
    response_handle: EventHandle
    on_failure: Optional[Callable[[str], None]] = None


class CentralCloud:
    """A datacenter with a WAN in front and a work queue inside."""

    def __init__(
        self,
        world: World,
        compute_mips: float = 500_000.0,
        wan_delay_s: Optional[float] = None,
    ) -> None:
        if compute_mips <= 0:
            raise ConfigurationError("compute_mips must be positive")
        self.world = world
        self.compute_mips = compute_mips
        self.wan_delay_s = (
            wan_delay_s if wan_delay_s is not None else world.config.channel.wan_delay_s
        )
        #: Virtual time at which the last queued job finishes.
        self._busy_until = 0.0
        self.requests_served = 0
        self.requests_failed = 0
        #: Terminal failures broken down by typed reason (``cancelled``,
        #: ``speculation_cancelled``, ...), mirroring ``CloudStats``.
        self.failure_reasons: Dict[str, int] = {}
        self._pending: Dict[str, _PendingRequest] = {}

    def submit(
        self,
        request_id: str,
        work_mi: float,
        on_complete: Callable[[CloudResponse], None],
        on_failure: Optional[Callable[[str], None]] = None,
    ) -> None:
        """Process ``work_mi`` million instructions; respond via callback.

        The response callback fires after uplink WAN delay, queueing,
        processing, and downlink WAN delay.  ``on_failure`` (optional)
        receives the typed reason if the request is cancelled before
        its response fires.
        """
        if work_mi < 0:
            raise ConfigurationError("work_mi must be non-negative")
        arrival = self.world.now + self.wan_delay_s
        start = max(arrival, self._busy_until)
        processing = work_mi / self.compute_mips
        finish = start + processing
        self._busy_until = finish
        queue_delay = start - arrival
        respond_at = finish + self.wan_delay_s
        self.world.metrics.increment("central_cloud/requests")

        def _respond() -> None:
            self._pending.pop(request_id, None)
            self.requests_served += 1
            on_complete(
                CloudResponse(
                    request_id=request_id,
                    completed_at=self.world.now,
                    queue_delay_s=queue_delay,
                    processing_s=processing,
                )
            )

        handle = self.world.engine.schedule_at(
            respond_at, _respond, label="cloud-response"
        )
        self._pending[request_id] = _PendingRequest(
            request_id=request_id,
            work_mi=work_mi,
            finish_at=finish,
            response_handle=handle,
            on_failure=on_failure,
        )

    def cancel(self, request_id: str, reason: str = "cancelled") -> bool:
        """Cancel an accepted request before its response fires.

        The cancellation is a terminal, typed failure: it lands in
        ``failure_reasons`` and the metrics ledger, and the request's
        ``on_failure`` callback (when given) is invoked with the reason
        — the same contract :meth:`~repro.core.vcloud.VehicularCloud.cancel`
        gives speculative replicas.  Returns False when the request is
        unknown or already responded.  Reserved processing time is
        reclaimed when the job had not started yet.
        """
        pending = self._pending.pop(request_id, None)
        if pending is None:
            return False
        pending.response_handle.cancel()
        # Reclaim the queue slot if processing had not begun; work
        # already underway (or done, awaiting the downlink) is sunk.
        start = pending.finish_at - pending.work_mi / self.compute_mips
        if start >= self.world.now and pending.finish_at >= self._busy_until:
            self._busy_until = max(self.world.now, start)
        self._fail(pending, reason)
        return True

    def _fail(self, pending: _PendingRequest, reason: str) -> None:
        self.requests_failed += 1
        self.failure_reasons[reason] = self.failure_reasons.get(reason, 0) + 1
        self.world.metrics.increment(f"central_cloud/failures/{reason}")
        if pending.on_failure is not None:
            pending.on_failure(reason)

    @property
    def backlog_s(self) -> float:
        """Seconds of work currently queued ahead of a new arrival."""
        return max(0.0, self._busy_until - self.world.now)

    def queue_delay_estimate(self) -> float:
        """Queueing delay a request submitted *now* would experience.

        The WAN transit absorbs ``wan_delay_s`` of the backlog before
        the request arrives, so the estimate is the backlog in excess of
        the uplink — exactly the ``queue_delay_s`` the eventual
        :class:`CloudResponse` would report.  Tier health trackers and
        backlog estimators read this instead of inferring load from
        response latencies.
        """
        return max(0.0, self._busy_until - (self.world.now + self.wan_delay_s))

    def pending_requests(self) -> int:
        """Accepted requests whose responses have not fired yet."""
        return len(self._pending)
