"""Plain-text table rendering for experiment reports.

Benchmarks print the same rows the paper's (conceptual) figures imply;
``render_table`` keeps that output aligned and diff-friendly so
EXPERIMENTS.md can quote it verbatim.
"""

from __future__ import annotations

from typing import List, Optional, Sequence


def format_cell(value: object, precision: int = 3) -> str:
    """Format one value for a table cell."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value in (float("inf"), float("-inf")):
            return "inf" if value > 0 else "-inf"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        return f"{value:.{precision}g}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
    precision: int = 3,
) -> str:
    """Render an aligned ASCII table."""
    text_rows: List[List[str]] = [
        [format_cell(cell, precision) for cell in row] for row in rows
    ]
    widths = [len(h) for h in headers]
    for row in text_rows:
        if len(row) != len(headers):
            raise ValueError("every row must match the header width")
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    header_line = " | ".join(h.ljust(widths[i]) for i, h in enumerate(headers))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in text_rows:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def render_comparison(
    label_header: str,
    labels: Sequence[str],
    metric_headers: Sequence[str],
    values: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render a labelled comparison (one row per system under test)."""
    headers = [label_header, *metric_headers]
    rows = [[label, *row] for label, row in zip(labels, values)]
    return render_table(headers, rows, title=title)
