"""Experiment analysis helpers: statistics and report rendering."""

from .topology import (
    TopologyStats,
    connectivity_over_time,
    partition_risk,
    radio_graph,
    topology_stats,
)
from .report import format_cell, render_comparison, render_table
from .stats import (
    confidence_interval_95,
    mean,
    ratio_or_inf,
    running_mean,
    speedup,
    std,
)

__all__ = [
    "TopologyStats",
    "connectivity_over_time",
    "partition_risk",
    "radio_graph",
    "topology_stats",
    "confidence_interval_95",
    "format_cell",
    "mean",
    "ratio_or_inf",
    "render_comparison",
    "render_table",
    "running_mean",
    "speedup",
    "std",
]
