"""Connectivity analytics over the radio topology (networkx-backed).

The paper's basic-supporting-architecture discussion is all about
"topology of groups of vehicles"; these helpers quantify a snapshot:
connected components, the giant-component fraction (can a v-cloud span
the scene at all?), network diameter, and articulation points — the
single vehicles whose departure partitions the cloud, i.e. where a
captain should *not* be placed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import networkx as nx

from ..errors import ConfigurationError
from ..mobility.vehicle import Vehicle
from ..sim.spatial import SpatialGrid


def radio_graph(
    vehicles: Sequence[Vehicle], range_m: float, use_index: bool = True
) -> "nx.Graph":
    """Build the unit-disc radio graph of a vehicle snapshot.

    Edges are discovered through a :class:`SpatialGrid` (O(n·k)) rather
    than the O(n²) pairwise scan; the resulting graph is identical —
    same node set, same edge set, same insertion order.  Snapshots with
    duplicate vehicle ids (which collapse to one graph node anyway) fall
    back to the brute-force path.
    """
    if range_m <= 0:
        raise ConfigurationError("range_m must be positive")
    graph = nx.Graph()
    ordered = list(vehicles)
    for vehicle in ordered:
        graph.add_node(vehicle.vehicle_id)
    if not use_index or graph.number_of_nodes() != len(ordered):
        for index, a in enumerate(ordered):
            for b in ordered[index + 1 :]:
                if a.distance_to(b) <= range_m:
                    graph.add_edge(a.vehicle_id, b.vehicle_id)
        return graph
    grid: "SpatialGrid[str]" = SpatialGrid(cell_size_m=range_m)
    index_of: Dict[str, int] = {}
    for index, vehicle in enumerate(ordered):
        grid.insert(vehicle.vehicle_id, vehicle.position)
        index_of[vehicle.vehicle_id] = index
    for index, vehicle in enumerate(ordered):
        for other_id in grid.within(vehicle.position, range_m):
            if index_of[other_id] > index:
                graph.add_edge(vehicle.vehicle_id, other_id)
    return graph


@dataclass(frozen=True)
class TopologyStats:
    """Summary of one radio-topology snapshot."""

    nodes: int
    edges: int
    components: int
    giant_fraction: float
    giant_diameter_hops: int  # 0 when the giant component is trivial
    mean_degree: float
    articulation_points: Tuple[str, ...]

    @property
    def is_connected(self) -> bool:
        """True when every vehicle can reach every other."""
        return self.components <= 1


def topology_stats(vehicles: Sequence[Vehicle], range_m: float) -> TopologyStats:
    """Compute connectivity statistics for a vehicle snapshot."""
    graph = radio_graph(vehicles, range_m)
    node_count = graph.number_of_nodes()
    if node_count == 0:
        return TopologyStats(0, 0, 0, 0.0, 0, 0.0, ())
    components = list(nx.connected_components(graph))
    giant = max(components, key=len)
    giant_graph = graph.subgraph(giant)
    diameter = (
        nx.diameter(giant_graph) if giant_graph.number_of_nodes() > 1 else 0
    )
    degrees = [degree for _node, degree in graph.degree()]
    return TopologyStats(
        nodes=node_count,
        edges=graph.number_of_edges(),
        components=len(components),
        giant_fraction=len(giant) / node_count,
        giant_diameter_hops=diameter,
        mean_degree=sum(degrees) / node_count,
        articulation_points=tuple(sorted(nx.articulation_points(graph))),
    )


def partition_risk(vehicles: Sequence[Vehicle], range_m: float) -> Dict[str, float]:
    """Per-vehicle partition damage: giant-fraction lost if it departs.

    The complement of head-placement quality: electing an articulation
    point as captain risks losing half the cloud when it leaves.

    The graph is built once and each departure is evaluated on a
    node-removed view with :func:`nx.connected_components`; only
    component sizes matter here, so the diameter and articulation-point
    work :func:`topology_stats` would do per departure is skipped.
    """
    graph = radio_graph(vehicles, range_m)
    node_count = graph.number_of_nodes()
    if node_count <= 1:
        return {v.vehicle_id: 0.0 for v in vehicles}
    baseline_giant = max(len(c) for c in nx.connected_components(graph))
    baseline_fraction = baseline_giant / node_count
    # Damage = how much of the (relative) giant component vanished
    # beyond the departed node itself.
    expected = (baseline_fraction * node_count - 1) / max(1, node_count - 1)
    risks: Dict[str, float] = {}
    for vehicle in vehicles:
        view = nx.restricted_view(graph, [vehicle.vehicle_id], [])
        giant_after = max(
            (len(c) for c in nx.connected_components(view)), default=0
        )
        after_fraction = giant_after / (node_count - 1)
        risks[vehicle.vehicle_id] = max(0.0, expected - after_fraction)
    return risks


def connectivity_over_time(
    snapshots: Sequence[Sequence[Vehicle]], range_m: float
) -> List[TopologyStats]:
    """Stats for a sequence of mobility snapshots."""
    return [topology_stats(snapshot, range_m) for snapshot in snapshots]
