"""Small statistics helpers for experiment analysis."""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean of a non-empty sequence."""
    if not values:
        raise ValueError("mean of an empty sequence is undefined")
    return sum(values) / len(values)


def std(values: Sequence[float]) -> float:
    """Population standard deviation."""
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / len(values))


def confidence_interval_95(values: Sequence[float]) -> Tuple[float, float]:
    """Normal-approximation 95% CI on the mean."""
    if len(values) < 2:
        value = values[0] if values else 0.0
        return (value, value)
    mu = mean(values)
    half_width = 1.96 * std(values) / math.sqrt(len(values))
    return (mu - half_width, mu + half_width)


def ratio_or_inf(numerator: float, denominator: float) -> float:
    """Safe ratio: infinity when the denominator is zero."""
    if denominator == 0:
        return math.inf
    return numerator / denominator


def speedup(baseline: float, improved: float) -> float:
    """How many times faster ``improved`` is than ``baseline``."""
    if improved <= 0:
        return math.inf
    return baseline / improved


def running_mean(values: Sequence[float], window: int) -> List[float]:
    """Simple moving average with the given window size."""
    if window < 1:
        raise ValueError("window must be >= 1")
    result: List[float] = []
    acc = 0.0
    for index, value in enumerate(values):
        acc += value
        if index >= window:
            acc -= values[index - window]
        result.append(acc / min(index + 1, window))
    return result
