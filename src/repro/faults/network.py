"""Network faults, implemented as wireless-channel interceptors.

Each fault is a time-windowed :data:`~repro.net.channel.Interceptor`:
outside its ``[start, start + duration)`` window it passes every frame
untouched, so interceptors can be registered up front and left in place.
All randomness flows through a :class:`~repro.sim.rng.SeededRng`
substream, keeping faulted runs reproducible.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Optional

from ..net.channel import Frame, InterceptVerdict
from ..sim.rng import SeededRng
from ..sim.world import World


class WindowedFault:
    """Base class: active only inside a virtual-time window."""

    def __init__(self, world: World, start: float, duration_s: float) -> None:
        self.world = world
        self.start = start
        self.duration_s = duration_s
        self.triggered = 0

    @property
    def end(self) -> float:
        """First instant the fault is no longer active."""
        return self.start + self.duration_s

    def active(self) -> bool:
        """Whether the fault window covers the current virtual time."""
        return self.start <= self.world.now < self.end

    def __call__(self, frame: Frame) -> InterceptVerdict:
        if not self.active():
            return InterceptVerdict.passthrough()
        return self.apply(frame)

    def apply(self, frame: Frame) -> InterceptVerdict:
        raise NotImplementedError


class LossBurst(WindowedFault):
    """Correlated packet loss: drop frames with a fixed probability.

    With ``node_ids`` given, only frames whose source or destination is
    in the set are affected — a localized interference burst.
    """

    def __init__(
        self,
        world: World,
        start: float,
        duration_s: float,
        drop_probability: float,
        node_ids: Optional[Iterable[str]] = None,
        rng: Optional[SeededRng] = None,
    ) -> None:
        super().__init__(world, start, duration_s)
        self.drop_probability = drop_probability
        self.node_ids: Optional[FrozenSet[str]] = (
            frozenset(node_ids) if node_ids is not None else None
        )
        self.rng = rng if rng is not None else world.rng.fork("fault/loss-burst")

    def _involved(self, frame: Frame) -> bool:
        if self.node_ids is None:
            return True
        return frame.src_id in self.node_ids or (
            frame.dst_id is not None and frame.dst_id in self.node_ids
        )

    def apply(self, frame: Frame) -> InterceptVerdict:
        if self._involved(frame) and self.rng.chance(self.drop_probability):
            self.triggered += 1
            self.world.metrics.increment("faults/frames_dropped")
            return InterceptVerdict.drop()
        return InterceptVerdict.passthrough()


class Partition(WindowedFault):
    """Bidirectional partition: frames crossing the cut are dropped."""

    def __init__(
        self,
        world: World,
        start: float,
        duration_s: float,
        group_a: Iterable[str],
        group_b: Iterable[str],
    ) -> None:
        super().__init__(world, start, duration_s)
        self.group_a = frozenset(group_a)
        self.group_b = frozenset(group_b)

    def _crosses(self, frame: Frame) -> bool:
        if frame.dst_id is None:
            return False  # broadcasts fan out per receiver; see note below
        forward = frame.src_id in self.group_a and frame.dst_id in self.group_b
        backward = frame.src_id in self.group_b and frame.dst_id in self.group_a
        return forward or backward

    def apply(self, frame: Frame) -> InterceptVerdict:
        # Broadcast frames reach the interceptor once per receiver with
        # dst_id filled in (the channel dispatches per destination), so
        # the cut applies to them too.
        if self._crosses(frame):
            self.triggered += 1
            self.world.metrics.increment("faults/frames_partitioned")
            return InterceptVerdict.drop()
        return InterceptVerdict.passthrough()


class JitterSpike(WindowedFault):
    """Delay-jitter spike: frames gain a uniform extra delay."""

    def __init__(
        self,
        world: World,
        start: float,
        duration_s: float,
        max_extra_delay_s: float,
        rng: Optional[SeededRng] = None,
    ) -> None:
        super().__init__(world, start, duration_s)
        self.max_extra_delay_s = max_extra_delay_s
        self.rng = rng if rng is not None else world.rng.fork("fault/jitter-spike")

    def apply(self, frame: Frame) -> InterceptVerdict:
        self.triggered += 1
        self.world.metrics.increment("faults/frames_jittered")
        return InterceptVerdict.delay(self.rng.uniform(0.0, self.max_extra_delay_s))


class FrameDuplicator(WindowedFault):
    """Frame duplication: some frames are delivered ``1 + copies`` times.

    Models retransmission pathologies and amplification; duplicate
    deliveries stress idempotence in the protocols above (e.g. the
    task-exchange's duplicate-assignment suppression).
    """

    def __init__(
        self,
        world: World,
        start: float,
        duration_s: float,
        probability: float,
        copies: int = 1,
        rng: Optional[SeededRng] = None,
    ) -> None:
        super().__init__(world, start, duration_s)
        self.probability = probability
        self.copies = copies
        self.rng = rng if rng is not None else world.rng.fork("fault/duplication")

    def apply(self, frame: Frame) -> InterceptVerdict:
        if self.rng.chance(self.probability):
            self.triggered += 1
            return InterceptVerdict.duplicate(self.copies)
        return InterceptVerdict.passthrough()
