"""Infrastructure faults: RSU flapping, disasters, staggered repair.

Generalizes :class:`~repro.infra.damage.DisasterModel` from a one-shot
scripted disaster into a schedulable fault source: the executor can flap
individual RSUs (repeated damage/repair cycles, the "unreliable
infrastructure" regime) and run disasters whose repair is staggered one
node at a time, producing the partial-capacity recovery ramps the
paper's dependability argument (§V.A) turns on.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..errors import ConfigurationError
from ..infra.damage import Damageable, DisasterModel
from ..sim.world import World


class InfrastructureFaultExecutor:
    """Applies infrastructure faults to a set of damageable nodes."""

    def __init__(self, world: World, infrastructure: Sequence[Damageable]) -> None:
        self.world = world
        self.infrastructure = list(infrastructure)
        self.disasters = DisasterModel(world, self.infrastructure)

    def _resolve(self, target: Optional[str]) -> Damageable:
        if not self.infrastructure:
            raise ConfigurationError("no infrastructure registered for faults")
        if target is None:
            return self.infrastructure[0]
        for node in self.infrastructure:
            if node.node_id == target:
                return node
        raise ConfigurationError(f"unknown infrastructure target: {target!r}")

    def flap(
        self, target: Optional[str], cycles: int, down_s: float, up_s: float
    ) -> None:
        """Start a damage/repair flapping cycle on one node, now.

        The node goes down immediately, comes back ``down_s`` later,
        and repeats for ``cycles`` full periods.
        """
        node = self._resolve(target)
        period = down_s + up_s
        for cycle in range(cycles):
            offset = cycle * period
            self.world.engine.schedule(offset, node.damage, label="fault:rsu-down")
            self.world.engine.schedule(
                offset + down_s, node.repair, label="fault:rsu-up"
            )
        self.world.metrics.increment("faults/rsu_flaps")

    def disaster(
        self,
        fraction: float,
        repair_start_s: Optional[float],
        repair_interval_s: float,
    ) -> None:
        """Strike now; optionally schedule (staggered) repair."""
        self.disasters.strike(fraction)
        if repair_start_s is None:
            return
        repair_at = self.world.now + repair_start_s
        if repair_interval_s > 0:
            self.disasters.schedule_staggered_repair(repair_at, repair_interval_s)
        else:
            self.disasters.schedule_repair(repair_at)
