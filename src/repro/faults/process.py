"""Process faults: crash-stop, stall, reboot-with-state-loss.

The executor drives a :class:`~repro.core.vcloud.VehicularCloud`'s fault
surface (``mark_worker_crashed`` / ``stall_worker`` / ``reboot_worker``)
and, when a channel-node lookup is provided, mirrors each fault onto the
radio (a crashed vehicle also goes silent on the air).  The cloud is
duck-typed so this module stays import-cycle-free with ``repro.core``.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..sim.world import World

#: Maps a vehicle id to its channel node (or None when it has no radio).
NodeLookup = Callable[[str], Optional[object]]


class ProcessFaultExecutor:
    """Applies process faults to cloud workers."""

    def __init__(
        self,
        world: World,
        cloud,
        node_lookup: Optional[NodeLookup] = None,
    ) -> None:
        self.world = world
        self.cloud = cloud
        self.node_lookup = node_lookup

    def _node_of(self, vehicle_id: str):
        if self.node_lookup is None:
            return None
        return self.node_lookup(vehicle_id)

    def crash(self, vehicle_id: str) -> None:
        """Crash-stop: the worker halts silently; radio goes dark."""
        self.cloud.mark_worker_crashed(vehicle_id)
        node = self._node_of(vehicle_id)
        if node is not None:
            node.go_offline()

    def stall(self, vehicle_id: str, duration_s: float) -> None:
        """Stall (slow node): in-flight completions shift by ``duration_s``."""
        self.cloud.stall_worker(vehicle_id, duration_s)

    def reboot(self, vehicle_id: str, downtime_s: float) -> None:
        """Reboot with state loss; the worker returns after ``downtime_s``."""
        self.cloud.reboot_worker(vehicle_id, downtime_s)
        node = self._node_of(vehicle_id)
        if node is not None:
            node.go_offline()
            self.world.engine.schedule(
                downtime_s, node.go_online, label="fault:reboot-online"
            )
