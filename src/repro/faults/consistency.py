"""Consistency oracle for the replicated store (experiment E12).

The checker observes every read and write the
:class:`~repro.core.replication.ReplicationManager` performs — it is
attached as the manager's ``listener`` — and keeps a linear history of
the acknowledged operations.  From that history it detects the two
client-visible anomalies the paper's dependability section worries
about, plus the internal symptom that precedes them:

* **stale read** — a successful read returned a version older than the
  newest write acknowledged before it;
* **lost update** — two acknowledged writes minted the same version
  counter, so last-writer-wins resolution silently discards one of
  them (the signature of a split-brain write under ``W=1``);
* **replica divergence** — online holders of a file disagree on its
  version (queried live from the manager, not from history).

Under ``R + W > k`` quorums the first two counts are provably zero;
under best-effort ``R = W = 1`` the same fault schedule produces
nonzero counts — E12's acceptance criterion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from ..core.replication import ReplicationManager, VersionStamp
from ..sim.metrics import MetricsRegistry


@dataclass(frozen=True)
class WriteEvent:
    """One write as observed by the checker."""

    file_id: str
    stamp: Optional[VersionStamp]
    acked: bool
    time: float


@dataclass(frozen=True)
class ReadEvent:
    """One read as observed by the checker."""

    file_id: str
    stamp: Optional[VersionStamp]
    ok: bool
    time: float
    stale: bool


@dataclass(frozen=True)
class ConsistencyReport:
    """Violation totals extracted from a recorded history."""

    reads: int
    writes: int
    failed_reads: int
    failed_writes: int
    stale_reads: int
    lost_updates: int
    divergent_files: Tuple[str, ...]

    @property
    def violations(self) -> int:
        """Client-visible anomalies (stale reads + lost updates)."""
        return self.stale_reads + self.lost_updates

    def describe(self) -> str:
        """One-line summary for logs and benchmark tables."""
        return (
            f"reads={self.reads} writes={self.writes} "
            f"stale={self.stale_reads} lost={self.lost_updates} "
            f"divergent={len(self.divergent_files)}"
        )


@dataclass
class ConsistencyChecker:
    """Records the store's operation history and flags anomalies.

    Detection is online: each acked write advances the per-file maximum
    acknowledged counter; a later successful read below that maximum is
    stale the moment it happens, and a second acked write reusing an
    already-acked counter is a lost update.  ``metrics`` (optional
    :class:`~repro.sim.metrics.MetricsRegistry`) receives
    ``consistency/*`` counters as violations are found.
    """

    metrics: Optional[MetricsRegistry] = None
    metric_prefix: str = "consistency"
    write_history: List[WriteEvent] = field(default_factory=list)
    read_history: List[ReadEvent] = field(default_factory=list)
    stale_reads: int = 0
    lost_updates: int = 0
    _max_acked: Dict[str, int] = field(default_factory=dict)
    _acked_counters: Dict[str, Set[int]] = field(default_factory=dict)
    _manager: Optional[ReplicationManager] = None

    def attach(self, manager: ReplicationManager) -> "ConsistencyChecker":
        """Register as ``manager.listener``; returns self for chaining."""
        manager.listener = self
        self._manager = manager
        return self

    def _emit(self, name: str, amount: float = 1.0) -> None:
        if self.metrics is not None:
            self.metrics.increment(f"{self.metric_prefix}/{name}", amount)

    # -- listener protocol (called by ReplicationManager) ----------------------

    def on_write(
        self, file_id: str, stamp: Optional[VersionStamp], acked: bool, time: float
    ) -> None:
        """Record one write; detect counter collisions among acked writes."""
        self.write_history.append(WriteEvent(file_id, stamp, acked, time))
        if not acked or stamp is None:
            self._emit("failed_writes")
            return
        self._emit("writes")
        seen = self._acked_counters.setdefault(file_id, set())
        if stamp.counter in seen:
            # Two acknowledged writes minted the same version: exactly one
            # survives last-writer-wins resolution — the other is lost.
            self.lost_updates += 1
            self._emit("lost_updates")
        seen.add(stamp.counter)
        if stamp.counter > self._max_acked.get(file_id, 0):
            self._max_acked[file_id] = stamp.counter

    def on_read(
        self, file_id: str, stamp: Optional[VersionStamp], ok: bool, time: float
    ) -> None:
        """Record one read; flag it stale if it trails an acked write."""
        stale = False
        if ok and stamp is not None:
            if stamp.counter < self._max_acked.get(file_id, 0):
                stale = True
                self.stale_reads += 1
                self._emit("stale_reads")
            else:
                self._emit("reads")
        else:
            self._emit("failed_reads")
        self.read_history.append(ReadEvent(file_id, stamp, ok, time, stale))

    # -- reporting --------------------------------------------------------------

    def report(self) -> ConsistencyReport:
        """Summarise the history (divergence queried from the manager)."""
        divergent: Tuple[str, ...] = ()
        if self._manager is not None:
            divergent = tuple(self._manager.divergent_files())
        return ConsistencyReport(
            reads=sum(1 for e in self.read_history if e.ok),
            writes=sum(1 for e in self.write_history if e.acked),
            failed_reads=sum(1 for e in self.read_history if not e.ok),
            failed_writes=sum(1 for e in self.write_history if not e.acked),
            stale_reads=self.stale_reads,
            lost_updates=self.lost_updates,
            divergent_files=divergent,
        )
