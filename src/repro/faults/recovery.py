"""Recovery primitives paired with fault injection.

Two building blocks used across the stack:

* :class:`BackoffPolicy` — exponential backoff with bounded multiplicative
  jitter, replacing fixed retry intervals so retry storms de-synchronize
  (the classic thundering-herd fix); a degenerate fixed-interval variant
  keeps legacy behaviour byte-identical where callers don't opt in.
* :class:`WorkerLeases` — lease-based liveness: a worker that stops
  renewing its lease is declared dead after ``lease_duration_s``, which is
  how a coordinator distinguishes a crash-stop (silence) from a clean
  departure (explicit leave).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..errors import ConfigurationError


@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential backoff with multiplicative jitter.

    Delay for retry ``attempt`` (0-based) is::

        min(max_delay_s, base_delay_s * multiplier ** attempt)
            * (1 + uniform(-jitter_fraction, +jitter_fraction))

    With ``multiplier=1`` and ``jitter_fraction=0`` this degenerates to a
    fixed interval (see :meth:`fixed`), drawing nothing from the RNG.
    """

    base_delay_s: float = 0.5
    multiplier: float = 2.0
    max_delay_s: float = 8.0
    jitter_fraction: float = 0.1
    max_retries: int = 5

    def __post_init__(self) -> None:
        if self.base_delay_s <= 0:
            raise ConfigurationError("base_delay_s must be positive")
        if self.multiplier < 1.0:
            raise ConfigurationError("multiplier must be >= 1")
        if self.max_delay_s < self.base_delay_s:
            raise ConfigurationError("max_delay_s must be >= base_delay_s")
        if not 0.0 <= self.jitter_fraction < 1.0:
            raise ConfigurationError("jitter_fraction must be in [0, 1)")
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be non-negative")

    @staticmethod
    def fixed(interval_s: float, max_retries: int) -> "BackoffPolicy":
        """A constant-interval policy with no jitter (legacy behaviour)."""
        return BackoffPolicy(
            base_delay_s=interval_s,
            multiplier=1.0,
            max_delay_s=interval_s,
            jitter_fraction=0.0,
            max_retries=max_retries,
        )

    def delay_for(self, attempt: int, rng=None) -> float:
        """Return the delay before retry ``attempt`` (0-based)."""
        if attempt < 0:
            raise ConfigurationError("attempt must be non-negative")
        delay = min(self.max_delay_s, self.base_delay_s * self.multiplier**attempt)
        if rng is not None and self.jitter_fraction > 0:
            delay *= 1.0 + rng.uniform(-self.jitter_fraction, self.jitter_fraction)
        return max(delay, 1e-9)


class WorkerLeases:
    """Lease table for worker liveness.

    The sweep loop renews leases for workers known to be alive and calls
    :meth:`expired` to find the silent ones.  Detection latency is
    bounded by ``lease_duration_s``.
    """

    def __init__(self, lease_duration_s: float) -> None:
        if lease_duration_s <= 0:
            raise ConfigurationError("lease_duration_s must be positive")
        self.lease_duration_s = lease_duration_s
        self._expiry: Dict[str, float] = {}
        self.renewals = 0
        self.expirations = 0

    def __len__(self) -> int:
        return len(self._expiry)

    def __contains__(self, worker_id: str) -> bool:
        return worker_id in self._expiry

    def grant(self, worker_id: str, now: float) -> None:
        """Grant (or re-grant) a lease expiring ``lease_duration_s`` out."""
        self._expiry[worker_id] = now + self.lease_duration_s

    def renew(self, worker_id: str, now: float) -> None:
        """Renew a held lease; unknown workers get a fresh grant."""
        self._expiry[worker_id] = now + self.lease_duration_s
        self.renewals += 1

    def revoke(self, worker_id: str) -> None:
        """Drop a lease (clean departure or post-expiry cleanup)."""
        self._expiry.pop(worker_id, None)

    def held(self) -> List[str]:
        """Ids currently holding a lease, sorted.

        Includes lapsed-but-unswept leases: between expiry and the next
        sweep the coordinator still believes the worker is alive, which
        is exactly the window liveness invariants must tolerate.
        """
        return sorted(self._expiry)

    def expires_at(self, worker_id: str) -> Optional[float]:
        """Expiry time of a held lease, None if not held."""
        return self._expiry.get(worker_id)

    def expired(self, now: float) -> List[str]:
        """Ids whose lease has lapsed, in deterministic sorted order."""
        lapsed = sorted(wid for wid, expiry in self._expiry.items() if expiry < now)
        self.expirations += len(lapsed)
        return lapsed
