"""Declarative, seeded fault schedules.

A :class:`FaultPlan` is a list of :class:`FaultSpec` entries built either
explicitly (``plan.crash(at=30.0, target="veh-3")``) or generatively
(``plan.random_crashes(count=5, window=(10, 120))``), with every random
draw flowing through the plan's own :class:`~repro.sim.rng.SeededRng` —
the same seed always yields a byte-identical schedule
(:meth:`FaultPlan.describe`).  The plan is pure data; scheduling it onto
a running simulation is :class:`~repro.faults.injector.FaultInjector`'s
job, so one plan can be replayed against different worlds, recovery
configurations and architectures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..sim.rng import SeededRng

#: Fault kinds grouped by family.
PROCESS_FAULTS = ("crash", "stall", "reboot")
NETWORK_FAULTS = ("loss_burst", "partition", "jitter_spike", "duplication")
INFRASTRUCTURE_FAULTS = ("rsu_flap", "disaster")
ALL_FAULT_KINDS = PROCESS_FAULTS + NETWORK_FAULTS + INFRASTRUCTURE_FAULTS


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault: kind, fire time, and frozen parameters."""

    kind: str
    at: float
    params: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        if self.kind not in ALL_FAULT_KINDS:
            raise ConfigurationError(f"unknown fault kind: {self.kind!r}")
        if self.at < 0:
            raise ConfigurationError("fault time must be non-negative")

    def param(self, name: str, default: object = None) -> object:
        """Return one parameter value (or ``default``)."""
        for key, value in self.params:
            if key == name:
                return value
        return default

    @property
    def family(self) -> str:
        """The fault family this spec belongs to."""
        if self.kind in PROCESS_FAULTS:
            return "process"
        if self.kind in NETWORK_FAULTS:
            return "network"
        return "infrastructure"

    def describe(self) -> str:
        """Canonical one-line rendering (stable across runs)."""
        rendered = " ".join(f"{key}={value!r}" for key, value in self.params)
        return f"t={self.at:.6f} {self.kind} {rendered}".rstrip()


def _params(**kwargs: object) -> Tuple[Tuple[str, object], ...]:
    return tuple(sorted((k, v) for k, v in kwargs.items() if v is not None))


class FaultPlan:
    """A seeded, composable fault schedule.

    Ordering contract: specs scheduled at the identical timestamp apply
    in **insertion order** (the order the builder calls were made).
    :meth:`schedule` sorts by ``(at, insertion index)`` and the engine
    breaks same-time ties by scheduling order, so the contract holds end
    to end — generated campaigns that quantize fault times rely on it.
    """

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)
        self.rng = SeededRng(self.seed, "fault-plan")
        self._specs: List[FaultSpec] = []

    @classmethod
    def from_specs(cls, seed: int, specs: Sequence[FaultSpec]) -> "FaultPlan":
        """Rebuild a plan from already-materialized specs.

        The specs are adopted in the given order, which becomes their
        insertion (tie-break) order.  Used to replay recorded schedules
        — e.g. a minimized reproducer — without re-running the builders.
        """
        plan = cls(seed)
        for spec in specs:
            if not isinstance(spec, FaultSpec):
                raise ConfigurationError(f"expected FaultSpec, got {type(spec).__name__}")
            plan._specs.append(spec)
        return plan

    def __len__(self) -> int:
        return len(self._specs)

    def _add(self, kind: str, at: float, **kwargs: object) -> "FaultPlan":
        self._specs.append(FaultSpec(kind=kind, at=float(at), params=_params(**kwargs)))
        return self

    # -- process faults ------------------------------------------------------

    def crash(self, at: float, target: Optional[str] = None) -> "FaultPlan":
        """Crash-stop one worker (random member when ``target`` is None)."""
        return self._add("crash", at, target=target)

    def stall(
        self, at: float, duration_s: float, target: Optional[str] = None
    ) -> "FaultPlan":
        """Stall a worker for ``duration_s`` (slow-node fault)."""
        if duration_s <= 0:
            raise ConfigurationError("stall duration_s must be positive")
        return self._add("stall", at, duration_s=duration_s, target=target)

    def reboot(
        self, at: float, downtime_s: float, target: Optional[str] = None
    ) -> "FaultPlan":
        """Reboot a worker with state loss; back after ``downtime_s``."""
        if downtime_s <= 0:
            raise ConfigurationError("reboot downtime_s must be positive")
        return self._add("reboot", at, downtime_s=downtime_s, target=target)

    def random_crashes(
        self,
        count: int,
        window: Tuple[float, float],
        targets: Optional[Sequence[str]] = None,
    ) -> "FaultPlan":
        """Crash ``count`` workers at seeded-uniform times in ``window``.

        With ``targets`` given, distinct victims are drawn now (and show
        up in :meth:`describe`); otherwise each crash picks a random live
        member at fire time.

        ``count == 0`` is an explicit no-op (the plan is returned
        unchanged and the RNG is not advanced).  A zero-width window
        (``start == end``) with ``count > 0`` and an empty ``targets``
        pool both raise :class:`~repro.errors.ConfigurationError` rather
        than silently degenerating.
        """
        start, end = self._check_window(window)
        if count < 0:
            raise ConfigurationError("count must be non-negative")
        if count == 0:
            return self
        if end == start:
            raise ConfigurationError(
                "random_crashes needs a non-empty window (start < end) when count > 0"
            )
        if targets is not None and len(targets) == 0:
            raise ConfigurationError("targets pool is empty; pass None for fire-time choice")
        times = sorted(self.rng.uniform(start, end) for _ in range(count))
        victims: List[Optional[str]] = [None] * count
        if targets is not None:
            if count > len(targets):
                raise ConfigurationError("more crashes than candidate targets")
            victims = self.rng.sample(list(targets), count)
        for at, victim in zip(times, victims):
            self.crash(at, target=victim)
        return self

    # -- network faults ------------------------------------------------------

    def loss_burst(
        self,
        at: float,
        duration_s: float,
        drop_probability: float,
        node_ids: Optional[Sequence[str]] = None,
    ) -> "FaultPlan":
        """Correlated packet loss: drop frames with ``drop_probability``.

        With ``node_ids`` given only frames touching those nodes are
        affected (a localized interference burst).
        """
        self._check_duration(duration_s)
        self._check_probability(drop_probability)
        nodes = tuple(node_ids) if node_ids is not None else None
        return self._add(
            "loss_burst",
            at,
            duration_s=duration_s,
            drop_probability=drop_probability,
            node_ids=nodes,
        )

    def partition(
        self,
        at: float,
        duration_s: float,
        fraction: float = 0.5,
        group_a: Optional[Sequence[str]] = None,
        group_b: Optional[Sequence[str]] = None,
    ) -> "FaultPlan":
        """Bidirectional partition between two node groups.

        Explicit groups win; otherwise a seeded ``fraction`` of the
        attached nodes is split off at fire time.
        """
        self._check_duration(duration_s)
        self._check_probability(fraction)
        return self._add(
            "partition",
            at,
            duration_s=duration_s,
            fraction=fraction,
            group_a=tuple(group_a) if group_a is not None else None,
            group_b=tuple(group_b) if group_b is not None else None,
        )

    def jitter_spike(
        self, at: float, duration_s: float, max_extra_delay_s: float
    ) -> "FaultPlan":
        """Delay-jitter spike: frames gain uniform extra delay."""
        self._check_duration(duration_s)
        if max_extra_delay_s <= 0:
            raise ConfigurationError("max_extra_delay_s must be positive")
        return self._add(
            "jitter_spike", at, duration_s=duration_s, max_extra_delay_s=max_extra_delay_s
        )

    def duplication(
        self, at: float, duration_s: float, probability: float, copies: int = 1
    ) -> "FaultPlan":
        """Frame duplication: frames are delivered ``1 + copies`` times."""
        self._check_duration(duration_s)
        self._check_probability(probability)
        if copies < 1:
            raise ConfigurationError("copies must be >= 1")
        return self._add(
            "duplication", at, duration_s=duration_s, probability=probability, copies=copies
        )

    # -- infrastructure faults -----------------------------------------------

    def rsu_flap(
        self,
        at: float,
        cycles: int,
        down_s: float,
        up_s: float,
        target: Optional[str] = None,
    ) -> "FaultPlan":
        """Flap an RSU: ``cycles`` × (down ``down_s``, up ``up_s``)."""
        if cycles < 1:
            raise ConfigurationError("cycles must be >= 1")
        if down_s <= 0 or up_s <= 0:
            raise ConfigurationError("down_s and up_s must be positive")
        return self._add(
            "rsu_flap", at, cycles=cycles, down_s=down_s, up_s=up_s, target=target
        )

    def disaster(
        self,
        at: float,
        fraction: float,
        repair_start_s: Optional[float] = None,
        repair_interval_s: float = 0.0,
    ) -> "FaultPlan":
        """Disaster strike on ``fraction`` of the infrastructure.

        With ``repair_start_s`` set, repair begins that many seconds
        after the strike; ``repair_interval_s > 0`` staggers it one node
        at a time instead of repairing everything at once.
        """
        self._check_probability(fraction)
        if repair_start_s is not None and repair_start_s <= 0:
            raise ConfigurationError("repair_start_s must be positive when given")
        if repair_interval_s < 0:
            raise ConfigurationError("repair_interval_s must be non-negative")
        return self._add(
            "disaster",
            at,
            fraction=fraction,
            repair_start_s=repair_start_s,
            repair_interval_s=repair_interval_s,
        )

    # -- reading the plan ------------------------------------------------------

    def schedule(self) -> List[FaultSpec]:
        """All specs sorted by ``(time, insertion order)`` — the firing order.

        Insertion order is the documented tie-break: two specs at the
        identical timestamp fire in the order their builder calls were
        made, and the engine preserves that order for same-time events.
        """
        order = sorted(range(len(self._specs)), key=lambda i: (self._specs[i].at, i))
        return [self._specs[i] for i in order]

    def describe(self) -> str:
        """Canonical multi-line rendering; byte-identical for one seed."""
        lines = [f"FaultPlan(seed={self.seed}, faults={len(self._specs)})"]
        lines.extend(spec.describe() for spec in self.schedule())
        return "\n".join(lines)

    # -- validation helpers ----------------------------------------------------

    @staticmethod
    def _check_window(window: Tuple[float, float]) -> Tuple[float, float]:
        start, end = window
        if start < 0 or end < start:
            raise ConfigurationError("window must satisfy 0 <= start <= end")
        return start, end

    @staticmethod
    def _check_duration(duration_s: float) -> None:
        if duration_s <= 0:
            raise ConfigurationError("duration_s must be positive")

    @staticmethod
    def _check_probability(value: float) -> None:
        if not 0.0 <= value <= 1.0:
            raise ConfigurationError("probability/fraction must be in [0, 1]")
