"""Maps a :class:`~repro.faults.plan.FaultPlan` onto a WAN backhaul.

:class:`~repro.faults.injector.FaultInjector` batters the V2V radio
stack; the tiered federation (``repro.tier``) also needs its *wide-area*
hop battered so speculative offload can be shown to survive a dying
backhaul.  :class:`BackhaulFaultDriver` translates the network specs of
a plan directly onto a :class:`~repro.tier.backhaul.BackhaulLink`:

* ``partition``    → full link outage for the spec's ``duration_s``
  (new transmissions refused; frames in flight still deliver);
* ``loss_burst``   → elevated Bernoulli loss at ``drop_probability``
  for ``duration_s``;
* ``jitter_spike`` → up to ``max_extra_delay_s`` of extra seeded
  jitter for ``duration_s``.

Process, infrastructure and ``duplication`` kinds have no WAN analogue
here and are skipped, same as :class:`StorageFaultDriver` does for
kinds outside its reach — callers can assert on ``skipped`` to catch
plans that silently do nothing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Tuple

from ..sim.engine import Engine
from .plan import FaultPlan, FaultSpec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (tier imports faults)
    from ..tier.backhaul import BackhaulLink

#: Plan kinds this driver can express on a link.
APPLICABLE_KINDS = ("partition", "loss_burst", "jitter_spike")


class BackhaulFaultDriver:
    """Schedules a plan's network faults onto one backhaul link."""

    def __init__(self, engine: Engine, link: "BackhaulLink", plan: FaultPlan) -> None:
        self.engine = engine
        self.link = link
        self.plan = plan
        self.ledger: List[Tuple[float, str, str]] = []
        self.skipped: List[FaultSpec] = []
        self._armed = False

    def arm(self) -> int:
        """Schedule every applicable spec; returns the number armed."""
        if self._armed:
            return 0
        self._armed = True
        armed = 0
        for spec in self.plan.schedule():
            if spec.kind in APPLICABLE_KINDS:
                self.engine.schedule_at(
                    spec.at,
                    lambda s=spec: self._fire(s),
                    label=f"backhaul-fault/{spec.kind}",
                )
                armed += 1
            else:
                self.skipped.append(spec)
        return armed

    def _record(self, kind: str, detail: str) -> None:
        self.ledger.append((self.engine.now, kind, detail))

    def _fire(self, spec: FaultSpec) -> None:
        duration = float(spec.param("duration_s", 10.0))  # type: ignore[arg-type]
        if spec.kind == "partition":
            self.link.start_outage(duration)
            self._record("partition", f"{self.link.name} dark {duration:.1f}s")
        elif spec.kind == "loss_burst":
            probability = float(spec.param("drop_probability", 0.5))  # type: ignore[arg-type]
            self.link.add_loss_window(duration, probability)
            self._record(
                "loss_burst", f"{self.link.name} p={probability:.2f} for {duration:.1f}s"
            )
        else:  # jitter_spike
            extra = float(spec.param("max_extra_delay_s", 0.1))  # type: ignore[arg-type]
            self.link.add_jitter_window(duration, extra)
            self._record(
                "jitter_spike", f"{self.link.name} +{extra:.3f}s for {duration:.1f}s"
            )
