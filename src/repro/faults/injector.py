"""Schedules a :class:`~repro.faults.plan.FaultPlan` onto a running world.

The injector resolves each spec against the targets it was given —
``cloud`` for process faults, ``channel`` for network faults,
``infrastructure`` for RSU/disaster faults — and schedules one engine
event per fault.  Targets left unspecified in the plan (e.g. "crash a
random member") are resolved at fire time from the injector's own seeded
RNG substream, so the full fault sequence is reproducible from
``(world seed, plan seed)`` alone.  Every injection is ledgered in the
metrics registry (``faults/injected``, ``faults/<kind>``) and in
:attr:`FaultInjector.ledger`.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..sim.world import World
from .infrastructure import InfrastructureFaultExecutor
from .network import FrameDuplicator, JitterSpike, LossBurst, Partition
from .plan import (
    INFRASTRUCTURE_FAULTS,
    NETWORK_FAULTS,
    PROCESS_FAULTS,
    FaultPlan,
    FaultSpec,
)
from .process import NodeLookup, ProcessFaultExecutor


class FaultInjector:
    """Binds one fault plan to one simulation run."""

    def __init__(
        self,
        world: World,
        plan: FaultPlan,
        cloud=None,
        channel=None,
        infrastructure: Optional[Sequence] = None,
        node_lookup: Optional[NodeLookup] = None,
    ) -> None:
        self.world = world
        self.plan = plan
        self.cloud = cloud
        self.channel = channel
        self.rng = world.rng.fork(f"fault-injector/{plan.seed}")
        self._process = (
            ProcessFaultExecutor(world, cloud, node_lookup) if cloud is not None else None
        )
        self._infra = (
            InfrastructureFaultExecutor(world, infrastructure)
            if infrastructure is not None
            else None
        )
        #: (time, kind, target) per injected fault, in injection order.
        self.ledger: List[Tuple[float, str, str]] = []
        self.skipped = 0
        self._armed = False
        self._storage_partition_seq = 0

    # -- arming ----------------------------------------------------------------

    def arm(self, only_indices: Optional[Sequence[int]] = None) -> int:
        """Schedule faults from the plan; returns the scheduled count.

        ``only_indices`` restricts arming to a subset of schedule
        positions (as returned by :meth:`FaultPlan.schedule`) while
        keeping each spec's *original* position as its RNG substream
        key.  A subset therefore resolves every surviving fault to the
        same victim / partition split as the full plan — the property
        delta-debugging minimization depends on.
        """
        if self._armed:
            raise ConfigurationError("injector is already armed")
        self._armed = True
        specs = self.plan.schedule()
        if only_indices is not None:
            keep = set(only_indices)
            out_of_range = [i for i in keep if i < 0 or i >= len(specs)]
            if out_of_range:
                raise ConfigurationError(
                    f"only_indices out of range for schedule of {len(specs)}: {sorted(out_of_range)}"
                )
        else:
            keep = set(range(len(specs)))
        armed = 0
        for index, spec in enumerate(specs):
            if index not in keep:
                continue
            self._validate_targets(spec)
            self.world.engine.schedule_at(
                spec.at,
                lambda s=spec, i=index: self._fire(s, i),
                label=f"fault:{spec.kind}",
            )
            armed += 1
        return armed

    def _validate_targets(self, spec: FaultSpec) -> None:
        if spec.kind in PROCESS_FAULTS and self._process is None:
            raise ConfigurationError(f"{spec.kind!r} fault needs a cloud target")
        if spec.kind in NETWORK_FAULTS and self.channel is None:
            raise ConfigurationError(f"{spec.kind!r} fault needs a channel target")
        if spec.kind in INFRASTRUCTURE_FAULTS and self._infra is None:
            raise ConfigurationError(f"{spec.kind!r} fault needs infrastructure targets")

    # -- firing ----------------------------------------------------------------

    def _fire(self, spec: FaultSpec, index: int) -> None:
        # The fault span must open *before* the executor runs: executors
        # cascade synchronously (a crash freezes executions, a partition
        # installs interceptors), and any span degraded by that cascade
        # links to whatever fault windows are active at that instant.
        tracer = self.world.tracer
        span = None
        if tracer is not None:
            span = tracer.start_span(
                f"fault.{spec.kind}",
                subsystem="faults",
                attrs={"index": index, **dict(spec.params)},
            )
            tracer.activate_fault(span, until=self._fault_window_end(spec))
        target = self._dispatch(spec, index)
        if target is None:
            self.skipped += 1
            self.world.metrics.increment("faults/skipped")
            if tracer is not None and span is not None:
                tracer.deactivate_fault(span)
                tracer.end_span(span, "skipped")
            return
        self.ledger.append((self.world.now, spec.kind, target))
        self.world.metrics.increment("faults/injected")
        self.world.metrics.increment(f"faults/{spec.kind}")
        self.world.metrics.observe_at("faults/timeline", self.world.now, 1.0)
        if tracer is not None and span is not None:
            tracer.end_span(span, "injected", {"target": target})
        if self.world.events is not None:
            # Spec params may themselves contain a "target" key (an
            # explicitly targeted fault); the resolved victim wins.
            attrs = dict(spec.params)
            attrs["target"] = target
            self.world.events.emit(
                "faults",
                spec.kind,
                severity="warning",
                trace_id=span.trace_id if span is not None else None,
                **attrs,
            )

    def _fault_window_end(self, spec: FaultSpec) -> Optional[float]:
        """When the fault's causal window closes (None = open-ended).

        Expiry is evaluated lazily by the tracer against sim time, so
        no engine events are scheduled on tracing's behalf and seeded
        runs stay byte-identical with tracing on.
        """
        now = self.world.now
        duration = spec.param("duration_s")
        if duration is not None:
            return now + float(duration)
        downtime = spec.param("downtime_s")
        if downtime is not None:
            return now + float(downtime)
        if spec.kind == "rsu_flap":
            cycles = float(spec.param("cycles"))
            return now + cycles * (
                float(spec.param("down_s")) + float(spec.param("up_s"))
            )
        # Crashes and disasters have no intrinsic end: the window stays
        # open until recovery closes it out of band.
        return None

    def _dispatch(self, spec: FaultSpec, index: int) -> Optional[str]:
        if spec.kind in PROCESS_FAULTS:
            return self._fire_process(spec, index)
        if spec.kind in NETWORK_FAULTS:
            return self._fire_network(spec, index)
        return self._fire_infrastructure(spec)

    # -- process ---------------------------------------------------------------

    def _pick_member(self, spec: FaultSpec, index: int) -> Optional[str]:
        target = spec.param("target")
        if target is not None:
            return str(target)
        members = [
            member_id
            for member_id in self.cloud.membership.member_ids()
            if member_id != self.cloud.head_id
        ]
        if not members:
            return None
        rng = self.rng.fork(f"target/{index}")
        return rng.choice(sorted(members))

    def _fire_process(self, spec: FaultSpec, index: int) -> Optional[str]:
        victim = self._pick_member(spec, index)
        if victim is None:
            return None
        if spec.kind == "crash":
            self._process.crash(victim)
        elif spec.kind == "stall":
            self._process.stall(victim, float(spec.param("duration_s")))
        else:  # reboot
            self._process.reboot(victim, float(spec.param("downtime_s")))
        return victim

    # -- network ---------------------------------------------------------------

    def _fire_network(self, spec: FaultSpec, index: int) -> Optional[str]:
        now = self.world.now
        duration = float(spec.param("duration_s"))
        rng = self.rng.fork(f"network/{index}")
        if spec.kind == "loss_burst":
            node_ids = spec.param("node_ids")
            fault = LossBurst(
                self.world,
                now,
                duration,
                float(spec.param("drop_probability")),
                node_ids=node_ids,
                rng=rng,
            )
        elif spec.kind == "partition":
            group_a, group_b = self._partition_groups(spec, rng)
            if not group_a or not group_b:
                return None
            fault = Partition(self.world, now, duration, group_a, group_b)
            self._mirror_partition_to_storage(group_a, group_b, duration)
        elif spec.kind == "jitter_spike":
            fault = JitterSpike(
                self.world, now, duration, float(spec.param("max_extra_delay_s")), rng=rng
            )
        else:  # duplication
            fault = FrameDuplicator(
                self.world,
                now,
                duration,
                float(spec.param("probability")),
                copies=int(spec.param("copies", 1)),
                rng=rng,
            )
        self.channel.add_interceptor(fault)
        # Detach once the window closes; lingering inactive interceptors
        # would slow every later dispatch.
        self.world.engine.schedule(
            duration,
            lambda: self.channel.remove_interceptor(fault),
            label=f"fault:{spec.kind}-end",
        )
        return spec.kind

    def _mirror_partition_to_storage(
        self, group_a: Sequence[str], group_b: Sequence[str], duration: float
    ) -> None:
        """Reflect a channel partition onto the cloud's replicated store.

        Channel interceptors only cut frames; quorum reachability lives
        in :class:`~repro.core.replication.ReplicationManager`.  When the
        bound cloud has replicated storage, the same split is installed
        there and cleared when the window closes.  The manager models a
        single partition at a time, so overlapping windows follow
        last-writer-wins: only the most recent split is cleared by its
        own healing event.
        """
        storage = getattr(self.cloud, "storage", None) if self.cloud is not None else None
        if storage is None:
            return
        storage.set_partition(group_a, group_b)
        self._storage_partition_seq += 1
        seq = self._storage_partition_seq

        def heal() -> None:
            if self._storage_partition_seq == seq:
                storage.clear_partition()

        self.world.engine.schedule(duration, heal, label="fault:partition-storage-end")

    def _partition_groups(self, spec: FaultSpec, rng) -> Tuple[List[str], List[str]]:
        group_a = spec.param("group_a")
        group_b = spec.param("group_b")
        if group_a is not None and group_b is not None:
            return list(group_a), list(group_b)
        node_ids = sorted(node.node_id for node in self.channel.nodes())
        cut = round(len(node_ids) * float(spec.param("fraction", 0.5)))
        if cut <= 0 or cut >= len(node_ids):
            return [], []
        side_a = sorted(rng.sample(node_ids, cut))
        side_b = [node_id for node_id in node_ids if node_id not in set(side_a)]
        return side_a, side_b

    # -- infrastructure ----------------------------------------------------------

    def _fire_infrastructure(self, spec: FaultSpec) -> Optional[str]:
        if spec.kind == "rsu_flap":
            target = spec.param("target")
            self._infra.flap(
                str(target) if target is not None else None,
                int(spec.param("cycles")),
                float(spec.param("down_s")),
                float(spec.param("up_s")),
            )
            return str(target) if target is not None else "rsu"
        # disaster
        repair_start = spec.param("repair_start_s")
        self._infra.disaster(
            float(spec.param("fraction")),
            float(repair_start) if repair_start is not None else None,
            float(spec.param("repair_interval_s", 0.0)),
        )
        return "infrastructure"
