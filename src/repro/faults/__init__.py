"""Unified fault-injection & failure-recovery subsystem (§III.A, §V).

Three seeded, reproducible fault families scheduled by one
:class:`FaultPlan`/:class:`FaultInjector` pair:

* **process** — vehicle crash-stop, stall (slow node), reboot with state
  loss (``repro.faults.process``);
* **network** — correlated packet-loss bursts, bidirectional partitions,
  delay-jitter spikes, frame duplication, implemented as
  :class:`~repro.net.channel.WirelessChannel` interceptors
  (``repro.faults.network``);
* **infrastructure** — RSU flapping and staggered repair, generalizing
  :class:`~repro.infra.damage.DisasterModel` into a schedulable fault
  source (``repro.faults.infrastructure``).

Recovery counterparts live in ``repro.faults.recovery``:
:class:`BackoffPolicy` (exponential backoff + jitter) and
:class:`WorkerLeases` (lease-based worker liveness).

Storage dependability (experiment E12) adds
:class:`~repro.faults.consistency.ConsistencyChecker` — the oracle that
records the replicated store's operation history and flags stale reads,
lost updates and replica divergence — and
:class:`~repro.faults.storage.StorageFaultDriver`, which replays a
plan's process/partition faults directly onto a
:class:`~repro.core.replication.ReplicationManager`.

Tiered federation (experiment E20) adds
:class:`~repro.faults.backhaul.BackhaulFaultDriver`, which replays a
plan's network faults onto a :class:`~repro.tier.backhaul.BackhaulLink`
as WAN outages, loss bursts and jitter spikes.
"""

from .backhaul import BackhaulFaultDriver
from .consistency import ConsistencyChecker, ConsistencyReport, ReadEvent, WriteEvent
from .injector import FaultInjector
from .network import FrameDuplicator, JitterSpike, LossBurst, Partition
from .plan import FaultPlan, FaultSpec
from .recovery import BackoffPolicy, WorkerLeases
from .storage import StorageFaultDriver

__all__ = [
    "BackhaulFaultDriver",
    "BackoffPolicy",
    "ConsistencyChecker",
    "ConsistencyReport",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "FrameDuplicator",
    "JitterSpike",
    "LossBurst",
    "Partition",
    "ReadEvent",
    "StorageFaultDriver",
    "WorkerLeases",
    "WriteEvent",
]
