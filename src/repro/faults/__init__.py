"""Unified fault-injection & failure-recovery subsystem (§III.A, §V).

Three seeded, reproducible fault families scheduled by one
:class:`FaultPlan`/:class:`FaultInjector` pair:

* **process** — vehicle crash-stop, stall (slow node), reboot with state
  loss (``repro.faults.process``);
* **network** — correlated packet-loss bursts, bidirectional partitions,
  delay-jitter spikes, frame duplication, implemented as
  :class:`~repro.net.channel.WirelessChannel` interceptors
  (``repro.faults.network``);
* **infrastructure** — RSU flapping and staggered repair, generalizing
  :class:`~repro.infra.damage.DisasterModel` into a schedulable fault
  source (``repro.faults.infrastructure``).

Recovery counterparts live in ``repro.faults.recovery``:
:class:`BackoffPolicy` (exponential backoff + jitter) and
:class:`WorkerLeases` (lease-based worker liveness).
"""

from .injector import FaultInjector
from .network import FrameDuplicator, JitterSpike, LossBurst, Partition
from .plan import FaultPlan, FaultSpec
from .recovery import BackoffPolicy, WorkerLeases

__all__ = [
    "BackoffPolicy",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "FrameDuplicator",
    "JitterSpike",
    "LossBurst",
    "Partition",
    "WorkerLeases",
]
