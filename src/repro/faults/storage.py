"""Maps a :class:`~repro.faults.plan.FaultPlan` onto the replicated store.

:class:`~repro.faults.injector.FaultInjector` drives faults through a
full :class:`~repro.core.vcloud.VehicularCloud`; experiment E12 also
needs to stress a bare :class:`~repro.core.replication.ReplicationManager`
without standing up membership, allocation and networking.
:class:`StorageFaultDriver` translates the process and partition specs
of a plan directly into manager state:

* ``crash``   → holder offline for ``crash_downtime_s``, then revived
  (hinted handoff fires at revival);
* ``stall``   → holder offline for the stall's ``duration_s``;
* ``reboot``  → holder offline for ``downtime_s``;
* ``partition`` → :meth:`ReplicationManager.set_partition` over the
  spec's groups (or a seeded ``fraction`` split), cleared after
  ``duration_s``.

Network-layer kinds (``loss_burst``, ``jitter_spike``, ``duplication``)
and infrastructure kinds have no storage-level analogue here and are
skipped; unspecified targets are drawn from the plan's seed so the same
seed yields the same storage schedule.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..core.replication import ReplicationManager
from ..sim.engine import Engine
from ..sim.rng import SeededRng
from .plan import FaultPlan, FaultSpec


class StorageFaultDriver:
    """Schedules a plan's process/partition faults onto a manager."""

    def __init__(
        self,
        engine: Engine,
        manager: ReplicationManager,
        plan: FaultPlan,
        crash_downtime_s: float = 20.0,
    ) -> None:
        self.engine = engine
        self.manager = manager
        self.plan = plan
        self.crash_downtime_s = crash_downtime_s
        self.rng = SeededRng(plan.seed, "storage-faults")
        self.ledger: List[Tuple[float, str, str]] = []
        self.skipped: List[FaultSpec] = []
        self._armed = False

    def arm(self) -> int:
        """Schedule every applicable spec; returns the number armed."""
        if self._armed:
            return 0
        self._armed = True
        armed = 0
        for spec in self.plan.schedule():
            if spec.kind in ("crash", "stall", "reboot"):
                self.engine.schedule_at(
                    spec.at,
                    lambda s=spec: self._fire_outage(s),
                    label=f"storage-fault/{spec.kind}",
                )
                armed += 1
            elif spec.kind == "partition":
                self.engine.schedule_at(
                    spec.at,
                    lambda s=spec: self._fire_partition(s),
                    label="storage-fault/partition",
                )
                armed += 1
            else:
                self.skipped.append(spec)
        return armed

    def _record(self, kind: str, detail: str) -> None:
        self.ledger.append((self.engine.now, kind, detail))

    def _pick_target(self, spec: FaultSpec) -> Optional[str]:
        target = spec.param("target")
        if target is not None:
            return str(target)
        online = self.manager.online_member_ids()
        if not online:
            return None
        return self.rng.choice(online)

    def _fire_outage(self, spec: FaultSpec) -> None:
        target = self._pick_target(spec)
        if target is None:
            self._record(spec.kind, "no online target")
            return
        if spec.kind == "crash":
            downtime = self.crash_downtime_s
        elif spec.kind == "stall":
            downtime = float(spec.param("duration_s", 5.0))  # type: ignore[arg-type]
        else:
            downtime = float(spec.param("downtime_s", 5.0))  # type: ignore[arg-type]
        self.manager.set_offline(target)
        self._record(spec.kind, f"{target} down {downtime:.1f}s")
        self.engine.schedule(
            downtime,
            lambda t=target: self._revive(t),
            label=f"storage-fault/{spec.kind}-revive",
        )

    def _revive(self, target: str) -> None:
        self.manager.set_online(target)
        self._record("revive", target)

    def _fire_partition(self, spec: FaultSpec) -> None:
        group_a = spec.param("group_a")
        group_b = spec.param("group_b")
        if group_a is None or group_b is None:
            members = self.manager.online_member_ids()
            if len(members) < 2:
                self._record("partition", "too few members")
                return
            fraction = float(spec.param("fraction", 0.5))  # type: ignore[arg-type]
            cut = max(1, min(len(members) - 1, round(len(members) * fraction)))
            side_a = self.rng.sample(members, cut)
            group_a = tuple(sorted(side_a))
            group_b = tuple(sorted(set(members) - set(side_a)))
        self.manager.set_partition(tuple(group_a), tuple(group_b))  # type: ignore[arg-type]
        duration = float(spec.param("duration_s", 10.0))  # type: ignore[arg-type]
        self._record("partition", f"{group_a}|{group_b} for {duration:.1f}s")
        self.engine.schedule(duration, self._heal, label="storage-fault/heal")

    def _heal(self) -> None:
        self.manager.clear_partition()
        self._record("heal", "partition cleared")
