"""Periodic HELLO beaconing and neighbor tables.

Beacons are how vehicles learn the local "topology" the paper says the
basic supporting architecture must maintain: every node broadcasts its
kinematic state once per interval, and receivers keep a
:class:`NeighborTable` whose entries expire when beacons stop arriving
(vehicle left range, went offline, or the channel lost the frames).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..errors import ConfigurationError
from ..geometry import Vec2
from ..sim.world import World
from .messages import Message, MessageKind, hello_message
from .node import VehicleNode


@dataclass
class NeighborEntry:
    """Last-known state of one neighbor, refreshed by its beacons."""

    node_id: str
    position: Vec2
    speed_mps: float
    heading_rad: float
    last_seen: float
    beacon_count: int = 1

    def age(self, now: float) -> float:
        """Seconds since the last beacon from this neighbor."""
        return now - self.last_seen


class NeighborTable:
    """Beacon-derived view of nearby nodes with timeout-based expiry.

    When constructed with a ``clock`` (a zero-argument callable returning
    the current time), stale entries are also expired on every read, so a
    node whose *own* beaconing stopped (crash, stall) cannot serve an
    ever-frozen table: expiry used to run only inside the owner's beacon
    callback, which a crashed beaconer never executes again.  Without a
    clock, expiry remains explicit via :meth:`expire`.
    """

    def __init__(
        self, timeout_s: float, clock: Optional[Callable[[], float]] = None
    ) -> None:
        if timeout_s <= 0:
            raise ConfigurationError("timeout_s must be positive")
        self.timeout_s = timeout_s
        self._clock = clock
        self._entries: Dict[str, NeighborEntry] = {}

    def _expire_on_read(self) -> None:
        if self._clock is not None:
            self.expire(self._clock())

    def update_from_hello(self, message: Message, now: float) -> NeighborEntry:
        """Insert or refresh an entry from a HELLO message."""
        position = message.payload["position"]
        entry = self._entries.get(message.src)
        if entry is None:
            entry = NeighborEntry(
                node_id=message.src,
                position=Vec2(position[0], position[1]),
                speed_mps=message.payload.get("speed_mps", 0.0),
                heading_rad=message.payload.get("heading_rad", 0.0),
                last_seen=now,
            )
            self._entries[message.src] = entry
        else:
            entry.position = Vec2(position[0], position[1])
            entry.speed_mps = message.payload.get("speed_mps", entry.speed_mps)
            entry.heading_rad = message.payload.get("heading_rad", entry.heading_rad)
            entry.last_seen = now
            entry.beacon_count += 1
        return entry

    def expire(self, now: float) -> List[str]:
        """Drop entries older than the timeout; returns the dropped ids."""
        stale = [
            node_id
            for node_id, entry in self._entries.items()
            if entry.age(now) > self.timeout_s
        ]
        for node_id in stale:
            del self._entries[node_id]
        return stale

    def get(self, node_id: str) -> Optional[NeighborEntry]:
        """Return the entry for ``node_id`` if fresh enough to exist."""
        self._expire_on_read()
        return self._entries.get(node_id)

    def entries(self) -> List[NeighborEntry]:
        """Return all current entries."""
        self._expire_on_read()
        return list(self._entries.values())

    def ids(self) -> List[str]:
        """Return all current neighbor ids."""
        self._expire_on_read()
        return list(self._entries)

    def __len__(self) -> int:
        self._expire_on_read()
        return len(self._entries)

    def __contains__(self, node_id: str) -> bool:
        self._expire_on_read()
        return node_id in self._entries


class BeaconService:
    """Runs beaconing and neighbor-table maintenance for one vehicle node.

    The optional ``identity_provider`` lets the security layer substitute
    a pseudonym for the on-air source id, which is what makes pseudonym
    changes visible to the tracking adversary of experiment E3.
    """

    def __init__(
        self,
        world: World,
        node: VehicleNode,
        interval_s: Optional[float] = None,
        timeout_s: Optional[float] = None,
        identity_provider: Optional[object] = None,
    ) -> None:
        cloud_cfg = world.config.cloud
        self.world = world
        self.node = node
        self.interval_s = interval_s if interval_s is not None else cloud_cfg.beacon_interval_s
        timeout = timeout_s if timeout_s is not None else cloud_cfg.neighbor_timeout_s
        self.table = NeighborTable(timeout, clock=lambda: self.world.now)
        self.identity_provider = identity_provider
        self._task = None
        node.on(MessageKind.HELLO, self._on_hello)

    def start(self) -> None:
        """Begin periodic beaconing (with per-node jitter)."""
        if self._task is not None:
            return
        rng = self.world.rng.fork(f"beacon/{self.node.node_id}")
        self._task = self.world.engine.call_every(
            self.interval_s,
            self._beacon,
            label=f"beacon:{self.node.node_id}",
            jitter=self.interval_s * 0.1,
            rng=rng,
            start_delay=rng.uniform(0.0, self.interval_s),
        )

    def stop(self) -> None:
        """Stop beaconing."""
        if self._task is not None:
            self._task.stop()
            self._task = None

    def on_air_identity(self) -> str:
        """Return the identity this node currently puts on the air."""
        if self.identity_provider is not None:
            return self.identity_provider.current_identity(self.world.now)
        return self.node.node_id

    def _beacon(self) -> None:
        vehicle = self.node.vehicle
        message = hello_message(
            src=self.on_air_identity(),
            position=vehicle.position.as_tuple(),
            speed_mps=vehicle.speed_mps,
            heading_rad=vehicle.heading_rad,
            created_at=self.world.now,
        )
        self.node.broadcast(message)
        self.world.metrics.increment("beacon/sent")
        self.table.expire(self.world.now)

    def _on_hello(self, message: Message, from_id: str) -> None:
        self.table.update_from_hello(message, self.world.now)
        self.world.metrics.increment("beacon/received")
