"""Mobility-aware clustering.

Heads are chosen by a composite stability score combining degree
(centrality), speed conformity and heading alignment with neighbors —
the recipe common to the cluster-head-selection literature the survey
cites (Bagherlou et al. [7], Arkian et al. [5]).  Vehicles moving with
the local flow and surrounded by many neighbors make durable heads;
vehicles about to exit the neighborhood do not.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set

from ...errors import ConfigurationError
from ...mobility.vehicle import Vehicle
from .base import Cluster, ClusteringAlgorithm, ClusterSet, neighbors_within


class MobilityClustering(ClusteringAlgorithm):
    """Score-based single-hop clustering around stable heads."""

    name = "mobility"

    def __init__(
        self,
        degree_weight: float = 0.4,
        speed_weight: float = 0.3,
        heading_weight: float = 0.3,
        max_cluster_size: int = 64,
        min_alignment: float = 0.0,
    ) -> None:
        """``min_alignment`` gates membership: a neighbor joins a head's
        cluster only when their heading alignment meets the threshold
        (0 disables the gate; ~0.7 keeps opposing traffic apart, which
        is what moving-zone formation wants)."""
        total = degree_weight + speed_weight + heading_weight
        if total <= 0:
            raise ConfigurationError("score weights must sum to a positive value")
        if max_cluster_size < 1:
            raise ConfigurationError("max_cluster_size must be >= 1")
        if not 0.0 <= min_alignment <= 1.0:
            raise ConfigurationError("min_alignment must be in [0, 1]")
        self.degree_weight = degree_weight / total
        self.speed_weight = speed_weight / total
        self.heading_weight = heading_weight / total
        self.max_cluster_size = max_cluster_size
        self.min_alignment = min_alignment

    def stability_score(self, vehicle: Vehicle, neighbors: Sequence[Vehicle]) -> float:
        """Return the head-suitability score of a vehicle.

        Degree is normalized by the local maximum the caller supplies via
        ``neighbors``; speed conformity and heading alignment are averaged
        over neighbors.  An isolated vehicle scores 0.
        """
        if not neighbors:
            return 0.0
        degree_term = min(1.0, len(neighbors) / 10.0)
        speed_terms = []
        heading_terms = []
        for other in neighbors:
            max_speed = max(vehicle.speed_mps, other.speed_mps, 1e-9)
            speed_terms.append(1.0 - abs(vehicle.speed_mps - other.speed_mps) / max_speed)
            heading_terms.append(vehicle.heading_alignment(other))
        speed_term = sum(speed_terms) / len(speed_terms)
        heading_term = sum(heading_terms) / len(heading_terms)
        return (
            self.degree_weight * degree_term
            + self.speed_weight * speed_term
            + self.heading_weight * heading_term
        )

    def form(
        self, vehicles: Sequence[Vehicle], range_m: float, now: float = 0.0
    ) -> ClusterSet:
        adjacency = neighbors_within(vehicles, range_m)
        by_id: Dict[str, Vehicle] = {v.vehicle_id: v for v in vehicles}
        scores = {
            vid: self.stability_score(by_id[vid], adjacency[vid]) for vid in by_id
        }
        # Greedy head selection: best score first, then absorb in-range
        # unassigned neighbors.  Ties break on vehicle id for determinism.
        order = sorted(by_id, key=lambda vid: (-scores[vid], vid))
        assigned: Set[str] = set()
        clusters: List[Cluster] = []
        control_messages = 0
        for vid in order:
            if vid in assigned:
                continue
            members = [vid]
            assigned.add(vid)
            head_vehicle = by_id[vid]
            candidates = sorted(
                (
                    n
                    for n in adjacency[vid]
                    if n.vehicle_id not in assigned
                    and head_vehicle.heading_alignment(n) >= self.min_alignment
                ),
                key=lambda v: head_vehicle.distance_to(v),
            )
            for neighbor in candidates:
                if len(members) >= self.max_cluster_size:
                    break
                members.append(neighbor.vehicle_id)
                assigned.add(neighbor.vehicle_id)
            # Formation cost: one advertisement by the head plus one join
            # message per member.
            control_messages += len(members)
            clusters.append(Cluster(head_id=vid, member_ids=members, formed_at=now))
        return ClusterSet(clusters=clusters, control_messages=control_messages)
