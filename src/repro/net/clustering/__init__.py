"""Clustering algorithms for v-cloud formation."""

from .base import (
    Cluster,
    ClusteringAlgorithm,
    ClusterSet,
    head_lifetimes,
    neighbors_within,
)
from .mobility_clustering import MobilityClustering
from .passive_multihop import PassiveMultihopClustering
from .rsu_anchored import RsuAnchoredClustering

__all__ = [
    "Cluster",
    "ClusterSet",
    "ClusteringAlgorithm",
    "MobilityClustering",
    "PassiveMultihopClustering",
    "RsuAnchoredClustering",
    "head_lifetimes",
    "neighbors_within",
]
