"""RSU-anchored clustering (infrastructure-based formation).

Clusters form around road-side units: every vehicle inside an RSU's
coverage joins that RSU's cluster, and the vehicle nearest the RSU acts
as the on-road head (the RSU itself is infrastructure, not a vehicle).
Vehicles outside all coverage are left unclustered — exactly the
availability gap the paper attributes to infrastructure-based v-clouds.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ...errors import ConfigurationError
from ...geometry import Vec2
from ...mobility.vehicle import Vehicle
from .base import Cluster, ClusteringAlgorithm, ClusterSet


class RsuAnchoredClustering(ClusteringAlgorithm):
    """Clusters pinned to fixed RSU positions."""

    name = "rsu-anchored"

    def __init__(self, rsu_positions: Sequence[Vec2], coverage_m: float = 500.0) -> None:
        if not rsu_positions:
            raise ConfigurationError("at least one RSU position is required")
        if coverage_m <= 0:
            raise ConfigurationError("coverage_m must be positive")
        self.rsu_positions = list(rsu_positions)
        self.coverage_m = coverage_m

    def form(
        self, vehicles: Sequence[Vehicle], range_m: float, now: float = 0.0
    ) -> ClusterSet:
        # Assign each covered vehicle to its nearest covering RSU.
        assignment: Dict[int, List[Vehicle]] = {i: [] for i in range(len(self.rsu_positions))}
        control_messages = 0
        for vehicle in vehicles:
            best_index = None
            best_distance = self.coverage_m
            for index, rsu_pos in enumerate(self.rsu_positions):
                distance = vehicle.position.distance_to(rsu_pos)
                if distance <= best_distance:
                    best_index = index
                    best_distance = distance
            if best_index is not None:
                assignment[best_index].append(vehicle)
                # Registration message to the RSU.
                control_messages += 1

        clusters: List[Cluster] = []
        for index, members in assignment.items():
            if not members:
                continue
            rsu_pos = self.rsu_positions[index]
            head = min(
                members,
                key=lambda v: (v.position.distance_to(rsu_pos), v.vehicle_id),
            )
            clusters.append(
                Cluster(
                    head_id=head.vehicle_id,
                    member_ids=sorted(v.vehicle_id for v in members),
                    formed_at=now,
                )
            )
            # Head appointment message from the RSU.
            control_messages += 1
        return ClusterSet(clusters=clusters, control_messages=control_messages)

    def coverage_fraction(self, vehicles: Sequence[Vehicle]) -> float:
        """Return the fraction of vehicles inside any RSU's coverage."""
        if not vehicles:
            return 0.0
        covered = sum(
            1
            for vehicle in vehicles
            if any(
                vehicle.position.distance_to(pos) <= self.coverage_m
                for pos in self.rsu_positions
            )
        )
        return covered / len(vehicles)
