"""Clustering abstractions.

The survey (§IV.A.1) concludes that clusters are the organizing device of
v-clouds: a well-chosen cluster head "can serve as the coordinator of a
group of vehicles to support resource sharing, task allocation and result
aggregation".  Algorithms here partition a vehicle set into clusters and
expose a maintenance step so churn and head lifetime can be measured.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ...errors import ConfigurationError
from ...geometry import Vec2, centroid
from ...mobility.vehicle import Vehicle
from ...sim.spatial import SpatialGrid


@dataclass
class Cluster:
    """A head plus its member vehicles (the head is also a member)."""

    head_id: str
    member_ids: List[str] = field(default_factory=list)
    formed_at: float = 0.0

    def __post_init__(self) -> None:
        if self.head_id not in self.member_ids:
            self.member_ids.insert(0, self.head_id)

    @property
    def size(self) -> int:
        """Number of members including the head."""
        return len(self.member_ids)

    def contains(self, vehicle_id: str) -> bool:
        """Return True if the vehicle belongs to this cluster."""
        return vehicle_id in self.member_ids

    def centroid_of(self, vehicles: Dict[str, Vehicle]) -> Vec2:
        """Return the geometric centre of the present members."""
        points = [
            vehicles[m].position for m in self.member_ids if m in vehicles
        ]
        if not points:
            raise ConfigurationError("cluster has no locatable members")
        return centroid(points)


@dataclass
class ClusterSet:
    """The output of one clustering pass: clusters plus bookkeeping."""

    clusters: List[Cluster] = field(default_factory=list)
    control_messages: int = 0

    def cluster_of(self, vehicle_id: str) -> Optional[Cluster]:
        """Return the cluster containing ``vehicle_id``, if any."""
        for cluster in self.clusters:
            if cluster.contains(vehicle_id):
                return cluster
        return None

    def head_ids(self) -> List[str]:
        """Return the ids of all cluster heads."""
        return [c.head_id for c in self.clusters]

    def all_member_ids(self) -> List[str]:
        """Return every clustered vehicle id."""
        return [m for c in self.clusters for m in c.member_ids]

    @property
    def mean_size(self) -> float:
        """Mean cluster size (0 for an empty set)."""
        if not self.clusters:
            return 0.0
        return sum(c.size for c in self.clusters) / len(self.clusters)


class ClusteringAlgorithm:
    """Base interface: form clusters from a vehicle snapshot."""

    name = "base"

    def form(
        self, vehicles: Sequence[Vehicle], range_m: float, now: float = 0.0
    ) -> ClusterSet:
        """Partition the vehicles into clusters."""
        raise NotImplementedError

    def maintain(
        self,
        previous: ClusterSet,
        vehicles: Sequence[Vehicle],
        range_m: float,
        now: float = 0.0,
    ) -> ClusterSet:
        """Update clusters after vehicles moved.

        The default recomputes from scratch but preserves ``formed_at``
        for clusters whose head survived, so head lifetime is measurable.
        Subclasses may override with cheaper incremental maintenance.
        """
        fresh = self.form(vehicles, range_m, now)
        previous_heads = {c.head_id: c.formed_at for c in previous.clusters}
        for cluster in fresh.clusters:
            if cluster.head_id in previous_heads:
                cluster.formed_at = previous_heads[cluster.head_id]
        return fresh


def neighbors_within(
    vehicles: Sequence[Vehicle], range_m: float, use_index: bool = True
) -> Dict[str, List[Vehicle]]:
    """Return the unit-disc adjacency of a vehicle snapshot.

    Indexed through a throw-away :class:`SpatialGrid` (O(n·k) for k
    local neighbors) instead of the O(n²) pairwise scan; both paths
    return identical adjacency, including list order (neighbors appear
    in snapshot order).  ``use_index=False`` forces the brute-force
    reference path; snapshots with duplicate vehicle ids fall back to it
    automatically because a grid keys items by id.
    """
    if range_m <= 0:
        raise ConfigurationError("range_m must be positive")
    ordered = list(vehicles)
    adjacency: Dict[str, List[Vehicle]] = {v.vehicle_id: [] for v in ordered}
    if not use_index or len(adjacency) != len(ordered):
        for i, a in enumerate(ordered):
            for b in ordered[i + 1 :]:
                if a.distance_to(b) <= range_m:
                    adjacency[a.vehicle_id].append(b)
                    adjacency[b.vehicle_id].append(a)
        return adjacency
    grid: "SpatialGrid[str]" = SpatialGrid(cell_size_m=range_m)
    by_id: Dict[str, Vehicle] = {}
    for vehicle in ordered:
        grid.insert(vehicle.vehicle_id, vehicle.position)
        by_id[vehicle.vehicle_id] = vehicle
    for vehicle in ordered:
        adjacency[vehicle.vehicle_id] = [
            by_id[other_id]
            for other_id in grid.within(vehicle.position, range_m)
            if other_id != vehicle.vehicle_id
        ]
    return adjacency


def head_lifetimes(history: Sequence[ClusterSet], interval_s: float) -> List[float]:
    """Estimate head tenure lengths from a sequence of cluster snapshots.

    A head's lifetime is the number of consecutive snapshots in which it
    remains a head, times the snapshot interval.  Heads still alive at
    the end of the history contribute their (censored) tenure as well.
    """
    if interval_s <= 0:
        raise ConfigurationError("interval_s must be positive")
    tenures: List[float] = []
    active: Dict[str, int] = {}
    for snapshot in history:
        heads = set(snapshot.head_ids())
        for head in list(active):
            if head not in heads:
                tenures.append(active.pop(head) * interval_s)
        for head in heads:
            active[head] = active.get(head, 0) + 1
    tenures.extend(count * interval_s for count in active.values())
    return tenures
