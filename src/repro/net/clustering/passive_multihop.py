"""Passive multi-hop clustering (after Zhang et al. [46]).

Vehicles organize by a *priority neighborhood following* mechanism: each
vehicle passively follows its highest-priority neighbor (the most stable
node it can hear), chains of followership terminate at local maxima which
become heads, and a member may sit up to ``n_hops`` from its head.  The
"passive" part is the cost model: no dedicated formation round-trips are
needed beyond the beacons vehicles already send, so ``control_messages``
only counts the piggybacked priority announcements.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Set

from ...errors import ConfigurationError
from ...mobility.vehicle import Vehicle
from .base import Cluster, ClusteringAlgorithm, ClusterSet, neighbors_within


class PassiveMultihopClustering(ClusteringAlgorithm):
    """N-hop clustering where the most stable node becomes head."""

    name = "passive-multihop"

    def __init__(self, n_hops: int = 2) -> None:
        if n_hops < 1:
            raise ConfigurationError("n_hops must be >= 1")
        self.n_hops = n_hops

    @staticmethod
    def priority(vehicle: Vehicle, neighbors: Sequence[Vehicle]) -> float:
        """Stability priority: low relative mobility, high degree.

        Relative mobility is the mean speed difference to neighbors; a
        vehicle matching the local flow has priority close to its degree.
        """
        if not neighbors:
            return 0.0
        relative_mobility = sum(
            vehicle.relative_speed(other) for other in neighbors
        ) / len(neighbors)
        return len(neighbors) / (1.0 + relative_mobility)

    def form(
        self, vehicles: Sequence[Vehicle], range_m: float, now: float = 0.0
    ) -> ClusterSet:
        adjacency = neighbors_within(vehicles, range_m)
        by_id: Dict[str, Vehicle] = {v.vehicle_id: v for v in vehicles}
        priorities = {
            vid: self.priority(by_id[vid], adjacency[vid]) for vid in by_id
        }

        # Priority neighbor following: each vehicle points at the best
        # neighbor (or itself if it is the local maximum).
        follows: Dict[str, str] = {}
        for vid in by_id:
            best = vid
            best_priority = priorities[vid]
            for neighbor in adjacency[vid]:
                nid = neighbor.vehicle_id
                if (priorities[nid], nid) > (best_priority, best):
                    best = nid
                    best_priority = priorities[nid]
            follows[vid] = best

        # Resolve follower chains to their fixpoint: each hop strictly
        # increases (priority, id), so chains terminate at local maxima.
        # The N-hop bound is enforced afterwards by the reachability BFS.
        head_of: Dict[str, str] = {}
        for vid in by_id:
            current = vid
            while follows[current] != current:
                current = follows[current]
            head_of[vid] = current

        # Group members under heads, then enforce the N-hop bound by BFS.
        grouped: Dict[str, List[str]] = {}
        for vid, head in head_of.items():
            grouped.setdefault(head, []).append(vid)

        clusters: List[Cluster] = []
        control_messages = 0
        for head, members in sorted(grouped.items()):
            reachable = self._within_hops(head, adjacency, set(members))
            in_cluster = sorted(m for m in members if m in reachable)
            stranded = [m for m in members if m not in reachable]
            clusters.append(Cluster(head_id=head, member_ids=in_cluster, formed_at=now))
            # Piggybacked priority exchange: one per member.
            control_messages += len(in_cluster)
            # Stranded followers become singleton clusters.
            for orphan in sorted(stranded):
                clusters.append(Cluster(head_id=orphan, member_ids=[orphan], formed_at=now))
                control_messages += 1
        return ClusterSet(clusters=clusters, control_messages=control_messages)

    def _within_hops(
        self,
        head: str,
        adjacency: Dict[str, List[Vehicle]],
        candidates: Set[str],
    ) -> Set[str]:
        """Return the candidate ids within ``n_hops`` of the head."""
        frontier = {head}
        reachable = {head}
        for _ in range(self.n_hops):
            next_frontier: Set[str] = set()
            for vid in frontier:
                for neighbor in adjacency.get(vid, []):
                    nid = neighbor.vehicle_id
                    if nid in candidates and nid not in reachable:
                        reachable.add(nid)
                        next_frontier.add(nid)
            frontier = next_frontier
        return reachable
