"""VANET network substrate: channel, messages, nodes, beacons, routing, clustering."""

from .beacon import BeaconService, NeighborEntry, NeighborTable
from .channel import (
    Frame,
    InterceptAction,
    InterceptVerdict,
    WirelessChannel,
)
from .messages import (
    BROADCAST,
    Message,
    MessageKind,
    SecurityEnvelope,
    data_message,
    hello_message,
    next_message_id,
)
from .node import FixedNode, NetworkNode, VehicleNode

__all__ = [
    "BROADCAST",
    "BeaconService",
    "FixedNode",
    "Frame",
    "InterceptAction",
    "InterceptVerdict",
    "Message",
    "MessageKind",
    "NeighborEntry",
    "NeighborTable",
    "NetworkNode",
    "SecurityEnvelope",
    "VehicleNode",
    "WirelessChannel",
    "data_message",
    "hello_message",
    "next_message_id",
]
