"""Wireless channel model.

The channel is a unit-disc graph (per-node radio range) with a
distance-dependent loss probability and a latency model:

    latency = base_transmit + bytes / rate + propagation(distance)
              + contention_delay * local_neighbor_count

That last term makes dense scenes slower, which is how DoS flooding and
density sweeps exert the time pressure the paper's "stringent time
constraints" arguments turn on.

Range queries (``neighbors_of``, ``broadcast`` receiver sets, tap
audibility) run through the world's :class:`~repro.sim.spatial.SpatialGrid`
rather than brute-force pairwise scans.  A per-tick neighbor cache —
invalidated on movement (detected by an identity-compare sweep of node
positions), attach and detach — keeps repeated queries within one event
free.  Construct with ``use_spatial_index=False`` to get the original
full-scan implementation; it is kept as the correctness oracle and the
"before" baseline of experiment E13, and returns byte-identical results.

Attack hooks: *taps* passively observe frames near an adversary
(eavesdropping, traffic-flow analysis); *interceptors* may drop, delay
or replace frames in flight (MITM, delay/suppression).

Observability: with a tracer attached to the world, the channel emits
message-lifecycle spans — sent → delivered (with the modelled latency)
or dropped (with the reason: unreachable, intercepted, loss, departed).
Which frames get spans is the tracer's ``channel_frames`` policy;
the default traces only messages carrying a trace context, so beacon
storms stay span-free.  Span bookkeeping never touches the RNG or the
engine queue, so traced runs keep byte-identical seeded metrics.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Protocol

from ..errors import NetworkError
from ..geometry import ORIGIN, Vec2
from ..sim.config import ChannelConfig
from ..sim.spatial import SpatialGrid
from ..sim.world import World
from .messages import Message

#: Below this many taps a linear audibility scan beats grid upkeep.
_TAP_INDEX_THRESHOLD = 8


class ChannelNode(Protocol):
    """What the channel needs from anything attached to it."""

    node_id: str
    radio_range_m: float

    @property
    def position(self) -> Vec2: ...

    def deliver(self, message: Message, from_id: str) -> None: ...


@dataclass(frozen=True)
class Frame:
    """One transmission attempt observed on the air."""

    src_id: str
    dst_id: Optional[str]  # None for broadcast
    message: Message
    sent_at: float


class InterceptAction(enum.Enum):
    """What an interceptor decided to do with a frame."""

    PASS = "pass"
    DROP = "drop"
    DELAY = "delay"
    REPLACE = "replace"
    DUPLICATE = "duplicate"


@dataclass(frozen=True)
class InterceptVerdict:
    """Result of running a frame past an interceptor."""

    action: InterceptAction = InterceptAction.PASS
    delay_s: float = 0.0
    replacement: Optional[Message] = None
    copies: int = 0

    @staticmethod
    def passthrough() -> "InterceptVerdict":
        return InterceptVerdict(InterceptAction.PASS)

    @staticmethod
    def drop() -> "InterceptVerdict":
        return InterceptVerdict(InterceptAction.DROP)

    @staticmethod
    def delay(seconds: float) -> "InterceptVerdict":
        return InterceptVerdict(InterceptAction.DELAY, delay_s=seconds)

    @staticmethod
    def replace(message: Message) -> "InterceptVerdict":
        return InterceptVerdict(InterceptAction.REPLACE, replacement=message)

    @staticmethod
    def duplicate(copies: int = 1) -> "InterceptVerdict":
        """Deliver the frame ``1 + copies`` times (duplication fault)."""
        if copies < 1:
            raise NetworkError("duplicate verdict needs copies >= 1")
        return InterceptVerdict(InterceptAction.DUPLICATE, copies=copies)


class Tap(Protocol):
    """A passive observer of frames (eavesdropper)."""

    @property
    def position(self) -> Vec2: ...

    @property
    def listen_range_m(self) -> float: ...

    def on_frame(self, frame: Frame) -> None: ...


Interceptor = Callable[[Frame], InterceptVerdict]


class WirelessChannel:
    """Shared broadcast medium connecting all radio-equipped nodes."""

    def __init__(
        self,
        world: World,
        config: Optional[ChannelConfig] = None,
        use_spatial_index: bool = True,
    ) -> None:
        self.world = world
        self.config = config if config is not None else world.config.channel
        self.rng = world.rng.fork("channel")
        self._nodes: Dict[str, ChannelNode] = {}
        self._taps: List[Tap] = []
        self._interceptors: List[Interceptor] = []
        self._grid: Optional["SpatialGrid[str]"] = (
            world.claim_spatial_grid(self) if use_spatial_index else None
        )
        self._neighbor_cache: Dict[str, List[ChannelNode]] = {}
        self._tap_grid: Optional["SpatialGrid[int]"] = None
        self._tap_reach_m = 0.0

    # -- membership --------------------------------------------------------

    def attach(self, node: ChannelNode) -> None:
        """Attach a node to the medium."""
        if node.node_id in self._nodes:
            raise NetworkError(f"node already attached: {node.node_id!r}")
        self._nodes[node.node_id] = node
        if self._grid is not None:
            try:
                position = node.position
            except Exception:
                # Subclass constructors attach before their position
                # backing field exists; the pre-query sweep corrects it.
                position = ORIGIN
            self._grid.insert(node.node_id, position)
            self._neighbor_cache.clear()

    def detach(self, node_id: str) -> None:
        """Detach a node; pending deliveries to it are lost."""
        self._nodes.pop(node_id, None)
        if self._grid is not None:
            self._grid.remove(node_id)
            self._neighbor_cache.clear()

    def is_attached(self, node_id: str) -> bool:
        """Return True if the node is currently attached."""
        return node_id in self._nodes

    def node(self, node_id: str) -> ChannelNode:
        """Return the attached node with this id."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise NetworkError(f"no such node on channel: {node_id!r}") from None

    def nodes(self) -> List[ChannelNode]:
        """Return all attached nodes."""
        return list(self._nodes.values())

    # -- topology queries ------------------------------------------------------

    def in_range(self, a: ChannelNode, b: ChannelNode) -> bool:
        """True if ``a`` can reach ``b`` with its own radio range."""
        return a.position.distance_to(b.position) <= a.radio_range_m

    def _sync_index(self) -> None:
        """Bring the grid in line with live node positions.

        Entities mutate their positions directly (mobility models, fault
        teleports, tests), so before any indexed query we sweep the
        attached nodes and re-bucket the ones that moved.  Unmoved nodes
        keep the same ``Vec2`` object, making the common case one
        identity comparison; any detected movement invalidates the
        per-tick neighbor cache.
        """
        grid = self._grid
        assert grid is not None
        moved = False
        for node_id, node in self._nodes.items():
            if grid.move_if_changed(node_id, node.position):
                moved = True
        if moved:
            self._neighbor_cache.clear()

    def _scan_neighbors(self, node_id: str) -> List[ChannelNode]:
        """Brute-force neighbor scan (the pre-index reference path)."""
        node = self.node(node_id)
        return [
            other
            for other in self._nodes.values()
            if other.node_id != node_id and self.in_range(node, other)
        ]

    def neighbors_of(self, node_id: str) -> List[ChannelNode]:
        """Return nodes reachable from ``node_id`` (excluding itself)."""
        if self._grid is None:
            return self._scan_neighbors(node_id)
        node = self.node(node_id)
        self._sync_index()
        cached = self._neighbor_cache.get(node_id)
        if cached is None:
            nodes = self._nodes
            cached = [
                nodes[other_id]
                for other_id in self._grid.within(node.position, node.radio_range_m)
                if other_id != node_id and other_id in nodes
            ]
            self._neighbor_cache[node_id] = cached
        return list(cached)

    def neighbor_count(self, node_id: str) -> int:
        """Return the number of reachable neighbors."""
        return len(self.neighbors_of(node_id))

    # -- attack hooks -------------------------------------------------------------

    def add_tap(self, tap: Tap) -> None:
        """Register a passive eavesdropper."""
        self._taps.append(tap)
        self._tap_grid = None

    def remove_tap(self, tap: Tap) -> None:
        """Remove a previously registered tap."""
        self._taps.remove(tap)
        self._tap_grid = None

    def add_interceptor(self, interceptor: Interceptor) -> None:
        """Register an in-path interceptor (MITM / delay / suppression)."""
        self._interceptors.append(interceptor)

    def remove_interceptor(self, interceptor: Interceptor) -> None:
        """Remove a previously registered interceptor."""
        self._interceptors.remove(interceptor)

    # -- transmission ---------------------------------------------------------------

    def unicast(self, src_id: str, dst_id: str, message: Message) -> bool:
        """Transmit to a single in-range destination.

        Returns True if the frame was *sent* (destination in range); the
        actual delivery may still be lost or intercepted.  Out-of-range
        destinations return False without raising, because transient
        disconnection is normal in VANETs, not an error.
        """
        src = self.node(src_id)
        dst = self._nodes.get(dst_id)
        frame = Frame(src_id, dst_id, message, self.world.now)
        self._offer_to_taps(frame, src)
        self.world.metrics.increment("channel/frames_sent")
        self.world.metrics.increment("channel/bytes_sent", message.total_bytes)
        tracer = self.world.tracer
        span = self._frame_span("msg.unicast", message, src_id, dst_id)
        if dst is None or not self.in_range(src, dst):
            self.world.metrics.increment("channel/frames_unreachable")
            if span is not None and tracer is not None:
                tracer.end_span(span, "dropped", {"reason": "unreachable"})
            return False
        self._dispatch(frame, src, dst, span=span)
        return True

    def broadcast(self, src_id: str, message: Message) -> int:
        """Transmit to every in-range node; returns the receiver count."""
        src = self.node(src_id)
        frame = Frame(src_id, None, message, self.world.now)
        self._offer_to_taps(frame, src)
        self.world.metrics.increment("channel/frames_sent")
        self.world.metrics.increment("channel/bytes_sent", message.total_bytes)
        receivers = self.neighbors_of(src_id)
        # The contention term depends only on the *source's* neighborhood,
        # so compute it once per frame instead of once per receiver (the
        # seed recomputed the full scan inside ``_dispatch`` for every
        # receiver, making a broadcast quadratic).  The legacy full-scan
        # mode keeps the per-receiver recompute as the E13 baseline.
        contention = len(receivers) if self._grid is not None else None
        parent_span = self._frame_span("msg.broadcast", message, src_id, None)
        tracer = self.world.tracer
        for dst in receivers:
            child = None
            if parent_span is not None and tracer is not None:
                child = tracer.start_span(
                    "msg.delivery",
                    subsystem="net",
                    parent=parent_span,
                    attrs={"dst": dst.node_id},
                )
            self._dispatch(
                Frame(src_id, dst.node_id, message, self.world.now),
                src,
                dst,
                contention=contention,
                span=child,
            )
        if parent_span is not None and tracer is not None:
            tracer.end_span(parent_span, "ok", {"receivers": len(receivers)})
        return len(receivers)

    # -- internals ------------------------------------------------------------------

    def _frame_span(
        self, name: str, message: Message, src_id: str, dst_id: Optional[str]
    ):
        """Open a lifecycle span for a frame, or None when untraced."""
        tracer = self.world.tracer
        if tracer is None or not tracer.wants_frame(message):
            return None
        return tracer.start_span(
            name,
            subsystem="net",
            parent=message.trace_ctx,
            attrs={
                "msg_id": message.msg_id,
                "kind": message.kind.value,
                "src": src_id,
                "dst": dst_id,
                "bytes": message.total_bytes,
            },
        )

    def _offer_to_taps(self, frame: Frame, src: ChannelNode) -> None:
        taps = self._taps
        if not taps:
            return
        if self._grid is None or len(taps) < _TAP_INDEX_THRESHOLD:
            for tap in taps:
                if tap.position.distance_to(src.position) <= tap.listen_range_m:
                    tap.on_frame(frame)
            return
        self._sync_taps()
        assert self._tap_grid is not None
        for index in self._tap_grid.within(src.position, self._tap_reach_m):
            tap = taps[index]
            if tap.position.distance_to(src.position) <= tap.listen_range_m:
                tap.on_frame(frame)

    def _sync_taps(self) -> None:
        """(Re)index tap positions; taps can ride on moving adversaries.

        The grid is queried with the *largest* listen range, then every
        candidate is re-checked against its own range, so per-tap ranges
        (and range changes) stay exact.
        """
        assert self._grid is not None
        grid = self._tap_grid
        if grid is None:
            grid = SpatialGrid(cell_size_m=self._grid.cell_size_m)
            for index, tap in enumerate(self._taps):
                grid.insert(index, tap.position)
            self._tap_grid = grid
        else:
            for index, tap in enumerate(self._taps):
                grid.move_if_changed(index, tap.position)
        self._tap_reach_m = max(tap.listen_range_m for tap in self._taps)

    def _run_interceptors(self, frame: Frame) -> InterceptVerdict:
        for interceptor in self._interceptors:
            verdict = interceptor(frame)
            if verdict.action is not InterceptAction.PASS:
                return verdict
        return InterceptVerdict.passthrough()

    def _loss_probability(self, distance_m: float) -> float:
        loss = (
            self.config.base_loss_probability
            + self.config.loss_per_100m * distance_m / 100.0
        )
        # Clamp both ends: a pathological config or rounding at very
        # short distances must never yield a negative probability.
        return min(0.95, max(0.0, loss))

    def latency(self, distance_m: float, size_bytes: int, neighbor_count: int) -> float:
        """Return the modelled one-hop latency for a frame."""
        return (
            self.config.base_transmit_delay_s
            + size_bytes / self.config.bytes_per_second
            + (distance_m / 1000.0) * self.config.propagation_delay_s_per_km * 1000.0
            + self.config.contention_delay_per_neighbor_s * neighbor_count
        )

    def _dispatch(
        self,
        frame: Frame,
        src: ChannelNode,
        dst: ChannelNode,
        contention: Optional[int] = None,
        span=None,
    ) -> None:
        # Conservation law (checked by chaos invariants): every dispatch
        # accounts for all its transmissions exactly once —
        #   frames_dispatched + frames_duplicated ==
        #       frames_suppressed + frames_lost + frames_scheduled
        # and frames_scheduled - frames_delivered - frames_to_departed is
        # the number of frames still in flight (never negative).
        self.world.metrics.increment("channel/frames_dispatched")
        tracer = self.world.tracer if span is not None else None
        verdict = self._run_interceptors(frame)
        if verdict.action is InterceptAction.DROP:
            self.world.metrics.increment("channel/frames_suppressed")
            if tracer is not None:
                tracer.link_active_faults(span)
                tracer.end_span(span, "dropped", {"reason": "intercepted"})
            return
        message = frame.message
        extra_delay = 0.0
        transmissions = 1
        if verdict.action is InterceptAction.DELAY:
            extra_delay = verdict.delay_s
            self.world.metrics.increment("channel/frames_delayed")
            if tracer is not None:
                tracer.add_event(span, "delayed", extra_s=extra_delay)
        elif verdict.action is InterceptAction.REPLACE:
            if verdict.replacement is None:
                raise NetworkError("REPLACE verdict without a replacement message")
            message = verdict.replacement
            self.world.metrics.increment("channel/frames_tampered")
            if tracer is not None:
                tracer.add_event(span, "tampered", replacement=message.msg_id)
        elif verdict.action is InterceptAction.DUPLICATE:
            transmissions += verdict.copies
            self.world.metrics.increment("channel/frames_duplicated", verdict.copies)
            if tracer is not None:
                tracer.add_event(span, "duplicated", copies=verdict.copies)

        distance = src.position.distance_to(dst.position)
        loss_probability = self._loss_probability(distance)
        if contention is None:
            contention = self.neighbor_count(src.node_id)
        delay = self.latency(distance, message.total_bytes, contention)
        delivered = message
        from_id = frame.src_id
        dst_id = dst.node_id

        def _deliver() -> None:
            target = self._nodes.get(dst_id)
            if target is None:
                self.world.metrics.increment("channel/frames_to_departed")
                if tracer is not None:
                    tracer.end_span(span, "dropped", {"reason": "departed"})
                return
            self.world.metrics.increment("channel/frames_delivered")
            self.world.metrics.observe("channel/delivery_latency_s", delay + extra_delay)
            if tracer is not None:
                # The first delivery closes the span; duplicates land as
                # events on the already-closed span (end_span is first-
                # close-wins).
                if span.ended:
                    tracer.add_event(span, "duplicate_delivered")
                else:
                    tracer.end_span(
                        span, "delivered", {"latency_s": delay + extra_delay}
                    )
            target.deliver(delivered, from_id)

        # Each (possibly duplicated) transmission faces the link loss
        # independently; the common single-transmission path draws from
        # the RNG exactly once, as before.
        scheduled = 0
        for _ in range(transmissions):
            if self.rng.chance(loss_probability):
                self.world.metrics.increment("channel/frames_lost")
                if tracer is not None:
                    tracer.add_event(span, "lost")
                continue
            self.world.engine.schedule(delay + extra_delay, _deliver, label="frame-delivery")
            scheduled += 1
        if scheduled:
            self.world.metrics.increment("channel/frames_scheduled", scheduled)
        if tracer is not None and scheduled == 0:
            tracer.link_active_faults(span)
            tracer.end_span(span, "dropped", {"reason": "loss"})
