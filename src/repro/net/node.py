"""Network node wrappers.

A :class:`NetworkNode` gives an entity (vehicle, RSU, base station) a
presence on the wireless channel: an id, a position, a radio range, and
a dispatch table of message handlers keyed by :class:`MessageKind`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from ..geometry import Vec2
from ..mobility.vehicle import Vehicle
from ..sim.world import World
from .channel import WirelessChannel
from .messages import Message, MessageKind

MessageHandler = Callable[[Message, str], None]


class NetworkNode:
    """Base node attached to the wireless channel."""

    def __init__(
        self,
        world: World,
        channel: WirelessChannel,
        node_id: str,
        radio_range_m: float,
    ) -> None:
        self.world = world
        self.channel = channel
        self.node_id = node_id
        self.radio_range_m = radio_range_m
        self.online = True
        self._handlers: Dict[MessageKind, List[MessageHandler]] = {}
        self._default_handlers: List[MessageHandler] = []
        self.received_count = 0
        channel.attach(self)

    @property
    def position(self) -> Vec2:
        """Current physical position; subclasses must provide one."""
        raise NotImplementedError

    # -- handler registration ------------------------------------------------

    def on(self, kind: MessageKind, handler: MessageHandler) -> None:
        """Register a handler for one message kind."""
        self._handlers.setdefault(kind, []).append(handler)

    def on_any(self, handler: MessageHandler) -> None:
        """Register a handler that sees every delivered message."""
        self._default_handlers.append(handler)

    # -- channel interface ------------------------------------------------------

    def deliver(self, message: Message, from_id: str) -> None:
        """Called by the channel when a frame reaches this node."""
        if not self.online:
            return
        self.received_count += 1
        for handler in self._handlers.get(message.kind, []):
            handler(message, from_id)
        for handler in self._default_handlers:
            handler(message, from_id)

    def send(self, dst_id: str, message: Message) -> bool:
        """Unicast a message to ``dst_id``; False if out of range/offline."""
        if not self.online:
            return False
        return self.channel.unicast(self.node_id, dst_id, message)

    def broadcast(self, message: Message) -> int:
        """Broadcast a message; returns the in-range receiver count."""
        if not self.online:
            return 0
        return self.channel.broadcast(self.node_id, message)

    def neighbors(self) -> List[str]:
        """Return ids of nodes currently within radio range."""
        return [n.node_id for n in self.channel.neighbors_of(self.node_id)]

    def go_offline(self) -> None:
        """Stop receiving and sending (parked-and-off, damaged, ...)."""
        self.online = False

    def go_online(self) -> None:
        """Resume participation."""
        self.online = True


class VehicleNode(NetworkNode):
    """A vehicle's presence on the channel; position tracks the vehicle."""

    def __init__(
        self,
        world: World,
        channel: WirelessChannel,
        vehicle: Vehicle,
        radio_range_m: Optional[float] = None,
    ) -> None:
        range_m = (
            radio_range_m if radio_range_m is not None else world.config.channel.v2v_range_m
        )
        super().__init__(world, channel, vehicle.vehicle_id, range_m)
        self.vehicle = vehicle

    @property
    def position(self) -> Vec2:
        return self.vehicle.position


class FixedNode(NetworkNode):
    """A node at a fixed position (RSU, base station, service endpoint)."""

    def __init__(
        self,
        world: World,
        channel: WirelessChannel,
        node_id: str,
        position: Vec2,
        radio_range_m: float,
    ) -> None:
        super().__init__(world, channel, node_id, radio_range_m)
        self._position = position

    @property
    def position(self) -> Vec2:
        return self._position
