"""Message model for V2V / V2I communication.

A :class:`Message` is the unit handed to the wireless channel.  The
``path`` field accumulates the ids of nodes that relayed the message —
this is the provenance the trust layer's routing-path-similarity check
uses, and the thing attacks like MITM silently extend.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field, replace
from typing import Any, Dict, Optional, Tuple

from ..errors import ConfigurationError

BROADCAST = "*"

_message_counter = itertools.count(1)


def next_message_id() -> str:
    """Return a fresh process-unique message id."""
    return f"msg-{next(_message_counter)}"


def reset_message_ids() -> None:
    """Rewind the process-global message id counter to ``msg-1``.

    Companion of :func:`repro.core.tasks.reset_task_ids` for
    byte-identical cross-run replay; rewind only between fresh worlds.
    """
    global _message_counter
    _message_counter = itertools.count(1)


class MessageKind(enum.Enum):
    """Semantic categories of traffic on the v-cloud air interface."""

    HELLO = "hello"  # periodic beacons
    DATA = "data"  # routed application payloads
    EVENT_REPORT = "event_report"  # trust-layer event observations
    AUTH = "auth"  # authentication handshakes
    ACCESS = "access"  # authorization requests / grants
    TASK = "task"  # task assignment / results
    CONTROL = "control"  # cluster / cloud management
    MODE = "mode"  # operating-mode changes


@dataclass(frozen=True)
class SecurityEnvelope:
    """Security metadata attached to a message.

    ``claimed_identity`` is whatever identity the sender put on the air
    (a pseudonym, a group tag, or a bare id); ``signature`` is an opaque
    object produced by the crypto layer; ``nonce``/``timestamp`` feed the
    replay defence.
    """

    claimed_identity: str
    signature: Optional[object] = None
    nonce: str = ""
    timestamp: float = 0.0
    extra_bytes: int = 0


@dataclass(frozen=True)
class Message:
    """An immutable frame payload travelling on the channel."""

    kind: MessageKind
    src: str
    dst: str
    payload: Dict[str, Any] = field(default_factory=dict)
    size_bytes: int = 200
    created_at: float = 0.0
    ttl_hops: int = 16
    msg_id: str = field(default_factory=next_message_id)
    path: Tuple[str, ...] = ()
    envelope: Optional[SecurityEnvelope] = None
    #: Causal-trace context ``(trace_id, span_id)`` stamped by whoever
    #: originated the message's journey.  ``forwarded_by``/``replace``
    #: copies preserve it, so the same trace id survives multi-hop
    #: routing and task handovers — how the observability layer stitches
    #: a message's whole lifecycle into one trace.
    trace_ctx: Optional[Tuple[str, str]] = None

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ConfigurationError("size_bytes must be positive")
        if self.ttl_hops < 0:
            raise ConfigurationError("ttl_hops must be non-negative")

    @property
    def total_bytes(self) -> int:
        """Payload size plus any security-envelope overhead."""
        extra = self.envelope.extra_bytes if self.envelope is not None else 0
        return self.size_bytes + extra

    @property
    def hop_count(self) -> int:
        """Number of relays recorded so far."""
        return len(self.path)

    def is_broadcast(self) -> bool:
        """Return True if addressed to every node in range."""
        return self.dst == BROADCAST

    def forwarded_by(self, node_id: str) -> "Message":
        """Return a copy with ``node_id`` appended to the relay path."""
        return replace(self, path=self.path + (node_id,), ttl_hops=self.ttl_hops - 1)

    @property
    def trace_id(self) -> Optional[str]:
        """The causal trace this message belongs to, if traced."""
        return self.trace_ctx[0] if self.trace_ctx is not None else None

    def with_trace(self, ctx: Optional[Tuple[str, str]]) -> "Message":
        """Return a copy stamped with a ``(trace_id, span_id)`` context."""
        return replace(self, trace_ctx=ctx)

    def with_envelope(self, envelope: SecurityEnvelope) -> "Message":
        """Return a copy carrying the given security envelope."""
        return replace(self, envelope=envelope)

    def with_payload(self, **updates: Any) -> "Message":
        """Return a copy with payload keys merged/overridden."""
        merged = dict(self.payload)
        merged.update(updates)
        return replace(self, payload=merged)

    def expired(self) -> bool:
        """Return True once the hop budget is exhausted."""
        return self.ttl_hops <= 0


def hello_message(
    src: str,
    position: Tuple[float, float],
    speed_mps: float,
    heading_rad: float,
    created_at: float,
) -> Message:
    """Build a standard HELLO beacon."""
    return Message(
        kind=MessageKind.HELLO,
        src=src,
        dst=BROADCAST,
        payload={
            "position": position,
            "speed_mps": speed_mps,
            "heading_rad": heading_rad,
        },
        size_bytes=120,
        created_at=created_at,
        ttl_hops=0,
    )


def data_message(
    src: str,
    dst: str,
    size_bytes: int,
    created_at: float,
    payload: Optional[Dict[str, Any]] = None,
    ttl_hops: int = 16,
) -> Message:
    """Build a routed DATA message."""
    return Message(
        kind=MessageKind.DATA,
        src=src,
        dst=dst,
        payload=payload if payload is not None else {},
        size_bytes=size_bytes,
        created_at=created_at,
        ttl_hops=ttl_hops,
    )
