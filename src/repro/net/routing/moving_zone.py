"""Moving-zone routing (after MoZo, Lin et al. [22]).

Vehicles are grouped into *moving zones* — clusters built from heading
and speed similarity rather than bare position — and messages travel
zone-to-zone using pure V2V communication, with no infrastructure
involvement.  Within a zone the captain knows the membership; across
zones the relay picks the neighbor whose zone is making the best
progress toward the destination.

The mobility-aware grouping is the point: on a highway, position-only
clusters mix opposing traffic and shatter within seconds, while moving
zones persist, so zone-level forwarding decisions stay valid longer.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ...geometry import Vec2
from ...mobility.vehicle import Vehicle
from ..clustering.base import ClusterSet
from ..clustering.mobility_clustering import MobilityClustering
from ..messages import Message
from .base import NetworkView, RoutingProtocol


class MovingZoneRouting(RoutingProtocol):
    """Zone-based V2V routing with mobility-aware zone formation."""

    name = "moving-zone"

    def __init__(self, zone_range_m: float = 300.0, max_zone_size: int = 32) -> None:
        # Heavily weight co-movement and keep opposing traffic out of the
        # zone entirely, as MoZo does.
        self._clustering = MobilityClustering(
            degree_weight=0.2,
            speed_weight=0.4,
            heading_weight=0.4,
            max_cluster_size=max_zone_size,
            min_alignment=0.7,
        )
        self.zone_range_m = zone_range_m
        self.zones: ClusterSet = ClusterSet()
        self._zone_of: Dict[str, int] = {}
        self._vehicles: Dict[str, Vehicle] = {}

    # -- zone maintenance ---------------------------------------------------

    def prepare(
        self, view: NetworkView, vehicles: Sequence[Vehicle], now: float = 0.0
    ) -> int:
        return self.refresh(view, vehicles, now)

    def refresh(
        self, view: NetworkView, vehicles: Sequence[Vehicle], now: float = 0.0
    ) -> int:
        self._vehicles = {v.vehicle_id: v for v in vehicles}
        self.zones = self._clustering.maintain(
            self.zones, vehicles, self.zone_range_m, now
        )
        self._zone_of = {}
        for index, zone in enumerate(self.zones.clusters):
            for member in zone.member_ids:
                self._zone_of[member] = index
        return self.zones.control_messages

    def zone_index_of(self, node_id: str) -> Optional[int]:
        """Return the zone index of a vehicle, if it is zoned."""
        return self._zone_of.get(node_id)

    def _zone_centroid(self, index: int) -> Optional[Vec2]:
        try:
            return self.zones.clusters[index].centroid_of(self._vehicles)
        except Exception:
            return None

    # -- forwarding ------------------------------------------------------------

    def next_hops(
        self, current_id: str, dst_id: str, message: Message, view: NetworkView
    ) -> List[str]:
        neighbors = view.neighbors(current_id)
        if dst_id in neighbors:
            return [dst_id]
        dst_position = view.position_of(dst_id)
        current_position = view.position_of(current_id)
        if dst_position is None or current_position is None:
            return []

        my_zone = self._zone_of.get(current_id)
        dst_zone = self._zone_of.get(dst_id)

        # Intra-zone: relay via the captain, who knows the membership.
        if my_zone is not None and my_zone == dst_zone:
            captain = self.zones.clusters[my_zone].head_id
            if captain != current_id and captain in neighbors:
                return [captain]
            # Captain unreachable: fall through to geographic progress.

        # Inter-zone: prefer the neighbor whose *zone* makes the best
        # progress toward the destination; within the current zone, plain
        # geographic progress applies (the zone centroid would tie).
        my_distance = current_position.distance_to(dst_position)
        my_primary = my_distance
        if my_zone is not None:
            my_centroid = self._zone_centroid(my_zone)
            if my_centroid is not None:
                my_primary = my_centroid.distance_to(dst_position)
        best_id = None
        best_key = (my_primary, my_distance)
        for neighbor_id in neighbors:
            neighbor_position = view.position_of(neighbor_id)
            if neighbor_position is None:
                continue
            neighbor_distance = neighbor_position.distance_to(dst_position)
            zone_index = self._zone_of.get(neighbor_id)
            primary = neighbor_distance
            if zone_index is not None and zone_index != my_zone:
                zone_centroid = self._zone_centroid(zone_index)
                if zone_centroid is not None:
                    primary = zone_centroid.distance_to(dst_position)
            key = (primary, neighbor_distance)
            if key < best_key:
                best_key = key
                best_id = neighbor_id
        if best_id is not None:
            return [best_id]
        # Zone-level progress stalled (e.g. a zone centroid sits behind
        # the relay): recover with plain geographic progress so the zone
        # heuristic never does worse than greedy.
        fallback_id = None
        fallback_distance = my_distance
        for neighbor_id in neighbors:
            neighbor_position = view.position_of(neighbor_id)
            if neighbor_position is None:
                continue
            distance = neighbor_position.distance_to(dst_position)
            if distance < fallback_distance:
                fallback_distance = distance
                fallback_id = neighbor_id
        if fallback_id is None:
            return []
        return [fallback_id]
