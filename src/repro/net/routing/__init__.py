"""Routing protocols for VANET message delivery."""

from .base import (
    DeliveryRecord,
    NetworkView,
    RoutingHarness,
    RoutingProtocol,
    RoutingStats,
)
from .carry_forward import CarryForwardRouting
from .cluster_routing import ClusterRouting
from .epidemic import EpidemicRouting
from .greedy import GreedyGeographicRouting
from .moving_zone import MovingZoneRouting

__all__ = [
    "CarryForwardRouting",
    "ClusterRouting",
    "DeliveryRecord",
    "EpidemicRouting",
    "GreedyGeographicRouting",
    "MovingZoneRouting",
    "NetworkView",
    "RoutingHarness",
    "RoutingProtocol",
    "RoutingStats",
]
