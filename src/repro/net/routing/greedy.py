"""Greedy geographic forwarding (GPSR-style baseline).

Each relay forwards to the neighbor that makes the most geographic
progress toward the destination.  Messages die at local maxima (no
neighbor closer than self) — the classic failure mode that
cluster/zone-aware protocols are designed to mitigate.
"""

from __future__ import annotations

from typing import List

from ..messages import Message
from .base import NetworkView, RoutingProtocol


class GreedyGeographicRouting(RoutingProtocol):
    """Forward to the neighbor geographically closest to the destination."""

    name = "greedy"

    def next_hops(
        self, current_id: str, dst_id: str, message: Message, view: NetworkView
    ) -> List[str]:
        dst_position = view.position_of(dst_id)
        current_position = view.position_of(current_id)
        if dst_position is None or current_position is None:
            return []
        my_distance = current_position.distance_to(dst_position)
        best_id = None
        best_distance = my_distance
        for neighbor_id in view.neighbors(current_id):
            if neighbor_id == dst_id:
                return [dst_id]
            neighbor_position = view.position_of(neighbor_id)
            if neighbor_position is None:
                continue
            distance = neighbor_position.distance_to(dst_position)
            if distance < best_distance:
                best_distance = distance
                best_id = neighbor_id
        if best_id is None:
            return []  # local maximum: greedy fails here
        return [best_id]
