"""Epidemic (flooding) routing baseline.

Every relay rebroadcasts to all neighbors it has not already infected.
Maximal delivery probability, maximal overhead — the upper/lower bound
pair against which the efficient protocols are judged in experiment E7.
"""

from __future__ import annotations

from typing import List

from ..messages import Message
from .base import NetworkView, RoutingProtocol


class EpidemicRouting(RoutingProtocol):
    """Flood the message through every reachable node."""

    name = "epidemic"
    is_flooding = True

    def __init__(self, fanout_limit: int = 0) -> None:
        """``fanout_limit`` of 0 means unlimited; otherwise cap copies per hop."""
        self.fanout_limit = fanout_limit

    def next_hops(
        self, current_id: str, dst_id: str, message: Message, view: NetworkView
    ) -> List[str]:
        neighbors = view.neighbors(current_id)
        if dst_id in neighbors:
            # Always include the destination itself, then flood the rest.
            others = [n for n in neighbors if n != dst_id]
            if self.fanout_limit:
                others = others[: self.fanout_limit - 1]
            return [dst_id] + others
        if self.fanout_limit:
            return neighbors[: self.fanout_limit]
        return neighbors
