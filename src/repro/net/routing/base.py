"""Routing abstractions and the hop-by-hop delivery harness.

Routing protocols are *local* policies: given the current node, the
destination, and the node's view of the network, pick the next hop(s).
The :class:`RoutingHarness` wires a protocol into real channel traffic —
forwarding happens on message receipt, losses come from the channel
model, and latency accumulates per hop — so protocols are compared under
identical radio conditions (experiment E7).

Geographic protocols assume a location service that can resolve a
destination id to a position (standard in the VANET literature, e.g.
GPSR); :class:`NetworkView` provides it from simulation ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from ...errors import RoutingError
from ...geometry import Vec2
from ...mobility.vehicle import Vehicle
from ...sim.world import World
from ..channel import WirelessChannel
from ..messages import Message, MessageKind, data_message
from ..node import NetworkNode


class NetworkView:
    """A node's (idealized) view of network state for routing decisions."""

    def __init__(self, channel: WirelessChannel) -> None:
        self.channel = channel

    def position_of(self, node_id: str) -> Optional[Vec2]:
        """Resolve a node id to its current position (location service)."""
        if not self.channel.is_attached(node_id):
            return None
        return self.channel.node(node_id).position

    def neighbors(self, node_id: str) -> List[str]:
        """Return ids of nodes currently in radio range of ``node_id``."""
        if not self.channel.is_attached(node_id):
            return []
        return [n.node_id for n in self.channel.neighbors_of(node_id)]

    def is_alive(self, node_id: str) -> bool:
        """Return True if the node is attached to the channel."""
        return self.channel.is_attached(node_id)


class RoutingProtocol:
    """Base class for routing policies."""

    name = "base"
    #: Flooding protocols fan out to many neighbors per hop.
    is_flooding = False
    #: Store-carry-forward: when no next hop exists, hold the message at
    #: the current (moving) node and retry after this many seconds.
    #: 0 disables carrying (drop at local maxima instead).
    hold_retry_interval_s = 0.0
    #: Give up carrying after this long.
    max_hold_s = 0.0

    def prepare(
        self, view: NetworkView, vehicles: Sequence[Vehicle], now: float = 0.0
    ) -> int:
        """One-time setup (cluster formation etc.).

        Returns the number of control messages the setup cost.
        """
        return 0

    def refresh(
        self, view: NetworkView, vehicles: Sequence[Vehicle], now: float = 0.0
    ) -> int:
        """Periodic maintenance after mobility; returns control messages."""
        return 0

    def next_hops(
        self, current_id: str, dst_id: str, message: Message, view: NetworkView
    ) -> List[str]:
        """Return the neighbor ids to forward to (empty = drop)."""
        raise NotImplementedError


@dataclass
class DeliveryRecord:
    """Outcome bookkeeping for one routed message."""

    msg_id: str
    src_id: str
    dst_id: str
    sent_at: float
    delivered: bool = False
    delivered_at: Optional[float] = None
    hop_count: int = 0
    transmissions: int = 0
    drop_reason: Optional[str] = None
    path: tuple = ()
    carries: int = 0  # store-carry-forward hold periods used

    @property
    def latency_s(self) -> Optional[float]:
        """End-to-end delay, or None if never delivered."""
        if self.delivered_at is None:
            return None
        return self.delivered_at - self.sent_at


@dataclass
class RoutingStats:
    """Aggregate statistics over a batch of routed messages."""

    records: List[DeliveryRecord] = field(default_factory=list)
    control_messages: int = 0

    @property
    def sent(self) -> int:
        """Number of messages originated."""
        return len(self.records)

    @property
    def delivered(self) -> int:
        """Number delivered to their destination."""
        return sum(1 for r in self.records if r.delivered)

    @property
    def pdr(self) -> float:
        """Packet delivery ratio."""
        if not self.records:
            return 0.0
        return self.delivered / len(self.records)

    @property
    def mean_hops(self) -> float:
        """Mean hop count over delivered messages."""
        hops = [r.hop_count for r in self.records if r.delivered]
        if not hops:
            return 0.0
        return sum(hops) / len(hops)

    @property
    def mean_latency_s(self) -> float:
        """Mean end-to-end latency over delivered messages."""
        latencies = [r.latency_s for r in self.records if r.latency_s is not None]
        if not latencies:
            return 0.0
        return sum(latencies) / len(latencies)

    @property
    def total_transmissions(self) -> int:
        """All frames transmitted on behalf of routed messages."""
        return sum(r.transmissions for r in self.records)

    @property
    def overhead_per_delivery(self) -> float:
        """Transmissions (data + control) per delivered message."""
        if self.delivered == 0:
            return float("inf")
        return (self.total_transmissions + self.control_messages) / self.delivered


class RoutingHarness:
    """Drives a routing protocol over live channel traffic."""

    def __init__(
        self,
        world: World,
        channel: WirelessChannel,
        protocol: RoutingProtocol,
        nodes: Sequence[NetworkNode],
    ) -> None:
        self.world = world
        self.channel = channel
        self.protocol = protocol
        self.view = NetworkView(channel)
        self.stats = RoutingStats()
        self._records: Dict[str, DeliveryRecord] = {}
        self._seen: Dict[str, Set[str]] = {}
        self._nodes = {node.node_id: node for node in nodes}
        for node in nodes:
            node.on(MessageKind.DATA, self._make_handler(node))

    def prepare(self, vehicles: Sequence[Vehicle]) -> None:
        """Run the protocol's setup and account its control cost."""
        self.stats.control_messages += self.protocol.prepare(
            self.view, vehicles, self.world.now
        )

    def refresh(self, vehicles: Sequence[Vehicle]) -> None:
        """Run the protocol's maintenance step."""
        self.stats.control_messages += self.protocol.refresh(
            self.view, vehicles, self.world.now
        )

    def send(self, src_id: str, dst_id: str, size_bytes: int = 512) -> DeliveryRecord:
        """Originate a routed message; returns its live record."""
        if src_id not in self._nodes:
            raise RoutingError(f"unknown source node {src_id!r}")
        message = data_message(
            src=src_id,
            dst=dst_id,
            size_bytes=size_bytes,
            created_at=self.world.now,
            payload={"route_dst": dst_id},
        )
        record = DeliveryRecord(
            msg_id=message.msg_id,
            src_id=src_id,
            dst_id=dst_id,
            sent_at=self.world.now,
        )
        self._records[message.msg_id] = record
        self.stats.records.append(record)
        self._seen[message.msg_id] = {src_id}
        self._forward(src_id, message, record)
        return record

    # -- internals -----------------------------------------------------------

    def _make_handler(self, node: NetworkNode):
        def _handle(message: Message, from_id: str) -> None:
            self._on_data(node, message, from_id)

        return _handle

    def _on_data(self, node: NetworkNode, message: Message, from_id: str) -> None:
        record = self._records.get(message.msg_id)
        if record is None:
            return  # not one of ours (e.g. application traffic)
        seen = self._seen.setdefault(message.msg_id, set())
        if node.node_id in seen and self.protocol.is_flooding:
            return  # duplicate suppression
        seen.add(node.node_id)
        if node.node_id == record.dst_id:
            if not record.delivered:
                record.delivered = True
                record.delivered_at = self.world.now
                record.hop_count = len(message.path) + 1
                record.path = message.path + (node.node_id,)
            return
        if record.delivered:
            return  # flooding copies still in flight after delivery
        if message.expired():
            record.drop_reason = record.drop_reason or "ttl"
            return
        self._forward(node.node_id, message.forwarded_by(node.node_id), record)

    def _forward(
        self,
        current_id: str,
        message: Message,
        record: DeliveryRecord,
        held_since: Optional[float] = None,
    ) -> None:
        hops = self.protocol.next_hops(current_id, record.dst_id, message, self.view)
        if not hops:
            if self._try_carry(current_id, message, record, held_since):
                return
            record.drop_reason = record.drop_reason or "no_next_hop"
            return
        seen = self._seen.setdefault(message.msg_id, set())
        node = self._nodes.get(current_id)
        if node is None:
            record.drop_reason = record.drop_reason or "relay_departed"
            return
        for hop in hops:
            if self.protocol.is_flooding and hop in seen:
                continue
            record.transmissions += 1
            node.send(hop, message)

    def _try_carry(
        self,
        current_id: str,
        message: Message,
        record: DeliveryRecord,
        held_since: Optional[float],
    ) -> bool:
        """Store-carry-forward: hold the message on a moving relay.

        Returns True when a retry was scheduled; False means the protocol
        does not carry (or the hold budget ran out) and the message drops.
        """
        interval = self.protocol.hold_retry_interval_s
        if interval <= 0 or record.delivered:
            return False
        start = held_since if held_since is not None else self.world.now
        if self.world.now - start + interval > self.protocol.max_hold_s:
            record.drop_reason = record.drop_reason or "carry_timeout"
            return False
        if current_id not in self._nodes:
            return False
        record.carries += 1
        self.world.engine.schedule(
            interval,
            lambda: self._forward(current_id, message, record, held_since=start),
            label="carry-retry",
        )
        return True
