"""Store-carry-forward geographic routing (DTN-style).

Sparse VANETs partition; the survey's bus-based street-centric routing
(Sun et al. [36]) works because vehicles *physically carry* messages
across the gaps.  This protocol forwards greedily while progress exists
and otherwise holds the message on the current (moving) relay, retrying
every ``hold_retry_interval_s`` until mobility produces a next hop or
the hold budget expires.

The trade: far higher delivery in sparse scenes, paid in latency —
carrying happens at vehicle speed, not radio speed.
"""

from __future__ import annotations

from ...errors import ConfigurationError
from .greedy import GreedyGeographicRouting


class CarryForwardRouting(GreedyGeographicRouting):
    """Greedy forwarding plus mobility-assisted carrying at local maxima."""

    name = "carry-forward"

    def __init__(
        self, hold_retry_interval_s: float = 1.0, max_hold_s: float = 60.0
    ) -> None:
        if hold_retry_interval_s <= 0:
            raise ConfigurationError("hold_retry_interval_s must be positive")
        if max_hold_s < hold_retry_interval_s:
            raise ConfigurationError("max_hold_s must cover at least one retry")
        self.hold_retry_interval_s = hold_retry_interval_s
        self.max_hold_s = max_hold_s
