"""Cluster-head overlay routing (CBLTR-flavoured, Abuashour et al. [1]).

Members send via their cluster head; heads forward across the head
overlay toward the destination's cluster.  Head-to-head forwarding uses
geographic progress over *any* physical neighbor (members act as
gateways), so a hop in the overlay may be several physical hops.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ...mobility.vehicle import Vehicle
from ..clustering.base import ClusteringAlgorithm, ClusterSet
from ..clustering.mobility_clustering import MobilityClustering
from ..messages import Message
from .base import NetworkView, RoutingProtocol


class ClusterRouting(RoutingProtocol):
    """Route member -> head -> (overlay) -> head -> member."""

    name = "cluster"

    def __init__(
        self,
        clustering: Optional[ClusteringAlgorithm] = None,
        cluster_range_m: float = 300.0,
    ) -> None:
        self._clustering = clustering if clustering is not None else MobilityClustering()
        self.cluster_range_m = cluster_range_m
        self.clusters: ClusterSet = ClusterSet()
        self._cluster_of: Dict[str, int] = {}

    def prepare(
        self, view: NetworkView, vehicles: Sequence[Vehicle], now: float = 0.0
    ) -> int:
        return self.refresh(view, vehicles, now)

    def refresh(
        self, view: NetworkView, vehicles: Sequence[Vehicle], now: float = 0.0
    ) -> int:
        self.clusters = self._clustering.maintain(
            self.clusters, vehicles, self.cluster_range_m, now
        )
        self._cluster_of = {}
        for index, cluster in enumerate(self.clusters.clusters):
            for member in cluster.member_ids:
                self._cluster_of[member] = index
        return self.clusters.control_messages

    def head_of(self, node_id: str) -> Optional[str]:
        """Return the head id of the node's cluster, if clustered."""
        index = self._cluster_of.get(node_id)
        if index is None:
            return None
        return self.clusters.clusters[index].head_id

    def next_hops(
        self, current_id: str, dst_id: str, message: Message, view: NetworkView
    ) -> List[str]:
        neighbors = view.neighbors(current_id)
        if dst_id in neighbors:
            return [dst_id]
        dst_position = view.position_of(dst_id)
        current_position = view.position_of(current_id)
        if dst_position is None or current_position is None:
            return []

        my_head = self.head_of(current_id)
        dst_head = self.head_of(dst_id)

        # A member first hands the message to its own head (one overlay
        # entry point), unless the head is unreachable right now.
        if my_head is not None and my_head != current_id and my_head in neighbors:
            # Avoid bouncing: only go to the head if it was not the relay
            # that just gave us the message.  ``path`` already ends with
            # the current node, so the previous relay is one slot back.
            if len(message.path) >= 2:
                previous_relay = message.path[-2]
            elif message.path:
                previous_relay = message.src
            else:
                previous_relay = None
            if previous_relay != my_head:
                return [my_head]

        # Heads (or members acting as gateways) forward with geographic
        # progress, preferring neighbors in the destination's cluster.
        best_id = None
        best_key = (1, current_position.distance_to(dst_position))
        for neighbor_id in neighbors:
            neighbor_position = view.position_of(neighbor_id)
            if neighbor_position is None:
                continue
            in_dst_cluster = (
                dst_head is not None and self.head_of(neighbor_id) == dst_head
            )
            key = (0 if in_dst_cluster else 1, neighbor_position.distance_to(dst_position))
            if key < best_key:
                best_key = key
                best_id = neighbor_id
        if best_id is None:
            return []
        return [best_id]
