"""Message classifier: grouping reports by event (§V.D).

"A message classifier module needs to be designed to identify messages
belonging to the same event."  Reports are clustered by kind, spatial
proximity and temporal proximity with single-linkage agglomeration —
two reports land in the same cluster if a chain of pairwise-close
reports connects them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

from ..errors import ConfigurationError
from ..geometry import Vec2, centroid
from .events import EventKind, EventReport


@dataclass
class EventCluster:
    """Reports the classifier believes describe one event."""

    kind: EventKind
    reports: List[EventReport] = field(default_factory=list)

    @property
    def size(self) -> int:
        """Number of reports in the cluster."""
        return len(self.reports)

    def center(self) -> Vec2:
        """Centroid of the claimed locations."""
        return centroid(r.location for r in self.reports)

    def time_span(self) -> float:
        """Gap between earliest and latest report."""
        if not self.reports:
            return 0.0
        times = [r.reported_at for r in self.reports]
        return max(times) - min(times)

    def positive_fraction(self) -> float:
        """Fraction of reports claiming the event is real."""
        if not self.reports:
            return 0.0
        return sum(1 for r in self.reports if r.claim) / len(self.reports)

    def reporters(self) -> List[str]:
        """Distinct reporter identities."""
        seen: Dict[str, None] = {}
        for report in self.reports:
            seen.setdefault(report.reporter, None)
        return list(seen)


class MessageClassifier:
    """Groups incoming reports into per-event clusters."""

    #: Modelled per-pair comparison cost (distance + window checks).
    COMPARISON_COST_S = 2e-6

    def __init__(
        self,
        distance_threshold_m: float = 200.0,
        time_window_s: float = 30.0,
    ) -> None:
        if distance_threshold_m <= 0:
            raise ConfigurationError("distance_threshold_m must be positive")
        if time_window_s <= 0:
            raise ConfigurationError("time_window_s must be positive")
        self.distance_threshold_m = distance_threshold_m
        self.time_window_s = time_window_s
        self.last_cost_s = 0.0

    def related(self, a: EventReport, b: EventReport) -> bool:
        """True if two reports plausibly describe the same event."""
        return (
            a.kind == b.kind
            and a.distance_to(b) <= self.distance_threshold_m
            and a.time_gap(b) <= self.time_window_s
        )

    def classify(self, reports: Sequence[EventReport]) -> List[EventCluster]:
        """Partition ``reports`` into event clusters (single linkage)."""
        clusters: List[EventCluster] = []
        comparisons = 0
        for report in reports:
            joined: List[EventCluster] = []
            for cluster in clusters:
                if cluster.kind != report.kind:
                    continue
                for member in cluster.reports:
                    comparisons += 1
                    if self.related(report, member):
                        joined.append(cluster)
                        break
            if not joined:
                clusters.append(EventCluster(kind=report.kind, reports=[report]))
            else:
                # Merge every cluster the report bridges.
                primary = joined[0]
                primary.reports.append(report)
                for other in joined[1:]:
                    primary.reports.extend(other.reports)
                    clusters.remove(other)
        self.last_cost_s = comparisons * self.COMPARISON_COST_S
        return clusters
