"""Routing-path provenance analysis.

The paper's §V.D prescribes examining "routing path similarity" when
reconciling conflicting reports: ten reports that all transited the same
two relays are barely more evidence than one report, because a single
malicious relay could have minted all of them.  Evidence weights are
therefore discounted by path overlap (after the provenance-based
assessment of Lim et al. [20]).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from .events import EventReport


def path_jaccard(a: Tuple[str, ...], b: Tuple[str, ...]) -> float:
    """Jaccard overlap of two relay paths (1.0 = identical relays).

    Two direct (empty-path) reports share no relays, hence overlap 0 —
    they are independent first-hand deliveries.
    """
    set_a, set_b = set(a), set(b)
    if not set_a and not set_b:
        return 0.0
    union = set_a | set_b
    if not union:
        return 0.0
    return len(set_a & set_b) / len(union)


def diversity_weight(report: EventReport, others: Sequence[EventReport]) -> float:
    """Weight in (0, 1] reflecting how path-independent a report is.

    A report whose path heavily overlaps its co-reports is discounted:
    weight = 1 / (1 + sum of pairwise overlaps).
    """
    overlap_mass = sum(
        path_jaccard(report.path, other.path)
        for other in others
        if other.report_id != report.report_id
    )
    return 1.0 / (1.0 + overlap_mass)


def effective_report_count(reports: Sequence[EventReport]) -> float:
    """Path-diversity-adjusted evidence mass of a report set.

    Equals ``len(reports)`` when all paths are disjoint and approaches 1
    as all reports collapse onto one shared path.
    """
    return sum(diversity_weight(report, reports) for report in reports)


def shared_relays(reports: Sequence[EventReport]) -> List[str]:
    """Relays present in every report's path (chokepoint suspects)."""
    if not reports:
        return []
    common = set(reports[0].path)
    for report in reports[1:]:
        common &= set(report.path)
    return sorted(common)
