"""The end-to-end trust pipeline of §V.D.

``classifier -> validator -> (reputation feedback)``: incoming reports
are grouped into event clusters, each cluster is judged by a content
validator, and — once ground truth about an event eventually surfaces —
reporter reputations are updated so future judgements improve.

The pipeline accounts total latency per decision: per-report message
authentication (from the active auth protocol's cost model), classifier
comparisons, and validator compute.  That total is what experiment E5
holds against the paper's stringent-time-constraint budgets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from .classifier import EventCluster, MessageClassifier
from .events import EventReport
from .reputation import ReputationStore
from .validators.base import TrustDecision, Validator


@dataclass(frozen=True)
class PipelineDecision:
    """One cluster's verdict with full latency attribution."""

    cluster: EventCluster
    decision: TrustDecision
    auth_latency_s: float
    classify_latency_s: float

    @property
    def total_latency_s(self) -> float:
        """Authentication + classification + validation time."""
        return self.auth_latency_s + self.classify_latency_s + self.decision.latency_s


@dataclass
class TrustPipeline:
    """Composable classifier + validator + reputation store."""

    classifier: MessageClassifier
    validator: Validator
    reputation: Optional[ReputationStore] = None
    per_message_auth_cost_s: float = 0.0
    decisions: List[PipelineDecision] = field(default_factory=list)

    def process(self, reports: Sequence[EventReport]) -> List[PipelineDecision]:
        """Classify and validate a batch of reports."""
        clusters = self.classifier.classify(reports)
        classify_cost = self.classifier.last_cost_s
        share = classify_cost / len(clusters) if clusters else 0.0
        batch: List[PipelineDecision] = []
        for cluster in clusters:
            verdict = self.validator.evaluate(cluster, self.reputation)
            batch.append(
                PipelineDecision(
                    cluster=cluster,
                    decision=verdict,
                    auth_latency_s=self.per_message_auth_cost_s * cluster.size,
                    classify_latency_s=share,
                )
            )
        self.decisions.extend(batch)
        return batch

    def feedback(self, cluster: EventCluster, truth_exists: bool, now: float = 0.0) -> None:
        """Update reporter reputations once ground truth is known."""
        if self.reputation is None:
            return
        for report in cluster.reports:
            self.reputation.observe(report.reporter, report.claim == truth_exists, now)

    def accuracy_against(self, truth_by_cluster: Sequence[bool]) -> float:
        """Fraction of recorded decisions matching supplied ground truth."""
        if not self.decisions or len(truth_by_cluster) != len(self.decisions):
            raise ValueError("need one ground-truth flag per recorded decision")
        correct = sum(
            1
            for decision, truth in zip(self.decisions, truth_by_cluster)
            if decision.decision.correct_against(truth)
        )
        return correct / len(self.decisions)
