"""Event reporting over the live network (§V.D end to end).

Vehicles that witness an event broadcast ``EVENT_REPORT`` messages; a
collector (typically the cluster head) gathers whatever the radio
delivers, reconstructs :class:`EventReport` objects — relay provenance
included — and periodically pushes batches through a
:class:`~repro.trust.pipeline.TrustPipeline`.

This closes the loop the unit-level trust tests leave open: reports here
suffer real channel loss, real relay paths, and real delays before the
validator ever sees them.
"""

from __future__ import annotations

from typing import List, Optional

from ..geometry import Vec2
from ..net.messages import Message, MessageKind
from ..net.node import NetworkNode
from ..sim.world import World
from .events import EventKind, EventReport
from .pipeline import PipelineDecision, TrustPipeline


def report_message(
    src: str,
    kind: EventKind,
    location: Vec2,
    claim: bool,
    now: float,
    confidence: float = 0.9,
) -> Message:
    """Encode an event report for the air interface."""
    return Message(
        kind=MessageKind.EVENT_REPORT,
        src=src,
        dst="*",
        payload={
            "event_kind": kind.value,
            "location": location.as_tuple(),
            "claim": claim,
            "confidence": confidence,
        },
        size_bytes=160,
        created_at=now,
        ttl_hops=4,
    )


class EventReportCollector:
    """Receives EVENT_REPORT traffic at one node and feeds the pipeline."""

    def __init__(
        self,
        world: World,
        node: NetworkNode,
        pipeline: TrustPipeline,
        batch_interval_s: float = 5.0,
    ) -> None:
        self.world = world
        self.node = node
        self.pipeline = pipeline
        self.batch_interval_s = batch_interval_s
        self.pending: List[EventReport] = []
        self.decisions: List[PipelineDecision] = []
        self.reports_received = 0
        self._task = None
        node.on(MessageKind.EVENT_REPORT, self._on_report)

    def _on_report(self, message: Message, from_id: str) -> None:
        payload = message.payload
        location = payload["location"]
        self.reports_received += 1
        self.pending.append(
            EventReport(
                reporter=message.src,
                kind=EventKind(payload["event_kind"]),
                location=Vec2(location[0], location[1]),
                reported_at=message.created_at,
                claim=bool(payload["claim"]),
                confidence=float(payload.get("confidence", 0.9)),
                path=message.path,
            )
        )

    def start(self) -> None:
        """Begin periodic batch evaluation."""
        if self._task is None:
            self._task = self.world.engine.call_every(
                self.batch_interval_s, self.flush, label="report-batch"
            )

    def stop(self) -> None:
        """Stop periodic evaluation."""
        if self._task is not None:
            self._task.stop()
            self._task = None

    def flush(self) -> List[PipelineDecision]:
        """Evaluate the pending batch now; returns the new decisions."""
        if not self.pending:
            return []
        batch = self.pipeline.process(self.pending)
        self.pending = []
        self.decisions.extend(batch)
        return batch


class WitnessReporter:
    """Broadcasts a vehicle's observation of an event."""

    def __init__(self, world: World, node: NetworkNode) -> None:
        self.world = world
        self.node = node
        self.reports_sent = 0

    def report(
        self,
        kind: EventKind,
        location: Vec2,
        claim: bool,
        confidence: float = 0.9,
        identity: Optional[str] = None,
    ) -> int:
        """Broadcast one report; returns the in-range receiver count."""
        message = report_message(
            src=identity if identity is not None else self.node.node_id,
            kind=kind,
            location=location,
            claim=claim,
            now=self.world.now,
            confidence=confidence,
        )
        self.reports_sent += 1
        return self.node.broadcast(message)
