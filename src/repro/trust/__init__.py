"""Trustworthiness evaluation: classification, validation, reputation, provenance."""

from .classifier import EventCluster, MessageClassifier
from .events import (
    EventKind,
    EventReport,
    GroundTruthEvent,
    false_report,
    honest_report,
)
from .pipeline import PipelineDecision, TrustPipeline
from .report_service import EventReportCollector, WitnessReporter, report_message
from .provenance import (
    diversity_weight,
    effective_report_count,
    path_jaccard,
    shared_relays,
)
from .reputation import ReputationRecord, ReputationStore
from .validators import (
    BayesianValidator,
    DempsterShaferValidator,
    MajorityVoting,
    MassFunction,
    TrustDecision,
    Validator,
    WeightedVoting,
)

__all__ = [
    "EventReportCollector",
    "WitnessReporter",
    "report_message",
    "BayesianValidator",
    "DempsterShaferValidator",
    "EventCluster",
    "EventKind",
    "EventReport",
    "GroundTruthEvent",
    "MajorityVoting",
    "MassFunction",
    "MessageClassifier",
    "PipelineDecision",
    "ReputationRecord",
    "ReputationStore",
    "TrustDecision",
    "TrustPipeline",
    "Validator",
    "WeightedVoting",
    "diversity_weight",
    "effective_report_count",
    "false_report",
    "honest_report",
    "path_jaccard",
    "shared_relays",
]
