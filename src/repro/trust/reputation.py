"""Sender reputation (the social-network-style approach, §IV.D).

A beta-reputation store: each identity accumulates positive/negative
outcomes and its score is the posterior mean ``alpha / (alpha + beta)``.

The paper's critique is structural, and this implementation makes it
measurable: reputation keys on *on-air identities*, so pseudonym
rotation resets history; and in ephemeral traffic, the number of repeat
encounters per peer stays tiny (``mean_encounters``), so scores barely
move from the prior before the peer is gone forever.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass
class ReputationRecord:
    """Beta-distribution evidence about one identity."""

    identity: str
    alpha: float = 1.0  # prior pseudo-count of good outcomes
    beta: float = 1.0  # prior pseudo-count of bad outcomes
    encounters: int = 0
    last_seen: float = 0.0

    @property
    def score(self) -> float:
        """Posterior mean trust in [0, 1]."""
        return self.alpha / (self.alpha + self.beta)

    @property
    def evidence(self) -> float:
        """Total accumulated evidence beyond the prior."""
        return self.alpha + self.beta - 2.0


class ReputationStore:
    """Per-identity beta reputation with optional exponential decay."""

    def __init__(self, decay_per_s: float = 0.0, prior_score: float = 0.5) -> None:
        if not 0.0 < prior_score < 1.0:
            raise ValueError("prior_score must be strictly inside (0, 1)")
        self.decay_per_s = decay_per_s
        # Encode the prior as (alpha, beta) summing to 2.
        self._prior_alpha = 2.0 * prior_score
        self._prior_beta = 2.0 - self._prior_alpha
        self._records: Dict[str, ReputationRecord] = {}

    def __len__(self) -> int:
        return len(self._records)

    def record_of(self, identity: str) -> ReputationRecord:
        """Return (creating if needed) the record for an identity."""
        record = self._records.get(identity)
        if record is None:
            record = ReputationRecord(
                identity=identity, alpha=self._prior_alpha, beta=self._prior_beta
            )
            self._records[identity] = record
        return record

    def score(self, identity: str) -> float:
        """Current trust score (prior mean for strangers)."""
        record = self._records.get(identity)
        if record is None:
            return self._prior_alpha / (self._prior_alpha + self._prior_beta)
        return record.score

    def observe(self, identity: str, good: bool, now: float = 0.0) -> ReputationRecord:
        """Record one interaction outcome."""
        record = self.record_of(identity)
        self._decay(record, now)
        if good:
            record.alpha += 1.0
        else:
            record.beta += 1.0
        record.encounters += 1
        record.last_seen = now
        return record

    def _decay(self, record: ReputationRecord, now: float) -> None:
        # Nothing to decay before the first observation (time 0.0 is a
        # perfectly valid first-seen timestamp).
        if self.decay_per_s <= 0 or record.encounters == 0:
            return
        import math

        factor = math.exp(-self.decay_per_s * max(0.0, now - record.last_seen))
        record.alpha = self._prior_alpha + (record.alpha - self._prior_alpha) * factor
        record.beta = self._prior_beta + (record.beta - self._prior_beta) * factor

    # -- structural diagnostics (the paper's critique) ----------------------

    @property
    def mean_encounters(self) -> float:
        """Mean repeat-encounter count per known identity.

        Near 1 in ephemeral traffic — the reason sender reputation fails
        in v-clouds (§III.D).
        """
        if not self._records:
            return 0.0
        return sum(r.encounters for r in self._records.values()) / len(self._records)

    def mature_fraction(self, min_evidence: float = 5.0) -> float:
        """Fraction of identities with enough evidence to be meaningful."""
        if not self._records:
            return 0.0
        mature = sum(1 for r in self._records.values() if r.evidence >= min_evidence)
        return mature / len(self._records)

    def identities(self) -> List[str]:
        """All identities with records."""
        return list(self._records)

    def forget(self, identity: str) -> None:
        """Drop an identity's record (e.g. after pseudonym rotation)."""
        self._records.pop(identity, None)
