"""Events and event reports for trustworthiness evaluation.

A :class:`GroundTruthEvent` is something that actually happened on the
road (ice, a crash, a jam); an :class:`EventReport` is one vehicle's
claim about it, carried through the v-cloud.  Honest vehicles report the
truth perturbed by sensor noise; malicious vehicles fabricate or invert
claims (``repro.attacks.data_disruption``).  The trust layer never sees
ground truth — experiments use it only to score decisions.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional, Tuple

from ..errors import ConfigurationError
from ..geometry import Vec2

_report_counter = itertools.count(1)


class EventKind(enum.Enum):
    """Road event categories used by the validation experiments."""

    ICY_ROAD = "icy_road"
    COLLISION = "collision"
    TRAFFIC_JAM = "traffic_jam"
    ROAD_CLOSURE = "road_closure"
    EMERGENCY_BRAKE = "emergency_brake"


@dataclass(frozen=True)
class GroundTruthEvent:
    """What actually happened (visible to experiments, not to vehicles)."""

    event_id: str
    kind: EventKind
    location: Vec2
    occurred_at: float
    exists: bool = True  # False models a non-event attackers fabricate


@dataclass(frozen=True)
class EventReport:
    """One vehicle's claim about an event."""

    reporter: str  # on-air identity (pseudonym)
    kind: EventKind
    location: Vec2
    reported_at: float
    claim: bool  # "the event is real"
    confidence: float = 0.9
    path: Tuple[str, ...] = ()  # relay provenance
    report_id: str = field(default_factory=lambda: f"rep-{next(_report_counter)}")

    def __post_init__(self) -> None:
        if not 0.0 <= self.confidence <= 1.0:
            raise ConfigurationError("confidence must be in [0, 1]")

    def distance_to(self, other: "EventReport") -> float:
        """Spatial distance between two reports' claimed locations."""
        return self.location.distance_to(other.location)

    def time_gap(self, other: "EventReport") -> float:
        """Absolute time gap between two reports."""
        return abs(self.reported_at - other.reported_at)


def honest_report(
    reporter: str,
    event: GroundTruthEvent,
    now: float,
    location_noise: Optional[Vec2] = None,
    path: Tuple[str, ...] = (),
    confidence: float = 0.9,
) -> EventReport:
    """Build the report an honest observer of ``event`` would send."""
    location = event.location
    if location_noise is not None:
        location = location + location_noise
    return EventReport(
        reporter=reporter,
        kind=event.kind,
        location=location,
        reported_at=now,
        claim=event.exists,
        confidence=confidence,
        path=path,
    )


def false_report(
    reporter: str,
    kind: EventKind,
    location: Vec2,
    now: float,
    claim: bool = True,
    path: Tuple[str, ...] = (),
    confidence: float = 0.95,
) -> EventReport:
    """Build a fabricated report (data "disruption", §III threats)."""
    return EventReport(
        reporter=reporter,
        kind=kind,
        location=location,
        reported_at=now,
        claim=claim,
        confidence=confidence,
        path=path,
    )
