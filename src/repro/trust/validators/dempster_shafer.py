"""Dempster-Shafer evidence fusion validator.

Each report contributes a mass function over {event, no-event, unknown}
scaled by the reporter's trust; Dempster's rule combines them.  Unlike
Bayesian fusion, low-trust reports mostly add mass to *unknown* rather
than to the opposite claim, which makes DS robust when the malicious
fraction is unknown — one of the open directions §V.D gestures at.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ...errors import TrustError
from ..classifier import EventCluster
from ..reputation import ReputationStore
from .base import TrustDecision, Validator


@dataclass(frozen=True)
class MassFunction:
    """Basic belief assignment over {event (E), no-event (N), unknown (U)}."""

    event: float
    no_event: float
    unknown: float

    def __post_init__(self) -> None:
        total = self.event + self.no_event + self.unknown
        if not 0.999 <= total <= 1.001:
            raise TrustError(f"mass function must sum to 1, got {total}")
        if min(self.event, self.no_event, self.unknown) < -1e-12:
            raise TrustError("mass values must be non-negative")

    def combine(self, other: "MassFunction") -> "MassFunction":
        """Dempster's rule of combination (normalizing out conflict)."""
        conflict = self.event * other.no_event + self.no_event * other.event
        normalizer = 1.0 - conflict
        if normalizer <= 1e-12:
            # Total conflict: fall back to maximal ignorance.
            return MassFunction(0.0, 0.0, 1.0)
        event = (
            self.event * other.event
            + self.event * other.unknown
            + self.unknown * other.event
        ) / normalizer
        no_event = (
            self.no_event * other.no_event
            + self.no_event * other.unknown
            + self.unknown * other.no_event
        ) / normalizer
        unknown = (self.unknown * other.unknown) / normalizer
        return MassFunction(event, no_event, unknown)

    @property
    def belief_event(self) -> float:
        """Belief committed exactly to the event."""
        return self.event

    @property
    def plausibility_event(self) -> float:
        """Mass not contradicting the event."""
        return self.event + self.unknown


VACUOUS = MassFunction(0.0, 0.0, 1.0)


class DempsterShaferValidator(Validator):
    """Evidence-fusion content validation."""

    name = "dempster-shafer"

    def __init__(self, belief_threshold: float = 0.5) -> None:
        self.belief_threshold = belief_threshold

    def mass_for_report(self, claim: bool, confidence: float, trust: float) -> MassFunction:
        """Convert one report into a mass function.

        Commitment is ``confidence * trust``; the remainder is ignorance.
        """
        commitment = max(0.0, min(1.0, confidence * trust))
        if claim:
            return MassFunction(commitment, 0.0, 1.0 - commitment)
        return MassFunction(0.0, commitment, 1.0 - commitment)

    def evaluate(
        self,
        cluster: EventCluster,
        reputation: Optional[ReputationStore] = None,
    ) -> TrustDecision:
        combined = VACUOUS
        extra_cost = 0.0
        for report in cluster.reports:
            trust = 0.8 if reputation is None else reputation.score(report.reporter)
            if reputation is not None:
                extra_cost += 1e-6
            mass = self.mass_for_report(report.claim, report.confidence, trust)
            combined = combined.combine(mass)
            extra_cost += 3e-6  # combination arithmetic
        # Decide on pignistic-style midpoint of belief and plausibility.
        score = (combined.belief_event + combined.plausibility_event) / 2.0
        return TrustDecision(
            believe=combined.belief_event > self.belief_threshold,
            score=score,
            latency_s=self._base_cost(cluster) + extra_cost,
            report_count=cluster.size,
            validator=self.name,
        )
