"""Validator interface for message content validation (§V.D).

A validator consumes one classified event cluster and emits a
:class:`TrustDecision` with an explicit latency, because "the
trustworthiness assessment process should be executed so to comply
(possibly very) stringent time constraints".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..classifier import EventCluster
from ..reputation import ReputationStore


@dataclass(frozen=True)
class TrustDecision:
    """The validator's verdict on one event cluster."""

    believe: bool
    score: float  # confidence that the event is real, in [0, 1]
    latency_s: float
    report_count: int
    validator: str

    def correct_against(self, truth_exists: bool) -> bool:
        """Score the decision against ground truth (experiment use)."""
        return self.believe == truth_exists


class Validator:
    """Base content validator."""

    name = "base"
    #: Modelled per-report processing cost (parse + arithmetic).
    PER_REPORT_COST_S = 2e-5

    def evaluate(
        self,
        cluster: EventCluster,
        reputation: Optional[ReputationStore] = None,
    ) -> TrustDecision:
        """Produce a verdict for one event cluster."""
        raise NotImplementedError

    def _base_cost(self, cluster: EventCluster) -> float:
        return self.PER_REPORT_COST_S * max(1, cluster.size)
