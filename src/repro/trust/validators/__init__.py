"""Content validators for real-time message validation."""

from .base import TrustDecision, Validator
from .bayesian import BayesianValidator
from .dempster_shafer import DempsterShaferValidator, MassFunction, VACUOUS
from .voting import MajorityVoting, WeightedVoting

__all__ = [
    "BayesianValidator",
    "DempsterShaferValidator",
    "MajorityVoting",
    "MassFunction",
    "TrustDecision",
    "VACUOUS",
    "Validator",
    "WeightedVoting",
]
