"""Bayesian inference validator (Raya et al.'s second technique).

Treats each report as a noisy binary sensor of the event with true- and
false-positive rates, starts from a prior on event existence, and
multiplies likelihood ratios in log space.  Reporter reputation, when
available, interpolates each report's assumed error rates between an
honest profile and an adversarial one.
"""

from __future__ import annotations

import math
from typing import Optional

from ...errors import ConfigurationError
from ..classifier import EventCluster
from ..reputation import ReputationStore
from .base import TrustDecision, Validator


class BayesianValidator(Validator):
    """Posterior-probability content validation."""

    name = "bayesian"

    def __init__(
        self,
        prior: float = 0.3,
        honest_tpr: float = 0.9,
        honest_fpr: float = 0.08,
        decision_threshold: float = 0.5,
    ) -> None:
        if not 0.0 < prior < 1.0:
            raise ConfigurationError("prior must be strictly inside (0, 1)")
        if not 0.0 < honest_tpr <= 1.0 or not 0.0 <= honest_fpr < 1.0:
            raise ConfigurationError("rates must be valid probabilities")
        if honest_tpr <= honest_fpr:
            raise ConfigurationError("honest_tpr must exceed honest_fpr")
        self.prior = prior
        self.honest_tpr = honest_tpr
        self.honest_fpr = honest_fpr
        self.decision_threshold = decision_threshold

    def _rates_for(self, trust: float) -> tuple:
        """Interpolate (tpr, fpr) between adversarial and honest profiles.

        trust 1.0 -> honest rates; trust 0.0 -> an inverted (lying)
        sensor whose claims carry opposite evidence.
        """
        lying_tpr = 1.0 - self.honest_tpr
        lying_fpr = 1.0 - self.honest_fpr
        tpr = lying_tpr + (self.honest_tpr - lying_tpr) * trust
        fpr = lying_fpr + (self.honest_fpr - lying_fpr) * trust
        return tpr, fpr

    def evaluate(
        self,
        cluster: EventCluster,
        reputation: Optional[ReputationStore] = None,
    ) -> TrustDecision:
        log_odds = math.log(self.prior / (1.0 - self.prior))
        extra_cost = 0.0
        for report in cluster.reports:
            trust = 1.0 if reputation is None else reputation.score(report.reporter)
            if reputation is not None:
                extra_cost += 1e-6
            tpr, fpr = self._rates_for(max(0.01, min(0.99, trust)))
            if report.claim:
                log_odds += math.log(tpr / fpr)
            else:
                log_odds += math.log((1.0 - tpr) / (1.0 - fpr))
        posterior = 1.0 / (1.0 + math.exp(-log_odds))
        return TrustDecision(
            believe=posterior > self.decision_threshold,
            score=posterior,
            latency_s=self._base_cost(cluster) + extra_cost,
            report_count=cluster.size,
            validator=self.name,
        )
