"""Voting validators (the techniques catalogued by Raya et al. [32]).

:class:`MajorityVoting` counts heads.  :class:`WeightedVoting` weights
each vote by sender reputation and path diversity, which is the
composite the paper's §V.D sketches ("content similarity and conflicts
as well as routing path similarity ... calculate the trust scores").
"""

from __future__ import annotations

from typing import Optional

from ...errors import ConfigurationError
from ..classifier import EventCluster
from ..provenance import diversity_weight
from ..reputation import ReputationStore
from .base import TrustDecision, Validator


class MajorityVoting(Validator):
    """Believe the event if more than ``threshold`` of reports claim it."""

    name = "majority-voting"

    def __init__(self, threshold: float = 0.5) -> None:
        if not 0.0 < threshold < 1.0:
            raise ConfigurationError("threshold must be strictly inside (0, 1)")
        self.threshold = threshold

    def evaluate(
        self,
        cluster: EventCluster,
        reputation: Optional[ReputationStore] = None,
    ) -> TrustDecision:
        positive = cluster.positive_fraction()
        return TrustDecision(
            believe=positive > self.threshold,
            score=positive,
            latency_s=self._base_cost(cluster),
            report_count=cluster.size,
            validator=self.name,
        )


class WeightedVoting(Validator):
    """Votes weighted by reputation and path diversity."""

    name = "weighted-voting"

    def __init__(
        self,
        threshold: float = 0.5,
        use_reputation: bool = True,
        use_path_diversity: bool = True,
    ) -> None:
        if not 0.0 < threshold < 1.0:
            raise ConfigurationError("threshold must be strictly inside (0, 1)")
        self.threshold = threshold
        self.use_reputation = use_reputation
        self.use_path_diversity = use_path_diversity

    def evaluate(
        self,
        cluster: EventCluster,
        reputation: Optional[ReputationStore] = None,
    ) -> TrustDecision:
        if cluster.size == 0:
            return TrustDecision(False, 0.0, self._base_cost(cluster), 0, self.name)
        positive_mass = 0.0
        total_mass = 0.0
        extra_cost = 0.0
        for report in cluster.reports:
            weight = report.confidence
            if self.use_reputation and reputation is not None:
                weight *= reputation.score(report.reporter)
                extra_cost += 1e-6  # reputation lookup
            if self.use_path_diversity:
                weight *= diversity_weight(report, cluster.reports)
                extra_cost += 1e-6 * cluster.size  # pairwise path comparison
            total_mass += weight
            if report.claim:
                positive_mass += weight
        score = positive_mass / total_mass if total_mass > 0 else 0.0
        return TrustDecision(
            believe=score > self.threshold,
            score=score,
            latency_s=self._base_cost(cluster) + extra_cost,
            report_count=cluster.size,
            validator=self.name,
        )
