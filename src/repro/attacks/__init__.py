"""Attack suite: the network- and application-layer threats of §III."""

from .adversary import Adversary, AttackOutcome
from .data_disruption import CollusionRing, FalseReporter, SybilForger
from .defenses import RateLimiter, ReplayCache, SignatureDefense
from .dos import DosFlooder, JunkProcessingMeter
from .network import (
    DelaySuppressAttacker,
    EavesdropAttacker,
    ImpersonationAttacker,
    MitmAttacker,
    ReplayAttacker,
)
from .privacy import TrackingAdversary, TrafficFlowAnalyzer

__all__ = [
    "Adversary",
    "AttackOutcome",
    "CollusionRing",
    "DelaySuppressAttacker",
    "DosFlooder",
    "EavesdropAttacker",
    "FalseReporter",
    "ImpersonationAttacker",
    "JunkProcessingMeter",
    "MitmAttacker",
    "RateLimiter",
    "ReplayAttacker",
    "ReplayCache",
    "SignatureDefense",
    "SybilForger",
    "TrackingAdversary",
    "TrafficFlowAnalyzer",
]
