"""Application-level privacy attacks (§III: privacy breach, traffic analysis).

:class:`TrackingAdversary` reconstructs vehicle trajectories from
overheard beacons and tries to *link* trajectory segments across
pseudonym changes by kinematic continuation — position/velocity
prediction at the change point.  Its linking accuracy against simulation
ground truth is the unlinkability metric of experiment E3: a protocol
whose identities rotate without kinematic mixing is still trackable.

:class:`TrafficFlowAnalyzer` implements the paper's traffic-flow-analysis
threat: frequency/size/destination statistics per identity, no payload
access needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..geometry import Vec2
from ..net.channel import Frame, WirelessChannel
from ..net.messages import MessageKind
from .adversary import Adversary, AttackOutcome


@dataclass
class _Observation:
    identity: str
    time: float
    position: Vec2
    speed_mps: float
    heading_rad: float


@dataclass
class _Track:
    """A chain of observations the adversary believes is one vehicle."""

    identities: List[str] = field(default_factory=list)
    observations: List[_Observation] = field(default_factory=list)

    def last(self) -> _Observation:
        return self.observations[-1]


class TrackingAdversary(Adversary):
    """Links pseudonym segments into vehicle trajectories.

    A global passive observer (worst case for privacy): hears every
    beacon.  When a fresh identity appears it is matched to the track
    whose kinematic continuation best predicts the new observation; if
    the best gate distance exceeds ``gate_m`` a new track opens.
    """

    def __init__(
        self,
        channel: WirelessChannel,
        gate_m: float = 40.0,
        listen_range_m: float = 1e9,
    ) -> None:
        super().__init__("tracker", Vec2(0.0, 0.0), listen_range_m)
        self.channel = channel
        self.gate_m = gate_m
        self.tracks: List[_Track] = []
        self._track_of_identity: Dict[str, _Track] = {}
        self.outcome = AttackOutcome("tracking")
        channel.add_tap(self)

    def on_frame(self, frame: Frame) -> None:
        """Tap callback: ingest HELLO beacons."""
        message = frame.message
        if message.kind is not MessageKind.HELLO:
            return
        position = message.payload.get("position")
        if position is None:
            return
        observation = _Observation(
            identity=message.src,
            time=frame.sent_at,
            position=Vec2(position[0], position[1]),
            speed_mps=message.payload.get("speed_mps", 0.0),
            heading_rad=message.payload.get("heading_rad", 0.0),
        )
        self._ingest(observation)

    def _ingest(self, observation: _Observation) -> None:
        track = self._track_of_identity.get(observation.identity)
        if track is not None:
            track.observations.append(observation)
            return
        # New identity: try to link it to an existing track.
        best_track: Optional[_Track] = None
        best_distance = self.gate_m
        for track in self.tracks:
            last = track.last()
            dt = observation.time - last.time
            if dt < 0 or dt > 10.0:
                continue
            predicted = last.position + Vec2.from_polar(last.speed_mps, last.heading_rad) * dt
            distance = predicted.distance_to(observation.position)
            if distance < best_distance:
                best_distance = distance
                best_track = track
        if best_track is None:
            best_track = _Track()
            self.tracks.append(best_track)
        best_track.identities.append(observation.identity)
        best_track.observations.append(observation)
        self._track_of_identity[observation.identity] = best_track

    # -- scoring against ground truth ---------------------------------------

    def linking_accuracy(self, identity_owner: Dict[str, str]) -> float:
        """Fraction of correct identity-to-identity links.

        ``identity_owner`` maps each on-air identity to the true vehicle.
        Every adjacent identity pair within a track is one link claim;
        a claim is correct when both identities belong to one vehicle.
        """
        claims = 0
        correct = 0
        for track in self.tracks:
            for earlier, later in zip(track.identities, track.identities[1:]):
                owner_a = identity_owner.get(earlier)
                owner_b = identity_owner.get(later)
                if owner_a is None or owner_b is None:
                    continue
                claims += 1
                if owner_a == owner_b:
                    correct += 1
        if claims == 0:
            return 0.0
        return correct / claims

    def tracked_fraction(self, identity_owner: Dict[str, str]) -> float:
        """Fraction of observed vehicles whose identity chain sits in one track.

        A vehicle that never rotated (one observed identity) is trivially
        fully tracked; a rotating vehicle is fully tracked only when the
        adversary linked every one of its identities into a single track.
        Vehicles never observed at all are excluded from the denominator.
        """
        by_owner: Dict[str, List[str]] = {}
        for identity, owner in identity_owner.items():
            by_owner.setdefault(owner, []).append(identity)
        observed_owners = 0
        fully_tracked = 0
        for owner, identities in by_owner.items():
            observed = [i for i in identities if i in self._track_of_identity]
            if not observed:
                continue
            observed_owners += 1
            tracks = {id(self._track_of_identity[i]) for i in observed}
            if len(tracks) == 1:
                fully_tracked += 1
        if observed_owners == 0:
            return 0.0
        return fully_tracked / observed_owners

    def stop(self) -> None:
        """Detach the tap."""
        self.channel.remove_tap(self)


class TrafficFlowAnalyzer(Adversary):
    """Frequency / size / destination statistics per on-air identity."""

    def __init__(self, channel: WirelessChannel, listen_range_m: float = 1e9) -> None:
        super().__init__("flow-analyzer", Vec2(0.0, 0.0), listen_range_m)
        self.channel = channel
        self.flows: Dict[Tuple[str, str], Dict[str, float]] = {}
        channel.add_tap(self)

    def on_frame(self, frame: Frame) -> None:
        """Tap callback: accumulate flow statistics."""
        key = (frame.message.src, frame.message.dst)
        stats = self.flows.setdefault(key, {"frames": 0.0, "bytes": 0.0})
        stats["frames"] += 1
        stats["bytes"] += frame.message.total_bytes

    def top_talkers(self, limit: int = 5) -> List[Tuple[str, float]]:
        """Identities ranked by transmitted bytes."""
        by_src: Dict[str, float] = {}
        for (src, _dst), stats in self.flows.items():
            by_src[src] = by_src.get(src, 0.0) + stats["bytes"]
        ranked = sorted(by_src.items(), key=lambda item: (-item[1], item[0]))
        return ranked[:limit]

    def conversation_pairs(self) -> List[Tuple[str, str]]:
        """Distinct (src, dst) pairs observed — the metadata leak."""
        return sorted(self.flows.keys())

    def stop(self) -> None:
        """Detach the tap."""
        self.channel.remove_tap(self)
