"""Data-disruption attacks (§III application-level threats).

"A malicious vehicle may alter or fabricate data during different phases
of the data life cycle."  This module supplies the false-report
generators the trust experiments (E5) inject: independent liars,
coordinated liars converging on one fabricated event, and Sybil
colluders whose reports all share a forged relay path — the case
path-diversity discounting exists to catch.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from ..errors import ConfigurationError
from ..geometry import Vec2
from ..sim.rng import SeededRng
from ..trust.events import EventKind, EventReport, GroundTruthEvent, false_report


class FalseReporter:
    """One malicious identity that lies about events."""

    def __init__(self, identity: str, invert: bool = True) -> None:
        self.identity = identity
        self.invert = invert
        self.reports_sent = 0

    def report_on(
        self,
        event: GroundTruthEvent,
        now: float,
        path: Tuple[str, ...] = (),
    ) -> EventReport:
        """Produce a lying report about a real event."""
        claim = (not event.exists) if self.invert else event.exists
        self.reports_sent += 1
        return false_report(
            reporter=self.identity,
            kind=event.kind,
            location=event.location,
            now=now,
            claim=claim,
            path=path,
        )

    def fabricate(
        self,
        kind: EventKind,
        location: Vec2,
        now: float,
        path: Tuple[str, ...] = (),
    ) -> EventReport:
        """Produce a report about an event that never happened."""
        self.reports_sent += 1
        return false_report(
            reporter=self.identity, kind=kind, location=location, now=now, claim=True, path=path
        )


class CollusionRing:
    """A coordinated set of malicious identities lying consistently."""

    def __init__(self, identities: Sequence[str], rng: Optional[SeededRng] = None) -> None:
        if not identities:
            raise ConfigurationError("a collusion ring needs at least one identity")
        self.members = [FalseReporter(identity) for identity in identities]
        self.rng = rng

    def __len__(self) -> int:
        return len(self.members)

    def smear(self, event: GroundTruthEvent, now: float) -> List[EventReport]:
        """All members deny a real event (or confirm a fabricated one)."""
        reports = []
        for index, member in enumerate(self.members):
            jitter = 0.0 if self.rng is None else self.rng.uniform(0.0, 2.0)
            reports.append(member.report_on(event, now + jitter))
        return reports

    def fabricate_event(
        self, kind: EventKind, location: Vec2, now: float
    ) -> List[EventReport]:
        """All members confirm an event that never happened."""
        reports = []
        for member in self.members:
            jitter = 0.0 if self.rng is None else self.rng.uniform(0.0, 2.0)
            reports.append(member.fabricate(kind, location, now + jitter))
        return reports


class SybilForger:
    """One attacker minting many fake identities behind one relay path.

    All its reports share the attacker's relay chain, so path-diversity
    weighting collapses their evidence mass toward a single report.
    """

    def __init__(self, base_identity: str, sybil_count: int, relay_chain: Tuple[str, ...]) -> None:
        if sybil_count < 1:
            raise ConfigurationError("sybil_count must be >= 1")
        self.base_identity = base_identity
        self.identities = [f"{base_identity}-sybil-{i}" for i in range(sybil_count)]
        self.relay_chain = relay_chain

    def fabricate_event(
        self, kind: EventKind, location: Vec2, now: float
    ) -> List[EventReport]:
        """All Sybil identities confirm a fabricated event."""
        return [
            false_report(
                reporter=identity,
                kind=kind,
                location=location,
                now=now,
                claim=True,
                path=self.relay_chain,
            )
            for identity in self.identities
        ]
