"""Defence mechanisms paired with the network-layer attacks.

These are the receiver-side checks the survey's countermeasures imply:
a replay cache (nonce + freshness window), per-sender rate limiting
against DoS floods, and signature checking against impersonation and
tampering.  They are deliberately small, separately testable components
that experiment E6 toggles on and off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..errors import ConfigurationError
from ..net.messages import Message
from ..security.crypto import SignatureScheme, serialize_for_signing


class ReplayCache:
    """Rejects messages with reused nonces or stale timestamps."""

    def __init__(self, window_s: float = 30.0, capacity: int = 10_000) -> None:
        if window_s <= 0:
            raise ConfigurationError("window_s must be positive")
        self.window_s = window_s
        self.capacity = capacity
        self._seen: Dict[str, float] = {}
        self.rejected = 0

    def accept(self, nonce: str, timestamp: float, now: float) -> bool:
        """Return True for fresh, never-seen messages."""
        if now - timestamp > self.window_s:
            self.rejected += 1
            return False
        if nonce in self._seen:
            self.rejected += 1
            return False
        if len(self._seen) >= self.capacity:
            self._evict(now)
        self._seen[nonce] = timestamp
        return True

    def accept_message(self, message: Message, now: float) -> bool:
        """Convenience wrapper reading nonce/timestamp from the envelope."""
        if message.envelope is None:
            # No envelope means no replay protection to enforce.
            return True
        return self.accept(message.envelope.nonce, message.envelope.timestamp, now)

    def _evict(self, now: float) -> None:
        cutoff = now - self.window_s
        stale = [nonce for nonce, ts in self._seen.items() if ts < cutoff]
        for nonce in stale:
            del self._seen[nonce]

    def __len__(self) -> int:
        return len(self._seen)


class RateLimiter:
    """Token-bucket rate limiting per sender identity (DoS mitigation)."""

    def __init__(self, rate_per_s: float = 20.0, burst: float = 40.0) -> None:
        if rate_per_s <= 0 or burst <= 0:
            raise ConfigurationError("rate_per_s and burst must be positive")
        self.rate_per_s = rate_per_s
        self.burst = burst
        self._buckets: Dict[str, Tuple[float, float]] = {}  # id -> (tokens, last)
        self.dropped = 0

    def allow(self, sender: str, now: float) -> bool:
        """Return True if the sender is within its rate budget."""
        tokens, last = self._buckets.get(sender, (self.burst, now))
        tokens = min(self.burst, tokens + (now - last) * self.rate_per_s)
        if tokens >= 1.0:
            self._buckets[sender] = (tokens - 1.0, now)
            return True
        self._buckets[sender] = (tokens, now)
        self.dropped += 1
        return False


@dataclass
class SignatureDefense:
    """Verifies that a message's envelope signature matches its content.

    Impersonation and MITM tampering both fail this check: the attacker
    holds no private key for the claimed identity, so either the
    signature is missing, belongs to another key, or does not cover the
    (modified) payload.
    """

    scheme: SignatureScheme
    rejected: int = 0

    def message_digest_payload(self, message: Message) -> bytes:
        """Canonical signed content of a message."""
        return serialize_for_signing(
            message.kind.value,
            message.src,
            message.dst,
            sorted(message.payload.items()),
            message.created_at,
        )

    def verify(self, message: Message, expected_public_id: Optional[str] = None) -> bool:
        """Return True only for authentically signed, untampered messages."""
        envelope = message.envelope
        if envelope is None or envelope.signature is None:
            self.rejected += 1
            return False
        public_id = (
            expected_public_id
            if expected_public_id is not None
            else getattr(envelope.signature, "signer_public_id", None)
        )
        if public_id is None:
            self.rejected += 1
            return False
        result = self.scheme.verify(
            public_id, self.message_digest_payload(message), envelope.signature
        )
        if not result.value:
            self.rejected += 1
        return result.value
