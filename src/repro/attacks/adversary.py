"""Adversary framework.

Every attack implementation records attempts and successes into an
:class:`AttackOutcome`, and experiment E6 runs each attack twice — with
the corresponding defence off and on — to produce the paper's implicit
claim: the listed network-layer attacks succeed against an unprotected
v-cloud and are blocked by the surveyed mechanisms.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from ..geometry import Vec2


@dataclass
class AttackOutcome:
    """Attempt/success bookkeeping for one attack campaign."""

    attack_name: str
    attempts: int = 0
    successes: int = 0
    notes: List[str] = field(default_factory=list)

    @property
    def success_rate(self) -> float:
        """Successes over attempts (0 when never attempted)."""
        if self.attempts == 0:
            return 0.0
        return self.successes / self.attempts

    def record(self, success: bool, note: str = "") -> None:
        """Record one attempt."""
        self.attempts += 1
        if success:
            self.successes += 1
        if note:
            self.notes.append(note)


class Adversary:
    """Base adversary with a physical presence (for range-limited taps)."""

    def __init__(
        self,
        adversary_id: str,
        position: Vec2,
        listen_range_m: float = 300.0,
    ) -> None:
        self.adversary_id = adversary_id
        self._position = position
        self.listen_range_m = listen_range_m

    @property
    def position(self) -> Vec2:
        """Current physical position of the adversary."""
        return self._position

    def move_to(self, position: Vec2) -> None:
        """Relocate the adversary."""
        self._position = position
