"""Denial-of-service flooding (§III: "a large amount of junk messages").

A flooder node broadcasts junk at a configurable rate.  Two damage
mechanisms are modelled: receivers waste processing on junk unless a
rate limiter drops it, and the channel's contention term inflates
everyone's latency as the flooder raises the local transmission density.
"""

from __future__ import annotations

from typing import Optional

from ..errors import ConfigurationError
from ..net.messages import Message, MessageKind
from ..net.node import NetworkNode
from ..sim.world import World
from .adversary import AttackOutcome


class DosFlooder:
    """Broadcasts junk messages at a fixed rate from one node."""

    def __init__(
        self,
        world: World,
        node: NetworkNode,
        rate_per_s: float = 100.0,
        junk_bytes: int = 500,
    ) -> None:
        if rate_per_s <= 0:
            raise ConfigurationError("rate_per_s must be positive")
        self.world = world
        self.node = node
        self.rate_per_s = rate_per_s
        self.junk_bytes = junk_bytes
        self.outcome = AttackOutcome("dos-flood")
        self._task = None
        self._sequence = 0

    def start(self) -> None:
        """Begin flooding."""
        if self._task is not None:
            return
        self._task = self.world.engine.call_every(
            1.0 / self.rate_per_s, self._flood, label="dos-flood"
        )

    def stop(self) -> None:
        """Stop flooding."""
        if self._task is not None:
            self._task.stop()
            self._task = None

    def _flood(self) -> None:
        self._sequence += 1
        junk = Message(
            kind=MessageKind.DATA,
            src=self.node.node_id,
            dst="*",
            payload={"junk": self._sequence},
            size_bytes=self.junk_bytes,
            created_at=self.world.now,
            ttl_hops=0,
        )
        receivers = self.node.broadcast(junk)
        self.outcome.record(receivers > 0)

    @property
    def messages_sent(self) -> int:
        """Total junk messages transmitted."""
        return self._sequence


class JunkProcessingMeter:
    """Measures how much junk a receiver processes vs. drops.

    Attach as a node's DATA handler; with a rate limiter supplied, junk
    beyond the sender's budget is dropped before "processing".
    """

    def __init__(self, world: World, rate_limiter: Optional[object] = None) -> None:
        self.world = world
        self.rate_limiter = rate_limiter
        self.processed = 0
        self.dropped = 0

    def __call__(self, message: Message, from_id: str) -> None:
        if "junk" not in message.payload:
            return
        if self.rate_limiter is not None and not self.rate_limiter.allow(
            message.src, self.world.now
        ):
            self.dropped += 1
            return
        self.processed += 1

    @property
    def drop_rate(self) -> float:
        """Fraction of junk messages dropped before processing."""
        total = self.processed + self.dropped
        if total == 0:
            return 0.0
        return self.dropped / total
