"""Network-layer attacks (§III threat list).

Implements the survey's enumerated threats against the wireless channel:
eavesdropping, replay, impersonation, man-in-the-middle, and message
delay/suppression.  Each attack plugs into the channel's tap or
interceptor hooks and records an :class:`AttackOutcome`.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, List, Optional

from ..geometry import Vec2
from ..net.channel import Frame, InterceptVerdict, WirelessChannel
from ..net.messages import Message, MessageKind, SecurityEnvelope
from ..net.node import NetworkNode
from ..sim.world import World
from .adversary import Adversary, AttackOutcome


class EavesdropAttacker(Adversary):
    """Passively captures every frame within listening range.

    Success criterion: capturing payload bytes that were not encrypted
    for the attacker — always succeeds against plaintext traffic, which
    is the point: confidentiality requires encryption, not radio luck.
    """

    def __init__(
        self, world: World, channel: WirelessChannel, position: Vec2, listen_range_m: float = 300.0
    ) -> None:
        super().__init__("eavesdropper", position, listen_range_m)
        self.world = world
        self.channel = channel
        self.captured: List[Frame] = []
        self.outcome = AttackOutcome("eavesdropping")
        channel.add_tap(self)

    def on_frame(self, frame: Frame) -> None:
        """Tap callback: record the frame."""
        self.captured.append(frame)
        plaintext = not frame.message.payload.get("encrypted", False)
        self.outcome.record(plaintext)

    def captured_identities(self) -> List[str]:
        """Distinct on-air identities observed."""
        seen = {}
        for frame in self.captured:
            seen.setdefault(frame.message.src, None)
        return list(seen)

    def captured_bytes(self) -> int:
        """Total payload bytes observed."""
        return sum(frame.message.total_bytes for frame in self.captured)

    def stop(self) -> None:
        """Detach from the channel."""
        self.channel.remove_tap(self)


class ReplayAttacker(Adversary):
    """Captures legitimate frames and re-injects them later.

    Replays go out through the attacker's own radio node.  A receiver
    with a :class:`~repro.attacks.defenses.ReplayCache` rejects them by
    nonce reuse / stale timestamp; a receiver without one processes the
    duplicate — a success for the attacker.
    """

    def __init__(
        self,
        world: World,
        channel: WirelessChannel,
        node: NetworkNode,
        listen_range_m: float = 300.0,
        capture_kinds: Optional[List[MessageKind]] = None,
    ) -> None:
        super().__init__("replayer", node.position, listen_range_m)
        self.world = world
        self.channel = channel
        self.node = node
        self.capture_kinds = capture_kinds
        self.captured: List[Message] = []
        self.outcome = AttackOutcome("replay")
        channel.add_tap(self)

    @property
    def position(self) -> Vec2:
        return self.node.position

    def on_frame(self, frame: Frame) -> None:
        """Tap callback: keep a copy of interesting messages."""
        if frame.src_id == self.node.node_id:
            return  # don't capture our own replays
        if self.capture_kinds is None or frame.message.kind in self.capture_kinds:
            self.captured.append(frame.message)

    def replay_all(self, delay_s: float = 0.0) -> int:
        """Re-broadcast every captured message verbatim."""
        count = 0
        for message in list(self.captured):
            self._replay(message, delay_s)
            count += 1
        return count

    def _replay(self, message: Message, delay_s: float) -> None:
        def _send() -> None:
            self.node.broadcast(message)

        if delay_s > 0:
            self.world.engine.schedule(delay_s, _send, label="replay")
        else:
            _send()

    def stop(self) -> None:
        """Detach the tap."""
        self.channel.remove_tap(self)


class ImpersonationAttacker:
    """Sends messages claiming a victim's identity without its keys.

    The forged envelope carries a signature the attacker minted with its
    *own* key (it has no other); verification against the claimed
    identity fails, so a signature-checking receiver rejects it while a
    naive receiver accepts — the E6 contrast.
    """

    def __init__(self, world: World, node: NetworkNode, victim_identity: str) -> None:
        self.world = world
        self.node = node
        self.victim_identity = victim_identity
        self.outcome = AttackOutcome("impersonation")

    def forge_message(self, kind: MessageKind, payload: dict, size_bytes: int = 200) -> Message:
        """Build a message that claims to come from the victim."""
        return Message(
            kind=kind,
            src=self.victim_identity,
            dst="*",
            payload=payload,
            size_bytes=size_bytes,
            created_at=self.world.now,
            envelope=SecurityEnvelope(
                claimed_identity=self.victim_identity,
                signature=None,  # cannot produce the victim's signature
                nonce=f"forged-{self.world.engine.events_executed}",
                timestamp=self.world.now,
            ),
        )

    def send_forged(self, kind: MessageKind, payload: dict) -> int:
        """Broadcast a forged message; returns receiver count."""
        return self.node.broadcast(self.forge_message(kind, payload))


class MitmAttacker(Adversary):
    """In-path tampering between two victims.

    Installed as a channel interceptor; frames between the victims are
    replaced with attacker-controlled payloads.  Signed traffic survives:
    the tampered copy fails signature verification downstream.
    """

    def __init__(
        self,
        world: World,
        channel: WirelessChannel,
        position: Vec2,
        victim_a: str,
        victim_b: str,
        tamper: Callable[[Message], Message] = None,
    ) -> None:
        super().__init__("mitm", position)
        self.world = world
        self.channel = channel
        self.victim_a = victim_a
        self.victim_b = victim_b
        self.tamper = tamper if tamper is not None else self._default_tamper
        self.outcome = AttackOutcome("mitm")
        self.tampered_count = 0
        channel.add_interceptor(self._intercept)

    def _default_tamper(self, message: Message) -> Message:
        poisoned = dict(message.payload)
        poisoned["tampered"] = True
        return dataclasses.replace(message, payload=poisoned)

    def _intercept(self, frame: Frame) -> InterceptVerdict:
        pair = {frame.src_id, frame.dst_id}
        if pair == {self.victim_a, self.victim_b}:
            self.tampered_count += 1
            return InterceptVerdict.replace(self.tamper(frame.message))
        return InterceptVerdict.passthrough()

    def stop(self) -> None:
        """Remove the interceptor."""
        self.channel.remove_interceptor(self._intercept)


class DelaySuppressAttacker(Adversary):
    """Holds back or drops a victim's messages (§III: delay/suppression).

    Safety messages arriving after their deadline are as good as
    suppressed; the experiment measures deadline misses with and without
    the attack.
    """

    def __init__(
        self,
        world: World,
        channel: WirelessChannel,
        position: Vec2,
        victim: str,
        delay_s: float = 0.5,
        suppress_probability: float = 0.0,
    ) -> None:
        super().__init__("delayer", position)
        self.world = world
        self.channel = channel
        self.victim = victim
        self.delay_s = delay_s
        self.suppress_probability = suppress_probability
        self.rng = world.rng.fork("attack/delay")
        self.outcome = AttackOutcome("delay-suppress")
        channel.add_interceptor(self._intercept)

    def _intercept(self, frame: Frame) -> InterceptVerdict:
        if frame.src_id != self.victim:
            return InterceptVerdict.passthrough()
        self.outcome.record(True)
        if self.suppress_probability > 0 and self.rng.chance(self.suppress_probability):
            return InterceptVerdict.drop()
        return InterceptVerdict.delay(self.delay_s)

    def stop(self) -> None:
        """Remove the interceptor."""
        self.channel.remove_interceptor(self._intercept)
