"""Small-task batching for the serving gateway.

Tiny requests are where the serving path's fixed costs dominate: each
one occupies a whole dispatch slot (the cloud reserves a full worker
per task), so a burst of small same-tenant requests can exhaust the
fleet's slots while leaving most of its compute idle — and under the
E17/E18 churn+load regime those wasted slots are exactly the capacity
the redundancy planner needs.  A :class:`BatchingPolicy` lets the
gateway coalesce *compatible* small queued requests into one cloud
dispatch: one slot, one allocation, the summed work — while every
member keeps its own completion, latency, SLO and failure accounting,
so the serving conservation law
(``admitted == completed + failed + shed + queued + inflight``, with
in-flight counted per member) still holds exactly.

Compatibility is deliberately strict — same tenant, same priority,
identical sensor requirements, each member small — because a batch
fails or completes as a unit: mixing tenants would let one tenant's
failure bleed into another's accounting, and mixing priorities would
let a low-priority request ride a high-priority dispatch past the
admission ordering.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError
from .request import ServiceRequest


@dataclass(frozen=True)
class BatchingPolicy:
    """Decides which queued requests may share one cloud dispatch.

    ``max_batch_size`` bounds members per dispatch;
    ``max_member_work_mi`` is the "small task" threshold — anything
    larger always dispatches alone; ``max_batch_work_mi`` caps the
    summed work so a batch never becomes the slow outlier that holds
    every member's latency hostage.
    """

    max_batch_size: int = 4
    max_member_work_mi: float = 50.0
    max_batch_work_mi: float = 200.0

    def __post_init__(self) -> None:
        if self.max_batch_size < 2:
            raise ConfigurationError("max_batch_size must be >= 2")
        if self.max_member_work_mi <= 0:
            raise ConfigurationError("max_member_work_mi must be positive")
        if self.max_batch_work_mi < self.max_member_work_mi:
            raise ConfigurationError(
                "max_batch_work_mi must be >= max_member_work_mi"
            )

    def eligible(self, request: ServiceRequest) -> bool:
        """Whether a request is small enough to batch at all."""
        return request.task.work_mi <= self.max_member_work_mi

    def compatible(self, anchor: ServiceRequest, candidate: ServiceRequest) -> bool:
        """Whether ``candidate`` may join a batch anchored by ``anchor``.

        Same tenant (failure/accounting isolation), same priority
        (no queue-order laundering), identical sensor requirements
        (the combined task must be placeable wherever any member was),
        and the candidate itself small.
        """
        return (
            self.eligible(candidate)
            and candidate.tenant == anchor.tenant
            and candidate.priority == anchor.priority
            and candidate.task.required_sensors == anchor.task.required_sensors
        )
