"""The serving gateway: admission, queueing, dispatch, hedging.

:class:`ServiceGateway` sits between open-loop clients and a
:class:`~repro.core.vcloud.VehicularCloud` and is where overload
protection lives:

* every arrival passes the configured admission policy (typed
  rejections — nothing is turned away silently);
* admitted requests wait in a :class:`BoundedPriorityQueue` and are
  *paced* into the cloud one per free worker slot, so the cloud's
  retry loop never becomes an unbounded hidden queue;
* shedding policies revisit the queue as conditions change;
* per-worker circuit breakers and hedge anti-affinity constrain the
  cloud's allocator through a :class:`~repro.core.scheduler.GatedAllocator`;
* laggard primaries get a deadline-aware hedge replica on a different
  worker — first result wins, the loser is cancelled through the
  cloud's typed-failure ledger (``hedge_cancelled``);
* with ``tiering=`` set, admitted requests route through a
  :class:`~repro.tier.offloader.TieredOffloader` instead of straight
  into the cloud: deadline-carrying requests speculate across the local
  v-cloud and the remote tier (first acceptable result wins), the rest
  prefer local with remote failover.  Tiering owns cross-tier replicas,
  so it is mutually exclusive with hedging and batching.

The *unprotected* configuration (:meth:`ServiceGateway.unprotected`)
admits everything and dispatches immediately — the congestion-collapse
baseline that experiment E16 contrasts with the protected stack.

Accounting is conservation-checked (see :meth:`accounting`): at any
instant ``offered == admitted + rejected`` and
``admitted == completed + failed + shed + queued + in-flight``; the
chaos invariant ``ServingConservation`` asserts exactly this while
fault campaigns run.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from ..core.capacity import BacklogEstimator
from ..core.scheduler import GatedAllocator, WorkerCandidate
from ..core.tasks import Task, TaskRecord, TaskState
from ..core.vcloud import VehicularCloud
from ..dag.graph import TaskGraph
from ..dag.scheduler import DagScheduler, GraphRecord
from ..errors import ConfigurationError
from ..sim.engine import EventHandle, PeriodicTask
from ..sim.metrics import percentile
from ..sim.world import World
from .admission import AdmissionPolicy, AdmitAll, SheddingPolicy
from .batching import BatchingPolicy
from .breaker import CircuitBreakerBoard
from .hedging import HedgePolicy, LatencyQuantileTracker
from .queueing import BoundedPriorityQueue
from .request import ServiceRequest

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (tier imports serve)
    from ..tier.offloader import SpeculativeTask, TieredOffloader


@dataclass
class ServeStats:
    """Aggregate serving outcomes, conservation-checked.

    ``offered = admitted + rejected`` always;
    ``admitted = completed + failed + shed + queued + in-flight``.
    Latencies are end-to-end from *arrival* (queue wait included), which
    is what the client experiences and what the SLO is judged against.
    """

    offered: int = 0
    admitted: int = 0
    rejected: int = 0
    completed: int = 0
    failed: int = 0
    shed: int = 0
    slo_hits: int = 0
    slo_misses: int = 0
    hedges_launched: int = 0
    hedges_won: int = 0
    hedges_cancelled: int = 0
    #: Coalesced dispatches (>= 2 members) and the requests they carried.
    batches_dispatched: int = 0
    batched_requests: int = 0
    #: DAG jobs offered through the gateway's attached DagScheduler;
    #: conservation over graphs lives in DagConservation, not here.
    graphs_offered: int = 0
    graphs_completed: int = 0
    graphs_failed: int = 0
    rejection_reasons: Dict[str, int] = field(default_factory=dict)
    shed_reasons: Dict[str, int] = field(default_factory=dict)
    latencies_s: List[float] = field(default_factory=list)
    tenant_latencies_s: Dict[str, List[float]] = field(default_factory=dict)

    @property
    def slo_miss_rate(self) -> float:
        """Misses over all admitted requests that reached a terminal state.

        Rejected requests are *not* SLO misses (the client was told no
        immediately); failed and shed admitted requests are.
        """
        terminal = self.completed + self.failed + self.shed
        if terminal == 0:
            return 0.0
        return (self.slo_misses + self.failed + self.shed) / terminal

    @property
    def goodput_completions(self) -> int:
        """Completions that met their SLO (the goodput numerator)."""
        return self.slo_hits

    def p99_latency_s(self) -> float:
        """99th percentile end-to-end latency (0 when empty)."""
        if not self.latencies_s:
            return 0.0
        return percentile(sorted(self.latencies_s), 0.99)


@dataclass
class _Dispatch:
    """One in-flight dispatch: primary cloud task plus optional hedge.

    Usually carries exactly one request; a coalesced small-task batch
    carries several (``members``), all completing or failing with the
    one cloud task while keeping per-member latency/SLO accounting.
    ``request`` is the anchor (first member) either way.  A tiered
    dispatch has no direct cloud record (``record`` is None) — the
    offloader owns the cross-tier replicas and reports back once.
    """

    request: ServiceRequest
    record: Optional[TaskRecord]
    dispatched_at: float
    task_id: str = ""
    members: List[ServiceRequest] = field(default_factory=list)
    hedge_check: Optional[EventHandle] = None
    hedge_record: Optional[TaskRecord] = None
    primary_failed: bool = False
    finalized: bool = False

    def __post_init__(self) -> None:
        if not self.members:
            self.members = [self.request]
        if not self.task_id and self.record is not None:
            self.task_id = self.record.task.task_id


class ServiceGateway:
    """Admission-controlled, load-shedding front door of one cloud."""

    def __init__(
        self,
        world: World,
        cloud: VehicularCloud,
        name: str = "gateway",
        queue_capacity: Optional[int] = 64,
        admission: Optional[AdmissionPolicy] = None,
        shedders: Sequence[SheddingPolicy] = (),
        breakers: Optional[CircuitBreakerBoard] = None,
        hedging: Optional[HedgePolicy] = None,
        paced: bool = True,
        max_dispatch_concurrency: Optional[int] = None,
        tick_interval_s: float = 0.25,
        propagate_deadline: bool = True,
        dag: Optional[DagScheduler] = None,
        batching: Optional[BatchingPolicy] = None,
        backlog: Optional[BacklogEstimator] = None,
        tiering: Optional["TieredOffloader"] = None,
    ) -> None:
        if tick_interval_s <= 0:
            raise ConfigurationError("tick_interval_s must be positive")
        if backlog is not None and backlog.cloud is not cloud:
            raise ConfigurationError(
                "the backlog estimator must observe the gateway's cloud"
            )
        if tiering is not None:
            if hedging is not None:
                raise ConfigurationError(
                    "tiering and hedging are mutually exclusive: cross-tier "
                    "speculation already races replicas"
                )
            if batching is not None:
                raise ConfigurationError(
                    "tiering and batching are mutually exclusive: the "
                    "offloader dispatches tasks individually"
                )
            locals_ = [
                tier
                for tier in tiering.topology.local_tiers()
                if getattr(tier, "cloud", None) is cloud
            ]
            if not locals_:
                raise ConfigurationError(
                    "the tiered offloader's local tier must execute on the "
                    "gateway's cloud"
                )
        self.world = world
        self.cloud = cloud
        self.name = name
        self.queue = BoundedPriorityQueue(queue_capacity)
        self.admission: AdmissionPolicy = admission if admission is not None else AdmitAll()
        self.shedders = list(shedders)
        self.breakers = breakers
        self.hedging = hedging
        self.paced = paced
        self.max_dispatch_concurrency = max_dispatch_concurrency
        self.tick_interval_s = tick_interval_s
        self.propagate_deadline = propagate_deadline
        self.batching = batching
        self.backlog = backlog
        self.tiering = tiering
        if tiering is not None:
            tiering.on_task_resolved(self._on_tier_resolved)
        if backlog is not None:
            # The admission queue is backlog only this gateway knows
            # about; registering it lets the DAG redundancy planner see
            # the load the serving path is creating (and vice versa).
            backlog.add_backlog_source(lambda: self.queue.queued_work_mi)
        self.stats = ServeStats()
        self.latency_tracker = LatencyQuantileTracker()
        self._inflight: Dict[str, _Dispatch] = {}  # primary task_id -> dispatch
        self._hedge_index: Dict[str, str] = {}  # hedge task_id -> primary task_id
        self._anti_affinity: Dict[str, set] = {}  # task_id -> banned worker ids
        self._tenant_inflight: Dict[str, int] = {}
        self._tick_task: Optional[PeriodicTask] = None
        self.dag = dag
        self._gateway_graphs: Dict[str, str] = {}  # graph_id -> tenant
        if dag is not None:
            if dag.cloud is not cloud:
                raise ConfigurationError(
                    "the DAG scheduler must execute on the gateway's cloud"
                )
            dag.on_graph_finished(self._on_graph_finish)
        cloud.on_task_finished(self._on_cloud_finish)
        if breakers is not None or hedging is not None:
            cloud.allocator = GatedAllocator(cloud.allocator, self._gate)
        if breakers is not None:
            cloud.on_lease_eviction(lambda worker_id: breakers.trip(worker_id, "lease_expiry"))
        if self.shedders or self.paced:
            self._tick_task = world.engine.call_every(
                tick_interval_s, self._tick, label=f"serve/{name}/tick"
            )

    # -- canned configurations ----------------------------------------------

    @staticmethod
    def unprotected(world: World, cloud: VehicularCloud, name: str = "gateway") -> "ServiceGateway":
        """Admit everything, dispatch immediately — the collapse baseline.

        Deadlines are *not* propagated to the cloud: deadline awareness
        is a protected-stack feature, so the baseline burns capacity on
        work that is already stale — the congestion-collapse mechanism.
        """
        return ServiceGateway(
            world, cloud, name=name, queue_capacity=None,
            admission=AdmitAll(), paced=False, propagate_deadline=False,
        )

    # -- capacity estimation -------------------------------------------------

    def worker_ids(self) -> List[str]:
        """Pool members eligible for work (the head does not self-assign)."""
        members = self.cloud.pool.member_ids()
        if self.cloud.head_id is not None and len(members) > 1:
            return [m for m in members if m != self.cloud.head_id]
        return members

    def dispatch_slots(self) -> int:
        """Concurrent dispatches the gateway will keep in flight."""
        if self.max_dispatch_concurrency is not None:
            return self.max_dispatch_concurrency
        return max(1, len(self.worker_ids()))

    def total_slots(self) -> Optional[int]:
        """Queue capacity plus dispatch slots (fair-share denominator).

        ``None`` when the queue is unbounded: total capacity is then
        effectively infinite, and the old behavior of counting the
        queue as 0 slots understated capacity for every consumer
        (fair-share admission would throttle tenants against a
        denominator missing the entire queue).
        """
        if self.queue.capacity is None:
            return None
        return self.queue.capacity + self.dispatch_slots()

    def aggregate_capacity_mips(self) -> float:
        """Offered compute across eligible workers."""
        pool = self.cloud.pool
        return sum(pool.offer_of(worker).compute_mips for worker in self.worker_ids())

    def estimated_runtime_s(self, work_mi: float) -> float:
        """Expected runtime of one task on a typical worker."""
        workers = self.worker_ids()
        if not workers:
            return float("inf")
        per_worker = self.aggregate_capacity_mips() / len(workers)
        if per_worker <= 0:
            return float("inf")
        return work_mi / per_worker

    def estimated_queue_delay_s(self) -> float:
        """Standing delay implied by the queued work backlog."""
        capacity = self.aggregate_capacity_mips()
        if capacity <= 0:
            return float("inf") if len(self.queue) else 0.0
        return self.queue.queued_work_mi / capacity

    def tenant_outstanding(self, tenant: str) -> int:
        """Queued plus in-flight requests held by one tenant."""
        return self.queue.tenant_depth(tenant) + self._tenant_inflight.get(tenant, 0)

    # -- arrival path --------------------------------------------------------

    def submit(self, request: ServiceRequest) -> bool:
        """Offer one request; returns True when admitted."""
        request.arrived_at = self.world.now
        self.stats.offered += 1
        self.world.metrics.increment(f"serve/{self.name}/offered")
        reason = self.admission.review(request, self)
        if reason is None and self.paced and self.queue.full:
            reason = self._displace_for(request)
        if reason is not None:
            self._reject(request, reason)
            return False
        self.stats.admitted += 1
        self.world.metrics.increment(f"serve/{self.name}/admitted")
        if not self.paced:
            self._dispatch(request)
            return True
        self.queue.push(request)
        self._pump()
        self._update_gauges()
        return True

    def submit_graph(self, graph: TaskGraph, tenant: str = "") -> GraphRecord:
        """Offer one DAG job to the attached dependable scheduler.

        DAG jobs bypass the scalar request queue — the
        :class:`~repro.dag.scheduler.DagScheduler` owns their pacing,
        redundancy and recovery — but their outcomes are accounted on
        the gateway (``graphs_offered/completed/failed``) so a serving
        stack's dashboard sees both streams.
        """
        if self.dag is None:
            raise ConfigurationError(
                "gateway has no DAG scheduler attached (pass dag= at construction)"
            )
        self.stats.graphs_offered += 1
        self.world.metrics.increment(f"serve/{self.name}/graphs_offered")
        record = self.dag.submit(graph)
        self._gateway_graphs[graph.graph_id] = tenant
        return record

    def _on_graph_finish(self, record: GraphRecord, reason: str) -> None:
        tenant = self._gateway_graphs.pop(record.graph.graph_id, None)
        if tenant is None:
            return  # not a gateway graph (direct scheduler submission)
        if reason == "completed":
            self.stats.graphs_completed += 1
            self.world.metrics.increment(f"serve/{self.name}/graphs_completed")
            return
        self.stats.graphs_failed += 1
        self.world.metrics.increment(f"serve/{self.name}/graphs_failed/{reason}")
        events = self.world.events
        if events is not None:
            events.emit(
                "serve", "graph_failed", severity="warning",
                gateway=self.name, graph=record.graph.graph_id,
                tenant=tenant, reason=reason,
            )

    def _displace_for(self, request: ServiceRequest) -> Optional[str]:
        """Full queue: shed a strictly less urgent victim or reject."""
        victim = None
        for queued in self.queue.items():
            victim = queued  # items() is urgency-ordered; last is the tail
        if victim is not None and victim.priority > request.priority:
            evicted = self.queue.evict_tail()
            if evicted is not None:
                self._account_shed(evicted, "displaced")
                return None
        return "queue_full"

    def _reject(self, request: ServiceRequest, reason: str) -> None:
        self.stats.rejected += 1
        self.stats.rejection_reasons[reason] = (
            self.stats.rejection_reasons.get(reason, 0) + 1
        )
        self.world.metrics.increment(f"serve/{self.name}/rejected/{reason}")
        events = self.world.events
        if events is not None:
            events.emit(
                "serve", "request_rejected", severity="info",
                gateway=self.name, request=request.request_id,
                tenant=request.tenant, reason=reason,
            )

    # -- shedding ------------------------------------------------------------

    def shed_queued(self, request: ServiceRequest, reason: str) -> bool:
        """Shed one specific queued request with a typed reason."""
        if not self.queue.remove(request):
            return False
        self._account_shed(request, reason)
        return True

    def shed_tail(self, reason: str) -> bool:
        """Shed the least urgent, newest queued request."""
        victim = self.queue.evict_tail()
        if victim is None:
            return False
        self._account_shed(victim, reason)
        return True

    def _account_shed(self, request: ServiceRequest, reason: str) -> None:
        self.stats.shed += 1
        self.stats.shed_reasons[reason] = self.stats.shed_reasons.get(reason, 0) + 1
        self.world.metrics.increment(f"serve/{self.name}/shed/{reason}")
        events = self.world.events
        if events is not None:
            events.emit(
                "serve", "request_shed", severity="warning",
                gateway=self.name, request=request.request_id,
                tenant=request.tenant, reason=reason,
                waited_s=self.world.now - request.arrived_at,
            )

    # -- dispatch ------------------------------------------------------------

    def _gate(self, task: Task, candidate: WorkerCandidate) -> bool:
        banned = self._anti_affinity.get(task.task_id)
        if banned is not None and candidate.vehicle_id in banned:
            return False
        if self.breakers is not None and not self.breakers.allows(candidate.vehicle_id):
            return False
        return True

    def _pump(self) -> None:
        while len(self.queue) > 0 and len(self._inflight) < self.dispatch_slots():
            request = self.queue.pop()
            if request is None:
                break
            deadline = request.deadline_s
            if deadline is not None:
                remaining = request.arrived_at + deadline - self.world.now
                if remaining <= 0:
                    self._account_shed(request, "deadline_lapsed")
                    continue
            members = self._collect_batch(request)
            self._dispatch(request, members=members)

    def _collect_batch(self, anchor: ServiceRequest) -> List[ServiceRequest]:
        """Pull compatible small queued requests into the anchor's dispatch.

        Members come out of the queue in urgency order; requests whose
        deadline already lapsed are skipped (the pump's shed path owns
        them).  Returns the full member list, anchor first.
        """
        members = [anchor]
        if self.batching is None or not self.batching.eligible(anchor):
            return members
        policy = self.batching
        budget_mi = policy.max_batch_work_mi - anchor.task.work_mi
        joiners: List[ServiceRequest] = []
        for queued in self.queue.items():
            if len(members) + len(joiners) >= policy.max_batch_size:
                break
            if not policy.compatible(anchor, queued):
                continue
            if queued.task.work_mi > budget_mi:
                continue
            deadline = queued.deadline_s
            if deadline is not None and (
                queued.arrived_at + deadline - self.world.now <= 0
            ):
                continue
            joiners.append(queued)
            budget_mi -= queued.task.work_mi
        for joiner in joiners:
            if self.queue.remove(joiner):
                members.append(joiner)
        return members

    def _batch_task(self, members: List[ServiceRequest]) -> Task:
        """Combine batch members into one cloud task.

        Work and bytes sum; the deadline is the *tightest remaining*
        member budget (a batch must finish before its most urgent
        member lapses); sensors/submitter come from the anchor, which
        compatibility made identical across members.
        """
        anchor = members[0]
        remaining: Optional[float] = None
        if self.propagate_deadline:
            budgets = [
                m.arrived_at + m.deadline_s - self.world.now
                for m in members
                if m.deadline_s is not None
            ]
            if budgets:
                remaining = max(min(budgets), 1e-6)
        return Task(
            work_mi=sum(m.task.work_mi for m in members),
            input_bytes=sum(m.task.input_bytes for m in members),
            output_bytes=sum(m.task.output_bytes for m in members),
            deadline_s=remaining,
            required_sensors=anchor.task.required_sensors,
            submitter=anchor.tenant,
        )

    def _dispatch(
        self, request: ServiceRequest, members: Optional[List[ServiceRequest]] = None
    ) -> None:
        members = members if members else [request]
        if len(members) > 1:
            task = self._batch_task(members)
            self.stats.batches_dispatched += 1
            self.stats.batched_requests += len(members)
            self.world.metrics.increment(f"serve/{self.name}/batches_dispatched")
            events = self.world.events
            if events is not None:
                events.emit(
                    "serve", "batch_dispatched", severity="info",
                    gateway=self.name, tenant=request.tenant,
                    members=len(members), work_mi=task.work_mi,
                )
        else:
            task = request.task
            deadline = request.deadline_s
            if not self.propagate_deadline:
                if deadline is not None:
                    task = dataclasses.replace(task, deadline_s=None)
            elif deadline is not None:
                # The cloud enforces deadlines from *its* submission time;
                # hand it the remaining budget so queue wait still counts.
                remaining = max(request.arrived_at + deadline - self.world.now, 1e-6)
                task = dataclasses.replace(task, deadline_s=remaining)
        if self.tiering is not None:
            self._dispatch_tiered(request, task, members)
            return
        record = self.cloud.submit(task)
        dispatch = _Dispatch(
            request=request, record=record, dispatched_at=self.world.now,
            members=members,
        )
        self._inflight[task.task_id] = dispatch
        for member in members:
            self._tenant_inflight[member.tenant] = (
                self._tenant_inflight.get(member.tenant, 0) + 1
            )
        if self.breakers is not None and record.worker_id is not None:
            self.breakers.note_dispatch(record.worker_id)
        if self.hedging is not None and len(members) == 1:
            # Batches are never hedged: a hedge doubles the batch's full
            # work, exactly the load amplification batching exists to
            # avoid, and per-member accounting would double-count.
            delay = self.hedging.trigger_delay_s(
                self.latency_tracker, self.estimated_runtime_s(task.work_mi)
            )
            dispatch.hedge_check = self.world.engine.schedule(
                delay,
                lambda tid=task.task_id: self._maybe_hedge(tid),
                label="serve-hedge-check",
            )
        self._update_gauges()

    def _dispatch_tiered(
        self, request: ServiceRequest, task: Task, members: List[ServiceRequest]
    ) -> None:
        """Route one admitted request through the tiered offloader.

        Deadline-carrying requests speculate (local + remote replicas,
        first acceptable result wins); the rest prefer local execution
        with failover.  The dispatch is registered *before* submission:
        the offloader may resolve synchronously (e.g. no tier at all),
        and the resolution callback must find the dispatch in flight.
        """
        dispatch = _Dispatch(
            request=request, record=None, dispatched_at=self.world.now,
            task_id=task.task_id, members=members,
        )
        self._inflight[task.task_id] = dispatch
        for member in members:
            self._tenant_inflight[member.tenant] = (
                self._tenant_inflight.get(member.tenant, 0) + 1
            )
        policy = "speculate" if task.deadline_s is not None else "prefer_local"
        self.world.metrics.increment(f"serve/{self.name}/tiered/{policy}")
        assert self.tiering is not None
        self.tiering.submit(task, policy=policy)
        self._update_gauges()

    def _on_tier_resolved(self, spec: "SpeculativeTask", reason: str) -> None:
        dispatch = self._inflight.get(spec.task.task_id)
        if dispatch is None or dispatch.finalized:
            return  # not a gateway submission (direct offloader use)
        if reason == "completed":
            winner = spec.winner.record if spec.winner is not None else None
            self._finalize_success(dispatch, winner, hedge_won=False)
        else:
            self._finalize_failure(dispatch, reason)

    # -- hedging -------------------------------------------------------------

    def _hedges_inflight(self) -> int:
        return len(self._hedge_index)

    def _maybe_hedge(self, primary_id: str) -> None:
        dispatch = self._inflight.get(primary_id)
        if (
            dispatch is None
            or dispatch.finalized
            or dispatch.hedge_record is not None
            or self.hedging is None
        ):
            return
        record = dispatch.record
        if record.state in (TaskState.COMPLETED, TaskState.FAILED):
            return
        request = dispatch.request
        deadline = request.deadline_s
        remaining = (
            None
            if deadline is None
            else request.arrived_at + deadline - self.world.now
        )
        expected = self.estimated_runtime_s(request.task.work_mi)
        if not self.hedging.may_hedge(
            inflight_hedges=self._hedges_inflight(),
            queue_depth=len(self.queue),
            remaining_deadline_s=remaining,
            expected_runtime_s=expected,
        ):
            return
        workers = self.worker_ids()
        primary_worker = record.worker_id
        if primary_worker is None or len(workers) < 2:
            return
        hedge_task = Task(
            work_mi=request.task.work_mi,
            input_bytes=request.task.input_bytes,
            output_bytes=request.task.output_bytes,
            deadline_s=max(remaining, 1e-6) if remaining is not None else None,
            required_sensors=request.task.required_sensors,
            submitter=request.tenant,
        )
        # Anti-affinity: the hedge must land on a *different* worker.
        self._anti_affinity[hedge_task.task_id] = {primary_worker}
        self._hedge_index[hedge_task.task_id] = primary_id
        dispatch.hedge_record = self.cloud.submit(hedge_task)
        self.stats.hedges_launched += 1
        self.world.metrics.increment(f"serve/{self.name}/hedges_launched")
        events = self.world.events
        if events is not None:
            events.emit(
                "serve", "hedge_launched", severity="info",
                gateway=self.name, request=request.request_id,
                primary_worker=primary_worker, hedge_task=hedge_task.task_id,
            )

    # -- terminal outcomes ---------------------------------------------------

    def _on_cloud_finish(self, record: TaskRecord, reason: str) -> None:
        task_id = record.task.task_id
        primary_id = self._hedge_index.get(task_id)
        if primary_id is not None:
            self._on_hedge_finish(primary_id, record, reason)
            return
        dispatch = self._inflight.get(task_id)
        if dispatch is None:
            return  # not a gateway task (direct cloud submission)
        if dispatch.finalized:
            if reason == "hedge_cancelled":
                # The hedge won and the primary was retired.
                self.stats.hedges_cancelled += 1
                self.world.metrics.increment(f"serve/{self.name}/hedges_cancelled")
            return
        if reason == "completed":
            self._finalize_success(dispatch, record, hedge_won=False)
            return
        if self.breakers is not None and record.worker_id is not None and reason in (
            "retries_exhausted",
        ):
            self.breakers.record_outcome(record.worker_id, ok=False)
        if dispatch.hedge_record is not None and dispatch.hedge_record.state not in (
            TaskState.COMPLETED, TaskState.FAILED,
        ):
            # The hedge may still win; hold the request open.
            dispatch.primary_failed = True
            return
        self._finalize_failure(dispatch, reason)

    def _on_hedge_finish(self, primary_id: str, record: TaskRecord, reason: str) -> None:
        task_id = record.task.task_id
        self._hedge_index.pop(task_id, None)
        self._anti_affinity.pop(task_id, None)
        dispatch = self._inflight.get(primary_id)
        if reason == "hedge_cancelled":
            self.stats.hedges_cancelled += 1
            self.world.metrics.increment(f"serve/{self.name}/hedges_cancelled")
            return
        if dispatch is None or dispatch.finalized:
            return
        if reason == "completed":
            self._finalize_success(dispatch, record, hedge_won=True)
            return
        if self.breakers is not None and record.worker_id is not None and reason in (
            "retries_exhausted",
        ):
            self.breakers.record_outcome(record.worker_id, ok=False)
        if dispatch.primary_failed:
            self._finalize_failure(dispatch, reason)
        else:
            dispatch.hedge_record = None  # primary is still live

    def _finalize_success(
        self, dispatch: _Dispatch, winner: Optional[TaskRecord], hedge_won: bool
    ) -> None:
        dispatch.finalized = True
        # Every batch member completes with the shared cloud task, but
        # latency and SLO are judged per member against its own arrival.
        for member in dispatch.members:
            latency = self.world.now - member.arrived_at
            self.stats.completed += 1
            self.stats.latencies_s.append(latency)
            self.stats.tenant_latencies_s.setdefault(member.tenant, []).append(latency)
            self.latency_tracker.observe(latency)
            self.world.metrics.increment(f"serve/{self.name}/completed")
            self.world.metrics.observe(f"serve/{self.name}/latency_s", latency)
            self.world.metrics.observe(
                f"serve/{self.name}/latency_s/{member.tenant}", latency
            )
            deadline = member.deadline_s
            if deadline is None or latency <= deadline:
                self.stats.slo_hits += 1
            else:
                self.stats.slo_misses += 1
                self.world.metrics.increment(f"serve/{self.name}/slo_miss")
        if hedge_won:
            self.stats.hedges_won += 1
            self.world.metrics.increment(f"serve/{self.name}/hedges_won")
        if (
            self.breakers is not None
            and winner is not None
            and winner.worker_id is not None
        ):
            self.breakers.record_outcome(winner.worker_id, ok=True)
        # Retire the loser through the typed ledger before cleanup.
        loser = dispatch.record if hedge_won else dispatch.hedge_record
        if loser is not None and loser is not winner:
            self.cloud.cancel(loser, "hedge_cancelled")
        self._cleanup(dispatch)

    def _finalize_failure(self, dispatch: _Dispatch, reason: str) -> None:
        dispatch.finalized = True
        events = self.world.events
        # A batch fails as a unit, but every member gets its own typed
        # failure so the conservation ledger never loses a request.
        for member in dispatch.members:
            self.stats.failed += 1
            self.world.metrics.increment(f"serve/{self.name}/failed/{reason}")
            if events is not None:
                events.emit(
                    "serve", "request_failed", severity="warning",
                    gateway=self.name, request=member.request_id,
                    tenant=member.tenant, reason=reason,
                )
        self._cleanup(dispatch)

    def _cleanup(self, dispatch: _Dispatch) -> None:
        task_id = dispatch.task_id
        self._inflight.pop(task_id, None)
        self._anti_affinity.pop(task_id, None)
        for member in dispatch.members:
            left = self._tenant_inflight.get(member.tenant, 0) - 1
            if left <= 0:
                self._tenant_inflight.pop(member.tenant, None)
            else:
                self._tenant_inflight[member.tenant] = left
        if dispatch.hedge_check is not None:
            dispatch.hedge_check.cancel()
        if self.paced:
            self._pump()
        self._update_gauges()

    # -- periodic maintenance ------------------------------------------------

    def _tick(self) -> None:
        for shedder in self.shedders:
            shedder.shed(self)
        if self.paced:
            self._pump()
        self._update_gauges()

    def _update_gauges(self) -> None:
        metrics = self.world.metrics
        metrics.set_gauge(f"serve/{self.name}/queue_depth", float(len(self.queue)))
        metrics.set_gauge(f"serve/{self.name}/inflight", float(len(self._inflight)))

    def stop(self) -> None:
        """Stop the maintenance tick (end of experiment)."""
        if self._tick_task is not None:
            self._tick_task.stop()
            self._tick_task = None

    # -- introspection -------------------------------------------------------

    def accounting(self) -> Dict[str, int]:
        """Request-stream conservation counters, surfaced for invariants.

        At any sim instant ``offered == admitted + rejected`` and
        ``admitted == completed + failed + shed + queued + inflight``
        must hold; a mismatch means a request leaked out of the serving
        path without a typed outcome.  ``inflight`` counts *requests*,
        not dispatches — a coalesced batch holds one cloud task but
        every member is still an admitted request awaiting its outcome.
        """
        return {
            "offered": self.stats.offered,
            "admitted": self.stats.admitted,
            "rejected": self.stats.rejected,
            "completed": self.stats.completed,
            "failed": self.stats.failed,
            "shed": self.stats.shed,
            "queued": len(self.queue),
            "inflight": sum(len(d.members) for d in self._inflight.values()),
        }
