"""CI overload smoke: fixed seed, short run, fails loud.

Run as ``python -m repro.serve.smoke``.  Builds a stationary cloud
behind the protected gateway, drives ~2x-capacity open-loop traffic at
a pinned seed, and asserts the overload machinery actually engaged:

* the load shedder fired (shed counter > 0) and every shed/rejected
  request carries a typed reason;
* small-task batching engaged: the gateway runs with a
  :class:`~repro.serve.batching.BatchingPolicy` and a small-request
  tenant, so compatible queued smalls must coalesce
  (``batches_dispatched > 0``) with per-member accounting intact;
* the :class:`~repro.chaos.invariants.ServingConservation` invariant
  held at every periodic check (zero violations);
* the request stream balances at the end of the run.
"""

from __future__ import annotations

import sys

from ..chaos.invariants import InvariantSuite, ServingConservation
from ..core import CheckpointHandoverPolicy, ResourceOffer, VehicularCloud
from ..geometry import Vec2
from ..mobility import StationaryModel
from ..sim import ScenarioConfig, World
from . import (
    BatchingPolicy,
    CircuitBreakerBoard,
    CompositeAdmission,
    DeadlineFeasibilityAdmission,
    DeadlineLapseShedder,
    HedgePolicy,
    PoissonArrivals,
    QueueDelayShedder,
    ServiceGateway,
    TenantFairShareAdmission,
    TenantSpec,
    WorkloadGenerator,
)

SEED = 1916
MEMBERS = 8
HORIZON_S = 60.0
DRAIN_S = 30.0


def main() -> int:
    world = World(ScenarioConfig(seed=SEED))
    model = StationaryModel(
        world, positions=[Vec2(i * 40.0, 0.0) for i in range(MEMBERS)]
    )
    vehicles = model.populate(MEMBERS)
    cloud = VehicularCloud(
        world, "smoke-vc", handover_policy=CheckpointHandoverPolicy()
    )
    for vehicle in vehicles:
        cloud.admit(
            vehicle, offer=ResourceOffer(vehicle.vehicle_id, 100.0, 10**9, 1e6)
        )
    gateway = ServiceGateway(
        world,
        cloud,
        name="smoke",
        queue_capacity=32,
        admission=CompositeAdmission([
            DeadlineFeasibilityAdmission(),
            TenantFairShareAdmission(share=0.7),
        ]),
        shedders=[DeadlineLapseShedder(), QueueDelayShedder(max_delay_s=4.0)],
        breakers=CircuitBreakerBoard(world, "smoke"),
        hedging=HedgePolicy(),
        batching=BatchingPolicy(
            max_batch_size=4, max_member_work_mi=50.0, max_batch_work_mi=160.0
        ),
    )
    # ~2x capacity: 7 workers x 100 MIPS vs ~200 MI tasks = 3.5 tasks/s,
    # plus a stream of batchable telemetry smalls that must coalesce
    # whenever the overloaded queue holds several of them.
    tenants = [
        TenantSpec(
            name="bulk", arrivals=PoissonArrivals(4.9),
            work_mi_range=(150.0, 250.0), deadline_s=8.0, priority=2,
        ),
        TenantSpec(
            name="interactive", arrivals=PoissonArrivals(2.1),
            work_mi_range=(100.0, 200.0), deadline_s=6.0, priority=1,
        ),
        TenantSpec(
            name="telemetry", arrivals=PoissonArrivals(10.0),
            work_mi_range=(20.0, 40.0), deadline_s=6.0, priority=1,
        ),
    ]
    WorkloadGenerator(world, gateway, tenants, horizon_s=HORIZON_S).start()
    suite = InvariantSuite([ServingConservation(gateway)], metrics=world.metrics)
    suite.attach(world, check_interval_s=0.5)
    world.run_until(HORIZON_S + DRAIN_S)

    failures = 0
    acc = gateway.accounting()
    stats = gateway.stats
    print(f"accounting: {acc}")
    print(f"rejections: {stats.rejection_reasons}")
    print(f"sheds:      {stats.shed_reasons}")
    print(
        f"slo: hits={stats.slo_hits} misses={stats.slo_misses} "
        f"p99={stats.p99_latency_s():.2f}s"
    )
    print(
        f"batching: batches={stats.batches_dispatched} "
        f"members={stats.batched_requests}"
    )
    print(f"invariant checks: {suite.checks_run}, violations: {len(suite.violations)}")

    if stats.shed == 0:
        failures += 1
        print("!! load shedder never fired under 2x overload")
    if stats.batches_dispatched == 0:
        failures += 1
        print("!! small-task batching never coalesced a dispatch under overload")
    if sum(stats.shed_reasons.values()) != stats.shed:
        failures += 1
        print("!! shed counter disagrees with typed shed reasons")
    if sum(stats.rejection_reasons.values()) != stats.rejected:
        failures += 1
        print("!! rejection counter disagrees with typed rejection reasons")
    if suite.violations:
        failures += 1
        for violation in suite.violations[:5]:
            print(f"!! {violation.describe()}")
    if acc["offered"] != acc["admitted"] + acc["rejected"]:
        failures += 1
        print("!! offered != admitted + rejected at end of run")
    if acc["queued"] != 0 or acc["inflight"] != 0:
        failures += 1
        print("!! requests still queued/in-flight after drain window")

    if failures:
        print(f"OVERLOAD SMOKE FAILED ({failures} problem(s))")
        return 1
    print("overload smoke passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
