"""Admission control and load shedding policies.

Admission decides at the door; shedding revisits the queue as
conditions change.  Both return *typed reasons* — a request is never
turned away silently, because the gateway ledgers every reason into its
stats, the metrics registry and the event log (the serving-path
equivalent of the task failure ledger).

The policies are deliberately small and composable:

* :class:`AdmitAll` — the unprotected baseline;
* :class:`DeadlineFeasibilityAdmission` — reject work that cannot meet
  its deadline even if dispatched after the current backlog drains;
* :class:`QueueDelayAdmission` — bound the estimated standing queue
  delay (utilization-based overload control);
* :class:`TenantFairShareAdmission` — per-tenant backpressure: no
  tenant may hold more than its weighted share of queue + in-flight
  slots while others are waiting;
* :class:`CompositeAdmission` — first rejection wins;
* :class:`DeadlineLapseShedder` / :class:`QueueDelayShedder` — queue
  revisitation under overload.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Protocol, Sequence, Tuple

from ..errors import ConfigurationError
from .request import ServiceRequest

if TYPE_CHECKING:
    from .gateway import ServiceGateway


class AdmissionPolicy(Protocol):
    """Reviews one request at the door."""

    def review(self, request: ServiceRequest, gateway: "ServiceGateway") -> Optional[str]:
        """Return a typed rejection reason, or None to admit."""
        ...


class SheddingPolicy(Protocol):
    """Sheds queued requests once conditions have degraded."""

    def shed(self, gateway: "ServiceGateway") -> int:
        """Shed victims via the gateway's typed shed path; return count."""
        ...


class AdmitAll:
    """No admission control — the congestion-collapse baseline."""

    name = "admit-all"

    def review(self, request: ServiceRequest, gateway: "ServiceGateway") -> Optional[str]:
        return None


class DeadlineFeasibilityAdmission:
    """Reject requests whose deadline is already infeasible at arrival.

    Feasibility estimate: the request must wait for the standing
    backlog to drain (queued work / aggregate capacity), then run on a
    typical worker (work / mean per-worker MIPS), plus a configurable
    dispatch overhead.  If that exceeds the deadline with the safety
    margin applied, admitting it would only burn capacity on work that
    is going to miss — the definition of goodput-destroying load.
    """

    name = "deadline-feasibility"

    def __init__(self, margin: float = 1.0, overhead_s: float = 0.1) -> None:
        if margin <= 0:
            raise ConfigurationError("margin must be positive")
        if overhead_s < 0:
            raise ConfigurationError("overhead_s must be non-negative")
        self.margin = margin
        self.overhead_s = overhead_s

    def review(self, request: ServiceRequest, gateway: "ServiceGateway") -> Optional[str]:
        deadline = request.deadline_s
        if deadline is None:
            return None
        expected = (
            gateway.estimated_queue_delay_s()
            + gateway.estimated_runtime_s(request.task.work_mi)
            + self.overhead_s
        )
        if expected * self.margin > deadline:
            return "deadline_infeasible"
        return None


class QueueDelayAdmission:
    """Reject when the estimated standing queue delay exceeds a bound."""

    name = "queue-delay"

    def __init__(self, max_delay_s: float) -> None:
        if max_delay_s <= 0:
            raise ConfigurationError("max_delay_s must be positive")
        self.max_delay_s = max_delay_s

    def review(self, request: ServiceRequest, gateway: "ServiceGateway") -> Optional[str]:
        if gateway.estimated_queue_delay_s() > self.max_delay_s:
            return "queue_delay"
        return None


class TenantFairShareAdmission:
    """Per-tenant fair backpressure on outstanding (queued + in-flight) work.

    A tenant may hold at most ``max(floor(share * total_slots), min_slots)``
    outstanding requests, where ``total_slots`` is the queue capacity
    plus the dispatch capacity.  A single hot tenant therefore saturates
    its own share and gets ``tenant_backpressure`` rejections while
    other tenants keep being admitted — overload isolation, not global
    fairness scheduling.
    """

    name = "tenant-fair-share"

    def __init__(self, share: float = 0.5, min_slots: int = 2) -> None:
        if not 0.0 < share <= 1.0:
            raise ConfigurationError("share must be in (0, 1]")
        if min_slots < 1:
            raise ConfigurationError("min_slots must be >= 1")
        self.share = share
        self.min_slots = min_slots

    def review(self, request: ServiceRequest, gateway: "ServiceGateway") -> Optional[str]:
        total_slots = gateway.total_slots()
        if total_slots is None:
            # Unbounded queue: there is no finite denominator to share,
            # so fair-share backpressure cannot bind — admit.
            return None
        allowance = max(int(self.share * total_slots), self.min_slots)
        if gateway.tenant_outstanding(request.tenant) >= allowance:
            return "tenant_backpressure"
        return None


class CompositeAdmission:
    """Chains policies; the first rejection wins."""

    name = "composite"

    def __init__(self, policies: Sequence[AdmissionPolicy]) -> None:
        self.policies = list(policies)

    def review(self, request: ServiceRequest, gateway: "ServiceGateway") -> Optional[str]:
        for policy in self.policies:
            reason = policy.review(request, gateway)
            if reason is not None:
                return reason
        return None


class DeadlineLapseShedder:
    """Shed queued requests whose deadline has become infeasible.

    Admission feasibility was judged at arrival; churn or breaker trips
    can shrink capacity afterwards.  Requests that can no longer make
    their deadline are dead weight: shedding them (typed reason
    ``deadline_lapsed``) frees their queue slot for work that can still
    succeed.
    """

    name = "deadline-lapse"

    def shed(self, gateway: "ServiceGateway") -> int:
        now = gateway.world.now
        victims: List[ServiceRequest] = []
        for request in gateway.queue.items():
            deadline = request.deadline_s
            if deadline is None:
                continue
            runtime = gateway.estimated_runtime_s(request.task.work_mi)
            if now + runtime > request.arrived_at + deadline:
                victims.append(request)
        for request in victims:
            gateway.shed_queued(request, "deadline_lapsed")
        return len(victims)


class QueueDelayShedder:
    """Shed from the tail while the estimated queue delay is too high.

    The utilization/queue-delay signal: when the backlog implies more
    standing delay than ``max_delay_s``, requests are evicted in
    deterministic tail order (worst priority, newest first) until the
    estimate is back under the bound.
    """

    name = "queue-delay-shed"

    def __init__(self, max_delay_s: float) -> None:
        if max_delay_s <= 0:
            raise ConfigurationError("max_delay_s must be positive")
        self.max_delay_s = max_delay_s

    def shed(self, gateway: "ServiceGateway") -> int:
        shed = 0
        while (
            len(gateway.queue) > 0
            and gateway.estimated_queue_delay_s() > self.max_delay_s
            and gateway.shed_tail("queue_delay")
        ):
            shed += 1
        return shed
