"""Deadline-aware hedged offload.

The tail-latency defence: when a dispatched request has outrun the
expected-latency quantile of recent completions and its deadline is in
danger, launch a *hedge* — a secondary replica of the same work on a
different worker — and let the first finisher win.  The loser is
cancelled through the cloud's typed-failure path (``hedge_cancelled``),
so hedging never leaks untracked work.

Hedges are only worth their cost when there is spare capacity; the
policy therefore refuses to hedge while the admission queue is backed
up (those slots belong to fresh requests) and bounds concurrent hedges.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

from ..errors import ConfigurationError
from ..sim.metrics import percentile


class LatencyQuantileTracker:
    """Sliding-window tracker of observed completion latencies.

    Keeps the last ``window`` end-to-end latencies and answers quantile
    queries once ``min_samples`` have been seen; before that it reports
    None and callers fall back to an analytic estimate.  Deterministic:
    no RNG, pure function of the observation sequence.
    """

    def __init__(self, window: int = 64, min_samples: int = 10) -> None:
        if window < 1:
            raise ConfigurationError("window must be >= 1")
        if min_samples < 1:
            raise ConfigurationError("min_samples must be >= 1")
        self.window = window
        self.min_samples = min_samples
        self._samples: Deque[float] = deque(maxlen=window)

    def __len__(self) -> int:
        return len(self._samples)

    def observe(self, latency_s: float) -> None:
        """Record one completed request's end-to-end latency."""
        self._samples.append(latency_s)

    def quantile(self, fraction: float) -> Optional[float]:
        """The requested latency quantile, None until warmed up."""
        if len(self._samples) < self.min_samples:
            return None
        return percentile(sorted(self._samples), fraction)


@dataclass(frozen=True)
class HedgePolicy:
    """When and whether to launch a hedge replica.

    ``quantile`` sets the trigger point: a request becomes
    hedge-eligible once its primary has been in flight longer than that
    quantile of observed latencies (or ``fallback_factor`` times the
    analytic runtime estimate while the tracker is cold).  The
    remaining deadline must still cover a fresh attempt — hedging work
    that cannot finish anyway only steals capacity.
    """

    quantile: float = 0.90
    fallback_factor: float = 2.0
    max_inflight_hedges: int = 2
    require_idle_queue: bool = True

    def __post_init__(self) -> None:
        if not 0.0 < self.quantile < 1.0:
            raise ConfigurationError("quantile must be in (0, 1)")
        if self.fallback_factor < 1.0:
            raise ConfigurationError("fallback_factor must be >= 1")
        if self.max_inflight_hedges < 1:
            raise ConfigurationError("max_inflight_hedges must be >= 1")

    def trigger_delay_s(
        self, tracker: LatencyQuantileTracker, expected_runtime_s: float
    ) -> float:
        """In-flight time after which the primary counts as lagging."""
        observed = tracker.quantile(self.quantile)
        if observed is not None:
            return max(observed, 1e-3)
        return max(expected_runtime_s * self.fallback_factor, 1e-3)

    def may_hedge(
        self,
        inflight_hedges: int,
        queue_depth: int,
        remaining_deadline_s: Optional[float],
        expected_runtime_s: float,
    ) -> bool:
        """Whether launching a hedge now is worthwhile."""
        if inflight_hedges >= self.max_inflight_hedges:
            return False
        if self.require_idle_queue and queue_depth > 0:
            return False
        if remaining_deadline_s is not None and remaining_deadline_s < expected_runtime_s:
            return False
        return True
