"""The unit of serving work: a tenant-attributed, prioritized task."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..core.tasks import Task
from ..errors import ConfigurationError


@dataclass
class ServiceRequest:
    """One client request flowing through the serving stack.

    Wraps the :class:`~repro.core.tasks.Task` that will run on the
    vehicular cloud with the serving-layer attributes the cloud itself
    does not know about: the owning tenant and the priority class
    (lower value = more urgent).  ``arrived_at`` is stamped by the
    gateway at submission; the SLO clock starts there, not at dispatch.
    """

    task: Task
    tenant: str = "default"
    priority: int = 1
    arrived_at: float = 0.0

    def __post_init__(self) -> None:
        if self.priority < 0:
            raise ConfigurationError("priority must be non-negative")

    @property
    def request_id(self) -> str:
        """Stable id (the wrapped task's id)."""
        return self.task.task_id

    @property
    def deadline_s(self) -> Optional[float]:
        """Relative SLO deadline carried by the wrapped task."""
        return self.task.deadline_s

    @staticmethod
    def build(
        work_mi: float,
        tenant: str = "default",
        priority: int = 1,
        deadline_s: Optional[float] = None,
        input_bytes: int = 10_000,
        output_bytes: int = 2_000,
    ) -> "ServiceRequest":
        """Construct a request with a fresh task in one call."""
        return ServiceRequest(
            task=Task(
                work_mi=work_mi,
                input_bytes=input_bytes,
                output_bytes=output_bytes,
                deadline_s=deadline_s,
                submitter=tenant,
            ),
            tenant=tenant,
            priority=priority,
        )
