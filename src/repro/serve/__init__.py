"""Overload-resilient serving on top of a vehicular cloud.

The management challenge (§V.A) is not only *allocating* pooled vehicle
resources but keeping a cloud useful when demand exceeds them.  This
package adds the serving-path defences between open-loop clients and a
:class:`~repro.core.vcloud.VehicularCloud`:

* :mod:`.workload` — seeded open-loop workload generation (Poisson,
  bursty MMPP, diurnal arrival processes; per-tenant client
  populations), deterministic per RNG substream;
* :mod:`.queueing` — a bounded priority admission queue with
  deterministic tail eviction;
* :mod:`.admission` — pluggable admission control (deadline
  feasibility, queue-delay bounds, per-tenant fair backpressure) and
  load-shedding policies, every refusal carrying a typed reason;
* :mod:`.breaker` — per-worker circuit breakers (sliding-window
  failure rate, lease-expiry hard trips, backoff-scheduled half-open
  probes);
* :mod:`.hedging` — deadline-aware hedged offload: a lagging primary
  gets a replica on a different worker, first result wins, the loser
  is cancelled through the typed failure ledger;
* :mod:`.batching` — small-task coalescing: compatible small
  same-tenant queued requests share one cloud dispatch (one worker
  slot) while keeping per-member latency/SLO/failure accounting;
* :mod:`.gateway` — the :class:`ServiceGateway` tying it together,
  with conservation-checked accounting
  (``offered == admitted + rejected``;
  ``admitted == completed + failed + shed + queued + in-flight``,
  in-flight counted per batch member).

A gateway can also share a :class:`~repro.core.capacity.BacklogEstimator`
with a DAG scheduler on the same cloud (``backlog=``): the gateway
registers its queued work so the capacity-aware redundancy planner sees
serving load, breaking the replication-amplifies-queueing loop E17
exposed.

A gateway can also front DAG jobs: construct it with ``dag=`` (a
:class:`~repro.dag.scheduler.DagScheduler` on the same cloud) and
tenants whose :class:`~repro.serve.workload.TenantSpec` carries a
``graph`` template emit dependency-structured jobs through
``submit_graph`` instead of scalar requests.

Experiment E16 (``benchmarks/test_bench_overload.py``) contrasts this
protected stack with the unprotected baseline across offered loads on
all three Fig. 4 architectures.
"""

from .admission import (
    AdmissionPolicy,
    AdmitAll,
    CompositeAdmission,
    DeadlineFeasibilityAdmission,
    DeadlineLapseShedder,
    QueueDelayAdmission,
    QueueDelayShedder,
    SheddingPolicy,
    TenantFairShareAdmission,
)
from .batching import BatchingPolicy
from .breaker import BreakerState, CircuitBreaker, CircuitBreakerBoard
from .gateway import ServeStats, ServiceGateway
from .hedging import HedgePolicy, LatencyQuantileTracker
from .queueing import BoundedPriorityQueue
from .request import ServiceRequest
from .workload import (
    ArrivalProcess,
    BurstyArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    TenantLoad,
    TenantSpec,
    WorkloadGenerator,
)

__all__ = [
    "AdmissionPolicy",
    "AdmitAll",
    "ArrivalProcess",
    "BatchingPolicy",
    "BoundedPriorityQueue",
    "BreakerState",
    "BurstyArrivals",
    "CircuitBreaker",
    "CircuitBreakerBoard",
    "CompositeAdmission",
    "DeadlineFeasibilityAdmission",
    "DeadlineLapseShedder",
    "DiurnalArrivals",
    "HedgePolicy",
    "LatencyQuantileTracker",
    "PoissonArrivals",
    "QueueDelayAdmission",
    "QueueDelayShedder",
    "ServeStats",
    "ServiceGateway",
    "ServiceRequest",
    "SheddingPolicy",
    "TenantFairShareAdmission",
    "TenantLoad",
    "TenantSpec",
    "WorkloadGenerator",
]
