"""Bounded priority admission queue.

A heap keyed by ``(priority, arrival sequence)`` — lower priority value
is more urgent, ties break FIFO — with the extra surfaces a serving
layer needs: per-tenant depth accounting for fair backpressure, queued
work totals for delay estimation, and deterministic tail eviction
(worst priority, newest first) for load shedding.  Everything is
deterministic: no RNG, iteration orders fixed by the heap key.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Dict, Iterator, List, Optional, Tuple

from ..errors import ConfigurationError
from .request import ServiceRequest


class BoundedPriorityQueue:
    """Priority FIFO with an optional capacity bound.

    ``capacity=None`` means unbounded (the unprotected baseline).  The
    queue never drops silently: :meth:`push` refuses when full and the
    caller decides whether to reject the newcomer or evict a queued
    victim via :meth:`evict_tail`.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity < 1:
            raise ConfigurationError("capacity must be >= 1 (or None for unbounded)")
        self.capacity = capacity
        self._seq = itertools.count(1)
        self._heap: List[Tuple[int, int, ServiceRequest]] = []
        self._removed: set = set()
        self._live = 0
        self._work_mi = 0.0
        self._tenant_depth: Dict[str, int] = {}

    def __len__(self) -> int:
        return self._live

    @property
    def full(self) -> bool:
        """True when the queue is at capacity."""
        return self.capacity is not None and self._live >= self.capacity

    @property
    def queued_work_mi(self) -> float:
        """Total outstanding work queued, in million instructions."""
        return self._work_mi

    def tenant_depth(self, tenant: str) -> int:
        """Queued requests for one tenant."""
        return self._tenant_depth.get(tenant, 0)

    def push(self, request: ServiceRequest) -> bool:
        """Enqueue; returns False (and changes nothing) when full."""
        if self.full:
            return False
        entry = (request.priority, next(self._seq), request)
        heapq.heappush(self._heap, entry)
        self._live += 1
        self._work_mi += request.task.work_mi
        self._tenant_depth[request.tenant] = self._tenant_depth.get(request.tenant, 0) + 1
        return True

    def _account_removal(self, request: ServiceRequest) -> None:
        self._live -= 1
        self._work_mi -= request.task.work_mi
        depth = self._tenant_depth.get(request.tenant, 0) - 1
        if depth <= 0:
            self._tenant_depth.pop(request.tenant, None)
        else:
            self._tenant_depth[request.tenant] = depth

    def pop(self) -> Optional[ServiceRequest]:
        """Dequeue the most urgent live request (None when empty)."""
        while self._heap:
            _, seq, request = heapq.heappop(self._heap)
            if seq in self._removed:
                self._removed.discard(seq)
                continue
            self._account_removal(request)
            return request
        return None

    def evict_tail(self) -> Optional[ServiceRequest]:
        """Remove and return the least urgent, newest queued request.

        This is the shedding victim order: shedding hits the lowest
        priority class first and, within a class, the request that has
        waited least (it has sunk the least standing time).
        """
        victim_index = -1
        victim_key: Optional[Tuple[int, int]] = None
        for index, (priority, seq, _request) in enumerate(self._heap):
            if seq in self._removed:
                continue
            key = (priority, seq)
            if victim_key is None or key > victim_key:
                victim_key = key
                victim_index = index
        if victim_key is None:
            return None
        request = self._heap[victim_index][2]
        self._removed.add(victim_key[1])
        self._account_removal(request)
        self._compact()
        return request

    def remove(self, request: ServiceRequest) -> bool:
        """Remove a specific queued request (e.g. its deadline lapsed)."""
        for priority, seq, queued in self._heap:
            if seq not in self._removed and queued is request:
                self._removed.add(seq)
                self._account_removal(request)
                self._compact()
                return True
        return False

    def _compact(self) -> None:
        # Lazy deletion keeps pop O(log n); rebuild when tombstones win.
        if len(self._removed) > 16 and len(self._removed) > self._live:
            self._heap = [
                entry for entry in self._heap if entry[1] not in self._removed
            ]
            heapq.heapify(self._heap)
            self._removed.clear()

    def items(self) -> Iterator[ServiceRequest]:
        """Live queued requests in urgency order (allocation-free-ish)."""
        for priority, seq, request in sorted(self._heap):
            if seq not in self._removed:
                yield request
