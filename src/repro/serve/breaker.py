"""Per-worker circuit breakers.

A breaker watches one worker's recent outcomes through a sliding
window.  Too many failures — or a hard signal like a lease expiry —
*trips* it OPEN: the worker stops receiving assignments, so a flaky or
silently-dead member cannot keep eating tasks that will only come back
as handover drops.  After a backoff-governed cooldown the breaker goes
HALF_OPEN and admits a single probe; a probe success closes the
breaker, a probe failure re-opens it with the next (longer) cooldown
from the same :class:`~repro.faults.recovery.BackoffPolicy` schedule.

The breaker itself is pure (clock and RNG injected), so the state
machine is unit-testable without a world; :class:`CircuitBreakerBoard`
owns one breaker per worker and wires the metrics/event plumbing.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Callable, Deque, Dict, List, Optional

from ..errors import ConfigurationError
from ..faults.recovery import BackoffPolicy
from ..sim.rng import SeededRng
from ..sim.world import World


class BreakerState(enum.Enum):
    """Circuit breaker states."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"


class CircuitBreaker:
    """Sliding-window failure-rate breaker for one worker.

    ``allows()`` is the dispatch gate; it may promote OPEN to HALF_OPEN
    once the cooldown has elapsed (a time-driven, deterministic
    transition).  The caller reports actual dispatches via
    :meth:`note_dispatch` so HALF_OPEN admits exactly one probe at a
    time, and reports outcomes via :meth:`record_success` /
    :meth:`record_failure`.
    """

    def __init__(
        self,
        name: str,
        clock: Callable[[], float],
        rng: Optional[SeededRng] = None,
        window: int = 8,
        failure_threshold: float = 0.5,
        min_samples: int = 4,
        backoff: Optional[BackoffPolicy] = None,
    ) -> None:
        if window < 1:
            raise ConfigurationError("window must be >= 1")
        if not 0.0 < failure_threshold <= 1.0:
            raise ConfigurationError("failure_threshold must be in (0, 1]")
        if min_samples < 1:
            raise ConfigurationError("min_samples must be >= 1")
        self.name = name
        self.clock = clock
        self.rng = rng
        self.window = window
        self.failure_threshold = failure_threshold
        self.min_samples = min_samples
        # Unbounded retries: a breaker never gives up on a worker for
        # good, it just waits longer (up to max_delay_s) between probes.
        self.backoff = (
            backoff
            if backoff is not None
            else BackoffPolicy(
                base_delay_s=2.0, multiplier=2.0, max_delay_s=30.0,
                jitter_fraction=0.1, max_retries=1_000_000,
            )
        )
        self.state = BreakerState.CLOSED
        self.trips = 0
        self.last_trip_reason: Optional[str] = None
        self._outcomes: Deque[bool] = deque(maxlen=window)
        self._trip_streak = 0  # consecutive trips without a close
        self._reopen_at = 0.0
        self._probe_inflight = False

    # -- gate ----------------------------------------------------------------

    def allows(self) -> bool:
        """Whether the worker may receive an assignment right now."""
        if self.state is BreakerState.OPEN and self.clock() >= self._reopen_at:
            self.state = BreakerState.HALF_OPEN
            self._probe_inflight = False
        if self.state is BreakerState.CLOSED:
            return True
        if self.state is BreakerState.HALF_OPEN:
            return not self._probe_inflight
        return False

    def note_dispatch(self) -> None:
        """Record that an assignment actually went to this worker."""
        if self.state is BreakerState.HALF_OPEN:
            self._probe_inflight = True

    # -- outcomes ------------------------------------------------------------

    def record_success(self) -> None:
        """Feed one successful completion on this worker."""
        if self.state is BreakerState.HALF_OPEN:
            self._close()
            return
        self._outcomes.append(True)

    def record_failure(self) -> None:
        """Feed one failed outcome attributable to this worker."""
        if self.state is BreakerState.HALF_OPEN:
            self.trip("probe_failed")
            return
        if self.state is BreakerState.OPEN:
            return
        self._outcomes.append(False)
        if len(self._outcomes) < self.min_samples:
            return
        failures = sum(1 for ok in self._outcomes if not ok)
        if failures / len(self._outcomes) >= self.failure_threshold:
            self.trip("failure_rate")

    def release_probe(self) -> None:
        """Discard an in-flight HALF_OPEN probe whose outcome was inconclusive.

        A probe that was cancelled (e.g. it lost a speculation race)
        proves nothing about the worker either way; without releasing it
        the breaker would wait forever for a verdict that will never
        come, silently blocking every future dispatch.
        """
        if self.state is BreakerState.HALF_OPEN:
            self._probe_inflight = False

    def trip(self, reason: str) -> None:
        """Force the breaker OPEN (e.g. the worker's lease expired)."""
        cooldown = self.backoff.delay_for(
            min(self._trip_streak, self.backoff.max_retries), self.rng
        )
        self._trip_streak += 1
        self.trips += 1
        self.last_trip_reason = reason
        self.state = BreakerState.OPEN
        self._reopen_at = self.clock() + cooldown
        self._probe_inflight = False
        self._outcomes.clear()

    def _close(self) -> None:
        self.state = BreakerState.CLOSED
        self._trip_streak = 0
        self._probe_inflight = False
        self._outcomes.clear()

    @property
    def cooldown_remaining_s(self) -> float:
        """Seconds until an OPEN breaker will admit a probe (0 otherwise)."""
        if self.state is not BreakerState.OPEN:
            return 0.0
        return max(0.0, self._reopen_at - self.clock())


class CircuitBreakerBoard:
    """One breaker per worker, created lazily, with telemetry wiring.

    Each worker's breaker draws its cooldown jitter from its own RNG
    substream (``serve/<name>/breaker/<worker>``), so adding a worker
    never perturbs another worker's probe schedule.
    """

    def __init__(
        self,
        world: World,
        name: str,
        window: int = 8,
        failure_threshold: float = 0.5,
        min_samples: int = 4,
        backoff: Optional[BackoffPolicy] = None,
    ) -> None:
        self.world = world
        self.name = name
        self.window = window
        self.failure_threshold = failure_threshold
        self.min_samples = min_samples
        self.backoff = backoff
        self._breakers: Dict[str, CircuitBreaker] = {}

    def breaker_for(self, worker_id: str) -> CircuitBreaker:
        """The worker's breaker, created CLOSED on first reference."""
        breaker = self._breakers.get(worker_id)
        if breaker is None:
            breaker = CircuitBreaker(
                name=worker_id,
                clock=lambda: self.world.now,
                rng=self.world.rng.fork(f"serve/{self.name}/breaker/{worker_id}"),
                window=self.window,
                failure_threshold=self.failure_threshold,
                min_samples=self.min_samples,
                backoff=self.backoff,
            )
            self._breakers[worker_id] = breaker
        return breaker

    def allows(self, worker_id: str) -> bool:
        """Dispatch gate: may this worker receive work right now?"""
        breaker = self._breakers.get(worker_id)
        return breaker.allows() if breaker is not None else True

    def note_dispatch(self, worker_id: str) -> None:
        """Report an assignment to the worker's breaker."""
        breaker = self._breakers.get(worker_id)
        if breaker is not None:
            breaker.note_dispatch()

    def record_outcome(self, worker_id: str, ok: bool) -> None:
        """Feed one attributed outcome to the worker's breaker."""
        breaker = self.breaker_for(worker_id)
        before = breaker.state
        if ok:
            breaker.record_success()
        else:
            breaker.record_failure()
        self._note_transition(worker_id, breaker, before)

    def trip(self, worker_id: str, reason: str) -> None:
        """Hard-trip a worker's breaker (lease expiry, operator action)."""
        breaker = self.breaker_for(worker_id)
        before = breaker.state
        breaker.trip(reason)
        self._note_transition(worker_id, breaker, before, reason=reason)

    def _note_transition(
        self,
        worker_id: str,
        breaker: CircuitBreaker,
        before: BreakerState,
        reason: Optional[str] = None,
    ) -> None:
        if breaker.state is before:
            return
        if breaker.state is BreakerState.OPEN:
            self.world.metrics.increment(f"serve/{self.name}/breaker_trips")
            events = self.world.events
            if events is not None:
                events.emit(
                    "serve", "breaker_tripped", severity="warning",
                    gateway=self.name, worker=worker_id,
                    reason=reason or breaker.last_trip_reason,
                    cooldown_s=breaker.cooldown_remaining_s,
                )
        self.world.metrics.set_gauge(
            f"serve/{self.name}/breakers_open", float(len(self.open_workers()))
        )

    def open_workers(self) -> List[str]:
        """Workers currently blocked (OPEN and still cooling down), sorted."""
        return sorted(
            worker_id
            for worker_id, breaker in self._breakers.items()
            if breaker.state is BreakerState.OPEN
            and breaker.cooldown_remaining_s > 0.0
        )

    def total_trips(self) -> int:
        """Trips across all breakers since construction."""
        return sum(breaker.trips for breaker in self._breakers.values())
