"""Seeded open-loop workload generation.

An *open-loop* generator submits requests on its own arrival clock,
never waiting for completions — the regime in which an unprotected
server congestion-collapses instead of degrading gracefully (offered
load does not slow down just because the server is drowning).  Three
arrival processes cover the shapes the serving stack must survive:

* :class:`PoissonArrivals` — memoryless steady-state traffic;
* :class:`BurstyArrivals` — a two-state modulated Poisson process
  (quiet/burst phases with separate rates), the flash-crowd shape;
* :class:`DiurnalArrivals` — a sinusoidally rate-modulated day/night
  cycle.

Every draw flows through a per-tenant :class:`~repro.sim.rng.SeededRng`
substream (``serve/workload/<tenant>``), so the full arrival sequence —
times, sizes, tenants — is a pure function of ``(seed, spec)`` and two
runs with the same seed offer byte-identical load.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Protocol, Tuple

from ..dag.templates import GraphTemplate
from ..errors import ConfigurationError
from ..sim.rng import SeededRng
from ..sim.world import World
from .gateway import ServiceGateway
from .request import ServiceRequest


class ArrivalProcess(Protocol):
    """Draws successive inter-arrival gaps for one tenant's stream."""

    def next_gap_s(self, rng: SeededRng, now: float) -> float:
        """Seconds until the next arrival after ``now``."""
        ...


class PoissonArrivals:
    """Homogeneous Poisson arrivals at ``rate_per_s``."""

    def __init__(self, rate_per_s: float) -> None:
        if rate_per_s <= 0:
            raise ConfigurationError("rate_per_s must be positive")
        self.rate_per_s = rate_per_s

    def next_gap_s(self, rng: SeededRng, now: float) -> float:
        return rng.exponential(self.rate_per_s)


class BurstyArrivals:
    """Two-state modulated Poisson process (quiet phase / burst phase).

    The stream alternates between a quiet phase at ``base_rate_per_s``
    and a burst phase at ``burst_rate_per_s``; phase durations are
    exponential with the given means.  Phase transitions are driven by
    the same substream as the gaps, so the whole trajectory is seeded.
    """

    def __init__(
        self,
        base_rate_per_s: float,
        burst_rate_per_s: float,
        mean_quiet_s: float = 20.0,
        mean_burst_s: float = 5.0,
    ) -> None:
        if base_rate_per_s <= 0 or burst_rate_per_s <= 0:
            raise ConfigurationError("arrival rates must be positive")
        if mean_quiet_s <= 0 or mean_burst_s <= 0:
            raise ConfigurationError("phase durations must be positive")
        self.base_rate_per_s = base_rate_per_s
        self.burst_rate_per_s = burst_rate_per_s
        self.mean_quiet_s = mean_quiet_s
        self.mean_burst_s = mean_burst_s
        self._in_burst = False
        self._phase_ends_at: Optional[float] = None

    def next_gap_s(self, rng: SeededRng, now: float) -> float:
        if self._phase_ends_at is None:
            self._phase_ends_at = now + rng.exponential(1.0 / self.mean_quiet_s)
        while now >= self._phase_ends_at:
            self._in_burst = not self._in_burst
            mean = self.mean_burst_s if self._in_burst else self.mean_quiet_s
            self._phase_ends_at += rng.exponential(1.0 / mean)
        rate = self.burst_rate_per_s if self._in_burst else self.base_rate_per_s
        return rng.exponential(rate)


class DiurnalArrivals:
    """Sinusoidally modulated arrivals: ``rate(t)`` swings ±amplitude.

    ``rate(t) = mean_rate_per_s * (1 + amplitude * sin(2πt/period))``,
    approximated by drawing each gap at the instantaneous rate — fine
    for periods much longer than a typical gap, which is the diurnal
    regime by definition.
    """

    def __init__(
        self,
        mean_rate_per_s: float,
        amplitude: float = 0.5,
        period_s: float = 240.0,
        phase_s: float = 0.0,
    ) -> None:
        if mean_rate_per_s <= 0:
            raise ConfigurationError("mean_rate_per_s must be positive")
        if not 0.0 <= amplitude < 1.0:
            raise ConfigurationError("amplitude must be in [0, 1)")
        if period_s <= 0:
            raise ConfigurationError("period_s must be positive")
        self.mean_rate_per_s = mean_rate_per_s
        self.amplitude = amplitude
        self.period_s = period_s
        self.phase_s = phase_s

    def rate_at(self, now: float) -> float:
        """Instantaneous arrival rate at simulation time ``now``."""
        swing = math.sin(2.0 * math.pi * (now + self.phase_s) / self.period_s)
        return self.mean_rate_per_s * (1.0 + self.amplitude * swing)

    def next_gap_s(self, rng: SeededRng, now: float) -> float:
        return rng.exponential(max(self.rate_at(now), 1e-9))


@dataclass(frozen=True)
class TenantSpec:
    """One tenant's client population and task shape.

    ``clients`` scales the arrival process (each client contributes the
    process rate independently is approximated by multiplying the drawn
    gap down by the population), letting per-tenant populations reach
    realistic sizes without one event per client.

    A tenant with a ``graph`` template emits DAG jobs instead of scalar
    requests: each arrival instantiates the template through the same
    per-tenant substream and submits it via the gateway's attached
    :class:`~repro.dag.scheduler.DagScheduler` — arrival times and stage
    work draws stay a pure function of ``(seed, spec)``.
    """

    name: str
    arrivals: ArrivalProcess
    work_mi_range: Tuple[float, float] = (200.0, 200.0)
    deadline_s: Optional[float] = 10.0
    priority: int = 1
    input_bytes: int = 10_000
    output_bytes: int = 2_000
    clients: int = 1
    graph: Optional[GraphTemplate] = None

    def __post_init__(self) -> None:
        low, high = self.work_mi_range
        if low <= 0 or high < low:
            raise ConfigurationError("work_mi_range must satisfy 0 < low <= high")
        if self.priority < 0:
            raise ConfigurationError("priority must be non-negative")
        if self.clients < 1:
            raise ConfigurationError("clients must be >= 1")


@dataclass
class TenantLoad:
    """Per-tenant offered-load accounting."""

    offered: int = 0
    offered_work_mi: float = 0.0


class WorkloadGenerator:
    """Drives seeded open-loop arrivals from tenant specs into a gateway.

    Each tenant owns an independent RNG substream and an independent
    arrival chain of engine events, so adding a tenant never perturbs
    another tenant's arrival times — the substream discipline the rest
    of the framework follows.
    """

    def __init__(
        self,
        world: World,
        gateway: ServiceGateway,
        tenants: List[TenantSpec],
        horizon_s: float,
    ) -> None:
        if not tenants:
            raise ConfigurationError("at least one tenant required")
        if len({spec.name for spec in tenants}) != len(tenants):
            raise ConfigurationError("tenant names must be unique")
        if horizon_s <= 0:
            raise ConfigurationError("horizon_s must be positive")
        self.world = world
        self.gateway = gateway
        self.tenants = list(tenants)
        self.horizon_s = horizon_s
        self.loads: Dict[str, TenantLoad] = {spec.name: TenantLoad() for spec in tenants}
        self._rngs: Dict[str, SeededRng] = {
            spec.name: world.rng.fork(f"serve/workload/{spec.name}") for spec in tenants
        }
        self._started = False
        self._started_at = 0.0

    def start(self) -> None:
        """Begin every tenant's arrival chain (idempotent)."""
        if self._started:
            return
        self._started = True
        self._started_at = self.world.now
        for spec in self.tenants:
            self._schedule_next(spec)

    def _schedule_next(self, spec: TenantSpec) -> None:
        rng = self._rngs[spec.name]
        gap = spec.arrivals.next_gap_s(rng, self.world.now) / spec.clients
        arrival_at = self.world.now + gap
        if arrival_at - self._started_at > self.horizon_s:
            return
        self.world.engine.schedule_at(
            arrival_at, lambda: self._arrive(spec), label="serve-arrival"
        )

    def _arrive(self, spec: TenantSpec) -> None:
        rng = self._rngs[spec.name]
        if spec.graph is not None:
            graph = spec.graph.instantiate(rng, submitter=spec.name)
            load = self.loads[spec.name]
            load.offered += 1
            load.offered_work_mi += graph.total_work_mi
            self.gateway.submit_graph(graph, tenant=spec.name)
            self._schedule_next(spec)
            return
        low, high = spec.work_mi_range
        work_mi = low if high == low else rng.uniform(low, high)
        request = ServiceRequest.build(
            work_mi=work_mi,
            tenant=spec.name,
            priority=spec.priority,
            deadline_s=spec.deadline_s,
            input_bytes=spec.input_bytes,
            output_bytes=spec.output_bytes,
        )
        load = self.loads[spec.name]
        load.offered += 1
        load.offered_work_mi += work_mi
        self.gateway.submit(request)
        self._schedule_next(spec)

    def total_offered(self) -> int:
        """Requests offered so far across every tenant."""
        return sum(load.offered for load in self.loads.values())


# Re-exported for convenience alongside the processes.
__all__ = [
    "ArrivalProcess",
    "PoissonArrivals",
    "BurstyArrivals",
    "DiurnalArrivals",
    "TenantSpec",
    "TenantLoad",
    "WorkloadGenerator",
]
