"""Scenario campaign orchestration, artifact collection and reporting.

The measurement harness every scale/dependability claim runs through:

* :mod:`.spec` — declarative :class:`CampaignSpec` /
  :class:`ScenarioMatrix` (architecture x workload x fault profile x
  mobility x seeds, with per-cell overrides) expanding into seeded
  :class:`RunSpec` cells;
* :mod:`.scenarios` — maps each cell onto a live world reusing the
  chaos/serve/dag substrates, with the invariant suite attached;
* :mod:`.orchestrator` — :class:`CampaignOrchestrator` executing cells
  on parallel worker processes, each emitting a content-addressed
  artifact bundle (obs ``report.json``, trace/event JSONL, invariant
  verdicts, metric vector);
* :mod:`.baseline` — :class:`BaselineStore` of blessed metric vectors,
  including ingestion of the historical E-series benchmark results;
* :mod:`.report` — :class:`Reporter` comparing campaigns to baselines
  with per-metric tolerance bands and direction-aware regression
  flagging, rendering ``report.json`` + ``report.md``.

CLI: ``python -m repro.campaign run|baseline|report|ingest ...``;
CI gate: ``python -m repro.campaign.smoke``.

Determinism contract: per-run artifacts (everything except wall-clock
envelopes) are byte-identical across worker counts and reruns, because
each run derives every random choice from its spec alone.
"""

from __future__ import annotations

from .baseline import BaselineStore, load_baseline_file
from .orchestrator import (
    DETERMINISTIC_ARTIFACTS,
    CampaignOrchestrator,
    CampaignRun,
    RunOutcome,
    execute_run,
    load_manifest,
)
from .report import (
    CampaignReport,
    Finding,
    Reporter,
    classify,
    direction_for,
    strip_volatile,
)
from .scenarios import (
    FAULT_PROFILE_TABLE,
    CampaignScenario,
    build_scenario,
    fault_profile_for,
)
from .spec import (
    ARCHITECTURES,
    COMPATIBLE_MOBILITY,
    FAULT_PROFILES,
    MOBILITY_MODELS,
    WORKLOADS,
    CampaignSpec,
    CellOverride,
    RunSpec,
    ScenarioMatrix,
)

__all__ = [
    "ARCHITECTURES",
    "COMPATIBLE_MOBILITY",
    "DETERMINISTIC_ARTIFACTS",
    "FAULT_PROFILES",
    "FAULT_PROFILE_TABLE",
    "MOBILITY_MODELS",
    "WORKLOADS",
    "BaselineStore",
    "CampaignOrchestrator",
    "CampaignReport",
    "CampaignRun",
    "CampaignScenario",
    "CampaignSpec",
    "CellOverride",
    "Finding",
    "Reporter",
    "RunOutcome",
    "RunSpec",
    "ScenarioMatrix",
    "build_scenario",
    "classify",
    "direction_for",
    "execute_run",
    "fault_profile_for",
    "load_baseline_file",
    "load_manifest",
    "strip_volatile",
]
