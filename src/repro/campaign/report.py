"""Campaign reporting: baseline comparison and regression flagging.

The :class:`Reporter` compares a campaign's per-cell metric vectors
against a stored baseline using :func:`repro.sim.metrics.diff_metrics`
(the same tolerance-band primitive `MetricsRegistry.diff` exposes), then
classifies every out-of-band drift by *direction*: a goodput drop is a
regression, a goodput gain an improvement; a latency rise is a
regression; a metric with no better direction regresses on any drift.
Metric directions are inferred from the name (``*latency*``,
``*violations*`` etc. are lower-is-better; ``*hit_rate*``, ``*goodput*``
etc. higher-is-better) and can be overridden per metric in the campaign
spec.

The output is a :class:`CampaignReport` that renders both ways:
``to_dict`` -> ``report.json`` (machine-readable, CI-diffable) and
``to_markdown`` -> ``report.md`` (human-readable).  Wall-clock lives
only under the ``timing`` key; :func:`strip_volatile` removes it so
byte-equality checks across worker counts compare pure results.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence

from ..sim.metrics import MetricDelta, ToleranceBand, ToleranceSpec, diff_metrics
from .orchestrator import CampaignRun
from .spec import CampaignSpec

#: Name fragments implying "smaller is better".
_LOWER_BETTER = (
    "latency",
    "violations",
    "failed",
    "misses",
    "degraded",
    "reexecuted",
    "wall_clock",
)
#: Name fragments implying "bigger is better".
_HIGHER_BETTER = (
    "goodput",
    "hit_rate",
    "completion_rate",
    "completed",
    "checkpoint_writes",
)

#: Per-metric statuses a comparison can produce.
STATUSES = ("ok", "regression", "improvement", "new", "missing", "nan")


def direction_for(metric: str, overrides: Optional[Mapping[str, str]] = None) -> str:
    """``"higher"`` / ``"lower"`` / ``"both"``: which drift is *good*."""
    if overrides and metric in overrides:
        return overrides[metric]
    lowered = metric.lower()
    if any(fragment in lowered for fragment in _LOWER_BETTER):
        return "lower"
    if any(fragment in lowered for fragment in _HIGHER_BETTER):
        return "higher"
    return "both"


def classify(delta: MetricDelta, direction: str) -> str:
    """Fold a tolerance verdict and a direction into a report status."""
    if delta.classification == "within":
        return "ok"
    if delta.classification == "missing_baseline":
        return "new"
    if delta.classification == "missing_current":
        return "missing"
    if delta.classification == "nan":
        return "nan"
    assert delta.classification == "outside" and delta.delta is not None
    if direction == "higher":
        return "regression" if delta.delta < 0 else "improvement"
    if direction == "lower":
        return "regression" if delta.delta > 0 else "improvement"
    return "regression"


@dataclass(frozen=True)
class Finding:
    """One flagged metric in one cell."""

    cell: str
    metric: str
    status: str
    baseline: Optional[float]
    current: Optional[float]
    relative: Optional[float]

    def as_dict(self) -> Dict[str, Any]:
        return {
            "cell": self.cell,
            "metric": self.metric,
            "status": self.status,
            "baseline": self.baseline,
            "current": self.current,
            "relative": self.relative,
        }

    def describe(self) -> str:
        rel = f" ({self.relative:+.1%})" if self.relative is not None else ""
        return (
            f"[{self.status}] {self.cell} :: {self.metric}: "
            f"{self.baseline} -> {self.current}{rel}"
        )


@dataclass
class CampaignReport:
    """The comparison verdict for one executed campaign."""

    campaign: str
    baseline_available: bool
    cells: Dict[str, Dict[str, Any]]
    regressions: List[Finding]
    improvements: List[Finding]
    new_metrics: List[Finding]
    violations: List[str]
    runs: int
    timing: Dict[str, Any]

    @property
    def ok(self) -> bool:
        """Green iff nothing regressed and no invariant was violated."""
        return not self.regressions and not self.violations

    def to_dict(self) -> Dict[str, Any]:
        return {
            "campaign": self.campaign,
            "ok": self.ok,
            "baseline_available": self.baseline_available,
            "summary": {
                "runs": self.runs,
                "cells": len(self.cells),
                "regressions": len(self.regressions),
                "improvements": len(self.improvements),
                "new_metrics": len(self.new_metrics),
                "invariant_violations": len(self.violations),
            },
            "cells": self.cells,
            "regressions": [f.as_dict() for f in self.regressions],
            "improvements": [f.as_dict() for f in self.improvements],
            "new_metrics": [f.as_dict() for f in self.new_metrics],
            "invariant_violations": self.violations,
            "timing": self.timing,
        }

    def to_markdown(self) -> str:
        lines: List[str] = []
        verdict = "PASS" if self.ok else "FAIL"
        lines.append(f"# Campaign report — {self.campaign}: {verdict}")
        lines.append("")
        lines.append(
            f"{self.runs} runs over {len(self.cells)} cells — "
            f"{len(self.regressions)} regression(s), "
            f"{len(self.improvements)} improvement(s), "
            f"{len(self.violations)} invariant violation(s)."
        )
        if not self.baseline_available:
            lines.append("")
            lines.append(
                "_No baseline available: drift checks skipped; verdict "
                "covers invariant violations only._"
            )
        for title, findings in (
            ("Regressions", self.regressions),
            ("Improvements", self.improvements),
        ):
            if not findings:
                continue
            lines.append("")
            lines.append(f"## {title}")
            lines.append("")
            lines.append("| cell | metric | baseline | current | drift |")
            lines.append("|---|---|---:|---:|---:|")
            for finding in findings:
                rel = (
                    f"{finding.relative:+.1%}"
                    if finding.relative is not None
                    else "n/a"
                )
                lines.append(
                    f"| {finding.cell} | {finding.metric} | "
                    f"{finding.baseline} | {finding.current} | {rel} |"
                )
        if self.violations:
            lines.append("")
            lines.append("## Invariant violations")
            lines.append("")
            for violation in self.violations:
                lines.append(f"- {violation}")
        lines.append("")
        lines.append("## Cells")
        lines.append("")
        lines.append("| cell | metrics | regressions | status |")
        lines.append("|---|---:|---:|---|")
        for cell in sorted(self.cells):
            entry = self.cells[cell]
            lines.append(
                f"| {cell} | {len(entry['metrics'])} | "
                f"{entry['regressions']} | {entry['status']} |"
            )
        lines.append("")
        return "\n".join(lines)

    def write(self, out_dir: str) -> Dict[str, str]:
        """Write ``report.json`` and ``report.md``; returns their paths."""
        os.makedirs(out_dir, exist_ok=True)
        json_path = os.path.join(out_dir, "report.json")
        with open(json_path, "w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        md_path = os.path.join(out_dir, "report.md")
        with open(md_path, "w", encoding="utf-8") as handle:
            handle.write(self.to_markdown())
        return {"json": json_path, "markdown": md_path}


def strip_volatile(report: Mapping[str, Any]) -> Dict[str, Any]:
    """A copy of a report dict without host-dependent (timing) fields."""
    return {key: value for key, value in report.items() if key != "timing"}


class Reporter:
    """Compares campaign results against baselines with tolerance bands."""

    def __init__(
        self,
        tolerances: Optional[Mapping[str, ToleranceSpec]] = None,
        default_tolerance: Optional[ToleranceSpec] = None,
        directions: Optional[Mapping[str, str]] = None,
    ) -> None:
        self.tolerances = dict(tolerances) if tolerances else {}
        self.default_tolerance = (
            default_tolerance
            if default_tolerance is not None
            else ToleranceBand(rel_tol=0.05, abs_tol=1e-9)
        )
        self.directions = dict(directions) if directions else {}

    @classmethod
    def for_spec(cls, spec: CampaignSpec) -> "Reporter":
        """A reporter configured from a campaign spec's tolerance section."""
        return cls(
            tolerances=spec.tolerances,
            default_tolerance=spec.default_tolerance,
            directions=spec.directions,
        )

    def compare(
        self,
        campaign_run: CampaignRun,
        baseline: Optional[Mapping[str, Any]],
    ) -> CampaignReport:
        """Judge one executed campaign against a baseline document.

        ``baseline`` is the document a :class:`~.baseline.BaselineStore`
        stores (``{"cells": {...}, ...}``) or None, in which case every
        metric is "new" and only invariant violations can fail the run.
        """
        baseline_cells: Dict[str, Dict[str, float]] = {}
        if baseline is not None:
            baseline_cells = {
                cell: {name: float(value) for name, value in vector.items()}
                for cell, vector in dict(baseline.get("cells", {})).items()
            }
        current_cells = campaign_run.cell_vectors()

        cells: Dict[str, Dict[str, Any]] = {}
        regressions: List[Finding] = []
        improvements: List[Finding] = []
        new_metrics: List[Finding] = []
        covered = set(current_cells) | set(baseline_cells)
        for cell in sorted(covered):
            current = current_cells.get(cell, {})
            reference = baseline_cells.get(cell, {})
            deltas = diff_metrics(
                current,
                reference,
                tolerances=self.tolerances,
                default=self.default_tolerance,
            )
            cell_regressions = 0
            rendered: Dict[str, Any] = {}
            for name, delta in deltas.items():
                status = classify(delta, direction_for(name, self.directions))
                if baseline is None:
                    status = "new" if status != "missing" else status
                finding = Finding(
                    cell=cell,
                    metric=name,
                    status=status,
                    baseline=delta.baseline,
                    current=delta.current,
                    relative=delta.relative,
                )
                if status in ("regression", "missing", "nan"):
                    regressions.append(finding)
                    cell_regressions += 1
                elif status == "improvement":
                    improvements.append(finding)
                elif status == "new":
                    new_metrics.append(finding)
                rendered[name] = {
                    "baseline": delta.baseline,
                    "current": delta.current,
                    "delta": delta.delta,
                    "relative": delta.relative,
                    "status": status,
                }
            cells[cell] = {
                "metrics": rendered,
                "regressions": cell_regressions,
                "status": "regression" if cell_regressions else "ok",
            }

        return CampaignReport(
            campaign=campaign_run.spec.name,
            baseline_available=baseline is not None,
            cells=cells,
            regressions=regressions,
            improvements=improvements,
            new_metrics=new_metrics,
            violations=campaign_run.violations,
            runs=len(campaign_run.outcomes),
            timing={
                "wall_clock_s": campaign_run.wall_clock_s,
                "workers": campaign_run.workers,
                "per_run_wall_clock_s": {
                    outcome.key: outcome.wall_clock_s
                    for outcome in campaign_run.outcomes
                },
            },
        )


__all__: Sequence[str] = (
    "STATUSES",
    "CampaignReport",
    "Finding",
    "Reporter",
    "classify",
    "direction_for",
    "strip_volatile",
)
