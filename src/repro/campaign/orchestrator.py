"""Campaign execution: seeded runs, worker pools, artifact bundles.

:func:`execute_run` is the unit of work — one :class:`RunSpec` in, one
content-addressed artifact bundle out.  The bundle directory is named
by the sha256 digest of the spec's canonical JSON, so the same cell
always lands in the same place and two campaigns sharing cells share
storage naturally.  Each bundle holds:

* ``report.json``  — the :func:`repro.obs.exporters.json_report`
  document (metrics snapshot, trace/event statistics, serving and DAG
  conservation ledgers) with the run spec as ``meta``;
* ``trace.jsonl`` / ``events.jsonl`` — the causal spans and structured
  events of the run;
* ``invariants.json`` — per-invariant verdicts plus every violation;
* ``vector.json`` — the run's scalar metric vector, the artifact
  baselines and regression checks compare;
* ``run.json`` — volatile envelope (wall clock, artifact list); the
  only file allowed to differ between byte-identical reruns.

The :class:`CampaignOrchestrator` expands a :class:`CampaignSpec`,
executes the runs serially or on a ``multiprocessing`` pool (spawn
context: no inherited interpreter state, so worker count can never leak
into results), and writes a campaign ``manifest.json``.  Determinism
contract: per-run artifacts other than ``run.json`` are byte-identical
whatever the worker count, because every run derives all randomness
from its spec and resets the process-global id counters first.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Sequence, Tuple

from ..chaos.generator import generate_plan
from ..chaos.invariants import InvariantSuite
from ..core.tasks import reset_task_ids
from ..dag.graph import reset_graph_ids
from ..errors import CampaignError
from ..faults.backhaul import BackhaulFaultDriver
from ..faults.injector import FaultInjector
from ..mobility.vehicle import reset_vehicle_ids
from ..net.messages import reset_message_ids
from ..obs.exporters import write_json_report
from .scenarios import backhaul_fault_plan, build_scenario, fault_profile_for
from .spec import CampaignSpec, RunSpec

#: Bundle files whose bytes must not depend on worker count or host.
DETERMINISTIC_ARTIFACTS = (
    "report.json",
    "trace.jsonl",
    "events.jsonl",
    "invariants.json",
    "vector.json",
)


def _reset_global_ids() -> None:
    """Rewind every process-global id counter for cross-run replay."""
    reset_task_ids()
    reset_vehicle_ids()
    reset_message_ids()
    reset_graph_ids()


def _write_json(path: str, payload: Mapping[str, Any]) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


@dataclass
class RunOutcome:
    """The summary one worker hands back for one executed cell."""

    key: str
    cell: str
    digest: str
    spec: Dict[str, Any]
    vector: Dict[str, float]
    violations: List[str]
    faults_injected: int
    checks_run: int
    artifact_dir: str
    wall_clock_s: float

    @property
    def ok(self) -> bool:
        return not self.violations

    def as_dict(self) -> Dict[str, Any]:
        return {
            "key": self.key,
            "cell": self.cell,
            "digest": self.digest,
            "spec": self.spec,
            "vector": self.vector,
            "violations": self.violations,
            "faults_injected": self.faults_injected,
            "checks_run": self.checks_run,
            "artifact_dir": self.artifact_dir,
            "wall_clock_s": self.wall_clock_s,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunOutcome":
        return cls(
            key=data["key"],
            cell=data["cell"],
            digest=data["digest"],
            spec=dict(data["spec"]),
            vector={k: float(v) for k, v in dict(data["vector"]).items()},
            violations=list(data["violations"]),
            faults_injected=int(data["faults_injected"]),
            checks_run=int(data["checks_run"]),
            artifact_dir=data["artifact_dir"],
            wall_clock_s=float(data["wall_clock_s"]),
        )


def execute_run(spec: RunSpec, out_dir: str) -> RunOutcome:
    """Execute one campaign cell and write its artifact bundle.

    Fully self-contained and deterministic: global id counters are
    rewound, the world seed derives from the spec, and observability is
    attached *after* construction (the obs contract guarantees it never
    perturbs seeded metrics).
    """
    started = time.perf_counter()
    _reset_global_ids()
    scenario = build_scenario(spec)
    world = scenario.world
    world.enable_observability(trace=True, events=True)

    profile = fault_profile_for(spec.fault_profile)
    injected = 0
    skipped = 0
    if profile is not None:
        plan = generate_plan(
            spec.world_seed, spec.run_length_s, scenario.targets(), profile
        )
        injector = FaultInjector(
            world,
            plan,
            cloud=scenario.cloud,
            channel=scenario.channel,
            infrastructure=scenario.infrastructure,
            node_lookup=scenario.node_lookup,
        )
        injector.arm()
    else:
        injector = None

    backhaul_driver = None
    if spec.fault_profile == "backhaul":
        if scenario.backhaul_link is None:
            raise CampaignError(
                f"fault profile 'backhaul' needs a backhaul link "
                f"(architecture {spec.architecture!r} has none)"
            )
        backhaul_driver = BackhaulFaultDriver(
            world.engine,
            scenario.backhaul_link,
            backhaul_fault_plan(spec.world_seed, spec.run_length_s),
        )
        backhaul_driver.arm()

    suite = InvariantSuite(scenario.invariants, metrics=world.metrics)
    suite.attach(world, spec.check_interval_s)
    world.run_for(spec.run_length_s + spec.drain_s)
    suite.check_now(world.now)
    if injector is not None:
        injected = len(injector.ledger)
        skipped = injector.skipped
    if backhaul_driver is not None:
        injected += len(backhaul_driver.ledger)
        skipped += len(backhaul_driver.skipped)

    vector: Dict[str, float] = {
        "faults/injected": float(injected),
        "faults/skipped": float(skipped),
        "invariants/checks": float(suite.checks_run),
        "invariants/violations": float(len(suite.violations)),
    }
    for source in scenario.vector_sources:
        vector.update(source())

    digest = spec.digest()
    bundle_dir = os.path.join(out_dir, "runs", digest)
    os.makedirs(bundle_dir, exist_ok=True)

    write_json_report(
        os.path.join(bundle_dir, "report.json"),
        metrics=world.metrics,
        tracer=world.tracer,
        events=world.events,
        meta={"run": spec.as_dict(), "key": spec.key, "digest": digest},
        serving=scenario.gateway,
        dag=scenario.dag_scheduler,
    )
    assert world.tracer is not None and world.events is not None
    world.tracer.export_jsonl(os.path.join(bundle_dir, "trace.jsonl"))
    world.events.export_jsonl(os.path.join(bundle_dir, "events.jsonl"))

    verdicts = {
        invariant.name: {
            "violations": sum(
                1 for v in suite.violations if v.invariant == invariant.name
            ),
        }
        for invariant in scenario.invariants
    }
    for verdict in verdicts.values():
        verdict["ok"] = verdict["violations"] == 0
    _write_json(
        os.path.join(bundle_dir, "invariants.json"),
        {
            "checks_run": suite.checks_run,
            "verdicts": verdicts,
            "violations": [v.describe() for v in suite.violations],
        },
    )
    _write_json(
        os.path.join(bundle_dir, "vector.json"),
        {"key": spec.key, "spec": spec.as_dict(), "vector": vector},
    )

    wall_clock_s = time.perf_counter() - started
    outcome = RunOutcome(
        key=spec.key,
        cell=spec.cell,
        digest=digest,
        spec=spec.as_dict(),
        vector=vector,
        violations=[v.describe() for v in suite.violations],
        faults_injected=injected,
        checks_run=suite.checks_run,
        artifact_dir=bundle_dir,
        wall_clock_s=wall_clock_s,
    )
    _write_json(
        os.path.join(bundle_dir, "run.json"),
        {
            "key": spec.key,
            "digest": digest,
            "wall_clock_s": wall_clock_s,
            "artifacts": list(DETERMINISTIC_ARTIFACTS),
        },
    )
    return outcome


def _execute_run_job(job: Tuple[Dict[str, Any], str]) -> Dict[str, Any]:
    """Pool entry point: plain dicts in, plain dicts out (picklable)."""
    spec_data, out_dir = job
    return execute_run(RunSpec.from_dict(spec_data), out_dir).as_dict()


@dataclass
class CampaignRun:
    """One executed campaign: outcomes plus aggregate views."""

    spec: CampaignSpec
    out_dir: str
    outcomes: List[RunOutcome]
    skipped_cells: int
    workers: int
    wall_clock_s: float

    @property
    def violations(self) -> List[str]:
        return [v for outcome in self.outcomes for v in outcome.violations]

    def run_vectors(self) -> Dict[str, Dict[str, float]]:
        """Per-run metric vectors keyed by run key."""
        return {outcome.key: dict(outcome.vector) for outcome in self.outcomes}

    def cell_vectors(self) -> Dict[str, Dict[str, float]]:
        """Per-cell metric vectors: seed-mean of every run in the cell."""
        grouped: Dict[str, List[Dict[str, float]]] = {}
        for outcome in self.outcomes:
            grouped.setdefault(outcome.cell, []).append(outcome.vector)
        cells: Dict[str, Dict[str, float]] = {}
        for cell, vectors in sorted(grouped.items()):
            names = sorted({name for vector in vectors for name in vector})
            cells[cell] = {
                name: sum(vector.get(name, 0.0) for vector in vectors) / len(vectors)
                for name in names
            }
        return cells

    def manifest(self) -> Dict[str, Any]:
        return {
            "campaign": self.spec.name,
            "description": self.spec.description,
            "matrix": self.spec.matrix.as_dict(),
            "runs": [outcome.as_dict() for outcome in self.outcomes],
            "cells": self.cell_vectors(),
            "skipped_incompatible_cells": self.skipped_cells,
            "workers": self.workers,
            "wall_clock_s": self.wall_clock_s,
            "total_violations": len(self.violations),
        }


class CampaignOrchestrator:
    """Expands a campaign spec and executes it on worker processes."""

    def __init__(
        self,
        spec: CampaignSpec,
        out_dir: str,
        workers: int = 1,
    ) -> None:
        if workers < 1:
            raise CampaignError("workers must be >= 1")
        self.spec = spec
        self.out_dir = out_dir
        self.workers = workers

    def execute(self) -> CampaignRun:
        """Run every cell; writes per-run bundles plus ``manifest.json``."""
        started = time.perf_counter()
        runs, skipped = self.spec.expansion()
        os.makedirs(self.out_dir, exist_ok=True)
        jobs = [(spec.as_dict(), self.out_dir) for spec in runs]
        if self.workers == 1 or len(jobs) == 1:
            raw = [_execute_run_job(job) for job in jobs]
        else:
            # Spawn (not fork): workers start from a clean interpreter,
            # so nothing from the parent process can leak into runs.
            context = multiprocessing.get_context("spawn")
            with context.Pool(processes=min(self.workers, len(jobs))) as pool:
                raw = pool.map(_execute_run_job, jobs, chunksize=1)
        outcomes = sorted(
            (RunOutcome.from_dict(data) for data in raw), key=lambda o: o.key
        )
        campaign_run = CampaignRun(
            spec=self.spec,
            out_dir=self.out_dir,
            outcomes=outcomes,
            skipped_cells=skipped,
            workers=self.workers,
            wall_clock_s=time.perf_counter() - started,
        )
        _write_json(
            os.path.join(self.out_dir, "manifest.json"), campaign_run.manifest()
        )
        return campaign_run


def load_manifest(out_dir: str) -> Dict[str, Any]:
    """Read a campaign's ``manifest.json`` back (for re-reporting)."""
    path = os.path.join(out_dir, "manifest.json")
    try:
        with open(path, encoding="utf-8") as handle:
            return json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise CampaignError(f"cannot load manifest {path!r}: {exc}") from exc


__all__: Sequence[str] = (
    "DETERMINISTIC_ARTIFACTS",
    "CampaignOrchestrator",
    "CampaignRun",
    "RunOutcome",
    "execute_run",
    "load_manifest",
)
