"""Declarative campaign specifications.

A :class:`CampaignSpec` names a :class:`ScenarioMatrix` — architecture x
workload x fault profile x mobility model x seed list — plus per-cell
:class:`CellOverride` patches and the tolerance bands the reporter will
hold results to.  :meth:`CampaignSpec.expand` turns the matrix into a
flat list of seeded :class:`RunSpec` cells; everything downstream (the
orchestrator, the artifact store, the baseline keys) is a pure function
of those specs, which is what makes campaigns byte-reproducible across
worker counts.

Seeding discipline: each run's world seed is *derived* from the seed-list
entry plus the campaign name and cell key (:func:`~repro.sim.rng.derive_seed`),
so two cells sharing a seed-list entry still get independent RNG
substreams, and re-running any single cell in isolation reproduces it
exactly.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field, fields, replace
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..errors import CampaignError
from ..sim.metrics import ToleranceBand
from ..sim.rng import derive_seed

ARCHITECTURES = ("stationary", "dynamic", "infrastructure", "tiered")
WORKLOADS = ("tasks", "serving", "dag")
FAULT_PROFILES = ("none", "light", "heavy", "backhaul")
MOBILITY_MODELS = ("stationary", "highway", "grid")

#: Which mobility models can host each architecture.  A stationary
#: (parking-lot) cloud is defined by its parked fleet; the RSU-anchored
#: architecture deploys RSUs along a highway; the tiered federation
#: anchors its local v-cloud on a parked fleet and adds a datacenter
#: tier behind a WAN backhaul.
COMPATIBLE_MOBILITY: Mapping[str, Tuple[str, ...]] = {
    "stationary": ("stationary",),
    "dynamic": ("highway", "grid"),
    "infrastructure": ("highway",),
    "tiered": ("stationary",),
}

#: Which fault profiles each architecture can absorb.  The "backhaul"
#: profile drives WAN-level faults (outage windows, loss bursts, jitter
#: spikes) through a :class:`~repro.faults.backhaul.BackhaulFaultDriver`
#: — only the tiered architecture has a backhaul to break.
COMPATIBLE_FAULTS: Mapping[str, Tuple[str, ...]] = {
    "stationary": ("none", "light", "heavy"),
    "dynamic": ("none", "light", "heavy"),
    "infrastructure": ("none", "light", "heavy"),
    "tiered": ("none", "light", "heavy", "backhaul"),
}


@dataclass(frozen=True)
class RunSpec:
    """One fully-determined campaign cell: everything a worker needs.

    A ``RunSpec`` is deliberately plain data — JSON-serializable, order-
    stable and hashable — because its canonical encoding *is* the
    content address of the run's artifact bundle.
    """

    campaign: str
    architecture: str
    workload: str
    fault_profile: str
    mobility: str
    seed: int
    run_length_s: float = 40.0
    drain_s: float = 15.0
    members: int = 8
    load_factor: float = 1.5
    graph_count: int = 4
    check_interval_s: float = 1.0

    def __post_init__(self) -> None:
        if self.architecture not in ARCHITECTURES:
            raise CampaignError(f"unknown architecture: {self.architecture!r}")
        if self.workload not in WORKLOADS:
            raise CampaignError(f"unknown workload: {self.workload!r}")
        if self.fault_profile not in FAULT_PROFILES:
            raise CampaignError(f"unknown fault profile: {self.fault_profile!r}")
        if self.mobility not in MOBILITY_MODELS:
            raise CampaignError(f"unknown mobility model: {self.mobility!r}")
        if self.mobility not in COMPATIBLE_MOBILITY[self.architecture]:
            raise CampaignError(
                f"mobility {self.mobility!r} cannot host architecture "
                f"{self.architecture!r}"
            )
        if self.fault_profile not in COMPATIBLE_FAULTS[self.architecture]:
            raise CampaignError(
                f"fault profile {self.fault_profile!r} does not apply to "
                f"architecture {self.architecture!r}"
            )
        if self.run_length_s <= 0 or self.drain_s < 0:
            raise CampaignError("run_length_s must be > 0 and drain_s >= 0")
        if self.members < 2:
            raise CampaignError("members must be >= 2")
        if self.load_factor <= 0:
            raise CampaignError("load_factor must be positive")

    @property
    def cell(self) -> str:
        """The seed-independent cell coordinate."""
        return (
            f"arch={self.architecture},wl={self.workload},"
            f"fault={self.fault_profile},mob={self.mobility}"
        )

    @property
    def key(self) -> str:
        """The unique per-run key used by artifacts and baselines."""
        return f"{self.cell}/seed={self.seed}"

    @property
    def world_seed(self) -> int:
        """The derived world seed — an independent substream per cell."""
        return derive_seed(self.seed, self.campaign, self.cell) % (2**31)

    def as_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunSpec":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise CampaignError(f"unknown RunSpec fields: {sorted(unknown)}")
        return cls(**dict(data))

    def digest(self) -> str:
        """Content address: sha256 of the canonical JSON encoding."""
        canonical = json.dumps(self.as_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


@dataclass(frozen=True)
class CellOverride:
    """A patch applied to every expanded run matching ``match``.

    ``match`` maps axis names (``architecture``, ``workload``,
    ``fault_profile``, ``mobility``, ``seed``) to required values;
    ``set`` maps :class:`RunSpec` field names to replacement values.
    Overrides apply in declaration order, later ones winning.
    """

    match: Tuple[Tuple[str, Any], ...]
    set: Tuple[Tuple[str, Any], ...]

    _AXES = ("architecture", "workload", "fault_profile", "mobility", "seed")

    @classmethod
    def create(
        cls, match: Mapping[str, Any], set: Mapping[str, Any]
    ) -> "CellOverride":
        for axis in match:
            if axis not in cls._AXES:
                raise CampaignError(f"override cannot match on {axis!r}")
        settable = {f.name for f in fields(RunSpec)} - {"campaign", "seed"}
        for name in set:
            if name not in settable:
                raise CampaignError(f"override cannot set {name!r}")
        return cls(
            match=tuple(sorted(match.items())), set=tuple(sorted(set.items()))
        )

    def matches(self, spec: RunSpec) -> bool:
        return all(getattr(spec, axis) == value for axis, value in self.match)

    def apply(self, spec: RunSpec) -> RunSpec:
        return replace(spec, **dict(self.set)) if self.matches(spec) else spec

    def as_dict(self) -> Dict[str, Any]:
        return {"match": dict(self.match), "set": dict(self.set)}


@dataclass(frozen=True)
class ScenarioMatrix:
    """The cartesian axes a campaign sweeps.

    Expansion skips (architecture, mobility) pairs that
    :data:`COMPATIBLE_MOBILITY` rules out — the skip count is surfaced
    through :meth:`CampaignSpec.expansion` so a matrix that silently
    collapsed to nothing is loud, not invisible.
    """

    architectures: Tuple[str, ...]
    workloads: Tuple[str, ...]
    fault_profiles: Tuple[str, ...]
    mobility_models: Tuple[str, ...] = ("stationary",)
    seeds: Tuple[int, ...] = (1,)

    def __post_init__(self) -> None:
        for name, values, universe in (
            ("architectures", self.architectures, ARCHITECTURES),
            ("workloads", self.workloads, WORKLOADS),
            ("fault_profiles", self.fault_profiles, FAULT_PROFILES),
            ("mobility_models", self.mobility_models, MOBILITY_MODELS),
        ):
            if not values:
                raise CampaignError(f"matrix axis {name} is empty")
            unknown = set(values) - set(universe)
            if unknown:
                raise CampaignError(f"unknown {name}: {sorted(unknown)}")
        if not self.seeds:
            raise CampaignError("matrix needs at least one seed")

    def as_dict(self) -> Dict[str, Any]:
        return asdict(self)


@dataclass
class CampaignSpec:
    """A named, declarative campaign: matrix + defaults + tolerances."""

    name: str
    matrix: ScenarioMatrix
    description: str = ""
    #: RunSpec field defaults applied to every cell before overrides.
    defaults: Dict[str, Any] = field(default_factory=dict)
    overrides: List[CellOverride] = field(default_factory=list)
    #: Per-metric tolerance bands for the reporter; keys are metric
    #: names, values ``{"rel_tol": ..., "abs_tol": ...}`` mappings.
    tolerances: Dict[str, ToleranceBand] = field(default_factory=dict)
    #: Default band for metrics without an explicit entry.
    default_tolerance: ToleranceBand = field(
        default_factory=lambda: ToleranceBand(rel_tol=0.05, abs_tol=1e-9)
    )
    #: Metric-name direction overrides for the reporter
    #: (``"higher"`` / ``"lower"`` / ``"both"`` = which drift is good).
    directions: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise CampaignError("campaign needs a name")
        settable = {f.name for f in fields(RunSpec)} - {"campaign", "seed"}
        unknown = set(self.defaults) - settable
        if unknown:
            raise CampaignError(f"unknown default fields: {sorted(unknown)}")
        for direction in self.directions.values():
            if direction not in ("higher", "lower", "both"):
                raise CampaignError(f"unknown direction: {direction!r}")

    # -- expansion -----------------------------------------------------------

    def expansion(self) -> Tuple[List[RunSpec], int]:
        """Expand the matrix into run specs; returns ``(runs, skipped)``.

        ``skipped`` counts (architecture, mobility) combinations the
        compatibility table ruled out.
        """
        runs: List[RunSpec] = []
        skipped = 0
        m = self.matrix
        for arch in m.architectures:
            for workload in m.workloads:
                for fault in m.fault_profiles:
                    if fault not in COMPATIBLE_FAULTS[arch]:
                        skipped += len(m.seeds) * len(m.mobility_models)
                        continue
                    for mobility in m.mobility_models:
                        if mobility not in COMPATIBLE_MOBILITY[arch]:
                            skipped += len(m.seeds)
                            continue
                        for seed in m.seeds:
                            spec = RunSpec(
                                campaign=self.name,
                                architecture=arch,
                                workload=workload,
                                fault_profile=fault,
                                mobility=mobility,
                                seed=seed,
                                **self.defaults,
                            )
                            for override in self.overrides:
                                spec = override.apply(spec)
                            runs.append(spec)
        if not runs:
            raise CampaignError(
                f"campaign {self.name!r} expanded to zero runs "
                f"({skipped} incompatible cells skipped)"
            )
        return runs, skipped

    def expand(self) -> List[RunSpec]:
        """The expanded run list (see :meth:`expansion`)."""
        return self.expansion()[0]

    # -- (de)serialization ---------------------------------------------------

    def as_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "description": self.description,
            "matrix": self.matrix.as_dict(),
            "defaults": dict(self.defaults),
            "overrides": [o.as_dict() for o in self.overrides],
            "tolerances": {
                name: {"rel_tol": band.rel_tol, "abs_tol": band.abs_tol}
                for name, band in sorted(self.tolerances.items())
            },
            "default_tolerance": {
                "rel_tol": self.default_tolerance.rel_tol,
                "abs_tol": self.default_tolerance.abs_tol,
            },
            "directions": dict(self.directions),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        try:
            matrix_data = dict(data["matrix"])
        except KeyError:
            raise CampaignError("campaign spec needs a 'matrix' section") from None
        matrix = ScenarioMatrix(
            architectures=tuple(matrix_data.get("architectures", ())),
            workloads=tuple(matrix_data.get("workloads", ())),
            fault_profiles=tuple(matrix_data.get("fault_profiles", ())),
            mobility_models=tuple(matrix_data.get("mobility_models", ("stationary",))),
            seeds=tuple(int(s) for s in matrix_data.get("seeds", ())),
        )
        overrides = [
            CellOverride.create(dict(o.get("match", {})), dict(o.get("set", {})))
            for o in data.get("overrides", ())
        ]
        tolerances = {
            name: ToleranceBand(
                rel_tol=float(band.get("rel_tol", 0.0)),
                abs_tol=float(band.get("abs_tol", 0.0)),
            )
            for name, band in dict(data.get("tolerances", {})).items()
        }
        default_band = dict(data.get("default_tolerance", {}))
        return cls(
            name=str(data.get("name", "")),
            description=str(data.get("description", "")),
            matrix=matrix,
            defaults=dict(data.get("defaults", {})),
            overrides=overrides,
            tolerances=tolerances,
            default_tolerance=ToleranceBand(
                rel_tol=float(default_band.get("rel_tol", 0.05)),
                abs_tol=float(default_band.get("abs_tol", 1e-9)),
            ),
            directions=dict(data.get("directions", {})),
        )

    def to_json(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.as_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")

    @classmethod
    def load(cls, path: str) -> "CampaignSpec":
        try:
            with open(path, encoding="utf-8") as handle:
                data = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            raise CampaignError(f"cannot load campaign spec {path!r}: {exc}") from exc
        return cls.from_dict(data)


__all__: Sequence[str] = (
    "ARCHITECTURES",
    "COMPATIBLE_FAULTS",
    "COMPATIBLE_MOBILITY",
    "FAULT_PROFILES",
    "MOBILITY_MODELS",
    "WORKLOADS",
    "CampaignSpec",
    "CellOverride",
    "RunSpec",
    "ScenarioMatrix",
)
