"""Campaign CLI: run, bless baselines, re-report, ingest E-series.

Examples::

    python -m repro.campaign run campaigns/smoke.json --out /tmp/smoke \\
        --baseline campaigns/baselines/smoke.json --workers 2
    python -m repro.campaign baseline campaigns/smoke.json \\
        --out campaigns/baselines/smoke.json --workers 4
    python -m repro.campaign report /tmp/smoke \\
        --spec campaigns/smoke.json --baseline campaigns/baselines/smoke.json
    python -m repro.campaign ingest benchmarks/results \\
        --out campaigns/baselines/eseries.json

``run`` and ``report`` exit nonzero when a regression or an invariant
violation is flagged, so CI can gate on them directly.
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from typing import Any, Dict, List, Optional

from ..errors import CampaignError
from .baseline import BaselineStore, load_baseline_file
from .orchestrator import CampaignOrchestrator, CampaignRun, RunOutcome, load_manifest
from .report import Reporter
from .spec import CampaignSpec


def _run_campaign(spec: CampaignSpec, out_dir: str, workers: int) -> CampaignRun:
    orchestrator = CampaignOrchestrator(spec, out_dir, workers=workers)
    return orchestrator.execute()


def _report(
    spec: CampaignSpec,
    campaign_run: CampaignRun,
    baseline_path: Optional[str],
    out_dir: str,
) -> int:
    baseline = load_baseline_file(baseline_path) if baseline_path else None
    report = Reporter.for_spec(spec).compare(campaign_run, baseline)
    paths = report.write(out_dir)
    print(report.to_markdown())
    print(f"report.json: {paths['json']}")
    return 0 if report.ok else 1


def _cmd_run(args: argparse.Namespace) -> int:
    spec = CampaignSpec.load(args.spec)
    out_dir = args.out or tempfile.mkdtemp(prefix=f"campaign-{spec.name}-")
    campaign_run = _run_campaign(spec, out_dir, args.workers)
    print(
        f"campaign {spec.name}: {len(campaign_run.outcomes)} runs "
        f"({campaign_run.skipped_cells} incompatible cells skipped), "
        f"{len(campaign_run.violations)} violation(s), "
        f"{campaign_run.wall_clock_s:.1f}s wall clock"
    )
    return _report(spec, campaign_run, args.baseline, out_dir)


def _cmd_baseline(args: argparse.Namespace) -> int:
    spec = CampaignSpec.load(args.spec)
    out_dir = args.run_dir or tempfile.mkdtemp(prefix=f"campaign-{spec.name}-")
    campaign_run = _run_campaign(spec, out_dir, args.workers)
    if campaign_run.violations:
        for violation in campaign_run.violations[:10]:
            print(f"!! {violation}")
        print("refusing to bless a baseline containing invariant violations")
        return 1
    store = BaselineStore(args.out_dir) if args.out_dir else None
    if store is not None:
        path = store.record(campaign_run, note=args.note)
    else:
        # --out names the baseline file directly.
        document = {
            "campaign": spec.name,
            "cells": campaign_run.cell_vectors(),
            "runs": campaign_run.run_vectors(),
            "source": {
                "kind": "campaign_run",
                "runs": len(campaign_run.outcomes),
                "workers": campaign_run.workers,
                "note": args.note,
            },
        }
        path = args.out
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle, indent=2, sort_keys=True)
            handle.write("\n")
    print(f"baseline written: {path}")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    spec = CampaignSpec.load(args.spec)
    manifest = load_manifest(args.run_dir)
    outcomes: List[RunOutcome] = [
        RunOutcome.from_dict(data) for data in manifest.get("runs", ())
    ]
    campaign_run = CampaignRun(
        spec=spec,
        out_dir=args.run_dir,
        outcomes=outcomes,
        skipped_cells=int(manifest.get("skipped_incompatible_cells", 0)),
        workers=int(manifest.get("workers", 1)),
        wall_clock_s=float(manifest.get("wall_clock_s", 0.0)),
    )
    return _report(spec, campaign_run, args.baseline, args.run_dir)


def _cmd_ingest(args: argparse.Namespace) -> int:
    import os

    store = BaselineStore(os.path.dirname(args.out) or ".")
    campaign = os.path.splitext(os.path.basename(args.out))[0]
    path = store.ingest_results_dir(args.results_dir, campaign=campaign)
    document: Dict[str, Any] = load_baseline_file(path)
    print(
        f"ingested {document['source']['files']} result file(s) into {path} "
        f"({len(document['cells'])} experiments, {len(document['runs'])} rows)"
    )
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.campaign",
        description="Run scenario campaigns and report regressions.",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    run = commands.add_parser("run", help="execute a campaign and report")
    run.add_argument("spec", help="campaign spec JSON path")
    run.add_argument("--out", help="artifact directory (default: temp dir)")
    run.add_argument("--baseline", help="baseline JSON to compare against")
    run.add_argument("--workers", type=int, default=1)
    run.set_defaults(func=_cmd_run)

    baseline = commands.add_parser("baseline", help="execute and bless a baseline")
    baseline.add_argument("spec", help="campaign spec JSON path")
    baseline.add_argument("--out", required=True, help="baseline JSON output path")
    baseline.add_argument("--out-dir", help="baseline store directory instead of --out")
    baseline.add_argument("--run-dir", help="artifact directory (default: temp dir)")
    baseline.add_argument("--workers", type=int, default=1)
    baseline.add_argument("--note", default="", help="provenance note")
    baseline.set_defaults(func=_cmd_baseline)

    report = commands.add_parser("report", help="re-report an executed campaign")
    report.add_argument("run_dir", help="artifact directory holding manifest.json")
    report.add_argument("--spec", required=True, help="campaign spec JSON path")
    report.add_argument("--baseline", help="baseline JSON to compare against")
    report.set_defaults(func=_cmd_report)

    ingest = commands.add_parser(
        "ingest", help="fold benchmarks/results/E*.json into a baseline"
    )
    ingest.add_argument("results_dir", help="directory holding E*.json files")
    ingest.add_argument("--out", required=True, help="baseline JSON output path")
    ingest.set_defaults(func=_cmd_ingest)

    args = parser.parse_args(argv)
    try:
        return int(args.func(args))
    except CampaignError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
